#!/usr/bin/env python3
"""Quickstart: the token dropping game and stable orientations in five minutes.

This example walks through the paper's two central objects on small,
fully-printed instances:

1. the token dropping game of Figure 2 -- we solve it with the distributed
   proposal algorithm (Theorem 4.1) and print every token's traversal;
2. a stable orientation (Figure 1) -- we orient a small graph through the
   public facade (``repro.Instance`` / ``repro.solve``, running the
   phase-based O(Δ⁴) algorithm of Theorem 5.1), verify that every edge is
   happy, then absorb a live edge insertion with ``Solved.dynamic()``;
3. the degree-2 special case correspondence: the same graph solved as a
   stable *assignment* with edge-customers.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.analysis import banner, format_table
from repro.core.assignment import run_stable_assignment
from repro.core.token_dropping import (
    exhaustive_is_stuck,
    greedy_token_dropping,
    run_proposal_algorithm,
)
from repro.graphs.bipartite import CustomerServerGraph
from repro.workloads import figure2_game


def ascii_game(instance, occupied) -> str:
    """Render a layered game level by level, marking occupied nodes with [*]."""
    lines = []
    for level in range(instance.height, -1, -1):
        cells = []
        for node in instance.graph.nodes_at_level(level):
            marker = "*" if node in occupied else " "
            cells.append(f"[{marker}]{node}")
        lines.append(f"level {level}: " + "  ".join(cells))
    return "\n".join(lines)


def demo_token_dropping() -> None:
    print(banner("1. Token dropping game (Figure 2 of the paper)"))
    instance = figure2_game()
    print(instance.describe())
    print("\nInitial configuration (tokens marked with *):")
    print(ascii_game(instance, instance.tokens))

    solution = run_proposal_algorithm(instance)
    solution.validate(instance).raise_if_invalid()
    assert exhaustive_is_stuck(instance, solution)

    print(
        f"\nSolved by the distributed proposal algorithm in "
        f"{solution.game_rounds} game rounds "
        f"({solution.communication_rounds} LOCAL communication rounds)."
    )
    print("\nFinal configuration:")
    print(ascii_game(instance, solution.destinations))

    rows = []
    for token in sorted(solution.traversals, key=repr):
        traversal = solution.traversals[token]
        rows.append(
            [
                str(token),
                " -> ".join(str(n) for n in traversal.path),
                traversal.length,
            ]
        )
    print("\nTraversals (the orange arrows of Figure 2):")
    print(format_table(["token", "traversal", "moves"], rows))

    central = greedy_token_dropping(instance)
    print(
        f"\nFor reference, the centralized greedy baseline performs "
        f"{central.total_moves()} sequential single-step moves."
    )


def demo_stable_orientation() -> None:
    print()
    print(banner("2. Stable orientation (Figure 1 of the paper)"))
    # The small "two triangles sharing a path" graph, solved through the
    # public facade: Instance -> solve -> Solved (flat arrays).
    edges = [(1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (5, 6), (4, 6)]
    instance = repro.Instance.from_edges(edges)
    solved = repro.solve(instance, algorithm="phases")
    result = solved.result
    print(
        f"Oriented {instance.num_edges} edges in {result.phases} phases "
        f"and {result.game_rounds} game rounds; stable = {solved.is_stable()}."
    )

    loads = solved.loads()
    rows = []
    for u, v in edges:
        head = solved.head_of(u, v)
        tail = v if head == u else u
        rows.append(
            [
                f"{tail} -> {head}",
                loads[tail],
                loads[head],
                "happy" if loads[head] - loads[tail] <= 1 else "UNHAPPY",
            ]
        )
    print(
        format_table(
            ["edge (customer -> server)", "load(tail)", "load(head)", "status"], rows
        )
    )
    print("\nServer loads:", dict(sorted(loads.items())))

    # The solved state enters the incremental engine without re-solving;
    # churn is absorbed with frontier-local repair.
    engine = solved.dynamic()
    stats = engine.apply(repro.EdgeInsert(1, 6))
    print(
        f"\nAfter inserting edge (1, 6): repaired locally with "
        f"{stats.repair.total_flips} flips, still stable = "
        f"{not engine.unhappy_edges()}, loads = {dict(sorted(engine.loads().items()))}"
    )


def demo_assignment_view() -> None:
    print()
    print(banner("3. The same graph as a stable assignment (degree-2 customers)"))
    edges = [(1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (5, 6), (4, 6)]
    graph = CustomerServerGraph.from_orientation_graph(edges)
    result = run_stable_assignment(graph)
    print(
        f"{len(graph.customers)} edge-customers assigned to {len(graph.servers)} "
        f"servers in {result.phases} phases; stable = {result.stable}."
    )
    print("Server loads:", dict(sorted(result.assignment.loads().items())))


if __name__ == "__main__":
    demo_token_dropping()
    demo_stable_orientation()
    demo_assignment_view()
