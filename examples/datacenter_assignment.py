#!/usr/bin/env python3
"""Datacenter job placement with stable assignments.

The introduction of the paper motivates the stable assignment problem with
customers that want lightly-loaded servers.  This example builds a skewed
"datacenter" workload -- jobs choose among a few replicas, and some racks
are far more popular than others -- and compares four placement policies:

* naive greedy (each job takes a least-loaded replica, in arbitrary order),
* the paper's stable assignment (Theorem 7.3),
* the 2-bounded relaxation (Theorem 7.5), and
* the exact optimal semi-matching (the offline lower bound).

It prints server-load histograms, the semi-matching cost of each policy,
the measured approximation ratios (the paper guarantees ≤ 2 for stable
assignments), and the round/phase counts of the distributed algorithms.

Run:  python examples/datacenter_assignment.py
"""

from __future__ import annotations

from repro.analysis import banner, format_table
from repro.core.assignment import (
    approximation_ratio,
    greedy_assignment,
    load_histogram,
    optimal_semi_matching,
    run_bounded_stable_assignment,
    run_stable_assignment,
    worst_server_load,
)
from repro.workloads import datacenter_assignment


def main() -> None:
    graph = datacenter_assignment(
        num_jobs=240, num_servers=30, replicas=3, popularity_skew=1.4, seed=7
    )
    print(banner("Datacenter job placement"))
    print(
        f"{len(graph.customers)} jobs, {len(graph.servers)} servers, "
        f"C={graph.max_customer_degree()} replicas per job, "
        f"S={graph.max_server_degree()} max jobs eligible per server"
    )

    optimal = optimal_semi_matching(graph)
    optimum_cost = optimal.semi_matching_cost()

    greedy = greedy_assignment(graph, order="random", seed=3)
    stable = run_stable_assignment(graph, seed=1)
    bounded = run_bounded_stable_assignment(graph, k=2, seed=1)

    rows = []
    for name, assignment, extra in [
        ("greedy (naive)", greedy, "-"),
        (
            "stable assignment (Thm 7.3)",
            stable.assignment,
            f"{stable.phases} phases / {stable.game_rounds} rounds",
        ),
        (
            "2-bounded stable (Thm 7.5)",
            bounded.assignment,
            f"{bounded.phases} phases / {bounded.game_rounds} rounds",
        ),
        ("optimal semi-matching", optimal, "offline"),
    ]:
        rows.append(
            [
                name,
                assignment.semi_matching_cost(),
                f"{approximation_ratio(assignment, optimum_cost):.3f}",
                worst_server_load(assignment.loads()),
                extra,
            ]
        )

    print()
    print(
        format_table(
            ["policy", "Σ f(load)", "ratio vs optimal", "max load", "distributed cost"],
            rows,
        )
    )

    print("\nLoad histograms (load: #servers):")
    for name, assignment in [
        ("greedy", greedy),
        ("stable", stable.assignment),
        ("optimal", optimal),
    ]:
        print(f"  {name:8s} {load_histogram(assignment.loads())}")

    print(
        "\nThe paper's guarantee: a stable assignment is a 2-approximation of the "
        "optimal semi-matching.  Measured ratio above should be (well) below 2."
    )
    assert approximation_ratio(stable.assignment, optimum_cost) <= 2.0
    assert stable.stable and bounded.stable


if __name__ == "__main__":
    main()
