#!/usr/bin/env python3
"""How good is a stable assignment as a semi-matching? (experiment E8 preview)

Section 1.3 of the paper: a stable assignment is a 2-approximation of the
optimal semi-matching (Czygrinow et al., Harvey et al.).  This example
measures the realized approximation ratio across workloads of increasing
skew and prints the worst case observed -- it should stay comfortably
below the guaranteed factor 2, and typically close to 1.

Run:  python examples/semi_matching_quality.py
"""

from __future__ import annotations

from repro.analysis import banner, format_table, summarize
from repro.core.assignment import (
    approximation_ratio,
    greedy_assignment,
    optimal_cost,
    run_stable_assignment,
)
from repro.workloads import datacenter_assignment, uniform_assignment


def main() -> None:
    print(banner("Stable assignment vs. optimal semi-matching"))
    rows = []
    stable_ratios = []
    for skew in (0.0, 0.5, 1.0, 1.5, 2.0):
        for seed in (0, 1, 2):
            if skew == 0.0:
                graph = uniform_assignment(
                    num_jobs=120, num_servers=24, replicas=3, seed=seed
                )
            else:
                graph = datacenter_assignment(
                    num_jobs=120,
                    num_servers=24,
                    replicas=3,
                    popularity_skew=skew,
                    seed=seed,
                )
            optimum = optimal_cost(graph)
            stable = run_stable_assignment(graph, seed=seed)
            greedy = greedy_assignment(graph, order="random", seed=seed)
            stable_ratio = approximation_ratio(stable.assignment, optimum)
            greedy_ratio = approximation_ratio(greedy, optimum)
            stable_ratios.append(stable_ratio)
            rows.append(
                [
                    skew,
                    seed,
                    optimum,
                    stable.assignment.semi_matching_cost(),
                    f"{stable_ratio:.3f}",
                    f"{greedy_ratio:.3f}",
                ]
            )

    print(
        format_table(
            ["skew", "seed", "optimal cost", "stable cost", "stable/opt", "greedy/opt"],
            rows,
        )
    )
    summary = summarize(stable_ratios)
    print(f"\nstable-assignment approximation ratios: {summary}")
    print(
        f"worst observed ratio = {summary.maximum:.3f} "
        f"<= 2 (the paper's guarantee): {summary.maximum <= 2.0}"
    )


if __name__ == "__main__":
    main()
