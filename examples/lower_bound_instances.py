#!/usr/bin/env python3
"""The paper's lower-bound constructions, built and checked (experiments E2/E5).

Lower bounds cannot be demonstrated by running an algorithm, but their
constructions can be built and their premises checked:

1. **Theorem 4.6 / 7.4** -- reduce bipartite maximal matching to height-2
   token dropping: we build the reduction, solve the game, and verify the
   extracted matching is a maximal matching.
2. **Theorem 6.3** (with Lemmas 6.1 and 6.2) -- a Δ-regular graph of girth
   g and a perfect Δ-ary tree: we verify the construction's premises, run
   our stable orientation algorithm on both, and confirm the two lemmas
   (a high-load node must exist in the regular graph; tree loads are
   bounded by height + 1), plus the indistinguishability of local views
   that powers the argument.

Run:  python examples/lower_bound_instances.py
"""

from __future__ import annotations

import math

import networkx as nx

from repro.analysis import banner, format_table
from repro.core.assignment import verify_maximal_matching
from repro.core.orientation import OrientationProblem, run_stable_orientation
from repro.core.token_dropping import run_proposal_algorithm
from repro.graphs.validation import check_perfect_dary_tree, graph_girth, is_regular
from repro.lower_bounds import (
    height2_matching_instance,
    lemma61_violations,
    lemma62_witness,
    matching_from_height2_solution,
    theorem63_instance_pair,
    views_isomorphic,
)
from repro.workloads import hard_matching_bipartite


def demo_matching_reduction() -> None:
    print(banner("Theorem 4.6: maximal matching -> height-2 token dropping"))
    graph = hard_matching_bipartite(side=25, degree=4, seed=3)
    instance = height2_matching_instance(graph)
    print(
        f"bipartite graph: {len(graph.customers)}+{len(graph.servers)} nodes, "
        f"{graph.num_edges()} edges  ->  game with {instance.num_tokens} tokens, "
        f"height {instance.height}"
    )
    solution = run_proposal_algorithm(instance)
    solution.validate(instance).raise_if_invalid()
    matching = matching_from_height2_solution(graph, solution)
    violations = verify_maximal_matching(graph, matching)
    print(
        f"game solved in {solution.game_rounds} game rounds; extracted matching of "
        f"size {len(matching)}; maximal-matching check: "
        f"{'OK' if not violations else violations}"
    )
    print(
        "Because maximal matching needs Ω(Δ + log n / log log n) rounds, so does "
        "height-2 token dropping -- the reduction above is the whole proof."
    )


def demo_theorem63() -> None:
    print()
    print(banner("Theorem 6.3: Δ-regular graph vs. perfect Δ-ary tree"))
    rows = []
    for delta in (3, 4, 5):
        regular, tree, root = theorem63_instance_pair(delta, seed=delta)
        girth = graph_girth(regular, cap=10)
        depth = check_perfect_dary_tree(tree, delta, root)
        assert is_regular(regular, delta)

        reg_problem = OrientationProblem.from_networkx(regular)
        tree_problem = OrientationProblem.from_networkx(tree)
        reg_orientation = run_stable_orientation(reg_problem).orientation
        tree_orientation = run_stable_orientation(tree_problem).orientation

        witness = lemma62_witness(reg_orientation, delta)
        tree_ok = lemma61_violations(tree, tree_orientation) == []

        # Indistinguishability of views at the radius the girth supports.
        radius = max(1, (girth - 1) // 2 - 1) if math.isfinite(girth) else 1
        depths = nx.single_source_shortest_path_length(tree, root)
        interior = next(
            n
            for n, d in depths.items()
            if radius <= d <= depth - radius and tree.degree(n) == delta
        )
        some_node = next(iter(regular.nodes()))
        indist = views_isomorphic(regular, some_node, tree, interior, radius)

        rows.append(
            [
                delta,
                regular.number_of_nodes(),
                girth,
                tree.number_of_nodes(),
                f"load({witness})={reg_orientation.load(witness)} "
                f">= {math.ceil(delta / 2)}",
                "holds" if tree_ok else "VIOLATED",
                f"radius {radius}: {'isomorphic' if indist else 'DIFFER'}",
            ]
        )
    print(
        format_table(
            [
                "Δ",
                "|V| regular",
                "girth",
                "|V| tree",
                "Lemma 6.2 witness",
                "Lemma 6.1",
                "local views",
            ],
            rows,
        )
    )
    print(
        "\nThe contradiction of Theorem 6.3: a fast algorithm would have to give the "
        "indistinguishable node the same (high) indegree in the tree, violating "
        "Lemma 6.1 -- hence Ω(Δ) rounds are required."
    )


if __name__ == "__main__":
    demo_matching_reduction()
    demo_theorem63()
