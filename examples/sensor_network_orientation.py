#!/usr/bin/env python3
"""Stable orientations of a sensor network: the paper's algorithm vs. baselines.

Each edge of a bounded-degree "radio network" must be oriented (think: one
endpoint takes responsibility for the link); every node's load is the
number of links it owns, and the orientation should be locally balanced --
exactly the stable orientation problem.

The example runs three algorithms on the same graphs of growing maximum
degree Δ and reports their cost in *rounds*:

* the paper's phase-based algorithm (Theorem 5.1, O(Δ⁴) rounds),
* the repair-from-arbitrary-orientation baseline standing in for the
  O(Δ⁵)-style prior work, and
* the centralized sequential flip algorithm (number of flips, i.e. the
  length of the flip chain a naive scheme may have to propagate).

Run:  python examples/sensor_network_orientation.py
"""

from __future__ import annotations

import repro
from repro.analysis import banner, fit_power_law, format_table
from repro.core.orientation import (
    run_stable_orientation,
    sequential_flip_algorithm,
    synchronous_repair_orientation,
)
from repro.workloads import regular_orientation


def main() -> None:
    print(banner("Sensor-network link orientation"))
    # The facade builds the named workload family in compact CSR form and
    # solves it with the phase algorithm in one line each.
    instance = repro.Instance.build(
        "sensor-network", num_nodes=150, max_degree=8, density=0.06, seed=5
    )
    print(
        f"random bounded-degree network: {instance.num_nodes} nodes, "
        f"{instance.num_edges} links"
    )
    solved = repro.solve(instance, algorithm="phases")
    result = solved.result
    print(
        f"phase algorithm: {result.phases} phases, {result.game_rounds} game rounds, "
        f"stable={solved.is_stable()}, max load={solved.max_load()}"
    )

    print()
    print(banner("Round scaling on Δ-regular networks (experiment E4 preview)"))
    rows = []
    deltas = [3, 4, 5, 6, 8]
    phase_rounds = []
    repair_rounds = []
    for delta in deltas:
        problem = regular_orientation(degree=delta, num_nodes=10 * delta, seed=delta)
        phase_result = run_stable_orientation(problem)
        _, repair_stats = synchronous_repair_orientation(problem, seed=delta)
        _, seq_stats = sequential_flip_algorithm(problem, policy="random", seed=delta)
        phase_rounds.append(phase_result.game_rounds)
        repair_rounds.append(repair_stats.communication_rounds)
        rows.append(
            [
                delta,
                problem.num_edges(),
                phase_result.phases,
                phase_result.game_rounds,
                repair_stats.communication_rounds,
                seq_stats.flips,
            ]
        )
    print(
        format_table(
            [
                "Δ",
                "edges",
                "phases (Thm 5.1)",
                "rounds (Thm 5.1)",
                "rounds (repair baseline)",
                "flips (sequential)",
            ],
            rows,
        )
    )

    fit = fit_power_law([float(d) for d in deltas], [float(r) for r in phase_rounds])
    print(
        f"\nfitted growth of the phase algorithm's rounds: {fit} "
        "(the Theorem 5.1 bound is Δ^4; measured instances are far below it "
        "because random instances are not worst-case)"
    )


if __name__ == "__main__":
    main()
