"""Experiments E2 & E5: the lower-bound constructions.

E2 (Theorems 4.6 / 7.4): build the reduction from bipartite maximal
matching to height-2 token dropping, solve the game, and verify that the
extracted matching is maximal; also run the Theorem 7.4 reduction through
the 2-bounded assignment algorithm.

E5 (Theorem 6.3, Lemmas 6.1 / 6.2): build the Δ-regular-graph / Δ-ary-tree
pair, verify the construction's premises, orient both with the paper's
algorithm, and check both lemmas plus the indistinguishability of local
views.
"""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.core.assignment import (
    maximal_matching_via_bounded_assignment,
    verify_maximal_matching,
)
from repro.core.orientation import OrientationProblem, run_stable_orientation
from repro.core.token_dropping import run_proposal_algorithm
from repro.graphs.validation import check_perfect_dary_tree, graph_girth, is_regular
from repro.lower_bounds import (
    height2_matching_instance,
    lemma61_violations,
    lemma62_witness,
    matching_from_height2_solution,
    theorem63_instance_pair,
    views_isomorphic,
)
from repro.workloads import hard_matching_bipartite

SIDES = [20, 40]
DELTAS = [3, 4, 5]


@pytest.mark.experiment("E2")
@pytest.mark.parametrize("side", SIDES)
def test_matching_reduction_via_token_dropping(benchmark, record_rows, side):
    """Theorem 4.6: height-2 token dropping yields a maximal matching."""
    graph = hard_matching_bipartite(side=side, degree=4, seed=side)
    instance = height2_matching_instance(graph)

    solution = benchmark(lambda: run_proposal_algorithm(instance))
    solution.validate(instance).raise_if_invalid()
    matching = matching_from_height2_solution(graph, solution)
    violations = verify_maximal_matching(graph, matching)
    record_rows(
        experiment="E2",
        side=side,
        delta=graph.max_degree(),
        game_rounds=solution.game_rounds,
        matching_size=len(matching),
        maximal=not violations,
    )
    assert not violations


@pytest.mark.experiment("E2")
@pytest.mark.parametrize("side", SIDES)
def test_matching_reduction_via_bounded_assignment(benchmark, record_rows, side):
    """Theorem 7.4: the 2-bounded assignment also yields a maximal matching."""
    graph = hard_matching_bipartite(side=side, degree=4, seed=100 + side)
    matching, result = benchmark(
        lambda: maximal_matching_via_bounded_assignment(graph, seed=0)
    )
    violations = verify_maximal_matching(graph, matching)
    record_rows(
        experiment="E2",
        side=side,
        phases=result.phases,
        game_rounds=result.game_rounds,
        matching_size=len(matching),
        maximal=not violations,
    )
    assert not violations


@pytest.mark.experiment("E5")
@pytest.mark.parametrize("delta", DELTAS)
def test_theorem63_constructions_and_lemmas(benchmark, record_rows, delta):
    """Theorem 6.3's instance pair: premises, Lemma 6.1, Lemma 6.2, local views."""

    def build_and_check():
        regular, tree, root = theorem63_instance_pair(delta, seed=delta)
        assert is_regular(regular, delta)
        depth = check_perfect_dary_tree(tree, delta, root)
        girth = graph_girth(regular, cap=10)

        reg_orientation = run_stable_orientation(
            OrientationProblem.from_networkx(regular)
        ).orientation
        tree_orientation = run_stable_orientation(
            OrientationProblem.from_networkx(tree)
        ).orientation

        witness = lemma62_witness(reg_orientation, delta)
        lemma61_ok = lemma61_violations(tree, tree_orientation) == []

        radius = max(1, (int(girth) - 1) // 2 - 1) if math.isfinite(girth) else 1
        depths = nx.single_source_shortest_path_length(tree, root)
        interior = next(
            n
            for n, d in depths.items()
            if radius <= d <= depth - radius and tree.degree(n) == delta
        )
        indistinguishable = views_isomorphic(
            regular, next(iter(regular.nodes())), tree, interior, radius
        )
        return {
            "girth": girth,
            "witness_load": reg_orientation.load(witness),
            "lemma61_ok": lemma61_ok,
            "radius": radius,
            "indistinguishable": indistinguishable,
        }

    outcome = benchmark(build_and_check)
    record_rows(experiment="E5", delta=delta, **outcome)
    assert outcome["witness_load"] >= math.ceil(delta / 2)
    assert outcome["lemma61_ok"]
    assert outcome["indistinguishable"]
