"""Experiment E8: stable assignments as semi-matching 2-approximations.

Section 1.3: a stable assignment is a factor-2 approximation of the
optimal semi-matching.  We measure the realized cost ratio on workloads of
increasing skew, for both the paper's algorithm and the naive greedy
heuristic, and record the worst observed ratios (the stable ratio must
never exceed 2; greedy carries no guarantee).

Runs through the experiment engine: each case is a
:class:`~repro.engine.TaskSpec` over the same
:func:`repro.engine.library.semi_matching_quality` measure the report
sweeps, so wall-clock numbers attach to exactly the reported quantities.
"""

from __future__ import annotations

import pytest

from repro.core.assignment import optimal_cost
from repro.engine import ExperimentSpec, execute_task, library, parameter_grid
from repro.workloads import datacenter_assignment

SKEWS = [0.0, 1.0, 2.0]

E8_SPEC = ExperimentSpec(
    name="E8",
    measure=library.semi_matching_quality,
    grid=parameter_grid(skew=SKEWS, jobs=[150], servers=[30]),
    seeds=(4,),
)


def _task_id(task) -> str:
    return f"skew{task.params['skew']}"


@pytest.mark.experiment("E8")
@pytest.mark.parametrize("task", E8_SPEC.tasks(), ids=_task_id)
def test_stable_assignment_approximation(benchmark, record_rows, task):
    """Measured cost ratio of the stable assignment vs. the exact optimum."""
    result = benchmark(lambda: execute_task(task))
    assert result.values["stable"]
    record_rows(experiment="E8", **result.values)
    assert result.values["stable_ratio"] <= 2.0


@pytest.mark.experiment("E8")
def test_optimal_semi_matching_cost(benchmark, record_rows):
    """Wall-clock cost of the exact min-cost-flow optimum (the offline baseline)."""
    graph = datacenter_assignment(
        num_jobs=200, num_servers=40, replicas=3, popularity_skew=1.5, seed=9
    )
    cost = benchmark(lambda: optimal_cost(graph))
    record_rows(experiment="E8", optimal_cost=cost, jobs=200, servers=40)
    assert cost > 0
