"""Experiment E8: stable assignments as semi-matching 2-approximations.

Section 1.3: a stable assignment is a factor-2 approximation of the
optimal semi-matching.  We measure the realized cost ratio on workloads of
increasing skew, for both the paper's algorithm and the naive greedy
heuristic, and record the worst observed ratios (the stable ratio must
never exceed 2; greedy carries no guarantee).
"""

from __future__ import annotations

import pytest

from repro.core.assignment import (
    approximation_ratio,
    greedy_assignment,
    optimal_cost,
    run_stable_assignment,
)
from repro.workloads import datacenter_assignment, uniform_assignment

SKEWS = [0.0, 1.0, 2.0]


@pytest.mark.experiment("E8")
@pytest.mark.parametrize("skew", SKEWS)
def test_stable_assignment_approximation(benchmark, record_rows, skew):
    """Measured cost ratio of the stable assignment vs. the exact optimum."""
    if skew == 0.0:
        graph = uniform_assignment(num_jobs=150, num_servers=30, replicas=3, seed=4)
    else:
        graph = datacenter_assignment(
            num_jobs=150, num_servers=30, replicas=3, popularity_skew=skew, seed=4
        )
    optimum = optimal_cost(graph)

    result = benchmark(lambda: run_stable_assignment(graph, seed=2))
    assert result.stable
    stable_ratio = approximation_ratio(result.assignment, optimum)
    greedy_ratio = approximation_ratio(
        greedy_assignment(graph, order="random", seed=2), optimum
    )
    record_rows(
        experiment="E8",
        skew=skew,
        optimal_cost=optimum,
        stable_cost=result.assignment.semi_matching_cost(),
        stable_ratio=stable_ratio,
        greedy_ratio=greedy_ratio,
    )
    assert stable_ratio <= 2.0


@pytest.mark.experiment("E8")
def test_optimal_semi_matching_cost(benchmark, record_rows):
    """Wall-clock cost of the exact min-cost-flow optimum (the offline baseline)."""
    graph = datacenter_assignment(
        num_jobs=200, num_servers=40, replicas=3, popularity_skew=1.5, seed=9
    )
    cost = benchmark(lambda: optimal_cost(graph))
    record_rows(experiment="E8", optimal_cost=cost, jobs=200, servers=40)
    assert cost > 0
