"""Experiments E6 & E7: stable assignment and its k-bounded relaxation.

E6 (Theorems 7.1 / 7.3): the phase-based stable assignment algorithm on
customer--server workloads, sweeping the customer degree C and the server
degree S; phases and game rounds are checked against the explicit
O(C·S) / O(C·S⁴) budgets.

E7 (Theorem 7.5): the 2-bounded relaxation on the same instances; its
per-phase token dropping games have at most three levels and the overall
round count should sit well below the unrelaxed algorithm's.
"""

from __future__ import annotations

import pytest

from repro.core.assignment import (
    run_bounded_stable_assignment,
    run_stable_assignment,
    theoretical_phase_bound,
    theoretical_round_bound,
)
from repro.workloads import (
    datacenter_assignment,
    hard_matching_bipartite,
    uniform_assignment,
)

C_SWEEP = [2, 3, 4, 6]
S_SCALE = [10, 20, 40]


@pytest.mark.experiment("E6")
@pytest.mark.parametrize("replicas", C_SWEEP)
def test_assignment_rounds_vs_customer_degree(benchmark, record_rows, replicas):
    """Rounds of the Theorem 7.3 algorithm as the customer degree C grows."""
    graph = datacenter_assignment(
        num_jobs=150,
        num_servers=30,
        replicas=replicas,
        popularity_skew=1.0,
        seed=replicas,
    )
    result = benchmark(lambda: run_stable_assignment(graph, seed=replicas))
    assert result.stable
    record_rows(
        experiment="E6",
        C=graph.max_customer_degree(),
        S=graph.max_server_degree(),
        phases=result.phases,
        game_rounds=result.game_rounds,
        phase_bound=theoretical_phase_bound(graph),
        round_bound=theoretical_round_bound(graph),
    )
    assert result.phases <= theoretical_phase_bound(graph)
    assert result.game_rounds <= theoretical_round_bound(graph)


@pytest.mark.experiment("E6")
@pytest.mark.parametrize("num_servers", S_SCALE)
def test_assignment_rounds_vs_server_degree(benchmark, record_rows, num_servers):
    """Rounds as the server-side degree S grows (jobs fixed, servers vary)."""
    graph = datacenter_assignment(
        num_jobs=6 * num_servers,
        num_servers=num_servers,
        replicas=3,
        popularity_skew=1.2,
        seed=num_servers,
    )
    result = benchmark(lambda: run_stable_assignment(graph, seed=1))
    assert result.stable
    record_rows(
        experiment="E6",
        C=graph.max_customer_degree(),
        S=graph.max_server_degree(),
        phases=result.phases,
        game_rounds=result.game_rounds,
    )


@pytest.mark.experiment("E7")
@pytest.mark.parametrize("replicas", C_SWEEP)
def test_bounded_vs_general_assignment(benchmark, record_rows, replicas):
    """Theorem 7.5: the 2-bounded relaxation needs (far) fewer rounds."""
    graph = uniform_assignment(
        num_jobs=150, num_servers=30, replicas=replicas, seed=50 + replicas
    )
    bounded = benchmark(lambda: run_bounded_stable_assignment(graph, k=2, seed=1))
    general = run_stable_assignment(graph, seed=1)
    assert bounded.stable and general.stable
    record_rows(
        experiment="E7",
        C=graph.max_customer_degree(),
        S=graph.max_server_degree(),
        bounded_phases=bounded.phases,
        bounded_rounds=bounded.game_rounds,
        general_phases=general.phases,
        general_rounds=general.game_rounds,
        max_bounded_td_height=max(
            (s.token_dropping_height for s in bounded.per_phase), default=0
        ),
    )
    # The relaxation's embedded games never exceed three levels.
    assert all(s.token_dropping_height <= 2 for s in bounded.per_phase)


@pytest.mark.experiment("E7")
def test_bounded_assignment_on_matching_hard_instance(benchmark, record_rows):
    """The Theorem 7.4 instance family: balanced bipartite graphs."""
    graph = hard_matching_bipartite(side=40, degree=4, seed=3)
    result = benchmark(lambda: run_bounded_stable_assignment(graph, k=2, seed=0))
    assert result.stable
    record_rows(
        experiment="E7",
        C=graph.max_customer_degree(),
        S=graph.max_server_degree(),
        phases=result.phases,
        game_rounds=result.game_rounds,
    )
