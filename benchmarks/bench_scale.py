"""Million-node scale suite: wall time *and* memory of the compact kernels.

Where the other suites race the compact kernels against the dict
reference on mid-size instances, this one answers a different question:
*do the streaming builders and frontier-batched kernels actually hold up
at 10^5–10^6 nodes?*  There is no dict path here — at these sizes the
reference representation is the thing being avoided — so every scenario
times the compact pipeline alone and records its peak memory:

* ``peak_mb`` (via the shared benchmark fixture) — tracemalloc peak of
  one untimed run, i.e. the algorithm's Python-heap working set;
* ``rss_peak_mb_process`` — the OS high-water mark of the whole process
  (cumulative across scenarios, so only meaningful within a tier run —
  recorded because tracemalloc cannot see non-heap allocations).

Tiers (see ``SCALE_TIER_PARAMS``): ``100k`` and ``1m`` always; the
``10m`` tier only with ``REPRO_BENCH_SCALE_XL=1`` (expect several GB of
RSS and minutes per round).  Smoke mode (``REPRO_BENCH_SMOKE=1``, the CI
matrix entry) runs the ``100k`` tier only and skips the JSON write.

Regenerate the committed ``BENCH_scale.json`` with::

    PYTHONPATH=src pytest benchmarks/bench_scale.py --benchmark-only
"""

from __future__ import annotations

import os

import pytest

from repro.core.orientation._kernels import (
    repair_kernel,
    stable_orientation_kernel,
)
from repro.core.token_dropping._kernels import proposal_game_kernel
from repro.parallel import parallel_stable_orientation_kernel, resolve_workers
from repro.workloads.scenarios import (
    SCALE_TIER_PARAMS,
    scale_layered_orientation,
    scale_token_dropping,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

if SMOKE:
    TIERS = ["100k"]
elif os.environ.get("REPRO_BENCH_SCALE_XL", "") == "1":
    TIERS = ["100k", "1m", "10m"]
else:
    TIERS = ["100k", "1m"]

#: One calibration-free setting for every scenario: rounds are expensive
#: here (a 1m orientation round runs for over a minute), so the suite
#: pins exactly how many pytest-benchmark takes instead of letting its
#: calibrator spend them.
BENCH_OPTS = dict(
    min_rounds=1 if SMOKE else 3,
    max_time=0.1 if SMOKE else 1.0,
    warmup=False,
)

TOKEN_FRACTION = 0.6


def _rss_peak_mb():
    """Process-wide peak RSS in MB, or None off-POSIX."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


#: tier -> built orientation instance, shared by the three kernel
#: scenarios so the (measured-separately) construction runs once.
_GRAPHS: dict = {}
_GAMES: dict = {}


def _graph(tier: str):
    if tier not in _GRAPHS:
        _GRAPHS[tier] = scale_layered_orientation(**SCALE_TIER_PARAMS[tier])
    return _GRAPHS[tier]


def _game(tier: str):
    if tier not in _GAMES:
        _GAMES[tier] = scale_token_dropping(
            **SCALE_TIER_PARAMS[tier], token_fraction=TOKEN_FRACTION
        )
    return _GAMES[tier]


@pytest.mark.benchmark(**BENCH_OPTS)
@pytest.mark.parametrize("tier", TIERS)
def test_scale_build_orientation(benchmark, record_rows, tier):
    """Streaming CSR construction: generator -> ``from_edge_stream``."""
    params = SCALE_TIER_PARAMS[tier]
    graph = benchmark(lambda: scale_layered_orientation(**params))
    record_rows(
        tier=tier,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        rss_peak_mb_process=_rss_peak_mb(),
    )


@pytest.mark.benchmark(**BENCH_OPTS)
@pytest.mark.parametrize("tier", TIERS)
def test_scale_orientation(benchmark, record_rows, tier):
    """Frontier-batched stable orientation at scale."""
    graph = _graph(tier)
    heads, load, phases, game_rounds, comm_rounds, _ = benchmark(
        lambda: stable_orientation_kernel(graph, seed=0)
    )
    assert all(h >= 0 for h in heads)
    record_rows(
        tier=tier,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        phases=phases,
        communication_rounds=comm_rounds,
        max_load=max(load),
        rss_peak_mb_process=_rss_peak_mb(),
    )


@pytest.mark.benchmark(**BENCH_OPTS)
@pytest.mark.parametrize("tier", TIERS)
def test_scale_orientation_parallel(benchmark, record_rows, tier):
    """The compact-parallel backend at scale, all available workers.

    The serial medians live in ``test_scale_orientation``; this scenario
    is the parallel side of that comparison.  Worker count defaults to
    ``os.cpu_count()`` (override with ``REPRO_WORKERS``) and is recorded
    alongside the machine's core count — a committed row from a 1-core
    box honestly shows the pool overhead instead of a speedup.
    """
    graph = _graph(tier)
    workers = resolve_workers()
    heads, load, phases, game_rounds, comm_rounds, _ = benchmark(
        lambda: parallel_stable_orientation_kernel(graph, seed=0, workers=workers)
    )
    assert all(h >= 0 for h in heads)
    record_rows(
        tier=tier,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        phases=phases,
        communication_rounds=comm_rounds,
        max_load=max(load),
        workers=workers,
        cpu_count=os.cpu_count(),
        rss_peak_mb_process=_rss_peak_mb(),
    )


@pytest.mark.benchmark(**BENCH_OPTS)
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_scale_orientation_workers(benchmark, record_rows, workers):
    """Workers sweep at the 100k tier: 1 (serial fallback), 2, and 4.

    The ``workers=1`` row goes through the parallel entry point but falls
    back to the serial kernel — the sweep's baseline — so the committed
    rows show the scaling curve and the pool overhead on one chart.
    """
    graph = _graph("100k")
    heads, load, phases, _, comm_rounds, _ = benchmark(
        lambda: parallel_stable_orientation_kernel(graph, seed=0, workers=workers)
    )
    assert all(h >= 0 for h in heads)
    record_rows(
        tier="100k",
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        phases=phases,
        communication_rounds=comm_rounds,
        workers=workers,
        cpu_count=os.cpu_count(),
        rss_peak_mb_process=_rss_peak_mb(),
    )


@pytest.mark.benchmark(**BENCH_OPTS)
@pytest.mark.parametrize("tier", TIERS)
def test_scale_repair(benchmark, record_rows, tier):
    """Synchronous repair from the seeded random orientation at scale."""
    graph = _graph(tier)
    heads, load, stats = benchmark(lambda: repair_kernel(graph, seed=0))
    record_rows(
        tier=tier,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        iterations=stats.iterations,
        total_flips=stats.total_flips,
        rss_peak_mb_process=_rss_peak_mb(),
    )


@pytest.mark.benchmark(**BENCH_OPTS)
@pytest.mark.parametrize("tier", TIERS)
def test_scale_token_dropping(benchmark, record_rows, tier):
    """The proposal algorithm on a stream-built dense game at scale."""
    compact = _game(tier)
    max_rounds = 3 * compact.theoretical_round_bound()
    *_, engine = benchmark(
        lambda: proposal_game_kernel(
            compact.game, max_rounds, tie_break="min", count_messages=False
        )
    )
    assert engine.n_alive == 0
    record_rows(
        tier=tier,
        num_nodes=compact.num_nodes,
        num_edges=compact.num_edges,
        game_rounds=engine.rounds,
        max_round_budget=max_rounds,
        rss_peak_mb_process=_rss_peak_mb(),
    )
