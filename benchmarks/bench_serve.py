"""Serving layer: closed-loop latency, throughput, and coalescing.

The serving story behind :mod:`repro.serve`: once an instance is solved,
point queries are flat-array lookups and updates are absorbed by
coalescing concurrent requests into one ``apply_batch`` frontier, so the
per-request overhead (wire round trip, dispatch, repair-loop setup) is
paid once per *batch* instead of once per *delta*.  This suite drives a
real :class:`ServerThread` + :class:`ServeClient` pair over loopback TCP
— exactly the deployed plumbing — on the fixed ``serve_smoke`` scenario
(64-node sensor network, 512-delta edge-flap trace):

* ``test_serve_point_query_latency`` — closed-loop ``load-of`` /
  ``assignment-of`` queries; per-request p50/p95/p99 latencies land in
  ``extra_info``.
* ``test_serve_coalesced_replay`` — the scenario the CI perf-regression
  gate re-times (``scripts/check_bench_regression.py --suite serve``):
  the full trace replayed through the server in coalesced batches.  The
  naive comparator (one re-stabilization round trip per delta — serving
  without the coalescing layer) is timed untimed-side here and its ratio
  must clear :data:`REQUIRED_SERVE_RATIO`; the gate re-derives the same
  ratio on the CI machine so a silent per-delta fallback inside the
  updater fails CI.  Served state is asserted bit-for-bit against a
  local engine applying the identical chunks before any timing.
* ``test_serve_concurrent_coalescing`` — eight closed-loop writers
  against one gathering window; the measured coalescing ratio
  (deltas applied per re-stabilization batch) is recorded.

The edge-flap trace is edge-set preserving (every delete immediately
re-inserted), so every benchmark round replays the same trace against a
*persistent* server — setup never pollutes the timed region.

``REPRO_BENCH_SMOKE=1`` shrinks the closed loops to CI size and skips
the ratio assertion; the agreement checks always run.  The committed
``BENCH_serve.json`` is regenerated with::

    pytest benchmarks/bench_serve.py --benchmark-only
"""

from __future__ import annotations

import os
import statistics
import threading
import time

import pytest

from repro.core.orientation import DynamicOrientation
from repro.serve import ServeConfig, ServerThread, connect
from repro.workloads import serve_smoke, serve_smoke_trace

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

#: Minimum ratio of naive (one round trip + re-stabilization per delta)
#: to coalesced closed-loop replay time.  Measured ~19x on the reference
#: machine; the floor catches a serving layer that stops amortizing
#: per-request overhead.
REQUIRED_SERVE_RATIO = 10.0

#: Chunk size of the coalesced replay — one request per chunk, matching
#: the default ``ServeConfig.max_batch``.
COALESCED_BATCH = 256

NUM_QUERIES = 200 if SMOKE else 2000
NAIVE_ROUNDS = 1 if SMOKE else 5
SOLVE_SEED = 2


def _engine():
    return DynamicOrientation(serve_smoke(), seed=SOLVE_SEED)


def _trace():
    trace = serve_smoke_trace(serve_smoke())
    if SMOKE:
        # Truncate at a pair boundary so the trace stays edge-set
        # preserving (replayable against a persistent server).
        trace = trace[:64]
    return trace


def _replay(client, trace, batch_size):
    for lo in range(0, len(trace), batch_size):
        client.update(trace[lo : lo + batch_size])


@pytest.mark.experiment("serve")
def test_serve_point_query_latency(benchmark, record_rows):
    """Closed-loop point queries against a solved served instance."""
    engine = _engine()
    graph = engine.solved_arrays()[0]
    targets = [
        (graph.node_ids[graph.edge_u[e]], graph.node_ids[graph.edge_v[e]])
        for e in range(graph.num_edges)
    ]
    with ServerThread(engine, ServeConfig()) as thread:
        with connect(thread.address) as client:
            # Agreement before timing: the served answers are the
            # engine's flat-array answers.
            for u, v in targets[:32]:
                assert client.assignment_of(u, v) == engine.head_of(u, v)
                assert client.load_of(u) == engine.load_of(u)

            def query_loop():
                for i in range(NUM_QUERIES):
                    u, v = targets[i % len(targets)]
                    if i % 2:
                        client.load_of(u)
                    else:
                        client.assignment_of(u, v)

            query_loop()  # warm the connection and the dispatch path
            benchmark(query_loop)

            # Per-request latency distribution, measured individually.
            latencies = []
            for i in range(NUM_QUERIES):
                u, v = targets[i % len(targets)]
                start = time.perf_counter()
                if i % 2:
                    client.load_of(u)
                else:
                    client.assignment_of(u, v)
                latencies.append(time.perf_counter() - start)
    latencies.sort()

    def percentile(q):
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    record_rows(
        scenario="serve_point_queries",
        nodes=graph.num_nodes,
        edges=graph.num_edges,
        queries=NUM_QUERIES,
        p50_latency_us=percentile(0.50) * 1e6,
        p95_latency_us=percentile(0.95) * 1e6,
        p99_latency_us=percentile(0.99) * 1e6,
        queries_per_second=NUM_QUERIES / sum(latencies),
    )


@pytest.mark.experiment("serve")
def test_serve_coalesced_replay(benchmark, record_rows):
    """The coalesced closed-loop replay the CI perf gate re-times."""
    trace = _trace()

    # Agreement before timing: a served session applying the trace in
    # coalesced chunks must equal a local engine applying the identical
    # chunks — the server adds no semantics of its own.
    check_engine = _engine()
    reference = _engine()
    with ServerThread(check_engine, ServeConfig()) as thread:
        with connect(thread.address) as client:
            _replay(client, trace, COALESCED_BATCH)
    for lo in range(0, len(trace), COALESCED_BATCH):
        reference.apply_batch(trace[lo : lo + COALESCED_BATCH])
    assert check_engine.loads() == reference.loads()
    assert check_engine.updates_applied == reference.updates_applied
    assert not check_engine.unhappy_edges()

    # Timed path: persistent server, fresh solved engine, warmed once.
    engine = _engine()
    naive_engine = _engine()
    with ServerThread(engine, ServeConfig()) as fast_thread, ServerThread(
        naive_engine, ServeConfig()
    ) as naive_thread:
        with connect(fast_thread.address) as fast, connect(
            naive_thread.address
        ) as naive:
            _replay(fast, trace, COALESCED_BATCH)  # warm
            benchmark(lambda: _replay(fast, trace, COALESCED_BATCH))

            # Naive comparator: serving without coalescing — one round
            # trip and one re-stabilization per delta, same wire, same
            # engine kernel.
            _replay(naive, trace, 1)  # warm
            naive_times = []
            for _ in range(NAIVE_ROUNDS):
                start = time.perf_counter()
                _replay(naive, trace, 1)
                naive_times.append(time.perf_counter() - start)
            coalesced_times = []
            for _ in range(NAIVE_ROUNDS):
                start = time.perf_counter()
                _replay(fast, trace, COALESCED_BATCH)
                coalesced_times.append(time.perf_counter() - start)
    naive_median = statistics.median(naive_times)
    coalesced_median = statistics.median(coalesced_times)
    ratio = naive_median / coalesced_median
    record_rows(
        scenario="serve_coalesced_replay",
        updates=len(trace),
        batch_size=COALESCED_BATCH,
        updates_per_second=len(trace) / coalesced_median,
        naive_updates_per_second=len(trace) / naive_median,
        coalesced_median_seconds=coalesced_median,
        naive_median_seconds=naive_median,
        coalesced_vs_naive_ratio=ratio,
    )
    if not SMOKE:
        assert ratio >= REQUIRED_SERVE_RATIO, (
            f"coalesced serving is only {ratio:.1f}x faster than the naive "
            f"one-round-trip-per-delta path (median {coalesced_median:.6f}s "
            f"vs {naive_median:.6f}s)"
        )


@pytest.mark.experiment("serve")
def test_serve_concurrent_coalescing(benchmark, record_rows):
    """Eight closed-loop writers share one gathering window."""
    trace = _trace()
    writers = 8
    per_writer = len(trace) // writers
    request_size = 8  # whole flap pairs, so any request order is valid
    slices = [
        trace[w * per_writer : (w + 1) * per_writer] for w in range(writers)
    ]
    engine = _engine()
    config = ServeConfig(max_batch=256, coalesce_ms=2.0)
    with ServerThread(engine, config) as thread:

        def writer(chunk):
            with connect(thread.address) as client:
                for lo in range(0, len(chunk), request_size):
                    client.update(chunk[lo : lo + request_size])

        def storm():
            threads = [
                threading.Thread(target=writer, args=(s,)) for s in slices
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        storm()  # warm
        benchmark(storm)
        with connect(thread.address) as client:
            stats = client.stats()
    assert not engine.unhappy_edges()
    assert stats["coalescing_ratio"] is not None
    record_rows(
        scenario="serve_concurrent_coalescing",
        writers=writers,
        updates_per_storm=writers * per_writer,
        request_size=request_size,
        update_requests=stats["counters"]["update_requests"],
        batches=stats["counters"]["batches"],
        coalescing_ratio=stats["coalescing_ratio"],
    )
