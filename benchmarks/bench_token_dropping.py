"""Experiments E1 & E3: round complexity of the token dropping algorithms.

E1 (Theorem 4.1): the proposal algorithm solves random layered games in
O(L·Δ²) game rounds.  We sweep the maximum degree Δ at fixed height and
the height L at fixed degree and record game rounds; the EXPERIMENTS.md
rows are the per-parameter means plus the fitted growth exponents and the
worst-case ratio against the explicit bound (which must stay ≤ 1).

E3 (Theorem 4.7): on games with three levels the specialised algorithm
uses O(Δ) game rounds, a factor-Δ improvement over running the generic
algorithm on the same instances.
"""

from __future__ import annotations

import pytest

from repro.core.token_dropping import (
    greedy_token_dropping,
    run_proposal_algorithm,
    run_three_level_algorithm,
)
from repro.workloads import bounded_degree_token_dropping, random_token_dropping

DELTA_SWEEP = [2, 4, 6, 8, 12]
HEIGHT_SWEEP = [2, 4, 6, 8]


@pytest.mark.experiment("E1")
@pytest.mark.parametrize("delta", DELTA_SWEEP)
def test_proposal_rounds_vs_delta(benchmark, record_rows, delta):
    """Game rounds of the proposal algorithm as Δ grows (fixed height 5)."""
    instance = bounded_degree_token_dropping(num_levels=6, degree=delta, seed=delta)

    solution = benchmark(lambda: run_proposal_algorithm(instance))
    solution.validate(instance).raise_if_invalid()
    bound = instance.theoretical_round_bound()
    record_rows(
        experiment="E1",
        delta=instance.max_degree,
        height=instance.height,
        tokens=instance.num_tokens,
        game_rounds=solution.game_rounds,
        communication_rounds=solution.communication_rounds,
        bound=bound,
        bound_ratio=solution.game_rounds / bound,
    )
    assert solution.game_rounds <= bound


@pytest.mark.experiment("E1")
@pytest.mark.parametrize("height", HEIGHT_SWEEP)
def test_proposal_rounds_vs_height(benchmark, record_rows, height):
    """Game rounds of the proposal algorithm as the height L grows (fixed Δ)."""
    instance = random_token_dropping(
        num_levels=height + 1,
        width=6,
        edge_probability=0.5,
        token_fraction=0.6,
        max_degree=6,
        seed=height,
    )
    solution = benchmark(lambda: run_proposal_algorithm(instance))
    solution.validate(instance).raise_if_invalid()
    record_rows(
        experiment="E1",
        delta=instance.max_degree,
        height=instance.height,
        game_rounds=solution.game_rounds,
        bound=instance.theoretical_round_bound(),
    )


@pytest.mark.experiment("E3")
@pytest.mark.parametrize("delta", DELTA_SWEEP)
def test_three_level_vs_generic(benchmark, record_rows, delta):
    """Theorem 4.7's O(Δ) algorithm vs. the generic O(Δ²) one on 3-level games."""
    instance = bounded_degree_token_dropping(num_levels=3, degree=delta, seed=100 + delta)

    fast = benchmark(lambda: run_three_level_algorithm(instance))
    fast.validate(instance).raise_if_invalid()
    generic = run_proposal_algorithm(instance)
    record_rows(
        experiment="E3",
        delta=instance.max_degree,
        tokens=instance.num_tokens,
        three_level_rounds=fast.game_rounds,
        generic_rounds=generic.game_rounds,
        speedup=(generic.game_rounds or 1) / max(fast.game_rounds, 1),
    )
    # The specialised algorithm respects its linear bound.
    assert fast.game_rounds <= 8 * (instance.max_degree + 1) + 8


@pytest.mark.experiment("E1-ablation")
@pytest.mark.parametrize("order", ["first", "random", "highest_level", "lowest_level"])
def test_greedy_order_ablation(benchmark, record_rows, order):
    """Ablation: does the centralized move-selection order change total moves?"""
    instance = random_token_dropping(
        num_levels=7, width=8, edge_probability=0.4, token_fraction=0.6, seed=9
    )
    solution = benchmark(lambda: greedy_token_dropping(instance, order=order, seed=1))
    solution.validate(instance).raise_if_invalid()
    record_rows(
        experiment="E1-ablation",
        order=order,
        total_moves=solution.total_moves(),
        tokens=instance.num_tokens,
    )
