"""Experiments E1 & E3: round complexity of the token dropping algorithms.

E1 (Theorem 4.1): the proposal algorithm solves random layered games in
O(L·Δ²) game rounds.  We sweep the maximum degree Δ at fixed height and
the height L at fixed degree and record game rounds; the EXPERIMENTS.md
rows are the per-parameter means plus the fitted growth exponents and the
worst-case ratio against the explicit bound (which must stay ≤ 1).

E3 (Theorem 4.7): on games with three levels the specialised algorithm
uses O(Δ) game rounds, a factor-Δ improvement over running the generic
algorithm on the same instances.

These benchmarks run *through the experiment engine*: each parametrized
case is one :class:`~repro.engine.TaskSpec` from the same specs (measure
function + grid) that ``scripts/run_experiments.py`` sweeps, so the
benchmark suite times exactly what the report measures.

Head-to-head: compact round kernels vs. the reference simulator
---------------------------------------------------------------
The ``test_*_head_to_head`` cases time the int-array token-dropping
kernels (:mod:`repro.core.token_dropping._kernels`, dispatched through
the :class:`~repro.local_model.runner.Runner`) against the dict reference
scheduler on layered DAGs at n ≈ 10,000 across heights and degrees.  The
solutions are asserted **identical** (placements, used edges, pass
histories, round counts) before any timing is trusted, and the compact
medians land in ``BENCH_token_dropping.json`` together with the measured
reference medians and the speedup.

``REPRO_BENCH_SMOKE=1`` shrinks the head-to-head instances to CI size and
skips the speedup floors (tiny timings are all constant overhead); the
agreement assertions always run.  ``test_proposal_smoke_scale`` times a
fixed ~4,000-node game in *every* mode — its committed median is the
baseline ``scripts/check_bench_regression.py`` re-times in CI.
"""

from __future__ import annotations

import os

import pytest
from _head_to_head import median_time, record_head_to_head

from repro.core.token_dropping import (
    greedy_token_dropping,
    run_proposal_algorithm,
    run_three_level_algorithm,
)
from repro.engine import ExperimentSpec, execute_task, library, parameter_grid
from repro.workloads import random_token_dropping, token_dropping_smoke

DELTA_SWEEP = [2, 4, 6, 8, 12]
HEIGHT_SWEEP = [2, 4, 6, 8]

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

#: Minimum median speedup the compact token-dropping kernels must show at
#: full scale (the ISSUE acceptance floor; measured ratios run higher and
#: are tracked in BENCH_token_dropping.json).
REQUIRED_SPEEDUP = 10.0

if SMOKE:
    PROPOSAL_WIDE = dict(
        num_levels=5, width=40, edge_probability=0.1, token_fraction=0.7, seed=1
    )
    PROPOSAL_TALL = dict(
        num_levels=8, width=25, edge_probability=0.15, token_fraction=0.6, seed=1
    )
    THREE_LEVEL = dict(
        num_levels=3, width=70, edge_probability=0.06, token_fraction=0.6, seed=2
    )
    GREEDY = dict(
        num_levels=5, width=40, edge_probability=0.1, token_fraction=0.5, seed=1
    )
    REFERENCE_ROUNDS = 1
else:
    # Every instance has n ≈ 10,000 nodes; the three shapes sweep the
    # height/degree plane (short+wide, tall+narrow, three-level+dense).
    PROPOSAL_WIDE = dict(
        num_levels=10, width=1000, edge_probability=0.012, token_fraction=0.7, seed=1
    )
    PROPOSAL_TALL = dict(
        num_levels=20, width=500, edge_probability=0.012, token_fraction=0.6, seed=1
    )
    THREE_LEVEL = dict(
        num_levels=3, width=3334, edge_probability=0.008, token_fraction=0.6, seed=2
    )
    GREEDY = dict(
        num_levels=10, width=1000, edge_probability=0.004, token_fraction=0.5, seed=1
    )
    # A genuine median: one GC pause during a single multi-second reference
    # run would otherwise skew both the committed dict_median_seconds and
    # the hard >= 10x speedup assertion.
    REFERENCE_ROUNDS = 3


def _head_to_head(benchmark, record_rows, *, scenario, instance, run):
    """Time both backends on ``instance``, asserting exact agreement first."""
    fast = benchmark(lambda: run(instance, backend="compact"))
    dict_median, ref = median_time(
        lambda: run(instance, backend="dict"), REFERENCE_ROUNDS
    )
    # Exact agreement: same placements, used edges, pass histories, and
    # round counts — solution equality covers all of them.
    assert ref == fast
    report = fast.validate(instance)
    report.raise_if_invalid()
    extra = dict(
        nodes=len(instance.graph),
        edges=instance.graph.num_edges(),
        height=instance.height,
        delta=instance.max_degree,
        tokens=instance.num_tokens,
    )
    if fast.game_rounds is not None:
        extra["game_rounds"] = fast.game_rounds
    else:
        extra["total_moves"] = fast.total_moves()
    record_head_to_head(
        record_rows,
        benchmark,
        scenario=scenario,
        dict_median=dict_median,
        required_speedup=REQUIRED_SPEEDUP,
        smoke=SMOKE,
        extra=extra,
    )


@pytest.mark.experiment("compact-td")
def test_proposal_wide_head_to_head(benchmark, record_rows):
    """Short, wide layered DAG (L=9): proposal kernel vs. reference."""
    _head_to_head(
        benchmark,
        record_rows,
        scenario="proposal_wide_dag",
        instance=random_token_dropping(**PROPOSAL_WIDE),
        run=lambda instance, backend: run_proposal_algorithm(
            instance, backend=backend
        ),
    )


@pytest.mark.experiment("compact-td")
def test_proposal_tall_head_to_head(benchmark, record_rows):
    """Tall, narrow layered DAG (L=19): proposal kernel vs. reference."""
    _head_to_head(
        benchmark,
        record_rows,
        scenario="proposal_tall_dag",
        instance=random_token_dropping(**PROPOSAL_TALL),
        run=lambda instance, backend: run_proposal_algorithm(
            instance, backend=backend
        ),
    )


@pytest.mark.experiment("compact-td")
def test_three_level_head_to_head(benchmark, record_rows):
    """Dense three-level game: height-3 kernel vs. reference."""
    _head_to_head(
        benchmark,
        record_rows,
        scenario="three_level_dense",
        instance=random_token_dropping(**THREE_LEVEL),
        run=lambda instance, backend: run_three_level_algorithm(
            instance, backend=backend
        ),
    )


@pytest.mark.experiment("compact-td")
def test_greedy_head_to_head(benchmark, record_rows):
    """Centralized greedy baseline: int-array kernel vs. reference loop."""
    _head_to_head(
        benchmark,
        record_rows,
        scenario="greedy_baseline",
        instance=random_token_dropping(**GREEDY),
        run=lambda instance, backend: greedy_token_dropping(
            instance, backend=backend
        ),
    )


@pytest.mark.experiment("compact-td")
def test_proposal_smoke_scale(benchmark, record_rows):
    """Fixed ~4,000-node game timed in every mode (the CI regression baseline).

    Unlike the head-to-heads this scenario never changes size, so its
    committed median is comparable across runs;
    ``scripts/check_bench_regression.py`` fails CI when a fresh timing
    exceeds the committed median by more than its allowed factor.
    """
    instance = token_dropping_smoke()
    fast = benchmark(lambda: run_proposal_algorithm(instance))
    ref = run_proposal_algorithm(instance, backend="dict")
    assert ref == fast
    record_rows(
        scenario="proposal_smoke_scale",
        nodes=len(instance.graph),
        edges=instance.graph.num_edges(),
        game_rounds=fast.game_rounds,
    )

E1_DELTA_SPEC = ExperimentSpec(
    name="E1-delta",
    measure=library.proposal_rounds_vs_delta,
    grid=parameter_grid(delta=DELTA_SWEEP),
    seeds=(0,),
)
E1_HEIGHT_SPEC = ExperimentSpec(
    name="E1-height",
    measure=library.proposal_rounds_vs_height,
    grid=parameter_grid(height=HEIGHT_SWEEP),
    seeds=(0,),
)
E3_SPEC = ExperimentSpec(
    name="E3",
    measure=library.three_level_vs_generic,
    grid=parameter_grid(delta=DELTA_SWEEP),
    seeds=(0,),
)
ABLATION_SPEC = ExperimentSpec(
    name="E1-ablation",
    measure=library.greedy_order_ablation,
    grid=parameter_grid(order=["first", "random", "highest_level", "lowest_level"]),
    seeds=(9,),
)


def _task_id(task) -> str:
    return "-".join(f"{k}{v}" for k, v in sorted(task.params.items()))


@pytest.mark.experiment("E1")
@pytest.mark.parametrize("task", E1_DELTA_SPEC.tasks(), ids=_task_id)
def test_proposal_rounds_vs_delta(benchmark, record_rows, task):
    """Game rounds of the proposal algorithm as Δ grows (fixed height 5)."""
    result = benchmark(lambda: execute_task(task))
    record_rows(experiment="E1", **result.values)
    assert result.values["bound_ratio"] <= 1.0


@pytest.mark.experiment("E1")
@pytest.mark.parametrize("task", E1_HEIGHT_SPEC.tasks(), ids=_task_id)
def test_proposal_rounds_vs_height(benchmark, record_rows, task):
    """Game rounds of the proposal algorithm as the height L grows (fixed Δ)."""
    result = benchmark(lambda: execute_task(task))
    record_rows(experiment="E1", **result.values)
    assert result.values["game_rounds"] <= result.values["bound"]


@pytest.mark.experiment("E3")
@pytest.mark.parametrize("task", E3_SPEC.tasks(), ids=_task_id)
def test_three_level_vs_generic(benchmark, record_rows, task):
    """Theorem 4.7's O(Δ) algorithm vs. the generic O(Δ²) one on 3-level games."""
    result = benchmark(lambda: execute_task(task))
    record_rows(experiment="E3", **result.values)
    # The specialised algorithm respects its linear bound.
    assert result.values["three_level_rounds"] <= result.values["linear_bound"]


@pytest.mark.experiment("E1-ablation")
@pytest.mark.parametrize("task", ABLATION_SPEC.tasks(), ids=_task_id)
def test_greedy_order_ablation(benchmark, record_rows, task):
    """Ablation: does the centralized move-selection order change total moves?"""
    result = benchmark(lambda: execute_task(task))
    record_rows(experiment="E1-ablation", **result.values)
    assert result.values["total_moves"] >= 0
