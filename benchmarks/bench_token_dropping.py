"""Experiments E1 & E3: round complexity of the token dropping algorithms.

E1 (Theorem 4.1): the proposal algorithm solves random layered games in
O(L·Δ²) game rounds.  We sweep the maximum degree Δ at fixed height and
the height L at fixed degree and record game rounds; the EXPERIMENTS.md
rows are the per-parameter means plus the fitted growth exponents and the
worst-case ratio against the explicit bound (which must stay ≤ 1).

E3 (Theorem 4.7): on games with three levels the specialised algorithm
uses O(Δ) game rounds, a factor-Δ improvement over running the generic
algorithm on the same instances.

These benchmarks run *through the experiment engine*: each parametrized
case is one :class:`~repro.engine.TaskSpec` from the same specs (measure
function + grid) that ``scripts/run_experiments.py`` sweeps, so the
benchmark suite times exactly what the report measures.
"""

from __future__ import annotations

import pytest

from repro.engine import ExperimentSpec, execute_task, library, parameter_grid

DELTA_SWEEP = [2, 4, 6, 8, 12]
HEIGHT_SWEEP = [2, 4, 6, 8]

E1_DELTA_SPEC = ExperimentSpec(
    name="E1-delta",
    measure=library.proposal_rounds_vs_delta,
    grid=parameter_grid(delta=DELTA_SWEEP),
    seeds=(0,),
)
E1_HEIGHT_SPEC = ExperimentSpec(
    name="E1-height",
    measure=library.proposal_rounds_vs_height,
    grid=parameter_grid(height=HEIGHT_SWEEP),
    seeds=(0,),
)
E3_SPEC = ExperimentSpec(
    name="E3",
    measure=library.three_level_vs_generic,
    grid=parameter_grid(delta=DELTA_SWEEP),
    seeds=(0,),
)
ABLATION_SPEC = ExperimentSpec(
    name="E1-ablation",
    measure=library.greedy_order_ablation,
    grid=parameter_grid(order=["first", "random", "highest_level", "lowest_level"]),
    seeds=(9,),
)


def _task_id(task) -> str:
    return "-".join(f"{k}{v}" for k, v in sorted(task.params.items()))


@pytest.mark.experiment("E1")
@pytest.mark.parametrize("task", E1_DELTA_SPEC.tasks(), ids=_task_id)
def test_proposal_rounds_vs_delta(benchmark, record_rows, task):
    """Game rounds of the proposal algorithm as Δ grows (fixed height 5)."""
    result = benchmark(lambda: execute_task(task))
    record_rows(experiment="E1", **result.values)
    assert result.values["bound_ratio"] <= 1.0


@pytest.mark.experiment("E1")
@pytest.mark.parametrize("task", E1_HEIGHT_SPEC.tasks(), ids=_task_id)
def test_proposal_rounds_vs_height(benchmark, record_rows, task):
    """Game rounds of the proposal algorithm as the height L grows (fixed Δ)."""
    result = benchmark(lambda: execute_task(task))
    record_rows(experiment="E1", **result.values)
    assert result.values["game_rounds"] <= result.values["bound"]


@pytest.mark.experiment("E3")
@pytest.mark.parametrize("task", E3_SPEC.tasks(), ids=_task_id)
def test_three_level_vs_generic(benchmark, record_rows, task):
    """Theorem 4.7's O(Δ) algorithm vs. the generic O(Δ²) one on 3-level games."""
    result = benchmark(lambda: execute_task(task))
    record_rows(experiment="E3", **result.values)
    # The specialised algorithm respects its linear bound.
    assert result.values["three_level_rounds"] <= result.values["linear_bound"]


@pytest.mark.experiment("E1-ablation")
@pytest.mark.parametrize("task", ABLATION_SPEC.tasks(), ids=_task_id)
def test_greedy_order_ablation(benchmark, record_rows, task):
    """Ablation: does the centralized move-selection order change total moves?"""
    result = benchmark(lambda: execute_task(task))
    record_rows(experiment="E1-ablation", **result.values)
    assert result.values["total_moves"] >= 0
