"""Experiments E4 & E9: stable orientation round complexity and baselines.

E4 (Theorem 5.1): the phase-based algorithm orients Δ-regular and random
bounded-degree graphs; we record phases and game rounds and check them
against the explicit O(Δ) / O(Δ⁴) budgets, alongside the repair baseline
standing in for the prior O(Δ⁵)-style approach.

E9 (Section 1.1): the centralized sequential flip algorithm's flip-chain
length on the same instances (the quantity the distributed algorithms
avoid paying sequentially).
"""

from __future__ import annotations

import pytest

from repro.core.orientation import (
    run_stable_orientation,
    sequential_flip_algorithm,
    synchronous_repair_orientation,
    theoretical_phase_bound,
    theoretical_round_bound,
)
from repro.workloads import (
    caterpillar_orientation,
    long_path_orientation,
    regular_orientation,
    sensor_network_orientation,
    two_cliques_bottleneck,
)

DELTA_SWEEP = [3, 4, 6, 8, 10]


def named_instances():
    problems = {
        "sensor": sensor_network_orientation(num_nodes=120, max_degree=8, seed=1),
        "caterpillar": caterpillar_orientation(spine=25, legs=4),
        "path": long_path_orientation(length=150),
        "two_cliques": two_cliques_bottleneck(clique_size=8)[0],
    }
    return problems


@pytest.mark.experiment("E4")
@pytest.mark.parametrize("delta", DELTA_SWEEP)
def test_phase_algorithm_on_regular_graphs(benchmark, record_rows, delta):
    """Rounds of the Theorem 5.1 algorithm on Δ-regular graphs."""
    problem = regular_orientation(degree=delta, num_nodes=12 * delta, seed=delta)

    result = benchmark(lambda: run_stable_orientation(problem))
    assert result.stable
    record_rows(
        experiment="E4",
        delta=problem.max_degree(),
        edges=problem.num_edges(),
        phases=result.phases,
        game_rounds=result.game_rounds,
        phase_bound=theoretical_phase_bound(problem),
        round_bound=theoretical_round_bound(problem),
        bound_ratio=result.game_rounds / theoretical_round_bound(problem),
    )
    assert result.phases <= theoretical_phase_bound(problem)
    assert result.game_rounds <= theoretical_round_bound(problem)


@pytest.mark.experiment("E4")
@pytest.mark.parametrize("delta", DELTA_SWEEP)
def test_repair_baseline_on_regular_graphs(benchmark, record_rows, delta):
    """Rounds of the repair-from-arbitrary-orientation baseline on the same graphs."""
    problem = regular_orientation(degree=delta, num_nodes=12 * delta, seed=delta)

    orientation, stats = benchmark(
        lambda: synchronous_repair_orientation(problem, seed=delta)
    )
    assert orientation.is_stable()
    record_rows(
        experiment="E4",
        delta=problem.max_degree(),
        edges=problem.num_edges(),
        repair_iterations=stats.iterations,
        repair_rounds=stats.communication_rounds,
        repair_flips=stats.total_flips,
        initial_unhappy=stats.initial_unhappy,
    )


@pytest.mark.experiment("E4")
@pytest.mark.parametrize("name", sorted(named_instances()))
def test_phase_algorithm_on_named_workloads(benchmark, record_rows, name):
    """Phases/rounds of the Theorem 5.1 algorithm on structured workloads."""
    problem = named_instances()[name]
    result = benchmark(lambda: run_stable_orientation(problem))
    assert result.stable
    record_rows(
        experiment="E4",
        workload=name,
        delta=problem.max_degree(),
        edges=problem.num_edges(),
        phases=result.phases,
        game_rounds=result.game_rounds,
    )


@pytest.mark.experiment("E9")
@pytest.mark.parametrize("name", sorted(named_instances()))
def test_sequential_flip_chains(benchmark, record_rows, name):
    """Flip counts of the centralized algorithm (the sequential cost baseline)."""
    problem = named_instances()[name]
    orientation, stats = benchmark(
        lambda: sequential_flip_algorithm(problem, policy="random", seed=7)
    )
    assert orientation.is_stable()
    record_rows(
        experiment="E9",
        workload=name,
        edges=problem.num_edges(),
        flips=stats.flips,
        initial_potential=stats.initial_potential,
        final_potential=stats.final_potential,
    )


@pytest.mark.experiment("E4-ablation")
@pytest.mark.parametrize("tie_break", ["min", "max", "random"])
def test_tie_break_ablation(benchmark, record_rows, tie_break):
    """Ablation: tie-breaking inside the embedded token dropping runs."""
    problem = sensor_network_orientation(num_nodes=100, max_degree=8, seed=11)
    result = benchmark(
        lambda: run_stable_orientation(problem, tie_break=tie_break, seed=2)
    )
    assert result.stable
    record_rows(
        experiment="E4-ablation",
        tie_break=tie_break,
        phases=result.phases,
        game_rounds=result.game_rounds,
    )
