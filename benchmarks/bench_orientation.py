"""Experiments E4 & E9: stable orientation round complexity and baselines.

E4 (Theorem 5.1): the phase-based algorithm orients Δ-regular and random
bounded-degree graphs; we record phases and game rounds and check them
against the explicit O(Δ) / O(Δ⁴) budgets, alongside the repair baseline
standing in for the prior O(Δ⁵)-style approach.

E9 (Section 1.1): the centralized sequential flip algorithm's flip-chain
length on the same instances (the quantity the distributed algorithms
avoid paying sequentially).

Compact head-to-heads
---------------------
The full orientation pipeline (phase algorithm, repair baseline,
k-bounded relaxation) is additionally timed on both backends on one E1
layered-DAG instance at 10,000 nodes; the results are asserted identical
before any timing is trusted, and the compact medians (with the measured
dict medians and speedups) land in ``BENCH_orientation.json``.  The
phase-based and k-bounded drivers must stay at least 10x faster than the
dict chain; the repair baseline shares its seeded ``shuffle`` replay with
the reference bit for bit (an irreducible common cost), so its floor is
kept looser even though the recorded speedup is ~10x.

``REPRO_BENCH_SMOKE=1`` shrinks the head-to-head instances to CI size and
skips the speedup assertions; the agreement checks always run.  The fixed
``orientation_smoke`` scenario backs the CI perf-regression gate
(``scripts/check_bench_regression.py``).
"""

from __future__ import annotations

import os

import pytest
from _head_to_head import median_time, phase_medians, record_head_to_head

from repro.core.orientation import (
    run_bounded_stable_orientation,
    run_stable_orientation,
    sequential_flip_algorithm,
    synchronous_repair_orientation,
    theoretical_phase_bound,
    theoretical_round_bound,
)
from repro.workloads import (
    caterpillar_orientation,
    layered_dag_orientation,
    long_path_orientation,
    orientation_smoke,
    regular_orientation,
    sensor_network_orientation,
    two_cliques_bottleneck,
)

DELTA_SWEEP = [3, 4, 6, 8, 10]

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

#: Minimum median speedup of the compact phase/bounded drivers at scale.
REQUIRED_PIPELINE_SPEEDUP = 10.0
#: Looser floor for the repair baseline (see the module docstring).
REQUIRED_REPAIR_SPEEDUP = 6.0

if SMOKE:
    HEAD_TO_HEAD_PARAMS = dict(num_levels=8, width=10, edge_probability=0.3, seed=2)
    REFERENCE_ROUNDS = 1
else:
    # 50 x 200 = 10,000 nodes of the E1 layered-DAG family.
    HEAD_TO_HEAD_PARAMS = dict(num_levels=50, width=200, edge_probability=0.02, seed=2)
    REFERENCE_ROUNDS = 3


def named_instances():
    problems = {
        "sensor": sensor_network_orientation(num_nodes=120, max_degree=8, seed=1),
        "caterpillar": caterpillar_orientation(spine=25, legs=4),
        "path": long_path_orientation(length=150),
        "two_cliques": two_cliques_bottleneck(clique_size=8)[0],
    }
    return problems


@pytest.mark.experiment("E4")
@pytest.mark.parametrize("delta", DELTA_SWEEP)
def test_phase_algorithm_on_regular_graphs(benchmark, record_rows, delta):
    """Rounds of the Theorem 5.1 algorithm on Δ-regular graphs."""
    problem = regular_orientation(degree=delta, num_nodes=12 * delta, seed=delta)

    result = benchmark(lambda: run_stable_orientation(problem))
    assert result.stable
    record_rows(
        experiment="E4",
        delta=problem.max_degree(),
        edges=problem.num_edges(),
        phases=result.phases,
        game_rounds=result.game_rounds,
        phase_bound=theoretical_phase_bound(problem),
        round_bound=theoretical_round_bound(problem),
        bound_ratio=result.game_rounds / theoretical_round_bound(problem),
    )
    assert result.phases <= theoretical_phase_bound(problem)
    assert result.game_rounds <= theoretical_round_bound(problem)


@pytest.mark.experiment("E4")
@pytest.mark.parametrize("delta", DELTA_SWEEP)
def test_repair_baseline_on_regular_graphs(benchmark, record_rows, delta):
    """Rounds of the repair-from-arbitrary-orientation baseline on the same graphs."""
    problem = regular_orientation(degree=delta, num_nodes=12 * delta, seed=delta)

    orientation, stats = benchmark(
        lambda: synchronous_repair_orientation(problem, seed=delta)
    )
    assert orientation.is_stable()
    record_rows(
        experiment="E4",
        delta=problem.max_degree(),
        edges=problem.num_edges(),
        repair_iterations=stats.iterations,
        repair_rounds=stats.communication_rounds,
        repair_flips=stats.total_flips,
        initial_unhappy=stats.initial_unhappy,
    )


@pytest.mark.experiment("E4")
@pytest.mark.parametrize("name", sorted(named_instances()))
def test_phase_algorithm_on_named_workloads(benchmark, record_rows, name):
    """Phases/rounds of the Theorem 5.1 algorithm on structured workloads."""
    problem = named_instances()[name]
    result = benchmark(lambda: run_stable_orientation(problem))
    assert result.stable
    record_rows(
        experiment="E4",
        workload=name,
        delta=problem.max_degree(),
        edges=problem.num_edges(),
        phases=result.phases,
        game_rounds=result.game_rounds,
    )


@pytest.mark.experiment("E9")
@pytest.mark.parametrize("name", sorted(named_instances()))
def test_sequential_flip_chains(benchmark, record_rows, name):
    """Flip counts of the centralized algorithm (the sequential cost baseline)."""
    problem = named_instances()[name]
    orientation, stats = benchmark(
        lambda: sequential_flip_algorithm(problem, policy="random", seed=7)
    )
    assert orientation.is_stable()
    record_rows(
        experiment="E9",
        workload=name,
        edges=problem.num_edges(),
        flips=stats.flips,
        initial_potential=stats.initial_potential,
        final_potential=stats.final_potential,
    )


@pytest.mark.experiment("E4-ablation")
@pytest.mark.parametrize("tie_break", ["min", "max", "random"])
def test_tie_break_ablation(benchmark, record_rows, tie_break):
    """Ablation: tie-breaking inside the embedded token dropping runs."""
    problem = sensor_network_orientation(num_nodes=100, max_degree=8, seed=11)
    result = benchmark(
        lambda: run_stable_orientation(problem, tie_break=tie_break, seed=2)
    )
    assert result.stable
    record_rows(
        experiment="E4-ablation",
        tie_break=tie_break,
        phases=result.phases,
        game_rounds=result.game_rounds,
    )


# ----------------------------------------------------------------------
# Compact-vs-dict head-to-heads (full pipeline, n = 10,000)
# ----------------------------------------------------------------------
@pytest.mark.experiment("compact-orientation")
def test_stable_orientation_head_to_head(benchmark, record_rows):
    """Phase-based stable orientation: compact phase driver vs. dict chain."""
    reference_problem = layered_dag_orientation(**HEAD_TO_HEAD_PARAMS)
    compact_problem = layered_dag_orientation(**HEAD_TO_HEAD_PARAMS, compact=True)

    fast = benchmark(lambda: run_stable_orientation(compact_problem))
    dict_median, ref = median_time(
        lambda: run_stable_orientation(reference_problem, backend="dict"),
        REFERENCE_ROUNDS,
    )

    assert ref.orientation.oriented_edges() == fast.orientation.oriented_edges()
    assert ref.orientation.loads() == fast.orientation.loads()
    assert ref.per_phase == fast.per_phase
    assert (ref.phases, ref.game_rounds, ref.communication_rounds) == (
        fast.phases,
        fast.game_rounds,
        fast.communication_rounds,
    )
    assert fast.stable
    record_head_to_head(
        record_rows,
        benchmark,
        scenario="layered_dag_stable_orientation",
        dict_median=dict_median,
        smoke=SMOKE,
        required_speedup=REQUIRED_PIPELINE_SPEEDUP,
        extra=dict(
            nodes=len(compact_problem.node_ids),
            edges=compact_problem.num_edges,
            phases=fast.phases,
            game_rounds=fast.game_rounds,
            **phase_medians(lambda: run_stable_orientation(compact_problem)),
        ),
    )


@pytest.mark.experiment("compact-orientation")
def test_repair_head_to_head(benchmark, record_rows):
    """Synchronous repair baseline: int-array kernel vs. dict loop."""
    reference_problem = layered_dag_orientation(**HEAD_TO_HEAD_PARAMS)
    compact_problem = layered_dag_orientation(**HEAD_TO_HEAD_PARAMS, compact=True)

    fast, fast_stats = benchmark(
        lambda: synchronous_repair_orientation(compact_problem, seed=2)
    )
    dict_median, (ref, ref_stats) = median_time(
        lambda: synchronous_repair_orientation(
            reference_problem, seed=2, backend="dict"
        ),
        REFERENCE_ROUNDS,
    )

    assert ref.oriented_edges() == fast.oriented_edges()
    assert ref.loads() == fast.loads()
    assert ref_stats == fast_stats
    assert fast.is_stable()
    record_head_to_head(
        record_rows,
        benchmark,
        scenario="layered_dag_repair",
        dict_median=dict_median,
        smoke=SMOKE,
        required_speedup=REQUIRED_REPAIR_SPEEDUP,
        extra=dict(
            nodes=len(compact_problem.node_ids),
            edges=compact_problem.num_edges,
            iterations=fast_stats.iterations,
            flips=fast_stats.total_flips,
            **phase_medians(
                lambda: synchronous_repair_orientation(compact_problem, seed=2)
            ),
        ),
    )


@pytest.mark.experiment("compact-orientation")
def test_bounded_orientation_head_to_head(benchmark, record_rows):
    """k-bounded stable orientation: edge-customer kernel vs. dict chain."""
    reference_problem = layered_dag_orientation(**HEAD_TO_HEAD_PARAMS)
    compact_problem = layered_dag_orientation(**HEAD_TO_HEAD_PARAMS, compact=True)

    fast = benchmark(lambda: run_bounded_stable_orientation(compact_problem, seed=2))
    dict_median, ref = median_time(
        lambda: run_bounded_stable_orientation(
            reference_problem, seed=2, backend="dict"
        ),
        REFERENCE_ROUNDS,
    )

    assert ref.orientation.oriented_edges() == fast.orientation.oriented_edges()
    assert ref.orientation.loads() == fast.orientation.loads()
    assert (ref.phases, ref.game_rounds) == (fast.phases, fast.game_rounds)
    assert ref.assignment_result.per_phase == fast.assignment_result.per_phase
    assert (
        ref.assignment_result.assignment.choices()
        == fast.assignment_result.assignment.choices()
    )
    assert fast.stable
    record_head_to_head(
        record_rows,
        benchmark,
        scenario="layered_dag_bounded_orientation",
        dict_median=dict_median,
        smoke=SMOKE,
        required_speedup=REQUIRED_PIPELINE_SPEEDUP,
        extra=dict(
            nodes=len(compact_problem.node_ids),
            edges=compact_problem.num_edges,
            phases=fast.phases,
            game_rounds=fast.game_rounds,
        ),
    )


@pytest.mark.experiment("compact-orientation")
def test_stable_orientation_smoke_scale(benchmark, record_rows):
    """The fixed mid-size game the CI perf-regression gate re-times.

    Timed on the compact backend only (the gate measures the dict backend
    itself for the same-machine ratio floor); the compact-vs-dict
    agreement is asserted here so a fast-but-wrong driver fails before
    its timing is ever committed.
    """
    compact_problem = orientation_smoke(compact=True)
    reference_problem = orientation_smoke()

    fast = benchmark(lambda: run_stable_orientation(compact_problem))
    ref = run_stable_orientation(reference_problem, backend="dict")
    assert ref.orientation.oriented_edges() == fast.orientation.oriented_edges()
    assert ref.per_phase == fast.per_phase
    assert fast.stable
    record_rows(
        scenario="orientation_smoke",
        nodes=len(compact_problem.node_ids),
        edges=compact_problem.num_edges,
        phases=fast.phases,
        game_rounds=fast.game_rounds,
        **phase_medians(lambda: run_stable_orientation(compact_problem)),
    )
