"""Churn: incremental re-stabilization vs. recompute-from-scratch.

The production story behind :mod:`repro.core.orientation.incremental`:
once an instance is solved, each arrival/departure/failure should cost
work proportional to the affected region, not a fresh solve of the whole
graph.  This suite replays long seeded churn traces
(:func:`repro.workloads.churn_trace`) on the compact engine and compares
the median per-update re-stabilization time against recomputing the
mutated instance from scratch (CSR re-intern + compact repair solve,
sampled along the same trace):

* ``test_churn_full_scale`` — 1,000 mixed updates on the 10,000-node E1
  layered DAG of the orientation head-to-heads; asserts the incremental
  median beats the scratch median by at least
  :data:`REQUIRED_CHURN_RATIO` (10x; in practice it is orders of
  magnitude) and that the final state is a fixed point of the reference
  repair.
* ``test_churn_smoke_scale`` — the fixed ``churn_smoke`` scenario the CI
  perf-regression gate re-times (``scripts/check_bench_regression.py``,
  which also enforces its own incremental-vs-scratch ratio floor so a
  silent full-recompute fallback inside ``apply`` fails CI).  The full
  compact-vs-dict lockstep agreement is asserted here before the timing
  is ever committed.

``REPRO_BENCH_SMOKE=1`` shrinks the full-scale trace to CI size and
skips the ratio assertion; the agreement checks always run.  The
committed ``BENCH_churn.json`` is regenerated with::

    pytest benchmarks/bench_churn.py --benchmark-only
"""

from __future__ import annotations

import os
import statistics
import time

import pytest
from _head_to_head import phase_medians

from repro.core.orientation import (
    DynamicOrientation,
    synchronous_repair_orientation,
)
from repro.graphs.compact import CompactGraph
from repro.workloads import churn_smoke, churn_smoke_trace, churn_trace
from repro.workloads.scenarios import layered_dag_orientation

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

#: Minimum ratio of scratch-recompute median to incremental median.
REQUIRED_CHURN_RATIO = 10.0

if SMOKE:
    FULL_PARAMS = dict(num_levels=8, width=10, edge_probability=0.3, seed=2)
    NUM_UPDATES = 60
    SCRATCH_EVERY = 20
else:
    # 50 x 200 = 10,000 nodes of the E1 layered-DAG family — the same
    # instance the orientation head-to-heads solve once, here mutated
    # 1,000 times.
    FULL_PARAMS = dict(num_levels=50, width=200, edge_probability=0.02, seed=2)
    NUM_UPDATES = 1000
    SCRATCH_EVERY = 50

TRACE_SEED = 31
SOLVE_SEED = 2


def _replay(problem, trace, *, backend, timings=None):
    """Fresh engine, full trace replay; optionally collect per-update times."""
    engine = DynamicOrientation(problem, seed=SOLVE_SEED, backend=backend)
    for delta in trace:
        if timings is None:
            engine.apply(delta)
        else:
            start = time.perf_counter()
            engine.apply(delta)
            timings.append(time.perf_counter() - start)
    return engine


@pytest.mark.experiment("churn")
def test_churn_full_scale(benchmark, record_rows):
    """1,000 mixed updates at n=10,000: incremental vs. scratch medians."""
    problem = layered_dag_orientation(**FULL_PARAMS, compact=True)
    trace = churn_trace(
        problem, num_updates=NUM_UPDATES, seed=TRACE_SEED, mix="mixed"
    )

    # The timed body is one full-trace replay (initial solve included);
    # the quantity the ISSUE cares about — median seconds per update —
    # is measured per apply() and recorded in extra_info.
    per_update = []

    def replay():
        per_update.clear()
        return _replay(problem, trace, backend="compact", timings=per_update)

    engine = benchmark(replay)
    assert engine.is_stable()

    # Scratch comparator, sampled along an untimed replay of the same
    # trace: what a non-incremental deployment pays per update — re-intern
    # the mutated edge set and solve it with the compact repair kernel.
    scratch_times = []
    sampler = DynamicOrientation(problem, seed=SOLVE_SEED, backend="compact")
    for step, delta in enumerate(trace):
        sampler.apply(delta)
        if step % SCRATCH_EVERY == 0:
            snapshot = sampler.orientation().problem
            edges, nodes = snapshot.edges, snapshot.nodes
            start = time.perf_counter()
            mutated = CompactGraph.from_edges(edges, nodes=nodes)
            solved, _ = synchronous_repair_orientation(
                mutated, seed=SOLVE_SEED, backend="compact"
            )
            scratch_times.append(time.perf_counter() - start)
            assert solved.is_stable()

    # The incremental final state is a fixed point of the reference
    # repair on the final mutated instance (0 iterations, identical
    # orientation) — the full per-update bit-for-bit bar is enforced by
    # tests/integration/test_incremental_churn.py and the smoke test
    # below.
    final = engine.orientation()
    fixed_point, fixed_stats = synchronous_repair_orientation(
        final.problem, initial=final, seed=SOLVE_SEED, backend="dict"
    )
    assert fixed_stats.iterations == 0
    assert fixed_point.oriented_edges() == final.oriented_edges()

    incremental_median = statistics.median(per_update)
    scratch_median = statistics.median(scratch_times)
    ratio = scratch_median / incremental_median
    record_rows(
        scenario="layered_dag_churn",
        nodes=len(problem.node_ids),
        edges=problem.num_edges,
        updates=len(trace),
        scratch_samples=len(scratch_times),
        incremental_median_seconds=incremental_median,
        scratch_median_seconds=scratch_median,
        incremental_vs_scratch_ratio=ratio,
    )
    if not SMOKE:
        assert ratio >= REQUIRED_CHURN_RATIO, (
            f"incremental re-stabilization is only {ratio:.1f}x faster than "
            f"recompute-from-scratch (median {incremental_median:.6f}s vs "
            f"{scratch_median:.6f}s)"
        )


@pytest.mark.experiment("churn")
def test_churn_smoke_scale(benchmark, record_rows):
    """The fixed mid-size churn replay the CI perf-regression gate re-times.

    Timed on the compact engine; the dict engine replays the same trace
    in lockstep first (untimed) and every update's result must agree, so
    a fast-but-wrong incremental path fails before its timing is ever
    committed.
    """
    compact_problem = churn_smoke(compact=True)
    reference_problem = churn_smoke()
    trace = churn_smoke_trace(compact_problem)
    assert trace == churn_smoke_trace(reference_problem)

    fast = DynamicOrientation(
        compact_problem, seed=SOLVE_SEED, backend="compact"
    )
    reference = DynamicOrientation(
        reference_problem, seed=SOLVE_SEED, backend="dict"
    )
    for step, delta in enumerate(trace):
        assert fast.apply(delta) == reference.apply(delta), (step, delta)
    assert fast.orientation().oriented_edges() == (
        reference.orientation().oriented_edges()
    )
    assert fast.loads() == reference.loads()

    engine = benchmark(lambda: _replay(compact_problem, trace, backend="compact"))
    assert engine.is_stable()
    assert engine.orientation().oriented_edges() == (
        reference.orientation().oriented_edges()
    )
    record_rows(
        scenario="churn_smoke",
        nodes=len(compact_problem.node_ids),
        edges=compact_problem.num_edges,
        updates=len(trace),
        **phase_medians(
            lambda: _replay(compact_problem, trace, backend="compact")
        ),
    )
