"""Shared configuration for the benchmark suite.

Every benchmark measures wall-clock time through pytest-benchmark *and*
records the paper-relevant quantity -- round counts, phase counts,
approximation ratios -- in ``benchmark.extra_info`` so that the JSON
output (``--benchmark-json``) contains the rows EXPERIMENTS.md reports.

Run with:

    pytest benchmarks/ --benchmark-only

Add ``--benchmark-json=bench.json`` to capture the extra info.

Perf trajectory files
---------------------
At the end of a timed session, every ``bench_<name>.py`` module that ran
gets a machine-readable ``BENCH_<name>.json`` at the repo root mapping
each benchmark (scenario) to its median wall time in seconds, plus any
``extra_info`` rows.  These files are committed, so the per-PR perf
trajectory of every suite is visible in history; regenerate them with the
command above.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from datetime import datetime, timezone
from pathlib import Path

import pytest

#: Repo root — conftest lives in <root>/benchmarks/.
REPO_ROOT = Path(__file__).resolve().parent.parent


def bench_provenance() -> dict:
    """Where/when the committed medians were measured.

    Timings are only comparable on the machine that produced them, so
    every ``BENCH_*.json`` records enough to tell two environments apart.
    The regression gate reads only the ``scenarios`` key and ignores
    this block.
    """
    try:
        git_sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        git_sha = None
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_sha": git_sha,
    }


def pytest_configure(config):  # noqa: D103 - pytest hook
    config.addinivalue_line(
        "markers", "experiment(id): link a benchmark to a DESIGN.md experiment id"
    )


def pytest_sessionfinish(session, exitstatus):
    """Write one ``BENCH_<name>.json`` per benchmarked ``bench_<name>.py``."""
    if os.environ.get("REPRO_BENCH_SMOKE", "") == "1":
        # Smoke runs shrink instances to CI size; merging their medians
        # (keyed by the same test names) would silently overwrite the
        # committed full-scale trajectory.
        return
    benchmark_session = getattr(session.config, "_benchmarksession", None)
    if benchmark_session is None:
        return
    by_module = {}
    for bench in benchmark_session.benchmarks:
        if bench.has_error:
            continue
        stats = getattr(bench, "stats", None)
        if stats is None:  # collected but never timed (--benchmark-disable)
            continue
        module_path = bench.fullname.split("::", 1)[0]
        module = Path(module_path).stem
        if not module.startswith("bench_"):
            continue
        row = {
            "median_seconds": stats.median,
            "rounds": stats.rounds,
        }
        if bench.extra_info:
            row["extra_info"] = dict(bench.extra_info)
        by_module.setdefault(module[len("bench_") :], {})[bench.name] = row
    for name, scenarios in by_module.items():
        target = REPO_ROOT / f"BENCH_{name}.json"
        # Merge into any existing file so a filtered run (-k, single test)
        # refreshes only the scenarios it actually timed instead of
        # silently dropping the rest of the tracked suite.
        merged = {}
        if target.exists():
            try:
                merged = json.loads(target.read_text()).get("scenarios", {})
            except (ValueError, OSError):
                merged = {}
        merged.update(scenarios)
        payload = {
            "suite": f"bench_{name}.py",
            "unit": "seconds (median wall time per scenario)",
            "provenance": bench_provenance(),
            "scenarios": dict(sorted(merged.items())),
        }
        target.write_text(json.dumps(payload, indent=2, default=str) + "\n")


def pytest_sessionstart(session):
    """Give every timed scenario a ``peak_mb`` row in ``extra_info``.

    Wraps ``BenchmarkFixture.__call__`` (the plugin type-checks the
    funcarg, so a wrapper *object* is not an option): the benchmarked
    callable first runs once under :func:`_head_to_head.peak_memory`, so
    the committed ``BENCH_*.json`` files report the algorithm's
    Python-heap peak alongside the median — while the tracing overhead
    never contaminates the timed rounds that follow.  The regression
    gate keeps reading only ``median_seconds``; the memory column is
    trajectory data.  Smoke runs skip the extra pass — their shrunken
    instances say nothing about full-scale footprints.
    """
    try:
        from pytest_benchmark.fixture import BenchmarkFixture
    except ImportError:  # pragma: no cover - plugin absent, nothing to wrap
        return
    if getattr(BenchmarkFixture.__call__, "_records_peak_mb", False):
        return
    import sys

    sys.path.insert(0, str(Path(__file__).parent))
    from _head_to_head import peak_memory

    timed_call = BenchmarkFixture.__call__

    def call_with_peak(self, function_to_benchmark, *args, **kwargs):
        if os.environ.get("REPRO_BENCH_SMOKE", "") != "1":
            peak_mb, _ = peak_memory(
                lambda: function_to_benchmark(*args, **kwargs)
            )
            self.extra_info["peak_mb"] = round(peak_mb, 3)
        return timed_call(self, function_to_benchmark, *args, **kwargs)

    call_with_peak._records_peak_mb = True
    BenchmarkFixture.__call__ = call_with_peak


@pytest.fixture
def record_rows(benchmark):
    """Helper to stash arbitrary result rows in the benchmark's extra info."""

    def _record(**info):
        for key, value in info.items():
            benchmark.extra_info[key] = value

    return _record
