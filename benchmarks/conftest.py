"""Shared configuration for the benchmark suite.

Every benchmark measures wall-clock time through pytest-benchmark *and*
records the paper-relevant quantity -- round counts, phase counts,
approximation ratios -- in ``benchmark.extra_info`` so that the JSON
output (``--benchmark-json``) contains the rows EXPERIMENTS.md reports.

Run with:

    pytest benchmarks/ --benchmark-only

Add ``--benchmark-json=bench.json`` to capture the extra info.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):  # noqa: D103 - pytest hook
    config.addinivalue_line(
        "markers", "experiment(id): link a benchmark to a DESIGN.md experiment id"
    )


@pytest.fixture
def record_rows(benchmark):
    """Helper to stash arbitrary result rows in the benchmark's extra info."""

    def _record(**info):
        for key, value in info.items():
            benchmark.extra_info[key] = value

    return _record
