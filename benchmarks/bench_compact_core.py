"""Head-to-head: compact fast-path kernels vs. dict reference paths.

Every dispatched entry point (sequential flips, best-response dynamics,
greedy semi-matching) is timed on both backends on the same instance —
the E1 layered-DAG family and the datacenter-assignment family at
``n >= 10,000`` nodes — and the results are asserted *identical* before
any timing is trusted.  The compact medians land in
``BENCH_compact_core.json`` (via the suite-wide conftest hook) together
with the measured reference-path medians and the speedup, so the
compact-core perf trajectory is tracked across PRs.

Scale control
-------------
``REPRO_BENCH_SMOKE=1`` shrinks every instance to CI-smoke size and skips
the speedup assertions (timings on tiny instances are dominated by
constant overheads); the agreement checks always run, so a smoke run
still fails if the compact path disagrees with the reference path on any
sampled instance:

    REPRO_BENCH_SMOKE=1 pytest benchmarks/bench_compact_core.py --benchmark-disable
"""

from __future__ import annotations

import os

import pytest
from _head_to_head import compact_median, median_time, record_head_to_head

from repro.core.assignment import best_response_dynamics, greedy_assignment
from repro.core.orientation import sequential_flip_algorithm
from repro.workloads import datacenter_assignment, layered_dag_orientation

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

#: Minimum median speedup the compact kernels must show at full scale.
REQUIRED_SPEEDUP = 2.0

if SMOKE:
    LAYERED_PARAMS = dict(num_levels=8, width=8, edge_probability=0.3, seed=0)
    DATACENTER_PARAMS = dict(
        num_jobs=150, num_servers=30, replicas=3, popularity_skew=1.2, seed=0
    )
    REFERENCE_ROUNDS = 1
else:
    # 100 x 100 = 10,000 nodes; 8,500 + 1,500 = 10,000 nodes.
    LAYERED_PARAMS = dict(num_levels=100, width=100, edge_probability=0.003, seed=0)
    DATACENTER_PARAMS = dict(
        num_jobs=8500, num_servers=1500, replicas=3, popularity_skew=1.2, seed=0
    )
    REFERENCE_ROUNDS = 3


@pytest.mark.experiment("compact-core")
def test_sequential_flips_on_layered_dag(benchmark, record_rows):
    """E1 layered-DAG orientation: int-array flip kernel vs. dict loop."""
    reference_problem = layered_dag_orientation(**LAYERED_PARAMS)
    compact_problem = layered_dag_orientation(**LAYERED_PARAMS, compact=True)

    fast, fast_stats = benchmark(lambda: sequential_flip_algorithm(compact_problem))
    dict_median, (ref, ref_stats) = median_time(
        lambda: sequential_flip_algorithm(reference_problem, backend="dict"),
        REFERENCE_ROUNDS,
    )

    assert ref.oriented_edges() == fast.oriented_edges()
    assert ref.loads() == fast.loads()
    assert ref_stats == fast_stats
    assert fast.is_stable()
    record_head_to_head(
        record_rows,
        benchmark,
        scenario="layered_dag_sequential_flips",
        dict_median=dict_median,
        required_speedup=REQUIRED_SPEEDUP,
        smoke=SMOKE,
        extra=dict(
            nodes=len(compact_problem.node_ids),
            edges=compact_problem.num_edges,
            flips=fast_stats.flips,
        ),
    )


@pytest.mark.experiment("compact-core")
def test_best_response_on_datacenter(benchmark, record_rows):
    """Datacenter assignment: int-array best-response kernel vs. dict loop."""
    reference_graph = datacenter_assignment(**DATACENTER_PARAMS)
    compact_graph = datacenter_assignment(**DATACENTER_PARAMS, compact=True)

    fast, fast_stats = benchmark(lambda: best_response_dynamics(compact_graph))
    dict_median, (ref, ref_stats) = median_time(
        lambda: best_response_dynamics(reference_graph, backend="dict"),
        REFERENCE_ROUNDS,
    )

    assert ref.choices() == fast.choices()
    assert ref.loads() == fast.loads()
    assert ref_stats == fast_stats
    assert fast.is_stable()
    record_head_to_head(
        record_rows,
        benchmark,
        scenario="datacenter_best_response",
        dict_median=dict_median,
        required_speedup=REQUIRED_SPEEDUP,
        smoke=SMOKE,
        extra=dict(
            jobs=compact_graph.num_customers,
            servers=compact_graph.num_servers,
            moves=fast_stats.moves,
        ),
    )


@pytest.mark.experiment("compact-core")
def test_greedy_semi_matching_on_datacenter(benchmark, record_rows):
    """Greedy semi-matching: single-pass kernel on a pre-interned instance.

    Greedy is a single pass, so the fast path only pays off when the
    instance is already compact (which is exactly how `auto` dispatches
    it); no >= 2x floor is asserted here — the row tracks the ratio.
    """
    reference_graph = datacenter_assignment(**DATACENTER_PARAMS)
    compact_graph = datacenter_assignment(**DATACENTER_PARAMS, compact=True)

    fast = benchmark(lambda: greedy_assignment(compact_graph))
    dict_median, ref = median_time(
        lambda: greedy_assignment(reference_graph, backend="dict"),
        REFERENCE_ROUNDS,
    )

    assert ref.choices() == fast.choices()
    assert ref.semi_matching_cost() == fast.semi_matching_cost()
    measured = compact_median(benchmark)
    record_rows(
        scenario="datacenter_greedy_semi_matching",
        dict_median_seconds=dict_median,
        cost=fast.semi_matching_cost(),
        **({"speedup": dict_median / measured} if measured else {}),
    )


@pytest.mark.parametrize("seed", range(6 if SMOKE else 3))
def test_backends_agree_on_sampled_instances(seed):
    """Per-seed agreement sampling (runs in smoke mode / plain pytest)."""
    problem = layered_dag_orientation(
        num_levels=5, width=6, edge_probability=0.4, seed=seed
    )
    for policy in ("first", "random", "max_badness"):
        ref, ref_stats = sequential_flip_algorithm(
            problem, policy=policy, seed=seed, backend="dict"
        )
        fast, fast_stats = sequential_flip_algorithm(
            problem, policy=policy, seed=seed, backend="compact"
        )
        assert ref.oriented_edges() == fast.oriented_edges(), (seed, policy)
        assert ref_stats == fast_stats, (seed, policy)

    graph = datacenter_assignment(num_jobs=60, num_servers=12, replicas=3, seed=seed)
    for policy in ("first", "random"):
        ref, ref_stats = best_response_dynamics(
            graph, policy=policy, seed=seed, backend="dict"
        )
        fast, fast_stats = best_response_dynamics(
            graph, policy=policy, seed=seed, backend="compact"
        )
        assert ref.choices() == fast.choices(), (seed, policy)
        assert ref_stats == fast_stats, (seed, policy)
    for order in ("sorted", "random"):
        ref = greedy_assignment(graph, order=order, seed=seed, backend="dict")
        fast = greedy_assignment(graph, order=order, seed=seed, backend="compact")
        assert ref.choices() == fast.choices(), (seed, order)
