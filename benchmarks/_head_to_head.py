"""Shared helpers for the compact-vs-dict head-to-head benchmarks.

``benchmarks/`` is not a package; pytest puts this directory on
``sys.path`` when collecting the ``bench_*.py`` modules, so they import
these helpers as a plain top-level module (``from _head_to_head import
...``).  Keeping one copy here means the timing and recording logic —
including the speedup floors and the smoke-mode skip — cannot drift
between suites.
"""

from __future__ import annotations

import statistics
import time
import tracemalloc

from repro import obs


def peak_memory(fn):
    """Peak Python-heap allocation (in MB) during one run of ``fn``.

    Measured with :mod:`tracemalloc` in a *separate, untimed* run —
    tracing every allocation slows the interpreter severalfold, so this
    must never wrap a timed round.  The number is the peak of allocations
    made while ``fn`` runs (the instance being benchmarked usually
    already exists, so this captures the algorithm's working set, not the
    input's footprint).  Returns ``(peak_mb, result)``.
    """
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not already_tracing:
            tracemalloc.stop()
    return peak / (1024 * 1024), result


def median_time(fn, rounds: int):
    """Median wall time of ``fn`` over ``rounds`` runs, plus the last result."""
    times = []
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times), result


def phase_medians(fn, rounds: int = 3, prefix: str = "phase_median_"):
    """Per-span-name median cumulative seconds across ``rounds`` traced runs.

    Runs ``fn`` under a captured :mod:`repro.obs` sink, sums span
    durations per name within each run, and returns the across-run median
    per name, keyed ``{prefix}{span_name}`` so the rows drop straight
    into ``benchmark.extra_info`` — which is how the committed
    ``BENCH_*.json`` files gain a per-phase breakdown and the regression
    gate's end-to-end medians become attributable to a specific phase.

    The traced runs are separate from pytest-benchmark's timed rounds:
    tracing adds overhead, so it must never run inside the measured
    calibration loop.
    """
    per_name_runs = {}
    for _ in range(rounds):
        with obs.capture() as mem:
            fn()
        per_run = {}
        for event in mem.events:
            if event["type"] == "span":
                per_run[event["name"]] = (
                    per_run.get(event["name"], 0.0) + event["dur"]
                )
        for name, total in per_run.items():
            per_name_runs.setdefault(name, []).append(total)
    return {
        f"{prefix}{name}": statistics.median(totals)
        for name, totals in sorted(per_name_runs.items())
    }


def compact_median(benchmark):
    """Median seconds pytest-benchmark measured, or None when disabled."""
    stats = getattr(benchmark, "stats", None)
    return stats.stats.median if stats is not None else None


def record_head_to_head(
    record_rows,
    benchmark,
    *,
    scenario: str,
    dict_median: float,
    required_speedup: float,
    smoke: bool,
    extra: dict,
):
    """Record one head-to-head row and enforce its speedup floor.

    The row always carries the dict median; the speedup and its floor
    assertion only apply when pytest-benchmark actually timed the compact
    path and the suite is not running in smoke mode (tiny instances are
    dominated by constant overheads).
    """
    measured = compact_median(benchmark)
    row = dict(scenario=scenario, dict_median_seconds=dict_median, **extra)
    if measured:
        row["speedup"] = dict_median / measured
    record_rows(**row)
    if measured and not smoke:
        assert row["speedup"] >= required_speedup, (
            f"{scenario}: compact path is only {row['speedup']:.2f}x faster "
            f"(median {measured:.4f}s vs dict {dict_median:.4f}s)"
        )
