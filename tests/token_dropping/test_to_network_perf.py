"""Regression guards for the single-pass ``to_network`` conversion."""

from __future__ import annotations

import time

from repro.core.token_dropping.game import (
    LOCAL_CHILDREN,
    LOCAL_HAS_TOKEN,
    LOCAL_PARENTS,
    TokenDroppingInstance,
)
from repro.graphs.layered import LayeredGraph

#: Generous wall-time budget for converting the 62,500-edge instance
#: below; the single-pass conversion runs in a fraction of this even on
#: slow CI machines, while a per-node edge-list rescan blows through it.
CONVERSION_BUDGET_SECONDS = 5.0


def dense_two_level_instance(width: int = 250) -> TokenDroppingInstance:
    """A complete two-level game: ``width²`` edges without any rng cost."""
    levels = {}
    for index in range(width):
        levels[(0, index)] = 0
        levels[(1, index)] = 1
    edges = [
        ((0, low), (1, high)) for low in range(width) for high in range(width)
    ]
    graph = LayeredGraph(levels=levels, edges=edges)
    tokens = frozenset((1, index) for index in range(0, width, 2))
    return TokenDroppingInstance(graph, tokens)


def test_50k_edge_conversion_stays_single_pass():
    instance = dense_two_level_instance()
    assert instance.graph.num_edges() == 62_500
    start = time.perf_counter()
    network = instance.to_network()
    elapsed = time.perf_counter() - start
    assert elapsed < CONVERSION_BUDGET_SECONDS, (
        f"to_network took {elapsed:.2f}s on a 62,500-edge instance; the "
        "conversion must stay a single O(n+m) adjacency pass"
    )
    assert len(network) == 500
    assert network.num_edges() == 62_500


def test_converted_local_inputs_match_graph_structure():
    instance = dense_two_level_instance(width=7)
    network = instance.to_network()
    graph = instance.graph
    for node in graph.nodes:
        local = network.local_input(node)
        assert local[LOCAL_HAS_TOKEN] == (node in instance.tokens)
        assert local[LOCAL_PARENTS] == graph.parents(node)
        assert local[LOCAL_CHILDREN] == graph.children(node)
        assert network.neighbors(node) == graph.parents(node) | graph.children(node)


def test_to_network_is_memoized_per_include_levels():
    instance = dense_two_level_instance(width=5)
    plain = instance.to_network()
    assert instance.to_network() is plain
    levelled = instance.to_network(include_levels=True)
    assert levelled is not plain
    assert instance.to_network(include_levels=True) is levelled
