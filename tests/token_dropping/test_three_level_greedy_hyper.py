"""Tests for the three-level algorithm, the greedy baseline, and the hypergraph game."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.token_dropping import (
    GREEDY_ORDERS,
    HypergraphTokenDroppingInstance,
    InvalidHypergraphInstanceError,
    TokenDroppingInstance,
    UnsupportedHeightError,
    compare_destinations,
    exhaustive_is_stuck,
    greedy_token_dropping,
    random_token_placement,
    run_hypergraph_proposal,
    run_proposal_algorithm,
    run_three_level_algorithm,
    theoretical_three_level_bound,
)
from repro.graphs.generators import random_layered_graph
from repro.graphs.hypergraph import Hypergraph
from repro.graphs.layered import LayeredGraph


def three_level_instance(width: int, p: float, token_fraction: float, seed: int):
    rng = random.Random(seed)
    graph = random_layered_graph(3, width, p, seed=rng)
    tokens = random_token_placement(
        graph, token_fraction, rng, exclude_bottom_level=True
    )
    return TokenDroppingInstance(graph, tokens)


class TestThreeLevelAlgorithm:
    def test_rejects_tall_instances(self):
        graph = LayeredGraph(
            levels={"a": 0, "b": 1, "c": 2, "d": 3},
            edges=[("a", "b"), ("b", "c"), ("c", "d")],
        )
        with pytest.raises(UnsupportedHeightError):
            run_three_level_algorithm(TokenDroppingInstance(graph, tokens={"d"}))

    def test_single_chain(self):
        graph = LayeredGraph(
            levels={"a": 0, "b": 1, "c": 2}, edges=[("a", "b"), ("b", "c")]
        )
        instance = TokenDroppingInstance(graph, tokens={"c"})
        solution = run_three_level_algorithm(instance)
        solution.validate(instance).raise_if_invalid()
        assert solution.traversal_of("c").destination == "a"

    @pytest.mark.parametrize("seed", range(6))
    def test_random_three_level_instances(self, seed):
        instance = three_level_instance(width=5, p=0.5, token_fraction=0.6, seed=seed)
        solution = run_three_level_algorithm(instance)
        solution.validate(instance).raise_if_invalid()
        assert exhaustive_is_stuck(instance, solution)

    @pytest.mark.parametrize("seed", range(4))
    def test_linear_round_bound(self, seed):
        instance = three_level_instance(width=6, p=0.6, token_fraction=0.6, seed=seed)
        solution = run_three_level_algorithm(instance)
        assert solution.game_rounds <= theoretical_three_level_bound(instance)

    def test_agrees_with_generic_proposal_on_validity(self):
        instance = three_level_instance(width=5, p=0.5, token_fraction=0.5, seed=42)
        fast = run_three_level_algorithm(instance)
        generic = run_proposal_algorithm(instance)
        fast.validate(instance).raise_if_invalid()
        generic.validate(instance).raise_if_invalid()
        assert set(fast.traversals) == set(generic.traversals)

    @given(
        width=st.integers(min_value=1, max_value=5),
        p=st.floats(min_value=0.2, max_value=0.9),
        seed=st.integers(min_value=0, max_value=5_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_valid_outputs(self, width, p, seed):
        instance = three_level_instance(width, p, 0.5, seed)
        solution = run_three_level_algorithm(instance)
        report = solution.validate(instance)
        assert report.valid, report.violations


class TestGreedyBaseline:
    @pytest.mark.parametrize("order", GREEDY_ORDERS)
    def test_all_orders_produce_valid_solutions(self, order):
        rng = random.Random(3)
        graph = random_layered_graph(5, 4, 0.5, seed=rng)
        tokens = random_token_placement(graph, 0.5, rng)
        instance = TokenDroppingInstance(graph, tokens)
        solution = greedy_token_dropping(instance, order=order, seed=1)
        solution.validate(instance).raise_if_invalid()
        assert exhaustive_is_stuck(instance, solution)

    def test_unknown_order_rejected(self):
        graph = LayeredGraph(levels={"a": 0}, edges=[])
        instance = TokenDroppingInstance(graph, tokens=set())
        with pytest.raises(ValueError):
            greedy_token_dropping(instance, order="bogus")

    def test_compare_destinations_summary(self):
        graph = LayeredGraph(
            levels={"a": 0, "b": 1, "c": 2}, edges=[("a", "b"), ("b", "c")]
        )
        instance = TokenDroppingInstance(graph, tokens={"c"})
        s1 = greedy_token_dropping(instance)
        s2 = greedy_token_dropping(instance, order="lowest_level")
        summary = compare_destinations(s1, s2)
        assert summary["tokens"] == 1
        assert summary["same_destination"] + summary["different_destination"] == 1


class TestHypergraphGame:
    def small_instance(self) -> HypergraphTokenDroppingInstance:
        hg = Hypergraph(
            vertices=["a", "b", "c", "d"],
            hyperedges={"e1": ["a", "b"], "e2": ["b", "c"], "e3": ["b", "d"]},
        )
        levels = {"a": 0, "b": 1, "c": 2, "d": 2}
        heads = {"e1": "b", "e2": "c", "e3": "d"}
        return HypergraphTokenDroppingInstance(hg, levels, heads, tokens={"c", "d"})

    def test_instance_validation(self):
        hg = Hypergraph(vertices=["a", "b"], hyperedges={"e": ["a", "b"]})
        with pytest.raises(InvalidHypergraphInstanceError):
            # head level constraint violated (levels equal)
            HypergraphTokenDroppingInstance(
                hg, levels={"a": 1, "b": 1}, heads={"e": "b"}, tokens=set()
            )
        with pytest.raises(InvalidHypergraphInstanceError):
            # head not an endpoint
            HypergraphTokenDroppingInstance(
                hg, levels={"a": 0, "b": 1}, heads={"e": "zzz"}, tokens=set()
            )
        with pytest.raises(InvalidHypergraphInstanceError):
            # missing head
            HypergraphTokenDroppingInstance(
                hg, levels={"a": 0, "b": 1}, heads={}, tokens=set()
            )
        with pytest.raises(InvalidHypergraphInstanceError):
            # token on unknown vertex
            HypergraphTokenDroppingInstance(
                hg, levels={"a": 0, "b": 1}, heads={"e": "b"}, tokens={"zzz"}
            )

    def test_rank_one_hyperedge_rejected(self):
        hg = Hypergraph(vertices=["a"], hyperedges={"e": ["a"]})
        with pytest.raises(InvalidHypergraphInstanceError):
            HypergraphTokenDroppingInstance(
                hg, levels={"a": 0}, heads={"e": "a"}, tokens=set()
            )

    def test_small_instance_solved(self):
        instance = self.small_instance()
        solution = run_hypergraph_proposal(instance)
        assert solution.validate(instance) == []
        # Token from c or d reaches b, then one continues to a.
        assert "a" in solution.destinations

    def test_parent_child_queries(self):
        instance = self.small_instance()
        assert instance.children_in_edge("b", "e1") == ("a",)
        assert instance.children_in_edge("a", "e1") == ()
        assert instance.parent_in_edge("a", "e1") == "b"
        assert instance.parent_in_edge("b", "e1") is None
        assert instance.height == 2
        assert instance.max_rank == 2
        assert instance.max_vertex_degree == 3

    def test_round_bound(self):
        instance = self.small_instance()
        solution = run_hypergraph_proposal(instance)
        assert solution.game_rounds <= instance.theoretical_round_bound()

    @pytest.mark.parametrize("seed", range(5))
    def test_agrees_with_rank2_engine(self, seed):
        """The hypergraph engine on a rank-2 view also gets a valid, stuck solution."""
        rng = random.Random(seed)
        graph = random_layered_graph(4, 4, 0.5, seed=rng)
        tokens = random_token_placement(graph, 0.5, rng)
        instance = TokenDroppingInstance(graph, tokens)
        hyper = HypergraphTokenDroppingInstance.from_rank2_instance(instance)
        solution = run_hypergraph_proposal(hyper)
        assert solution.validate(hyper) == []
        # Same number of tokens survive with unique destinations.
        assert len(solution.destinations) == len(instance.tokens)

    def test_rank3_hyperedges(self):
        hg = Hypergraph(
            vertices=["a", "b", "c", "x"],
            hyperedges={"e1": ["x", "a", "b"], "e2": ["x", "c"]},
        )
        levels = {"a": 0, "b": 0, "x": 1, "c": 0}
        heads = {"e1": "x", "e2": "x"}
        instance = HypergraphTokenDroppingInstance(hg, levels, heads, tokens={"x"})
        solution = run_hypergraph_proposal(instance)
        assert solution.validate(instance) == []
        # The token moved down to one of x's children.
        destination = solution.traversals["x"].destination
        assert destination in {"a", "b", "c"}

    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=20, deadline=None)
    def test_property_hypergraph_rules_hold(self, seed):
        rng = random.Random(seed)
        graph = random_layered_graph(4, 3, 0.6, seed=rng)
        tokens = random_token_placement(graph, 0.5, rng)
        instance = TokenDroppingInstance(graph, tokens)
        hyper = HypergraphTokenDroppingInstance.from_rank2_instance(instance)
        solution = run_hypergraph_proposal(hyper)
        assert solution.validate(hyper) == []
