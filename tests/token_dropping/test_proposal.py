"""Tests for the distributed proposal algorithm (Theorem 4.1).

The key assertions: the algorithm terminates, its output satisfies the
three rules of the game on every instance we throw at it, and the number
of game rounds respects the O(L·Δ²) bound with an explicit constant.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.token_dropping import (
    ROUNDS_PER_GAME_ROUND,
    TokenDroppingInstance,
    exhaustive_is_stuck,
    figure2_instance,
    greedy_token_dropping,
    random_token_placement,
    run_proposal_algorithm,
)
from repro.graphs.generators import random_layered_graph
from repro.graphs.layered import LayeredGraph


def make_random_instance(
    num_levels: int, width: int, p: float, token_fraction: float, seed: int
) -> TokenDroppingInstance:
    rng = random.Random(seed)
    graph = random_layered_graph(num_levels, width, p, seed=rng)
    tokens = random_token_placement(graph, token_fraction, rng)
    return TokenDroppingInstance(graph, tokens)


class TestSmallInstances:
    def test_single_token_falls_to_bottom_of_chain(self):
        graph = LayeredGraph(
            levels={"a": 0, "b": 1, "c": 2}, edges=[("a", "b"), ("b", "c")]
        )
        instance = TokenDroppingInstance(graph, tokens={"c"})
        solution = run_proposal_algorithm(instance)
        solution.validate(instance).raise_if_invalid()
        assert solution.traversal_of("c").destination == "a"
        assert solution.total_moves() == 2

    def test_no_tokens_trivial(self):
        graph = LayeredGraph(levels={"a": 0, "b": 1}, edges=[("a", "b")])
        instance = TokenDroppingInstance(graph, tokens=set())
        solution = run_proposal_algorithm(instance)
        assert solution.traversals == {}
        solution.validate(instance).raise_if_invalid()

    def test_blocked_token_stays(self):
        # Both nodes hold a token: nothing can move.
        graph = LayeredGraph(levels={"a": 0, "b": 1}, edges=[("a", "b")])
        instance = TokenDroppingInstance(graph, tokens={"a", "b"})
        solution = run_proposal_algorithm(instance)
        solution.validate(instance).raise_if_invalid()
        assert solution.traversal_of("b").destination == "b"
        assert solution.traversal_of("a").destination == "a"

    def test_two_tokens_one_slot(self):
        # Two level-1 tokens compete for a single level-0 node.
        graph = LayeredGraph(
            levels={"x": 0, "p": 1, "q": 1},
            edges=[("x", "p"), ("x", "q")],
        )
        instance = TokenDroppingInstance(graph, tokens={"p", "q"})
        solution = run_proposal_algorithm(instance)
        solution.validate(instance).raise_if_invalid()
        destinations = solution.destinations
        assert "x" in destinations
        assert len(destinations) == 2  # the other token stays put

    def test_isolated_nodes(self):
        graph = LayeredGraph(levels={"a": 0, "b": 3}, edges=[])
        instance = TokenDroppingInstance(graph, tokens={"b"})
        solution = run_proposal_algorithm(instance)
        solution.validate(instance).raise_if_invalid()
        assert solution.traversal_of("b").destination == "b"

    def test_figure2_instance_solved(self):
        instance = figure2_instance()
        solution = run_proposal_algorithm(instance)
        solution.validate(instance).raise_if_invalid()
        assert exhaustive_is_stuck(instance, solution)
        assert solution.game_rounds is not None
        assert solution.communication_rounds == pytest.approx(
            solution.game_rounds * ROUNDS_PER_GAME_ROUND, abs=ROUNDS_PER_GAME_ROUND
        )


class TestRandomInstances:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_instances_valid_and_stuck(self, seed):
        instance = make_random_instance(
            num_levels=5, width=4, p=0.5, token_fraction=0.5, seed=seed
        )
        solution = run_proposal_algorithm(instance)
        solution.validate(instance).raise_if_invalid()
        assert exhaustive_is_stuck(instance, solution)

    @pytest.mark.parametrize("seed", range(4))
    def test_round_bound_respected(self, seed):
        instance = make_random_instance(
            num_levels=6, width=5, p=0.6, token_fraction=0.6, seed=seed
        )
        solution = run_proposal_algorithm(instance)
        bound = instance.theoretical_round_bound()
        assert solution.game_rounds <= bound

    @pytest.mark.parametrize("tie_break", ["min", "max", "random"])
    def test_tie_break_policies_all_valid(self, tie_break):
        instance = make_random_instance(
            num_levels=4, width=4, p=0.6, token_fraction=0.5, seed=11
        )
        solution = run_proposal_algorithm(instance, tie_break=tie_break, seed=3)
        solution.validate(instance).raise_if_invalid()

    def test_unknown_tie_break_rejected(self):
        instance = make_random_instance(3, 3, 0.5, 0.5, seed=0)
        with pytest.raises(ValueError):
            run_proposal_algorithm(instance, tie_break="bogus")

    def test_deterministic_given_seed_and_policy(self):
        instance = make_random_instance(4, 4, 0.5, 0.5, seed=5)
        s1 = run_proposal_algorithm(instance, tie_break="random", seed=9)
        s2 = run_proposal_algorithm(instance, tie_break="random", seed=9)
        assert {t: s.path for t, s in s1.traversals.items()} == {
            t: s.path for t, s in s2.traversals.items()
        }

    def test_matches_greedy_on_token_and_move_conservation(self):
        instance = make_random_instance(5, 4, 0.5, 0.5, seed=13)
        distributed = run_proposal_algorithm(instance)
        central = greedy_token_dropping(instance)
        # Both are valid, both keep every token, and both end stuck.
        distributed.validate(instance).raise_if_invalid()
        central.validate(instance).raise_if_invalid()
        assert set(distributed.traversals) == set(central.traversals)


class TestTailsFromExecution:
    def test_extended_traversals_start_with_traversal(self):
        instance = make_random_instance(5, 4, 0.6, 0.5, seed=21)
        solution = run_proposal_algorithm(instance)
        for token, traversal in solution.traversals.items():
            extended = solution.extended_traversal(token)
            assert extended[: len(traversal.path)] == traversal.path

    def test_tail_descends_levels(self):
        instance = make_random_instance(6, 4, 0.6, 0.6, seed=22)
        solution = run_proposal_algorithm(instance)
        graph = instance.graph
        for token in solution.traversals:
            tail = solution.tail_of(token)
            levels = [graph.level(node) for node in tail]
            assert levels == sorted(levels, reverse=True)


class TestPropertyBased:
    @given(
        num_levels=st.integers(min_value=1, max_value=5),
        width=st.integers(min_value=1, max_value=4),
        p=st.floats(min_value=0.1, max_value=0.9),
        token_fraction=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_output_rules_always_hold(self, num_levels, width, p, token_fraction, seed):
        instance = make_random_instance(num_levels, width, p, token_fraction, seed)
        solution = run_proposal_algorithm(instance)
        report = solution.validate(instance)
        assert report.valid, report.violations
        assert exhaustive_is_stuck(instance, solution)

    @given(
        num_levels=st.integers(min_value=2, max_value=5),
        width=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_tokens_never_lost_or_duplicated(self, num_levels, width, seed):
        instance = make_random_instance(num_levels, width, 0.5, 0.5, seed)
        solution = run_proposal_algorithm(instance)
        assert set(solution.traversals) == set(instance.tokens)
        assert len(solution.destinations) == len(instance.tokens)
