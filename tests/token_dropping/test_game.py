"""Unit tests for token dropping instances (game.py) and traversals."""

from __future__ import annotations

import random

import pytest

from repro.core.token_dropping import (
    InvalidInstanceError,
    InvalidSolutionError,
    TokenDroppingInstance,
    Traversal,
    figure2_instance,
    random_token_placement,
    solution_from_paths,
)
from repro.core.token_dropping.game import (
    LOCAL_CHILDREN,
    LOCAL_HAS_TOKEN,
    LOCAL_LEVEL,
    LOCAL_PARENTS,
)
from repro.graphs.layered import LayeredGraph


@pytest.fixture
def chain_graph() -> LayeredGraph:
    """A simple chain a(0) <- b(1) <- c(2)."""
    return LayeredGraph(
        levels={"a": 0, "b": 1, "c": 2}, edges=[("a", "b"), ("b", "c")]
    )


class TestInstance:
    def test_basic_properties(self, chain_graph: LayeredGraph):
        instance = TokenDroppingInstance(chain_graph, tokens={"c"})
        assert instance.height == 2
        assert instance.max_degree == 2
        assert instance.num_tokens == 1
        assert instance.has_token("c")
        assert not instance.has_token("a")

    def test_tokens_on_unknown_node_rejected(self, chain_graph: LayeredGraph):
        with pytest.raises(InvalidInstanceError):
            TokenDroppingInstance(chain_graph, tokens={"zzz"})

    def test_theoretical_round_bound_positive(self, chain_graph: LayeredGraph):
        instance = TokenDroppingInstance(chain_graph, tokens=set())
        assert instance.theoretical_round_bound() > 0

    def test_to_network_local_inputs(self, chain_graph: LayeredGraph):
        instance = TokenDroppingInstance(chain_graph, tokens={"b"})
        network = instance.to_network()
        local_b = network.local_input("b")
        assert local_b[LOCAL_HAS_TOKEN] is True
        assert local_b[LOCAL_PARENTS] == frozenset({"c"})
        assert local_b[LOCAL_CHILDREN] == frozenset({"a"})
        assert LOCAL_LEVEL not in local_b

    def test_to_network_with_levels(self, chain_graph: LayeredGraph):
        instance = TokenDroppingInstance(chain_graph, tokens=set())
        network = instance.to_network(include_levels=True)
        assert network.local_input("c")[LOCAL_LEVEL] == 2

    def test_describe_mentions_parameters(self, chain_graph: LayeredGraph):
        instance = TokenDroppingInstance(chain_graph, tokens={"c"})
        text = instance.describe()
        assert "L=2" in text and "tokens" in text

    def test_figure2_instance_valid(self):
        instance = figure2_instance()
        assert instance.height == 4
        assert instance.num_tokens == 8
        # Every token sits on a node of the graph by construction.
        assert all(node in instance.graph.levels for node in instance.tokens)

    def test_random_token_placement(self, chain_graph: LayeredGraph):
        rng = random.Random(1)
        tokens = random_token_placement(chain_graph, 1.0, rng)
        assert tokens == frozenset({"a", "b", "c"})
        none = random_token_placement(chain_graph, 0.0, rng)
        assert none == frozenset()

    def test_random_token_placement_excluding_bottom(self, chain_graph: LayeredGraph):
        rng = random.Random(1)
        tokens = random_token_placement(
            chain_graph, 1.0, rng, exclude_bottom_level=True
        )
        assert "a" not in tokens

    def test_random_token_placement_fraction_validated(self, chain_graph: LayeredGraph):
        with pytest.raises(ValueError):
            random_token_placement(chain_graph, 1.5, random.Random(0))


class TestTraversal:
    def test_traversal_properties(self):
        t = Traversal("c", ["c", "b", "a"])
        assert t.source == "c"
        assert t.destination == "a"
        assert t.length == 2
        assert t.edges_used() == (("b", "c"), ("a", "b"))
        assert list(t) == ["c", "b", "a"]

    def test_stationary_traversal(self):
        t = Traversal("c", ["c"])
        assert t.length == 0
        assert t.edges_used() == ()

    def test_empty_path_rejected(self):
        with pytest.raises(InvalidSolutionError):
            Traversal("c", [])

    def test_mismatched_start_rejected(self):
        with pytest.raises(InvalidSolutionError):
            Traversal("c", ["b", "a"])


class TestSolutionValidation:
    def test_valid_solution(self, chain_graph: LayeredGraph):
        instance = TokenDroppingInstance(chain_graph, tokens={"c"})
        solution = solution_from_paths({"c": ["c", "b", "a"]})
        report = solution.validate(instance)
        assert report.valid, report.violations

    def test_non_maximal_solution_detected(self, chain_graph: LayeredGraph):
        instance = TokenDroppingInstance(chain_graph, tokens={"c"})
        # Token stops at b although a is unoccupied and edge (a, b) unused.
        solution = solution_from_paths({"c": ["c", "b"]})
        report = solution.validate(instance)
        assert not report.valid
        assert any("maximal" in v for v in report.violations)
        with pytest.raises(InvalidSolutionError):
            report.raise_if_invalid()

    def test_missing_traversal_detected(self, chain_graph: LayeredGraph):
        instance = TokenDroppingInstance(chain_graph, tokens={"c", "b"})
        solution = solution_from_paths({"c": ["c"]})
        report = solution.validate(instance)
        assert not report.valid
        assert any("missing" in v for v in report.violations)

    def test_duplicate_destination_detected(self):
        graph = LayeredGraph(
            levels={"x": 0, "p": 1, "q": 1},
            edges=[("x", "p"), ("x", "q")],
        )
        instance = TokenDroppingInstance(graph, tokens={"p", "q"})
        solution = solution_from_paths({"p": ["p", "x"], "q": ["q", "x"]})
        report = solution.validate(instance)
        assert not report.valid
        assert any("share destination" in v for v in report.violations)

    def test_edge_reuse_detected(self):
        graph = LayeredGraph(
            levels={"a": 0, "b": 1, "c": 2, "d": 2},
            edges=[("a", "b"), ("b", "c"), ("b", "d")],
        )
        instance = TokenDroppingInstance(graph, tokens={"c", "d"})
        # Both tokens claim to use edge (a, b).
        solution = solution_from_paths({"c": ["c", "b", "a"], "d": ["d", "b", "a"]})
        report = solution.validate(instance)
        assert not report.valid
        # Edge reuse *and* duplicate destination are both reported.
        assert any("used by" in v for v in report.violations)

    def test_non_edge_step_detected(self, chain_graph: LayeredGraph):
        instance = TokenDroppingInstance(chain_graph, tokens={"c"})
        solution = solution_from_paths({"c": ["c", "a"]})
        report = solution.validate(instance)
        assert not report.valid
        assert any("non-edge" in v for v in report.violations)

    def test_consumed_edges_and_moves(self, chain_graph: LayeredGraph):
        instance = TokenDroppingInstance(chain_graph, tokens={"c"})
        solution = solution_from_paths({"c": ["c", "b", "a"]})
        assert solution.consumed_edges() == frozenset({("b", "c"), ("a", "b")})
        assert solution.total_moves() == 2
        assert solution.destinations == frozenset({"a"})
        assert solution.traversal_of("c").destination == "a"
        del instance


class TestTails:
    def test_tail_without_history_is_destination_only(self):
        solution = solution_from_paths({"c": ["c", "b"]})
        assert solution.tail_of("c") == ("b",)
        assert solution.extended_traversal("c") == ("c", "b")

    def test_tail_follows_last_pass(self):
        # Token c travels c -> b; node b later passed another token to a,
        # so the tail of c's traversal extends through b's last pass.
        from repro.core.token_dropping import TokenDroppingSolution

        traversals = {
            "c": Traversal("c", ["c", "b"]),
            "d": Traversal("d", ["d", "b2", "a"]),
        }
        pass_history = {
            "c": ((("c"), "b"),),
            "b": (),
            "b2": ((("d"), "a"),),
        }
        solution = TokenDroppingSolution(
            traversals=traversals, pass_history=pass_history
        )
        # Destination of d is a; a never passed anything: tail is just (a,).
        assert solution.tail_of("d") == ("a",)
        # Destination of c is b with empty history: tail (b,).
        assert solution.tail_of("c") == ("b",)
