"""Tests for the command-line interface (`python -m repro ...`)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["orient", "--algorithm", "bogus"])


class TestTokenDroppingCommand:
    def test_figure2_proposal(self, capsys):
        assert main(["token-dropping", "--figure2", "--tails"]) == 0
        out = capsys.readouterr().out
        assert "game rounds" in out
        assert "token" in out

    def test_random_instance_greedy(self, capsys):
        assert (
            main(
                [
                    "token-dropping",
                    "--levels",
                    "4",
                    "--width",
                    "4",
                    "--algorithm",
                    "greedy",
                    "--seed",
                    "3",
                ]
            )
            == 0
        )
        assert "sequential moves" in capsys.readouterr().out

    def test_three_level_algorithm(self, capsys):
        assert (
            main(
                [
                    "token-dropping",
                    "--levels",
                    "3",
                    "--width",
                    "5",
                    "--algorithm",
                    "three-level",
                ]
            )
            == 0
        )
        assert "game rounds" in capsys.readouterr().out

    def test_dot_output(self, tmp_path, capsys):
        dot_file = tmp_path / "game.dot"
        assert main(["token-dropping", "--figure2", "--dot", str(dot_file)]) == 0
        assert dot_file.exists()
        assert dot_file.read_text().startswith("digraph")
        capsys.readouterr()


class TestOrientCommand:
    @pytest.mark.parametrize("algorithm", ["phases", "sequential", "repair", "bounded"])
    def test_all_algorithms(self, algorithm, capsys):
        assert (
            main(
                [
                    "orient",
                    "--workload",
                    "sensor",
                    "--nodes",
                    "30",
                    "--degree",
                    "5",
                    "--algorithm",
                    algorithm,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "stable" in out

    def test_regular_workload_with_dot(self, tmp_path, capsys):
        dot_file = tmp_path / "orientation.dot"
        assert (
            main(
                [
                    "orient",
                    "--workload",
                    "regular",
                    "--nodes",
                    "20",
                    "--degree",
                    "4",
                    "--dot",
                    str(dot_file),
                ]
            )
            == 0
        )
        assert dot_file.exists()
        capsys.readouterr()


class TestAssignCommand:
    @pytest.mark.parametrize("algorithm", ["stable", "bounded", "greedy"])
    def test_all_algorithms(self, algorithm, capsys):
        assert (
            main(
                [
                    "assign",
                    "--jobs",
                    "40",
                    "--servers",
                    "10",
                    "--replicas",
                    "2",
                    "--algorithm",
                    algorithm,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "semi-matching cost" in out

    def test_compare_optimal(self, capsys):
        assert (
            main(
                [
                    "assign",
                    "--jobs",
                    "30",
                    "--servers",
                    "8",
                    "--replicas",
                    "2",
                    "--compare-optimal",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ratio" in out
