"""Unit tests for :mod:`repro.local_model.network`."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.local_model import Network, TopologyError


class TestConstruction:
    def test_empty_network(self):
        net = Network()
        assert len(net) == 0
        assert net.max_degree() == 0
        assert net.num_edges() == 0

    def test_nodes_only(self):
        net = Network(nodes=[1, 2, 3])
        assert len(net) == 3
        assert net.num_edges() == 0
        assert net.degree(1) == 0

    def test_edges_imply_nodes(self):
        net = Network(edges=[(1, 2), (2, 3)])
        assert set(net.node_ids) == {1, 2, 3}
        assert net.num_edges() == 2

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Network(edges=[(1, 1)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(TopologyError):
            Network(edges=[(1, 2), (2, 1)])

    def test_bad_edge_arity_rejected(self):
        with pytest.raises(TopologyError):
            Network(edges=[(1, 2, 3)])

    def test_local_inputs_for_unknown_node_rejected(self):
        with pytest.raises(TopologyError):
            Network(nodes=[1], local_inputs={2: "x"})

    def test_from_networkx(self):
        g = nx.cycle_graph(5)
        net = Network.from_networkx(g)
        assert len(net) == 5
        assert net.num_edges() == 5
        assert net.max_degree() == 2

    def test_from_edges(self):
        net = Network.from_edges([("a", "b"), ("b", "c")])
        assert set(net.node_ids) == {"a", "b", "c"}


class TestQueries:
    @pytest.fixture
    def triangle(self) -> Network:
        return Network(edges=[(1, 2), (2, 3), (1, 3)], local_inputs={1: "token"})

    def test_neighbors(self, triangle: Network):
        assert triangle.neighbors(1) == frozenset({2, 3})

    def test_degree_and_max_degree(self, triangle: Network):
        assert triangle.degree(2) == 2
        assert triangle.max_degree() == 2

    def test_has_edge(self, triangle: Network):
        assert triangle.has_edge(1, 2)
        assert triangle.has_edge(2, 1)
        assert not triangle.has_edge(1, 4)

    def test_edges_are_deterministic(self, triangle: Network):
        assert triangle.edges() == triangle.edges()
        assert len(triangle.edges()) == 3

    def test_local_input_defaults_to_none(self, triangle: Network):
        assert triangle.local_input(1) == "token"
        assert triangle.local_input(2) is None

    def test_contains_and_iter(self, triangle: Network):
        assert 1 in triangle
        assert 7 not in triangle
        assert sorted(triangle) == [1, 2, 3]

    def test_with_local_inputs_replaces(self, triangle: Network):
        updated = triangle.with_local_inputs({2: "x"})
        assert updated.local_input(2) == "x"
        assert updated.local_input(1) is None
        # original untouched
        assert triangle.local_input(1) == "token"

    def test_with_local_inputs_unknown_node(self, triangle: Network):
        with pytest.raises(TopologyError):
            triangle.with_local_inputs({99: "x"})

    def test_mixed_type_node_ids_sortable(self):
        net = Network(nodes=[1, "a", (2, 3)])
        assert len(net.node_ids) == 3
