"""Unit tests for message envelopes, outboxes, and inboxes."""

from __future__ import annotations

import pytest

from repro.local_model.messages import Envelope, Inbox, Outbox


class TestOutbox:
    def test_put_and_items(self):
        outbox = Outbox()
        outbox.put(2, "hello")
        outbox.put(3, "world")
        assert dict(outbox.items()) == {2: "hello", 3: "world"}
        assert len(outbox) == 2

    def test_put_overwrites_same_receiver(self):
        outbox = Outbox()
        outbox.put(2, "first")
        outbox.put(2, "second")
        assert dict(outbox.items()) == {2: "second"}
        assert len(outbox) == 1

    def test_clear(self):
        outbox = Outbox()
        outbox.put(1, "x")
        outbox.clear()
        assert len(outbox) == 0

    def test_contains(self):
        outbox = Outbox()
        outbox.put(1, "x")
        assert 1 in outbox
        assert 2 not in outbox


class TestInbox:
    def test_mapping_interface(self):
        inbox = Inbox({1: "a", 2: "b"})
        assert inbox[1] == "a"
        assert len(inbox) == 2
        assert set(inbox) == {1, 2}
        assert dict(inbox) == {1: "a", 2: "b"}

    def test_senders(self):
        inbox = Inbox({5: "x"})
        assert inbox.senders() == (5,)

    def test_empty_singleton(self):
        assert len(Inbox.empty()) == 0
        assert Inbox.empty() is Inbox.empty()

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            Inbox({})[1]


class TestEnvelope:
    def test_fields(self):
        env = Envelope(sender=1, receiver=2, round_sent=3, payload="p")
        assert env.sender == 1
        assert env.receiver == 2
        assert env.round_sent == 3
        assert env.payload == "p"

    def test_frozen(self):
        env = Envelope(sender=1, receiver=2, round_sent=0, payload=None)
        with pytest.raises(AttributeError):
            env.sender = 9  # type: ignore[misc]
