"""CompactNetwork interning, the CompactEngine, and Runner dispatch."""

from __future__ import annotations

import pytest

from repro.dispatch import BACKEND_ENV_VAR, BackendError
from repro.local_model import (
    AlgorithmFactory,
    CompactEngine,
    CompactNetwork,
    ExecutionMetrics,
    Network,
    Runner,
    RoundLimitExceeded,
)
from repro.local_model.node import StatelessRelay
from repro.local_model.trace import ExecutionTrace


def sample_network() -> Network:
    return Network(
        nodes=["c", 10, (1, 2)],
        edges=[("c", 10), (10, (1, 2)), ("c", "a")],
        local_inputs={"c": {"tag": "C"}, 10: {"tag": "ten"}},
    )


class TestCompactNetwork:
    def test_interning_is_repr_sorted(self):
        compact = CompactNetwork.from_network(sample_network())
        # repr order: "'a'" < "'c'" < "(1, 2)" < "10"
        assert compact.node_ids == ("a", "c", (1, 2), 10)
        assert [compact.index_of[n] for n in compact.node_ids] == [0, 1, 2, 3]

    def test_csr_neighbors_ascending_and_degrees(self):
        compact = CompactNetwork.from_network(sample_network())
        for i in range(compact.num_nodes):
            neighbors = list(compact.neighbors(i))
            assert neighbors == sorted(neighbors)
            assert compact.degree(i) == len(neighbors)
        assert compact.num_edges == 3
        # 'c' (dense 1) is adjacent to 'a' (dense 0) and 10 (dense 3).
        assert list(compact.neighbors(1)) == [0, 3]

    def test_local_inputs_aligned_with_dense_ids(self):
        compact = CompactNetwork.from_network(sample_network())
        assert compact.local_inputs[compact.index_of["c"]] == {"tag": "C"}
        assert compact.local_inputs[compact.index_of[10]] == {"tag": "ten"}
        assert compact.local_inputs[compact.index_of["a"]] is None

    def test_of_memoizes_on_the_network(self):
        network = sample_network()
        first = CompactNetwork.of(network)
        assert CompactNetwork.of(network) is first
        # A derived network with different local inputs gets a fresh form.
        other = network.with_local_inputs({"c": "changed"})
        assert CompactNetwork.of(other) is not first


class TestCompactEngine:
    def test_round_budget_enforced_at_exact_boundary(self):
        engine = CompactEngine(num_nodes=3, max_rounds=2)
        assert engine.step() == 1
        assert engine.step() == 2
        with pytest.raises(RoundLimitExceeded) as excinfo:
            engine.step()
        assert excinfo.value.limit == 2
        assert excinfo.value.active_nodes == 3

    def test_halt_and_metrics(self):
        engine = CompactEngine(num_nodes=2, max_rounds=10)
        engine.step()
        engine.halt(1, 1)
        engine.halt(1, 1)  # double-halt is idempotent
        engine.messages += 5
        engine.halt(0, 1)
        metrics = engine.metrics(("x", "y"))
        assert metrics == ExecutionMetrics(
            rounds=1,
            messages_sent=5,
            node_halt_rounds={"x": 1, "y": 1},
            halted_nodes=2,
            total_nodes=2,
        )


def _echo_kernel(compact, max_rounds):
    """A toy whole-execution kernel: every node outputs its dense id."""
    engine = CompactEngine(compact.num_nodes, max_rounds)
    for i in range(compact.num_nodes):
        engine.halt(i, 0)
    return list(range(compact.num_nodes)), engine.metrics(compact.node_ids)


def kernel_factory():
    return AlgorithmFactory(
        lambda node_id: StatelessRelay(), compact_kernel=_echo_kernel
    )


class TestRunnerDispatch:
    def test_auto_uses_registered_kernel(self):
        network = sample_network()
        result = Runner(network, kernel_factory()).run()
        compact = CompactNetwork.of(network)
        assert result.outputs == {
            node: i for i, node in enumerate(compact.node_ids)
        }
        assert result.metrics.terminated

    def test_backend_dict_forces_reference_scheduler(self):
        network = sample_network()
        result = Runner(network, kernel_factory(), backend="dict").run()
        # StatelessRelay echoes its local input, unlike the echo kernel.
        assert result.outputs["c"] == {"tag": "C"}
        assert result.outputs["a"] is None

    def test_env_var_dict_forces_reference_scheduler(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "dict")
        result = Runner(sample_network(), kernel_factory()).run()
        assert result.outputs["c"] == {"tag": "C"}

    def test_env_var_compact_is_harmless_without_kernel(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "compact")
        result = Runner(sample_network(), StatelessRelay).run()
        assert result.outputs["c"] == {"tag": "C"}

    def test_explicit_compact_without_kernel_raises(self):
        with pytest.raises(BackendError):
            Runner(sample_network(), StatelessRelay, backend="compact").run()

    def test_trace_falls_back_to_reference(self):
        trace = ExecutionTrace()
        result = Runner(sample_network(), kernel_factory(), trace=trace).run()
        assert result.outputs["c"] == {"tag": "C"}

    def test_explicit_compact_with_trace_raises(self):
        with pytest.raises(BackendError):
            Runner(
                sample_network(),
                kernel_factory(),
                trace=ExecutionTrace(),
                backend="compact",
            ).run()
