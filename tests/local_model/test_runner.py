"""Unit and behaviour tests for the scheduler/runner pair.

These tests pin down the execution semantics all algorithm tests rely on:
message delivery one round later, exact round counting, halting behaviour,
and the round-limit safety valve.
"""

from __future__ import annotations

import pytest

from repro.local_model import (
    AlgorithmFactory,
    ExecutionTrace,
    Inbox,
    Network,
    NodeAlgorithm,
    NodeContext,
    RoundLimitExceeded,
    Runner,
    StatelessRelay,
    UnknownNeighborError,
    run_algorithm,
)


class EchoNeighbors(NodeAlgorithm):
    """Each node learns its neighbours' local inputs in exactly one round."""

    def on_start(self, ctx: NodeContext) -> None:
        ctx.broadcast(ctx.local_input)

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        ctx.halt(dict(inbox))


class CountDown(NodeAlgorithm):
    """Halts after a number of rounds equal to its local input."""

    def on_start(self, ctx: NodeContext) -> None:
        self.remaining = int(ctx.local_input)
        if self.remaining == 0:
            ctx.halt(0)

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        self.remaining -= 1
        if self.remaining <= 0:
            ctx.halt(ctx.round_number)


class NeverHalts(NodeAlgorithm):
    def on_start(self, ctx: NodeContext) -> None:
        pass

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        pass


class SendsToStranger(NodeAlgorithm):
    def on_start(self, ctx: NodeContext) -> None:
        ctx.send("nonexistent", "hello")

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:  # pragma: no cover
        ctx.halt()


class FloodMax(NodeAlgorithm):
    """Classic flooding of the maximum identifier; terminates after diameter rounds.

    Serves as an integration smoke test: the result depends on correct
    multi-round message propagation.
    """

    def on_start(self, ctx: NodeContext) -> None:
        self.best = ctx.node_id
        self.quiet_rounds = 0
        ctx.broadcast(self.best)

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        improved = False
        for value in inbox.values():
            if value > self.best:
                self.best = value
                improved = True
        if improved:
            self.quiet_rounds = 0
            ctx.broadcast(self.best)
        else:
            self.quiet_rounds += 1
            # In a path of n nodes, n rounds of silence certainly suffice.
            if self.quiet_rounds >= len(ctx.neighbors) + 10:
                ctx.halt(self.best)


class TestBasicExecution:
    def test_stateless_relay_halts_in_round_zero(self):
        net = Network(nodes=[1, 2], edges=[(1, 2)], local_inputs={1: "a", 2: "b"})
        result = Runner(net, StatelessRelay).run()
        assert result.metrics.rounds == 0
        assert result.outputs == {1: "a", 2: "b"}
        assert result.metrics.terminated

    def test_echo_neighbors_single_round(self):
        net = Network(
            edges=[(1, 2), (2, 3)], local_inputs={1: "x", 2: "y", 3: "z"}
        )
        result = Runner(net, EchoNeighbors).run()
        assert result.metrics.rounds == 1
        assert result.outputs[1] == {2: "y"}
        assert result.outputs[2] == {1: "x", 3: "z"}
        assert result.outputs[3] == {2: "y"}

    def test_countdown_rounds_exact(self):
        net = Network(nodes=[1, 2, 3], local_inputs={1: 0, 2: 3, 3: 5})
        result = Runner(net, CountDown).run()
        assert result.metrics.rounds == 5
        assert result.metrics.node_halt_rounds[1] == 0
        assert result.metrics.node_halt_rounds[2] == 3
        assert result.metrics.node_halt_rounds[3] == 5

    def test_message_count(self):
        net = Network(edges=[(1, 2), (2, 3)], local_inputs={1: "x", 2: "y", 3: "z"})
        result = Runner(net, EchoNeighbors).run()
        # Each node broadcasts once: degree sum = 2 * edges = 4 messages.
        assert result.metrics.messages_sent == 4

    def test_run_algorithm_convenience(self):
        net = Network(nodes=[1], local_inputs={1: "only"})
        result = run_algorithm(net, StatelessRelay)
        assert result.outputs[1] == "only"


class TestSafetyAndErrors:
    def test_round_limit_exceeded(self):
        net = Network(nodes=[1, 2], edges=[(1, 2)])
        with pytest.raises(RoundLimitExceeded):
            Runner(net, NeverHalts, max_rounds=10).run()

    def test_negative_max_rounds_rejected(self):
        net = Network(nodes=[1])
        with pytest.raises(ValueError):
            Runner(net, StatelessRelay, max_rounds=-1)

    def test_send_to_non_neighbor_raises(self):
        net = Network(nodes=[1, 2], edges=[(1, 2)])
        with pytest.raises(UnknownNeighborError):
            Runner(net, SendsToStranger).run()

    def test_messages_to_halted_nodes_are_dropped(self):
        class TalkToHalted(NodeAlgorithm):
            def on_start(self, ctx: NodeContext) -> None:
                if ctx.local_input == "early":
                    ctx.halt("early-out")

            def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
                ctx.broadcast("ping")
                if ctx.round_number >= 2:
                    ctx.halt("late-out")

        net = Network(edges=[(1, 2)], local_inputs={1: "early", 2: "late"})
        result = Runner(net, TalkToHalted).run()
        assert result.outputs[1] == "early-out"
        assert result.outputs[2] == "late-out"
        # No message was ever delivered to node 1 after halting.
        assert result.metrics.messages_sent == 0


class TestFactoryAndParameterisation:
    def test_callable_factory_receives_node_id(self):
        created = []

        class Recorder(StatelessRelay):
            def __init__(self, node_id):
                created.append(node_id)

        net = Network(nodes=["a", "b"])
        Runner(net, lambda node_id: Recorder(node_id)).run()
        assert sorted(created) == ["a", "b"]

    def test_algorithm_factory_wrapper(self):
        factory = AlgorithmFactory(StatelessRelay)
        assert isinstance(factory.create(1), StatelessRelay)

    def test_invalid_factory_rejected(self):
        with pytest.raises(TypeError):
            AlgorithmFactory(42)


class TestTrace:
    def test_trace_records_messages_and_halts(self):
        net = Network(edges=[(1, 2)], local_inputs={1: "x", 2: "y"})
        trace = ExecutionTrace()
        Runner(net, EchoNeighbors, trace=trace).run()
        assert len(trace.messages()) == 2
        assert len(trace.halts()) == 2
        assert trace.rounds_recorded() >= 1
        text = trace.format()
        assert "round" in text

    def test_trace_message_recording_can_be_disabled(self):
        net = Network(edges=[(1, 2)], local_inputs={1: "x", 2: "y"})
        trace = ExecutionTrace(record_messages=False)
        Runner(net, EchoNeighbors, trace=trace).run()
        assert trace.messages() == []
        assert len(trace.halts()) == 2


@pytest.mark.integration
class TestFloodMaxIntegration:
    def test_flood_max_on_path(self):
        n = 12
        edges = [(i, i + 1) for i in range(n - 1)]
        net = Network(edges=edges)
        result = Runner(net, FloodMax, max_rounds=500).run()
        assert all(output == n - 1 for output in result.outputs.values())

    def test_flood_max_on_cycle(self):
        n = 9
        edges = [(i, (i + 1) % n) for i in range(n)]
        net = Network(edges=edges)
        result = Runner(net, FloodMax, max_rounds=500).run()
        assert all(output == n - 1 for output in result.outputs.values())
