"""Unit tests for execution metrics and traces."""

from __future__ import annotations

from repro.local_model.metrics import ExecutionMetrics
from repro.local_model.trace import ExecutionTrace, NullTrace, TraceEvent


class TestExecutionMetrics:
    def test_record_halt_counts_each_node_once(self):
        metrics = ExecutionMetrics(total_nodes=3)
        metrics.record_halt("a", 2)
        metrics.record_halt("a", 5)
        metrics.record_halt("b", 4)
        assert metrics.halted_nodes == 2
        assert metrics.node_halt_rounds == {"a": 2, "b": 4}
        assert metrics.last_halt_round == 4

    def test_last_halt_round_none_when_nobody_halted(self):
        assert ExecutionMetrics().last_halt_round is None

    def test_messages_per_round(self):
        metrics = ExecutionMetrics(rounds=4, messages_sent=10)
        assert metrics.messages_per_round() == 2.5
        assert ExecutionMetrics().messages_per_round() == 0.0

    def test_summary_mentions_status(self):
        metrics = ExecutionMetrics(rounds=3, messages_sent=5, total_nodes=2)
        assert "stopped" in metrics.summary()
        metrics.terminated = True
        assert "terminated" in metrics.summary()


class TestExecutionTrace:
    def test_event_accumulation_and_queries(self):
        trace = ExecutionTrace()
        trace.on_round_begin(0)
        trace.on_message(0, "a", "b", "hello")
        trace.on_round_begin(1)
        trace.on_message(1, "b", "a", "world")
        trace.on_halt(1, "a", output=42)
        assert trace.rounds_recorded() == 2
        assert len(trace.messages()) == 2
        assert len(trace.messages_in_round(1)) == 1
        assert trace.halts()[0].payload == 42

    def test_max_events_cap(self):
        trace = ExecutionTrace(max_events=2)
        for i in range(5):
            trace.on_round_begin(i)
        assert len(trace.events) == 2

    def test_format_truncates(self):
        trace = ExecutionTrace()
        for i in range(10):
            trace.on_round_begin(i)
            trace.on_message(i, 1, 2, i)
        text = trace.format(max_lines=5)
        assert "more events" in text

    def test_null_trace_is_inert(self):
        trace = NullTrace()
        trace.on_round_begin(0)
        trace.on_message(0, 1, 2, "x")
        trace.on_halt(0, 1, None)
        assert trace.events == ()

    def test_trace_event_defaults(self):
        event = TraceEvent(kind="round", round_number=3)
        assert event.node is None and event.peer is None
