"""Shared-memory export lifecycle: attach, refcounts, crash reclamation.

The ``to_shm``/``attach_shm`` pair underpins the ``compact-parallel``
backend, so its failure modes matter as much as its happy path: a stale
meta must raise :class:`ShmError` (not a cryptic ``FileNotFoundError``),
an owner closing under a live same-process attachment must defer the
unlink instead of yanking the mapping, and a worker crash mid-run must
still reclaim every segment — no ``/dev/shm`` litter, no resource-tracker
leak warnings.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys

import pytest

from repro.core.orientation.problem import OrientationProblem
from repro.graphs.compact import CompactGraph, ShmError


def _graph(seed: int = 0, n: int = 30, p: float = 0.2) -> CompactGraph:
    rng = random.Random(seed)
    edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if rng.random() < p
    ]
    return CompactGraph.from_orientation_problem(
        OrientationProblem(edges, nodes=range(n))
    )


def _segment_exists(name: str) -> bool:
    """Whether the POSIX segment still exists, via a fresh attach probe."""
    from multiprocessing import shared_memory

    try:
        probe = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    probe.close()
    return True


def test_roundtrip_preserves_every_buffer():
    graph = _graph()
    with graph.to_shm() as export:
        attached = CompactGraph.attach_shm(export.meta)
        try:
            mirror = attached.graph
            assert mirror.num_nodes == graph.num_nodes
            assert mirror.num_edges == graph.num_edges
            assert list(mirror.indptr) == list(graph.indptr)
            assert list(mirror.indices) == list(graph.indices)
            assert list(mirror.slot_edge) == list(graph.slot_edge)
            assert list(mirror.edge_u) == list(graph.edge_u)
            assert list(mirror.edge_v) == list(graph.edge_v)
            # Dense-id graph: original labels deliberately not shipped.
            assert list(mirror.node_ids) == list(range(graph.num_nodes))
        finally:
            attached.close()


def test_attached_kernel_run_matches_original():
    """A kernel run on the zero-copy mirror equals one on the original."""
    from repro.core.orientation._kernels import stable_orientation_kernel

    graph = _graph(seed=3)
    serial = stable_orientation_kernel(graph, seed=3)
    with graph.to_shm() as export:
        attached = CompactGraph.attach_shm(export.meta)
        try:
            assert stable_orientation_kernel(attached.graph, seed=3) == serial
        finally:
            attached.close()


def test_attach_after_unlink_raises_shm_error():
    graph = _graph()
    export = graph.to_shm()
    meta = export.meta
    export.close()
    with pytest.raises(ShmError, match="already unlinked"):
        CompactGraph.attach_shm(meta)


def test_attach_bogus_name_raises_shm_error():
    with pytest.raises(ShmError, match="does not exist"):
        CompactGraph.attach_shm(
            {
                "name": "repro_test_never_created",
                "num_nodes": 1,
                "lengths": {
                    "indptr": 2,
                    "indices": 0,
                    "slot_edge": 0,
                    "edge_u": 0,
                    "edge_v": 0,
                },
            }
        )


def test_undersized_segment_raises_shm_error():
    graph = _graph()
    export = graph.to_shm()
    try:
        bad_meta = dict(export.meta)
        bad_meta["lengths"] = {
            field: length * 1000
            for field, length in export.meta["lengths"].items()
        }
        with pytest.raises(ShmError, match="holds"):
            CompactGraph.attach_shm(bad_meta)
    finally:
        export.close()


def test_double_attach_and_interleaved_close():
    """Two same-process attachments are independent handles."""
    graph = _graph()
    export = graph.to_shm()
    first = CompactGraph.attach_shm(export.meta)
    second = CompactGraph.attach_shm(export.meta)
    first.close()
    # The second attachment still reads valid data.
    assert list(second.graph.edge_u) == list(graph.edge_u)
    second.close()
    export.close()
    assert not _segment_exists(export.meta["name"])


def test_owner_close_defers_unlink_until_last_attachment():
    """Owner closing first must not pull the segment from an attachment."""
    graph = _graph()
    export = graph.to_shm()
    name = export.meta["name"]
    attached = CompactGraph.attach_shm(export.meta)
    export.close()
    # The unlink is deferred: the attachment keeps working and the
    # segment stays attachable for newcomers.
    assert _segment_exists(name)
    assert list(attached.graph.indptr) == list(graph.indptr)
    attached.close()
    assert not _segment_exists(name)


def test_close_is_idempotent():
    export = _graph().to_shm()
    export.close()
    export.close()
    assert not _segment_exists(export.meta["name"])


_CRASH_SCRIPT = """
import os, sys
import repro.parallel as par
from repro.core.orientation.problem import OrientationProblem
from repro.graphs.compact import CompactGraph
from repro.parallel import parallel_stable_orientation_kernel

# Every dispatched batch kills its worker outright: the pool breaks mid
# phase, which is the harshest teardown path the master has.
par._run_batch = lambda task: os._exit(3)

import random
rng = random.Random(0)
n = 400
edges = [(u, v) for u in range(n) for v in range(u + 1, n)
         if rng.random() < 0.02]
graph = CompactGraph.from_orientation_problem(
    OrientationProblem(edges, nodes=range(n)))

names = []
orig_init = par.PhaseGamePool.__init__
def spy_init(self, *args, **kwargs):
    orig_init(self, *args, **kwargs)
    names.append(self._export.meta["name"])
    names.append(self._aux.name)
par.PhaseGamePool.__init__ = spy_init

try:
    parallel_stable_orientation_kernel(
        graph, seed=0, workers=2, min_edges=0, min_game_edges=0)
except Exception as exc:
    print("CRASHED", type(exc).__name__)
else:
    print("NO-CRASH")

from multiprocessing import shared_memory
leaked = []
for name in names:
    try:
        probe = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        continue
    probe.close()
    leaked.append(name)
print("LEAKED", leaked)
"""


def test_worker_crash_reclaims_segments():
    """A dying worker breaks the pool but leaks no shared memory.

    Run in a subprocess so the broken fork pool and the resource-tracker
    warnings (if any) are isolated from the test process; the script
    reports whether the graph and aux segments survived teardown.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.abspath("src"), env.get("PYTHONPATH", "")])
    )
    proc = subprocess.run(
        [sys.executable, "-c", _CRASH_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "CRASHED" in proc.stdout, proc.stdout
    assert "LEAKED []" in proc.stdout, proc.stdout
    assert "leaked shared_memory" not in proc.stderr, proc.stderr
