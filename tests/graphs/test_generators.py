"""Unit and property tests for the graph generators."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    bounded_degree_gnp,
    caterpillar_graph,
    check_perfect_dary_tree,
    complete_bipartite,
    cycle_graph,
    degree_histogram,
    graph_girth,
    grid_graph,
    high_girth_regular_graph,
    is_regular,
    layered_from_levels,
    path_graph,
    perfect_dary_tree,
    random_bipartite_customer_server,
    random_layered_graph,
    random_regular_graph,
    star_graph,
    tree_heights,
)
from repro.graphs.validation import (
    GraphValidationError,
    check_girth_at_least,
    check_max_degree,
)


class TestBasicTopologies:
    def test_path(self):
        g = path_graph(5)
        assert g.number_of_nodes() == 5
        assert g.number_of_edges() == 4

    def test_path_rejects_empty(self):
        with pytest.raises(ValueError):
            path_graph(0)

    def test_cycle(self):
        g = cycle_graph(6)
        assert is_regular(g, 2)
        assert graph_girth(g) == 6

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(7)
        assert g.degree(0) == 7
        assert max(d for _, d in g.degree()) == 7

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.number_of_nodes() == 12
        assert max(d for _, d in g.degree()) <= 4

    def test_caterpillar(self):
        g = caterpillar_graph(spine=4, legs_per_node=3)
        assert g.number_of_nodes() == 4 + 12
        assert nx.is_tree(g)

    def test_caterpillar_validation(self):
        with pytest.raises(ValueError):
            caterpillar_graph(0, 1)
        with pytest.raises(ValueError):
            caterpillar_graph(2, -1)


class TestRandomGraphs:
    def test_bounded_degree_gnp_respects_cap(self, seed):
        g = bounded_degree_gnp(40, 0.3, max_degree=5, seed=seed)
        check_max_degree(g, 5)
        assert g.number_of_nodes() == 40

    def test_bounded_degree_gnp_validation(self):
        with pytest.raises(ValueError):
            bounded_degree_gnp(0, 0.5, 3)
        with pytest.raises(ValueError):
            bounded_degree_gnp(5, 1.5, 3)
        with pytest.raises(ValueError):
            bounded_degree_gnp(5, 0.5, -1)

    def test_random_regular(self, seed):
        g = random_regular_graph(3, 10, seed=seed)
        assert is_regular(g, 3)

    def test_random_regular_validation(self):
        with pytest.raises(ValueError):
            random_regular_graph(3, 3)
        with pytest.raises(ValueError):
            random_regular_graph(3, 7)  # odd product
        with pytest.raises(ValueError):
            random_regular_graph(-1, 4)

    def test_random_regular_reproducible(self):
        g1 = random_regular_graph(3, 12, seed=7)
        g2 = random_regular_graph(3, 12, seed=7)
        assert set(g1.edges()) == set(g2.edges())

    def test_high_girth_regular(self):
        g = high_girth_regular_graph(3, 30, girth=5, seed=1)
        assert is_regular(g, 3)
        check_girth_at_least(g, 5)

    def test_high_girth_validation(self):
        with pytest.raises(ValueError):
            high_girth_regular_graph(3, 30, girth=2)


class TestTrees:
    def test_perfect_dary_tree_structure(self):
        g, root = perfect_dary_tree(3, 3)
        depth = check_perfect_dary_tree(g, 3, root)
        assert depth == 3
        assert nx.is_tree(g)

    def test_perfect_dary_tree_size(self):
        # degree-3 tree of depth 2: root(1) + 3 + 3*2 = 10 nodes
        g, _ = perfect_dary_tree(3, 2)
        assert g.number_of_nodes() == 10

    def test_perfect_dary_tree_depth_zero(self):
        g, root = perfect_dary_tree(4, 0)
        assert g.number_of_nodes() == 1
        assert check_perfect_dary_tree(g, 4, root) == 0

    def test_perfect_dary_tree_validation(self):
        with pytest.raises(ValueError):
            perfect_dary_tree(1, 2)
        with pytest.raises(ValueError):
            perfect_dary_tree(3, -1)

    def test_tree_heights(self):
        g, root = perfect_dary_tree(3, 2)
        heights = tree_heights(g)
        assert heights[root] == 2
        leaves = [n for n in g.nodes() if g.degree(n) == 1]
        assert all(heights[leaf] == 0 for leaf in leaves)

    def test_check_perfect_dary_tree_detects_imperfection(self):
        g, root = perfect_dary_tree(3, 2)
        # Remove a leaf: leaves now at multiple depths or degree broken.
        leaf = next(n for n in g.nodes() if g.degree(n) == 1 and n != root)
        g.remove_node(leaf)
        with pytest.raises(GraphValidationError):
            check_perfect_dary_tree(g, 3, root)


class TestBipartiteWorkloads:
    def test_complete_bipartite(self):
        csg = complete_bipartite(3, 4)
        assert csg.max_customer_degree() == 4
        assert csg.max_server_degree() == 3
        assert csg.num_edges() == 12

    def test_random_bipartite_degrees(self, seed):
        csg = random_bipartite_customer_server(
            num_customers=20, num_servers=8, customer_degree=3, seed=seed
        )
        assert all(csg.customer_degree(c) == 3 for c in csg.customers)
        assert csg.max_customer_degree() == 3

    def test_random_bipartite_skew_concentrates_load(self):
        skewed = random_bipartite_customer_server(
            num_customers=60, num_servers=12, customer_degree=2, seed=5, server_skew=2.0
        )
        uniform = random_bipartite_customer_server(
            num_customers=60, num_servers=12, customer_degree=2, seed=5, server_skew=0.0
        )
        top_skewed = max(skewed.server_degree(s) for s in skewed.servers)
        top_uniform = max(uniform.server_degree(s) for s in uniform.servers)
        assert top_skewed >= top_uniform

    def test_random_bipartite_validation(self):
        with pytest.raises(ValueError):
            random_bipartite_customer_server(0, 5, 2)
        with pytest.raises(ValueError):
            random_bipartite_customer_server(5, 5, 6)
        with pytest.raises(ValueError):
            random_bipartite_customer_server(5, 5, 2, server_skew=-1)


class TestLayeredGenerators:
    def test_random_layered_graph_levels(self, seed):
        lg = random_layered_graph(4, 5, 0.5, seed=seed)
        assert lg.height() == 3
        assert len(lg) == 20
        for child, parent in lg.edges:
            assert lg.level(parent) == lg.level(child) + 1

    def test_random_layered_graph_degree_cap(self, seed):
        lg = random_layered_graph(4, 6, 0.9, seed=seed, max_degree=3)
        assert lg.max_degree() <= 3

    def test_random_layered_graph_validation(self):
        with pytest.raises(ValueError):
            random_layered_graph(0, 3, 0.5)
        with pytest.raises(ValueError):
            random_layered_graph(3, 0, 0.5)
        with pytest.raises(ValueError):
            random_layered_graph(3, 3, 1.5)

    def test_layered_from_levels(self):
        lg = layered_from_levels([2, 2], edges=[((0, 0), (1, 0)), ((0, 1), (1, 1))])
        assert len(lg) == 4
        assert lg.num_edges() == 2

    def test_degree_histogram(self):
        g = star_graph(4)
        hist = degree_histogram(g)
        assert hist == {1: 4, 4: 1}


class TestGeneratorProperties:
    @given(
        degree=st.integers(min_value=2, max_value=5),
        n=st.integers(min_value=6, max_value=30),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_regular_always_regular(self, degree, n):
        if n <= degree or (degree * n) % 2 != 0:
            return
        g = random_regular_graph(degree, n, seed=0)
        assert is_regular(g, degree)

    @given(
        levels=st.integers(min_value=1, max_value=5),
        width=st.integers(min_value=1, max_value=5),
        p=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_layered_always_valid(self, levels, width, p):
        lg = random_layered_graph(levels, width, p, seed=3)
        for child, parent in lg.edges:
            assert lg.level(parent) == lg.level(child) + 1
