"""Unit tests for :class:`repro.graphs.layered.LayeredGraph`."""

from __future__ import annotations

import pytest

from repro.graphs.layered import LayeredGraph, LayeredGraphError


@pytest.fixture
def small_layered() -> LayeredGraph:
    """Three levels: a at 0, b/c at 1, d at 2; edges a<-b, a<-c, b<-d."""
    return LayeredGraph(
        levels={"a": 0, "b": 1, "c": 1, "d": 2},
        edges=[("a", "b"), ("a", "c"), ("b", "d")],
    )


class TestConstruction:
    def test_valid_instance(self, small_layered: LayeredGraph):
        assert len(small_layered) == 4
        assert small_layered.num_edges() == 3
        assert small_layered.height() == 2

    def test_negative_level_rejected(self):
        with pytest.raises(LayeredGraphError):
            LayeredGraph(levels={"a": -1})

    def test_non_integer_level_rejected(self):
        with pytest.raises(LayeredGraphError):
            LayeredGraph(levels={"a": 1.5})

    def test_edge_to_unknown_node_rejected(self):
        with pytest.raises(LayeredGraphError):
            LayeredGraph(levels={"a": 0}, edges=[("a", "b")])

    def test_self_loop_rejected(self):
        with pytest.raises(LayeredGraphError):
            LayeredGraph(levels={"a": 0}, edges=[("a", "a")])

    def test_level_constraint_enforced(self):
        with pytest.raises(LayeredGraphError):
            LayeredGraph(levels={"a": 0, "b": 2}, edges=[("a", "b")])
        with pytest.raises(LayeredGraphError):
            LayeredGraph(levels={"a": 0, "b": 0}, edges=[("a", "b")])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(LayeredGraphError):
            LayeredGraph(
                levels={"a": 0, "b": 1}, edges=[("a", "b"), ("a", "b")]
            )

    def test_empty_graph(self):
        empty = LayeredGraph(levels={})
        assert len(empty) == 0
        assert empty.height() == 0
        assert empty.max_degree() == 0


class TestQueries:
    def test_parents_and_children(self, small_layered: LayeredGraph):
        assert small_layered.parents("a") == frozenset({"b", "c"})
        assert small_layered.children("b") == frozenset({"a"})
        assert small_layered.parents("d") == frozenset()
        assert small_layered.children("d") == frozenset({"b"})

    def test_levels_and_nodes_at_level(self, small_layered: LayeredGraph):
        assert small_layered.level("d") == 2
        assert small_layered.nodes_at_level(1) == ("b", "c")

    def test_degrees(self, small_layered: LayeredGraph):
        assert small_layered.degree("a") == 2
        assert small_layered.degree("b") == 2
        assert small_layered.max_degree() == 2

    def test_adjacency(self, small_layered: LayeredGraph):
        adjacency = small_layered.as_adjacency()
        assert set(adjacency["a"]) == {"b", "c"}
        assert set(adjacency["d"]) == {"b"}

    def test_contains(self, small_layered: LayeredGraph):
        assert "a" in small_layered
        assert "zz" not in small_layered

    def test_restrict_to(self, small_layered: LayeredGraph):
        sub = small_layered.restrict_to({"a", "b", "d"})
        assert len(sub) == 3
        assert sub.num_edges() == 2
        with pytest.raises(LayeredGraphError):
            small_layered.restrict_to({"a", "nope"})
