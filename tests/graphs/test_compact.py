"""Unit tests for the compact CSR graph cores and their round-trips."""

from __future__ import annotations

import pytest

from repro.core.orientation.problem import OrientationError, OrientationProblem
from repro.graphs.bipartite import BipartiteGraphError, CustomerServerGraph
from repro.graphs.compact import CompactBipartite, CompactGraph, intern_nodes
from repro.graphs.generators import (
    bounded_degree_gnp,
    random_bipartite_customer_server,
)


class TestInterning:
    def test_repr_sorted_and_invertible(self):
        ids, index_of = intern_nodes(["b", "a", "c", "a"])
        assert ids == ("a", "b", "c")
        assert [ids[index_of[x]] for x in ("a", "b", "c")] == ["a", "b", "c"]

    def test_matches_reference_node_order(self):
        problem = OrientationProblem(edges=[(10, 2), (2, 3)], nodes=[7])
        compact = CompactGraph.from_orientation_problem(problem)
        assert compact.node_ids == problem.nodes  # both repr-sorted


class TestCompactGraph:
    @pytest.mark.parametrize("seed", range(5))
    def test_round_trip_is_lossless(self, seed):
        graph = bounded_degree_gnp(30, 0.2, 6, seed=seed)
        problem = OrientationProblem.from_networkx(graph)
        compact = CompactGraph.from_orientation_problem(problem)
        compact._problem = None  # force a rebuild instead of the cache
        assert compact.to_orientation_problem() == problem

    def test_round_trip_keeps_isolated_nodes(self):
        problem = OrientationProblem(edges=[(1, 2)], nodes=["iso", 5])
        compact = CompactGraph.from_orientation_problem(problem)
        compact._problem = None
        rebuilt = compact.to_orientation_problem()
        assert rebuilt == problem
        assert "iso" in rebuilt.adjacency

    def test_csr_structure_matches_reference(self):
        problem = OrientationProblem.from_networkx(
            bounded_degree_gnp(20, 0.3, 5, seed=1)
        )
        compact = CompactGraph.from_orientation_problem(problem)
        assert compact.num_nodes == len(problem.nodes)
        assert compact.num_edges == problem.num_edges()
        assert compact.max_degree() == problem.max_degree()
        for i, node in enumerate(compact.node_ids):
            neighbours = {compact.node_ids[j] for j in compact.neighbors(i)}
            assert neighbours == set(problem.neighbors(node))
            assert compact.degree(i) == problem.degree(node)

    def test_edge_order_matches_reference(self):
        problem = OrientationProblem.from_networkx(
            bounded_degree_gnp(15, 0.3, 5, seed=2)
        )
        compact = CompactGraph.from_orientation_problem(problem)
        assert compact.edge_keys() == problem.edges

    def test_edge_index_lookup(self):
        problem = OrientationProblem(edges=[(1, 2), (2, 3), (3, 1)])
        compact = CompactGraph.from_orientation_problem(problem)
        for e, (u, v) in enumerate(compact.edge_keys()):
            assert compact.edge_index(u, v) == e
            assert compact.edge_index(v, u) == e  # order-insensitive

    def test_neighbors_are_a_memoryview(self):
        compact = CompactGraph.from_edges([(1, 2), (2, 3)])
        view = compact.neighbors(compact.index_of[2])
        assert isinstance(view, memoryview)
        assert sorted(view) == sorted(
            (compact.index_of[1], compact.index_of[3])
        )

    def test_from_edges_validation(self):
        with pytest.raises(OrientationError):
            CompactGraph.from_edges([(1, 1)])
        with pytest.raises(OrientationError):
            CompactGraph.from_edges([(1, 2), (2, 1)])

    def test_mixed_type_node_ids(self):
        problem = OrientationProblem(edges=[(1, "a"), ("a", (2, 3))])
        compact = CompactGraph.from_orientation_problem(problem)
        compact._problem = None
        assert compact.to_orientation_problem() == problem


class TestCompactBipartite:
    @pytest.mark.parametrize("seed", range(5))
    def test_round_trip_is_lossless(self, seed):
        graph = random_bipartite_customer_server(25, 8, 3, seed=seed, server_skew=1.0)
        compact = CompactBipartite.from_customer_server_graph(graph)
        compact._graph = None  # force a rebuild instead of the cache
        assert compact.to_customer_server_graph() == graph

    def test_generator_emits_identical_compact_instance(self):
        reference = random_bipartite_customer_server(25, 8, 3, seed=4, server_skew=1.0)
        compact = random_bipartite_customer_server(
            25, 8, 3, seed=4, server_skew=1.0, compact=True
        )
        assert isinstance(compact, CompactBipartite)
        assert compact.to_customer_server_graph() == reference

    def test_csr_structure_matches_reference(self):
        graph = random_bipartite_customer_server(20, 6, 2, seed=3)
        compact = CompactBipartite.from_customer_server_graph(graph)
        assert compact.customer_ids == graph.customers
        assert compact.server_ids == graph.servers
        assert compact.num_edges == graph.num_edges()
        for ci, customer in enumerate(compact.customer_ids):
            servers = {compact.server_ids[si] for si in compact.servers_of(ci)}
            assert servers == set(graph.servers_of(customer))
        for si, server in enumerate(compact.server_ids):
            customers = {compact.customer_ids[ci] for ci in compact.customers_of(si)}
            assert customers == set(graph.customers_of(server))

    def test_rows_are_sorted_by_dense_id(self):
        compact = random_bipartite_customer_server(30, 10, 4, seed=7, compact=True)
        for ci in range(compact.num_customers):
            row = list(compact.servers_of(ci))
            assert row == sorted(row)

    def test_from_edges_validation(self):
        with pytest.raises(BipartiteGraphError):
            CompactBipartite.from_edges(["x"], ["x"], [("x", "x")])
        with pytest.raises(BipartiteGraphError):
            CompactBipartite.from_edges(["c"], ["s"], [("c", "s"), ("c", "s")])
        with pytest.raises(BipartiteGraphError):
            CompactBipartite.from_edges(["c"], ["s"], [("c", "unknown")])
        with pytest.raises(BipartiteGraphError):
            CompactBipartite.from_edges(["c", "lonely"], ["s"], [("c", "s")])

    def test_validation_matches_reference_constructor(self):
        # The compact and reference constructors accept/reject the same inputs.
        cases = [
            (["c1", "c2"], ["s1", "s2"], [("c1", "s1"), ("c2", "s1"), ("c2", "s2")]),
            (["c1"], ["s1"], [("c1", "s1")]),
        ]
        for customers, servers, edges in cases:
            compact = CompactBipartite.from_edges(customers, servers, edges)
            reference = CustomerServerGraph(customers, servers, edges)
            assert compact.to_customer_server_graph() == reference
