"""``from_edge_stream``: bit-for-bit parity with the dict-path builders.

The streaming constructors exist so million-edge instances never pay for
a per-edge dict, tuple list, or networkx graph — but they must stay
*indistinguishable* from :meth:`CompactGraph.from_edges` /
:meth:`CompactBipartite.from_edges` on any input the dict path accepts
(and reject exactly what it rejects).  These tests pin that contract on
seeded instances up to n=10^4 plus the edge cases the bucket-sort could
plausibly get wrong: duplicate edges, isolated nodes, empty streams, and
mixed-type ids whose ordering exercises the repr-key assembly.
"""

from __future__ import annotations

import pytest

from repro.core.orientation.problem import OrientationError
from repro.graphs.bipartite import BipartiteGraphError
from repro.graphs.compact import CompactBipartite, CompactGraph
from repro.graphs.generators import (
    bounded_degree_gnp,
    random_bipartite_customer_server,
    random_layered_graph,
)


def assert_same_compact_graph(a: CompactGraph, b: CompactGraph) -> None:
    """Every array and mapping equal — not just isomorphic."""
    assert a.node_ids == b.node_ids
    assert a.index_of == b.index_of
    assert a.indptr == b.indptr
    assert a.indices == b.indices
    assert a.slot_edge == b.slot_edge
    assert a.edge_u == b.edge_u
    assert a.edge_v == b.edge_v


def assert_same_compact_bipartite(a: CompactBipartite, b: CompactBipartite) -> None:
    assert a.customer_ids == b.customer_ids
    assert a.server_ids == b.server_ids
    assert a.customer_index == b.customer_index
    assert a.server_index == b.server_index
    assert a.cust_indptr == b.cust_indptr
    assert a.cust_indices == b.cust_indices
    assert a.serv_indptr == b.serv_indptr
    assert a.serv_indices == b.serv_indices


class TestCompactGraphStream:
    @pytest.mark.parametrize("seed", range(5))
    def test_equals_from_edges_on_gnp(self, seed):
        graph = bounded_degree_gnp(60, 0.15, 7, seed=seed)
        edges = list(graph.edges())
        nodes = list(graph.nodes())
        assert_same_compact_graph(
            CompactGraph.from_edge_stream(iter(edges), nodes=nodes),
            CompactGraph.from_edges(edges, nodes=nodes),
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_equals_from_edges_on_layered_dag(self, seed):
        graph = random_layered_graph(
            num_levels=12, width=25, edge_probability=0.1, seed=seed
        )
        assert_same_compact_graph(
            CompactGraph.from_edge_stream(iter(graph.edges), nodes=graph.nodes),
            CompactGraph.from_edges(graph.edges, nodes=graph.nodes),
        )

    def test_equals_from_edges_at_ten_thousand_nodes(self):
        # The acceptance-bar instance: the E1 head-to-head family at
        # n=10^4, streamed vs dict-built.
        graph = random_layered_graph(
            num_levels=50, width=200, edge_probability=0.02, seed=2
        )
        assert len(graph.nodes) == 10_000
        assert_same_compact_graph(
            CompactGraph.from_edge_stream(iter(graph.edges), nodes=graph.nodes),
            CompactGraph.from_edges(graph.edges, nodes=graph.nodes),
        )

    def test_edge_order_independence(self):
        # The reference sorts edges by canonical-key repr, so the stream
        # order must not leak into the result.
        edges = [(3, 1), (1, 2), (10, 2), (7, 3)]
        assert_same_compact_graph(
            CompactGraph.from_edge_stream(reversed(edges)),
            CompactGraph.from_edges(edges),
        )

    def test_mixed_type_ids(self):
        edges = [(1, "a"), ("a", (2, 3)), ((2, 3), 1), ("b", 1)]
        nodes = ["iso", 99]
        assert_same_compact_graph(
            CompactGraph.from_edge_stream(iter(edges), nodes=nodes),
            CompactGraph.from_edges(edges, nodes=nodes),
        )

    def test_isolated_nodes_survive(self):
        compact = CompactGraph.from_edge_stream([(1, 2)], nodes=["iso", 5, 1])
        assert compact.node_ids == CompactGraph.from_edges(
            [(1, 2)], nodes=["iso", 5, 1]
        ).node_ids
        iso = compact.index_of["iso"]
        assert compact.degree(iso) == 0
        assert compact.num_edges == 1

    def test_empty_stream(self):
        empty = CompactGraph.from_edge_stream(iter(()))
        assert empty.num_nodes == 0
        assert empty.num_edges == 0
        only_nodes = CompactGraph.from_edge_stream(iter(()), nodes=[2, 1])
        assert_same_compact_graph(
            only_nodes, CompactGraph.from_edges([], nodes=[2, 1])
        )

    def test_duplicate_edges_rejected_with_reference_message(self):
        with pytest.raises(OrientationError) as stream_err:
            CompactGraph.from_edge_stream([(1, 2), (3, 2), (2, 1)])
        with pytest.raises(OrientationError) as dict_err:
            CompactGraph.from_edges([(1, 2), (3, 2), (2, 1)])
        assert str(stream_err.value) == str(dict_err.value)

    def test_self_loops_rejected(self):
        with pytest.raises(OrientationError):
            CompactGraph.from_edge_stream([(1, 2), (3, 3)])

    def test_round_trip_through_reference_problem(self):
        graph = bounded_degree_gnp(40, 0.2, 6, seed=9)
        compact = CompactGraph.from_edge_stream(
            iter(graph.edges()), nodes=graph.nodes()
        )
        problem = compact.to_orientation_problem()
        assert problem.edges == compact.edge_keys()
        assert tuple(problem.nodes) == compact.node_ids


class TestCompactBipartiteStream:
    @pytest.mark.parametrize("seed", range(5))
    def test_equals_from_edges_on_seeded_instances(self, seed):
        graph = random_bipartite_customer_server(
            40, 12, 3, seed=seed, server_skew=1.0
        )
        customers = list(graph.customer_adjacency)
        servers = list(graph.server_adjacency)
        edges = list(graph.edges())
        assert_same_compact_bipartite(
            CompactBipartite.from_edge_stream(customers, servers, iter(edges)),
            CompactBipartite.from_edges(customers, servers, edges),
        )

    def test_mixed_type_ids(self):
        customers = [1, "c", (2, 3)]
        servers = ["s1", 9]
        edges = [(1, "s1"), ("c", 9), ((2, 3), "s1"), ((2, 3), 9)]
        assert_same_compact_bipartite(
            CompactBipartite.from_edge_stream(customers, servers, iter(edges)),
            CompactBipartite.from_edges(customers, servers, edges),
        )

    def test_empty_sides_and_stream(self):
        compact = CompactBipartite.from_edge_stream([], [], iter(()))
        assert compact.num_customers == 0
        assert compact.num_servers == 0
        assert compact.num_edges == 0
        # Servers may be isolated; customers may not.
        spare = CompactBipartite.from_edge_stream(["c"], ["s", "spare"], [("c", "s")])
        assert spare.server_degree(spare.server_index["spare"]) == 0

    def test_validation_matches_from_edges(self):
        cases = [
            (["x"], ["x"], [("x", "x")]),  # overlap
            (["c"], ["s"], [("c", "s"), ("c", "s")]),  # duplicate
            (["c"], ["s"], [("c", "unknown")]),  # unknown server
            (["c"], ["s"], [("missing", "s")]),  # unknown customer
            (["c", "lonely"], ["s"], [("c", "s")]),  # isolated customer
            (["c"], ["s"], [("c", "s", "extra")]),  # malformed edge
        ]
        for customers, servers, edges in cases:
            with pytest.raises(BipartiteGraphError):
                CompactBipartite.from_edge_stream(customers, servers, iter(edges))
            with pytest.raises(BipartiteGraphError):
                CompactBipartite.from_edges(customers, servers, edges)
