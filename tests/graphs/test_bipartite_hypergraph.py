"""Unit tests for customer--server graphs and hypergraphs."""

from __future__ import annotations

import pytest

from repro.graphs.bipartite import BipartiteGraphError, CustomerServerGraph
from repro.graphs.hypergraph import Hypergraph, HypergraphError


@pytest.fixture
def small_csg() -> CustomerServerGraph:
    return CustomerServerGraph(
        customers=["c1", "c2", "c3"],
        servers=["s1", "s2"],
        edges=[("c1", "s1"), ("c1", "s2"), ("c2", "s1"), ("c3", "s2")],
    )


class TestCustomerServerGraph:
    def test_basic_queries(self, small_csg: CustomerServerGraph):
        assert small_csg.customers == ("c1", "c2", "c3")
        assert small_csg.servers == ("s1", "s2")
        assert small_csg.servers_of("c1") == frozenset({"s1", "s2"})
        assert small_csg.customers_of("s1") == frozenset({"c1", "c2"})
        assert small_csg.num_edges() == 4
        assert len(small_csg) == 5

    def test_degree_parameters(self, small_csg: CustomerServerGraph):
        assert small_csg.max_customer_degree() == 2
        assert small_csg.max_server_degree() == 2
        assert small_csg.customer_degree("c2") == 1
        assert small_csg.server_degree("s2") == 2
        assert small_csg.max_degree() == 2

    def test_edges_deterministic(self, small_csg: CustomerServerGraph):
        assert small_csg.edges() == small_csg.edges()
        assert ("c1", "s1") in small_csg.edges()

    def test_overlapping_ids_rejected(self):
        with pytest.raises(BipartiteGraphError):
            CustomerServerGraph(customers=["x"], servers=["x"], edges=[("x", "x")])

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(BipartiteGraphError):
            CustomerServerGraph(customers=["c"], servers=["s"], edges=[("c", "zzz")])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(BipartiteGraphError):
            CustomerServerGraph(
                customers=["c"], servers=["s"], edges=[("c", "s"), ("c", "s")]
            )

    def test_isolated_customer_rejected(self):
        with pytest.raises(BipartiteGraphError):
            CustomerServerGraph(
                customers=["c1", "c2"], servers=["s"], edges=[("c1", "s")]
            )

    def test_from_orientation_graph(self):
        csg = CustomerServerGraph.from_orientation_graph([(1, 2), (2, 3)])
        # Two edges -> two degree-2 customers; three servers.
        assert len(csg.customers) == 2
        assert len(csg.servers) == 3
        assert all(csg.customer_degree(c) == 2 for c in csg.customers)

    def test_from_orientation_graph_rejects_self_loop(self):
        with pytest.raises(BipartiteGraphError):
            CustomerServerGraph.from_orientation_graph([(1, 1)])


class TestHypergraph:
    def test_construction_and_queries(self):
        hg = Hypergraph(
            vertices=["s1", "s2", "s3"],
            hyperedges={"e1": ["s1", "s2"], "e2": ["s1", "s2", "s3"]},
        )
        assert hg.vertices == ("s1", "s2", "s3")
        assert hg.hyperedges == ("e1", "e2")
        assert hg.members("e2") == frozenset({"s1", "s2", "s3"})
        assert hg.edges_at("s1") == frozenset({"e1", "e2"})
        assert hg.rank("e1") == 2
        assert hg.max_rank() == 3
        assert hg.vertex_degree("s3") == 1
        assert hg.max_vertex_degree() == 2
        assert hg.num_hyperedges() == 2
        assert len(hg) == 3

    def test_empty_hyperedge_rejected(self):
        with pytest.raises(HypergraphError):
            Hypergraph(vertices=["a"], hyperedges={"e": []})

    def test_unknown_vertex_rejected(self):
        with pytest.raises(HypergraphError):
            Hypergraph(vertices=["a"], hyperedges={"e": ["a", "b"]})

    def test_roundtrip_with_customer_server_graph(self):
        csg = CustomerServerGraph(
            customers=["c1", "c2"],
            servers=["s1", "s2", "s3"],
            edges=[("c1", "s1"), ("c1", "s2"), ("c2", "s2"), ("c2", "s3")],
        )
        hg = Hypergraph.from_customer_server(csg)
        assert hg.max_rank() == csg.max_customer_degree()
        assert hg.max_vertex_degree() == csg.max_server_degree()
        back = hg.to_customer_server()
        assert set(back.edges()) == set(csg.edges())
