"""Tests for the locally-optimal load balancing comparison module (Section 2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.load_balancing import (
    bridge_usage_contrast,
    locally_optimal_load_balancing,
    orientation_loads_as_initial,
)
from repro.core.orientation import OrientationProblem, edge_key, run_stable_orientation
from repro.graphs.generators import bounded_degree_gnp, path_graph
from repro.workloads import two_cliques_bottleneck


class TestLoadBalancer:
    def test_balances_a_path(self):
        problem = OrientationProblem.from_networkx(path_graph(5))
        result = locally_optimal_load_balancing(problem, {0: 4})
        assert result.is_locally_balanced(problem)
        assert sum(result.loads.values()) == 4
        assert result.moves > 0

    def test_already_balanced_needs_no_moves(self):
        problem = OrientationProblem(edges=[(1, 2), (2, 3)])
        result = locally_optimal_load_balancing(problem, {1: 1, 2: 1, 3: 1})
        assert result.moves == 0
        assert result.max_edge_usage() == 0

    def test_conservation_of_load(self):
        problem = OrientationProblem.from_networkx(
            bounded_degree_gnp(20, 0.3, 5, seed=1)
        )
        initial = orientation_loads_as_initial(problem)
        result = locally_optimal_load_balancing(problem, initial)
        assert sum(result.loads.values()) == sum(initial.values())
        assert result.is_locally_balanced(problem)

    def test_input_validation(self):
        problem = OrientationProblem(edges=[(1, 2)])
        with pytest.raises(ValueError):
            locally_optimal_load_balancing(problem, {99: 1})
        with pytest.raises(ValueError):
            locally_optimal_load_balancing(problem, {1: -1})

    def test_edge_usage_recorded(self):
        problem = OrientationProblem.from_networkx(path_graph(3))
        result = locally_optimal_load_balancing(problem, {0: 3})
        # One unit must travel across both edges, another across the first only.
        assert result.edge_usage[(0, 1)] >= 1
        assert result.moves == sum(result.edge_usage.values())

    @given(
        n=st.integers(min_value=2, max_value=15),
        p=st.floats(min_value=0.2, max_value=0.7),
        seed=st.integers(min_value=0, max_value=2_000),
        load_seed=st.integers(min_value=0, max_value=2_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_terminates_balanced_and_conserves(self, n, p, seed, load_seed):
        import random

        problem = OrientationProblem.from_networkx(
            bounded_degree_gnp(n, p, 5, seed=seed)
        )
        rng = random.Random(load_seed)
        initial = {node: rng.randrange(0, 4) for node in problem.nodes}
        result = locally_optimal_load_balancing(problem, initial)
        assert result.is_locally_balanced(problem)
        assert sum(result.loads.values()) == sum(initial.values())


class TestSection2Contrast:
    def test_bottleneck_edge_used_many_times_by_load_balancing(self):
        """Section 2: across a bridge separating a heavy and an empty clique,
        free load balancing pushes many units while token dropping / stable
        orientation uses the bridge at most once."""
        problem, bridge_u, bridge_v = two_cliques_bottleneck(clique_size=8)
        # Heavy region: every node of the left clique starts with 4 units.
        initial = {node: 0 for node in problem.nodes}
        for node in range(8):
            initial[node] = 4

        contrast = bridge_usage_contrast(problem, (bridge_u, bridge_v), initial)
        assert contrast["load_balancing_bridge_uses"] >= 2
        assert contrast["token_dropping_bridge_uses"] <= 1

        # The stable orientation of the same graph indeed orients (uses) the
        # bridge exactly once, by definition of an orientation.
        result = run_stable_orientation(problem)
        assert result.orientation.is_oriented(bridge_u, bridge_v)

    def test_orientation_loads_as_initial_matches_edge_count(self):
        problem, _, _ = two_cliques_bottleneck(clique_size=5)
        initial = orientation_loads_as_initial(problem)
        assert sum(initial.values()) == problem.num_edges()

    def test_bottleneck_contrast_holds_in_both_directions(self):
        """The Section 2 contrast is symmetric: whichever clique is heavy,
        the balancer pushes many units across the bridge (at least half a
        clique's worth here) while an orientation uses it exactly once."""
        clique_size = 8
        problem, bridge_u, bridge_v = two_cliques_bottleneck(clique_size=clique_size)
        left = range(clique_size)
        right = range(clique_size, 2 * clique_size)
        for heavy in (left, right):
            initial = {node: 0 for node in problem.nodes}
            for node in heavy:
                initial[node] = 4
            contrast = bridge_usage_contrast(
                problem, (bridge_u, bridge_v), initial
            )
            assert contrast["load_balancing_bridge_uses"] >= clique_size // 2
            assert contrast["token_dropping_bridge_uses"] == 1
            assert contrast["total_moves"] >= contrast["load_balancing_bridge_uses"]

    def test_bridge_is_the_most_used_edge(self):
        """Per-edge usage counting localises the bottleneck: no intra-clique
        edge carries more load than the single inter-region bridge."""
        problem, bridge_u, bridge_v = two_cliques_bottleneck(clique_size=6)
        initial = {node: 0 for node in problem.nodes}
        for node in range(6):
            initial[node] = 5
        result = locally_optimal_load_balancing(problem, initial)
        bridge_key = edge_key(bridge_u, bridge_v)
        bridge_uses = result.edge_usage[bridge_key]
        assert bridge_uses == result.max_edge_usage()
        assert all(
            uses <= bridge_uses for key, uses in result.edge_usage.items()
        )
        # Every recorded usage is on a real edge, and the books balance.
        assert set(result.edge_usage) <= set(problem.edges)
        assert result.moves == sum(result.edge_usage.values())
        assert result.is_locally_balanced(problem)

    def test_per_edge_usage_counts_match_flow_across_the_bridge(self):
        """The bridge usage equals the net load that must end up on the
        light side, which pins down the per-edge counter exactly."""
        clique_size = 8
        problem, bridge_u, bridge_v = two_cliques_bottleneck(clique_size=clique_size)
        initial = {node: 0 for node in problem.nodes}
        for node in range(clique_size):
            initial[node] = 4
        result = locally_optimal_load_balancing(problem, initial)
        right_final = sum(
            result.loads[node] for node in range(clique_size, 2 * clique_size)
        )
        # Units only enter the right clique across the bridge, one per use.
        assert result.edge_usage[edge_key(bridge_u, bridge_v)] >= right_final
        assert right_final > 0
