"""Tests for the lower-bound constructions and indistinguishability checks."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.core.assignment import verify_maximal_matching
from repro.core.orientation import (
    arbitrary_complete_orientation,
    run_stable_orientation,
    sequential_flip_algorithm,
)
from repro.core.orientation.problem import OrientationProblem
from repro.core.token_dropping import run_proposal_algorithm, run_three_level_algorithm
from repro.graphs.generators import perfect_dary_tree, random_bipartite_customer_server
from repro.graphs.validation import (
    check_girth_at_least,
    check_perfect_dary_tree,
    is_regular,
)
from repro.lower_bounds import (
    height2_matching_instance,
    lemma61_violations,
    lemma62_witness,
    matching_from_height2_solution,
    radius_t_view,
    theorem63_instance_pair,
    view_signature,
    views_isomorphic,
)


class TestTheorem46Reduction:
    @pytest.mark.parametrize("seed", range(4))
    def test_height2_solution_is_maximal_matching(self, seed):
        graph = random_bipartite_customer_server(12, 12, 3, seed=seed)
        instance = height2_matching_instance(graph)
        assert instance.height == 1
        solution = run_proposal_algorithm(instance)
        solution.validate(instance).raise_if_invalid()
        matching = matching_from_height2_solution(graph, solution)
        assert verify_maximal_matching(graph, matching) == []

    def test_three_level_algorithm_also_solves_reduction(self):
        graph = random_bipartite_customer_server(10, 10, 3, seed=7)
        instance = height2_matching_instance(graph)
        solution = run_three_level_algorithm(instance)
        matching = matching_from_height2_solution(graph, solution)
        assert verify_maximal_matching(graph, matching) == []

    def test_tokens_sit_on_customer_side(self):
        graph = random_bipartite_customer_server(5, 4, 2, seed=1)
        instance = height2_matching_instance(graph)
        assert instance.num_tokens == 5
        assert all(node[0] == "U" for node in instance.tokens)


class TestTheorem63Constructions:
    def test_instance_pair_premises(self):
        regular, tree, root = theorem63_instance_pair(3, seed=1)
        assert is_regular(regular, 3)
        check_girth_at_least(regular, 4)
        depth = check_perfect_dary_tree(tree, 3, root)
        assert depth >= 1

    def test_delta_validation(self):
        with pytest.raises(ValueError):
            theorem63_instance_pair(2)

    def test_lemma61_holds_for_stable_orientations(self):
        tree, _root = perfect_dary_tree(3, 3)
        problem = OrientationProblem.from_networkx(tree)
        result = run_stable_orientation(problem)
        assert lemma61_violations(tree, result.orientation) == []

    def test_lemma61_detects_violation_on_unstable_orientation(self):
        tree, root = perfect_dary_tree(3, 2)
        problem = OrientationProblem.from_networkx(tree)
        # Orient every edge towards the root: the root's load is 3 > h+1 is
        # false (h(root)=2 so 3 <= 3); push one level deeper instead -- an
        # internal node with all edges inward has load 3 > h+1 = 2.
        orientation = arbitrary_complete_orientation(problem, towards="max")
        internal = next(
            n
            for n in tree.nodes()
            if n != root and tree.degree(n) == 3
        )
        for neighbor in tree.neighbors(internal):
            orientation.orient(internal, neighbor, head=internal)
        violations = lemma61_violations(tree, orientation)
        assert any(node == internal for node, _, _ in violations)

    @pytest.mark.parametrize("degree", [3, 4, 5])
    def test_lemma62_witness_exists(self, degree):
        regular, _, _ = theorem63_instance_pair(degree, seed=2)
        problem = OrientationProblem.from_networkx(regular)
        orientation, _ = sequential_flip_algorithm(problem)
        witness = lemma62_witness(orientation, degree)
        assert witness is not None
        assert orientation.load(witness) >= math.ceil(degree / 2)


class TestIndistinguishability:
    def test_radius_zero_view(self):
        graph = nx.path_graph(5)
        view = radius_t_view(graph, 2, 0)
        assert view.number_of_nodes() == 1
        assert view.nodes[2]["is_root"]

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            radius_t_view(nx.path_graph(3), 0, -1)

    def test_views_isomorphic_within_tree_interior(self):
        # Two interior nodes of a long path have isomorphic radius-1 views.
        graph = nx.path_graph(10)
        assert views_isomorphic(graph, 4, graph, 5, 1)
        # An endpoint's view differs from an interior node's view.
        assert not views_isomorphic(graph, 0, graph, 5, 1)

    def test_regular_graph_locally_looks_like_tree(self):
        """The heart of Theorem 6.3: for small t the views in the high-girth
        regular graph and in the interior of the deep Δ-ary tree agree."""
        regular, tree, root = theorem63_instance_pair(3, seed=3)
        # Pick a tree node far from both the root and the leaves.
        depths = nx.single_source_shortest_path_length(tree, root)
        interior = next(
            n
            for n, d in depths.items()
            if d == 2 and tree.degree(n) == 3
        )
        some_regular_node = next(iter(regular.nodes()))
        assert views_isomorphic(regular, some_regular_node, tree, interior, 1)
        assert view_signature(regular, some_regular_node, 1) == view_signature(
            tree, interior, 1
        )

    def test_view_signature_distinguishes_different_degrees(self):
        star = nx.star_graph(4)
        path = nx.path_graph(5)
        assert view_signature(star, 0, 1) != view_signature(path, 2, 1)
