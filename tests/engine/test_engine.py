"""Tests for the parallel experiment engine (spec, executor, cache, results)."""

from __future__ import annotations

import json

import pytest

from repro.engine import (
    ExperimentSpec,
    ProgressReporter,
    ResultCache,
    TaskError,
    TaskSpec,
    execute_task,
    library,
    measure_reference,
    open_cache,
    parameter_grid,
    resolve_measure,
    run_experiment,
    run_tasks,
)


def toy_measure(*, seed: int, delta: int, factor: int = 10) -> dict:
    """A deterministic, importable measure used throughout these tests."""
    return {"rounds": delta * factor + seed, "delta": delta}


def crashing_measure(*, seed: int, x: int) -> dict:
    raise RuntimeError("boom")


def crash_on_99(*, seed: int, x: int) -> dict:
    if x == 99:
        raise RuntimeError("boom at 99")
    return {"v": x + seed}


TOY_SPEC = ExperimentSpec(
    name="toy",
    measure=toy_measure,
    grid=parameter_grid(delta=[1, 2, 3]),
    seeds=(0, 1),
)


class TestTaskHashing:
    def test_same_spec_same_hash(self):
        first = TaskSpec("e", "m:f", {"delta": 2, "w": 5}, seed=3)
        second = TaskSpec("e", "m:f", {"w": 5, "delta": 2}, seed=3)
        assert first.task_hash() == second.task_hash()

    def test_hash_is_stable_across_expansions(self):
        hashes_a = [t.task_hash() for t in TOY_SPEC.tasks()]
        hashes_b = [t.task_hash() for t in TOY_SPEC.tasks()]
        assert hashes_a == hashes_b
        assert len(set(hashes_a)) == len(hashes_a)

    def test_changed_param_changes_hash(self):
        base = TaskSpec("e", "m:f", {"delta": 2}, seed=0)
        other_param = TaskSpec("e", "m:f", {"delta": 3}, seed=0)
        other_seed = TaskSpec("e", "m:f", {"delta": 2}, seed=1)
        other_measure = TaskSpec("e", "m:g", {"delta": 2}, seed=0)
        hashes = {
            base.task_hash(),
            other_param.task_hash(),
            other_seed.task_hash(),
            other_measure.task_hash(),
        }
        assert len(hashes) == 4

    def test_hash_ignores_experiment_name_and_index(self):
        renamed = TaskSpec("other", "m:f", {"delta": 2}, seed=0, index=7)
        base = TaskSpec("e", "m:f", {"delta": 2}, seed=0, index=0)
        assert renamed.task_hash() == base.task_hash()

    def test_unserialisable_params_rejected(self):
        task = TaskSpec("e", "m:f", {"obj": object()}, seed=0)
        with pytest.raises(TypeError):
            task.task_hash()

    def test_measure_source_is_part_of_the_hash(self):
        """Editing a measure's code must invalidate its cached results."""
        from repro.engine import measure_fingerprint

        fingerprint = measure_fingerprint(toy_measure)
        assert fingerprint is not None
        assert all(t.measure_fingerprint == fingerprint for t in TOY_SPEC.tasks())
        before = TaskSpec("e", "m:f", {"delta": 2}, seed=0, measure_fingerprint="aaaa")
        after = TaskSpec("e", "m:f", {"delta": 2}, seed=0, measure_fingerprint="bbbb")
        assert before.task_hash() != after.task_hash()


class TestMeasureReferences:
    def test_roundtrip(self):
        reference = measure_reference(toy_measure)
        assert reference.endswith(":toy_measure")
        assert resolve_measure(reference) is toy_measure

    def test_library_measures_resolve(self):
        reference = measure_reference(library.three_level_vs_generic)
        assert resolve_measure(reference) is library.three_level_vs_generic

    def test_lambda_is_not_resolvable(self):
        reference = measure_reference(lambda *, seed: {"v": seed})
        with pytest.raises(ValueError):
            resolve_measure(reference)

    def test_bad_references_rejected(self):
        with pytest.raises(ValueError):
            measure_reference("no-colon")
        with pytest.raises(ValueError):
            resolve_measure("nonexistent_module_xyz:f")
        with pytest.raises(ValueError):
            resolve_measure(f"{__name__}:does_not_exist")


class TestExecutor:
    def test_serial_execution_in_task_order(self):
        results = run_tasks(TOY_SPEC.tasks(), jobs=1)
        assert [r.values["rounds"] for r in results] == [10, 11, 20, 21, 30, 31]
        assert all(not r.cached for r in results)

    def test_parallel_matches_serial_exactly(self):
        """Acceptance: --jobs N>1 produces results identical to the serial run."""
        serial = run_tasks(TOY_SPEC.tasks(), jobs=1)
        parallel = run_tasks(TOY_SPEC.tasks(), jobs=2)
        assert [r.values for r in parallel] == [r.values for r in serial]
        assert [r.task_hash for r in parallel] == [r.task_hash for r in serial]
        assert [r.params for r in parallel] == [r.params for r in serial]

    def test_parallel_real_measure_matches_serial(self):
        spec = ExperimentSpec(
            name="E3-small",
            measure=library.three_level_vs_generic,
            grid=parameter_grid(delta=[2, 3]),
            seeds=(0,),
        )
        serial = run_experiment(spec, jobs=1)
        parallel = run_experiment(spec, jobs=2)
        assert [r.values for r in parallel] == [r.values for r in serial]

    def test_lambda_measure_runs_serially_but_not_parallel(self):
        spec = ExperimentSpec(
            name="lambda",
            measure=lambda *, seed, x: {"v": x + seed},
            grid=parameter_grid(x=[1, 2]),
            seeds=(0,),
        )
        assert [r.values["v"] for r in run_experiment(spec, jobs=1)] == [1, 2]
        with pytest.raises(ValueError):
            run_experiment(spec, jobs=2)

    def test_failures_are_not_swallowed(self):
        spec = ExperimentSpec(
            name="crash",
            measure=crashing_measure,
            grid=parameter_grid(x=[1]),
            seeds=(0,),
        )
        with pytest.raises(TaskError):
            run_experiment(spec, jobs=1)
        with pytest.raises(TaskError):
            run_experiment(spec, jobs=2)

    def test_failure_names_the_actual_task(self):
        spec = ExperimentSpec(
            name="crash",
            measure=crash_on_99,
            grid=parameter_grid(x=[1, 2, 99, 4]),
            seeds=(0,),
        )
        for jobs in (1, 2):
            with pytest.raises(TaskError, match=r"x=99") as excinfo:
                run_experiment(spec, jobs=jobs)
            assert "boom at 99" in str(excinfo.value)

    def test_parallel_failure_keeps_completed_siblings_cached(self, tmp_path):
        """Work finished before a crash survives into the cache for resume."""
        cache = ResultCache(tmp_path)
        spec = ExperimentSpec(
            name="crash",
            measure=crash_on_99,
            grid=parameter_grid(x=[1, 2, 3, 4, 5, 6, 7, 99]),
            seeds=(0,),
        )
        with pytest.raises(TaskError):
            run_experiment(spec, jobs=2, cache=cache)
        surviving = cache.load()
        assert len(surviving) >= 1
        failing_hash = spec.tasks()[-1].task_hash()
        assert failing_hash not in surviving
        # After "fixing the input", only the uncached tasks re-execute.
        fixed = ExperimentSpec(
            name="crash",
            measure=crash_on_99,
            grid=parameter_grid(x=[1, 2, 3, 4, 5, 6, 7]),
            seeds=(0,),
        )
        resumed = run_experiment(fixed, jobs=1, cache=cache)
        assert resumed.cached_count == len(surviving)
        assert resumed.executed_count == 7 - len(surviving)

    def test_execute_task_records_hash_and_timing(self):
        task = TOY_SPEC.tasks()[0]
        result = execute_task(task, toy_measure)
        assert result.task_hash == task.task_hash()
        assert result.elapsed_seconds >= 0.0
        assert result.values == {"rounds": 10, "delta": 1}


class TestCacheAndResume:
    def test_first_run_misses_second_run_all_hits(self, tmp_path):
        """Acceptance: a second --resume invocation executes zero new tasks."""
        cache = ResultCache(tmp_path)
        first = run_experiment(TOY_SPEC, jobs=1, cache=cache)
        assert first.executed_count == len(TOY_SPEC)
        assert first.cached_count == 0

        second = run_experiment(TOY_SPEC, jobs=2, cache=cache)
        assert second.executed_count == 0
        assert second.cached_count == len(TOY_SPEC)
        assert [r.values for r in second] == [r.values for r in first]

    def test_changed_param_is_a_cache_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_experiment(TOY_SPEC, jobs=1, cache=cache)
        widened = ExperimentSpec(
            name="toy",
            measure=toy_measure,
            grid=parameter_grid(delta=[1, 2, 3, 4]),
            seeds=(0, 1),
        )
        rerun = run_experiment(widened, jobs=1, cache=cache)
        assert rerun.executed_count == 2  # only delta=4 x seeds {0, 1}
        assert rerun.cached_count == len(TOY_SPEC)

    def test_no_resume_recomputes_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_experiment(TOY_SPEC, jobs=1, cache=cache)
        rerun = run_experiment(TOY_SPEC, jobs=1, cache=cache, resume=False)
        assert rerun.executed_count == len(TOY_SPEC)

    def test_partial_cache_resumes_interrupted_sweep(self, tmp_path):
        cache = ResultCache(tmp_path)
        tasks = TOY_SPEC.tasks()
        # Simulate an interrupt: only the first three tasks completed.
        for task in tasks[:3]:
            cache.append(execute_task(task, toy_measure).to_record())
        resumed = run_experiment(TOY_SPEC, jobs=1, cache=cache)
        assert resumed.cached_count == 3
        assert resumed.executed_count == len(tasks) - 3
        assert [r.values["rounds"] for r in resumed] == [10, 11, 20, 21, 30, 31]

    def test_corrupt_trailing_line_is_skipped(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_experiment(TOY_SPEC, jobs=1, cache=cache)
        with cache.path.open("a", encoding="utf-8") as handle:
            handle.write('{"task_hash": "truncat')  # crash mid-write
        assert len(cache.load()) == len(TOY_SPEC)
        rerun = run_experiment(TOY_SPEC, jobs=1, cache=cache)
        assert rerun.executed_count == 0

    def test_cache_file_is_json_lines(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_experiment(TOY_SPEC, jobs=1, cache=cache)
        lines = cache.path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == len(TOY_SPEC)
        record = json.loads(lines[0])
        assert {"task_hash", "params", "seed", "values", "elapsed_seconds"} <= set(
            record
        )

    def test_open_cache_none_passthrough(self, tmp_path):
        assert open_cache(None) is None
        assert open_cache(tmp_path).directory == tmp_path


class TestResultsAndProgress:
    def test_result_set_bridges_to_sweep_result(self):
        results = run_experiment(TOY_SPEC, jobs=1)
        sweep = results.to_sweep_result()
        xs, ys = sweep.series("delta", "rounds")
        assert xs == [1.0, 2.0, 3.0]
        assert ys == [10.5, 20.5, 30.5]
        assert results.series("delta", "rounds") == (xs, ys)

    def test_filter_and_values_of(self):
        results = run_experiment(TOY_SPEC, jobs=1)
        point = results.filter(delta=2)
        assert len(point) == 2
        assert point.values_of("rounds") == [20, 21]

    def test_progress_reporter_counts_cache_hits(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        run_experiment(TOY_SPEC, jobs=1, cache=cache)

        reporter = ProgressReporter(len(TOY_SPEC), label="toy")
        run_experiment(TOY_SPEC, jobs=1, cache=cache, progress=reporter)
        reporter.close()
        assert reporter.executed == 0
        assert reporter.cached == len(TOY_SPEC)
        err = capsys.readouterr().err
        assert "(0 executed, 6 from cache)" in err

    def test_progress_called_once_per_task(self):
        seen = []
        run_experiment(TOY_SPEC, jobs=1, progress=seen.append)
        assert len(seen) == len(TOY_SPEC)

    @staticmethod
    def _result(index: int = 0):
        from repro.engine.results import TaskResult

        return TaskResult(
            experiment="toy",
            params={"delta": 1},
            seed=0,
            values={},
            elapsed_seconds=0.0,
            task_hash="h",
            index=index,
        )

    def test_first_task_under_timer_resolution_has_no_eta(self, monkeypatch, capsys):
        # Regression: the very first completion can land with elapsed == 0
        # (coarse perf_counter) or denormal-tiny elapsed (rate overflows to
        # inf); the pace suffix must be dropped, never a ZeroDivisionError
        # or an "inf/s" line.
        import io

        import repro.engine.progress as progress_mod

        for frozen_delta in (0.0, 5e-324):
            clock = iter([100.0, 100.0 + frozen_delta, 100.0 + frozen_delta])
            monkeypatch.setattr(
                progress_mod.time, "perf_counter", lambda c=clock: next(c)
            )
            stream = io.StringIO()
            reporter = ProgressReporter(4, label="toy", stream=stream)
            reporter(self._result())  # must not raise
            line = stream.getvalue()
            assert "eta" not in line and "inf" not in line, line

    def test_summary_rate_is_finite_under_timer_resolution(self, monkeypatch):
        import repro.engine.progress as progress_mod

        clock = iter([100.0, 100.0, 100.0 + 5e-324])
        monkeypatch.setattr(
            progress_mod.time, "perf_counter", lambda: next(clock)
        )
        reporter = ProgressReporter(1, label="toy", enabled=False)
        reporter(self._result())
        summary = reporter.summary()
        # The "(N executed, M from cache)" clause is the CI-grepped format.
        assert "(1 executed, 0 from cache)" in summary
        assert "inf" not in summary

    def test_eta_formatting_tiers(self):
        assert ProgressReporter._format_eta(30.0) == "30s"
        assert ProgressReporter._format_eta(90.0) == "1.5m"
        assert ProgressReporter._format_eta(7200.0) == "2.0h"
        assert ProgressReporter._format_eta(float("inf")) == "?"


class TestSweepAdapter:
    def test_run_sweep_supports_jobs_and_cache(self, tmp_path):
        from repro.analysis import run_sweep

        grid = parameter_grid(delta=[1, 2])
        serial = run_sweep("adapter", toy_measure, grid, seeds=(0,), jobs=1)
        parallel = run_sweep(
            "adapter", toy_measure, grid, seeds=(0,), jobs=2, cache_dir=str(tmp_path)
        )
        assert [r.values for r in parallel.records] == [
            r.values for r in serial.records
        ]

        messages = []
        resumed = run_sweep(
            "adapter",
            toy_measure,
            grid,
            seeds=(0,),
            cache_dir=str(tmp_path),
            progress=messages.append,
        )
        assert len(resumed) == 2
        assert all("[cache]" in message for message in messages)
