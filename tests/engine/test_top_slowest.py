"""The --top-slowest hot-spot report of scripts/run_experiments.py."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

from repro.engine.results import TaskResult

SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "run_experiments.py"
spec = importlib.util.spec_from_file_location("run_experiments", SCRIPT)
run_experiments = importlib.util.module_from_spec(spec)
# dataclass decorators resolve their module through sys.modules at class
# creation time, so the script must be registered before execution.
sys.modules[spec.name] = run_experiments
spec.loader.exec_module(run_experiments)


def result(experiment, elapsed, seed=0, cached=False, **params):
    return TaskResult(
        experiment=experiment,
        params=params,
        seed=seed,
        values={},
        elapsed_seconds=elapsed,
        task_hash=f"{experiment}-{elapsed}",
        cached=cached,
    )


def test_report_lists_slowest_first(capsys):
    opts = run_experiments.EngineOptions()
    opts.collected = [
        result("E1", 0.5, delta=2),
        result("E3", 2.5, delta=8),
        result("E1", 1.25, delta=4, cached=True),
        result("E8", 0.01, skew=1.0),
    ]
    run_experiments.report_top_slowest(opts, 2)
    out = capsys.readouterr().out
    assert "Top 2 slowest tasks" in out
    lines = [line for line in out.splitlines() if line.startswith("| E")]
    assert lines[0].startswith("| E3 | delta=8 | 0 | 2.500 | run |")
    assert lines[1].startswith("| E1 | delta=4 | 0 | 1.250 | cache |")
    assert "E8" not in out


def test_report_disabled_or_empty_prints_nothing(capsys):
    opts = run_experiments.EngineOptions()
    run_experiments.report_top_slowest(opts, 5)
    opts.collected = [result("E1", 1.0)]
    run_experiments.report_top_slowest(opts, 0)
    assert capsys.readouterr().out == ""


def test_cli_exposes_top_slowest_flag():
    parser = run_experiments.build_parser()
    args = parser.parse_args(["--top-slowest", "7"])
    assert args.top_slowest == 7
    assert parser.parse_args([]).top_slowest == 0


def test_cli_exposes_json_flag():
    parser = run_experiments.build_parser()
    assert parser.parse_args(["--top-slowest", "3", "--json"]).as_json
    assert not parser.parse_args([]).as_json


def test_json_mode_writes_report_next_to_cache(tmp_path, capsys):
    import json

    opts = run_experiments.EngineOptions(cache_dir=str(tmp_path))
    opts.collected = [
        result("E1", 0.5, delta=2),
        result("E3", 2.5, delta=8),
        result("E1", 1.25, delta=4, cached=True),
    ]
    run_experiments.report_top_slowest(opts, 2, as_json=True)

    # The markdown report still prints alongside the JSON artifact.
    assert "Top 2 slowest tasks" in capsys.readouterr().out
    payload = json.loads((tmp_path / "top_slowest.json").read_text())
    assert payload["count"] == 2
    assert [t["experiment"] for t in payload["tasks"]] == ["E3", "E1"]
    assert payload["tasks"][0] == {
        "experiment": "E3",
        "params": {"delta": 8},
        "seed": 0,
        "elapsed_seconds": 2.5,
        "cached": False,
    }
    assert payload["tasks"][1]["cached"] is True


def test_json_mode_defaults_to_working_directory(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    opts = run_experiments.EngineOptions()
    opts.collected = [result("E1", 0.5, delta=2)]
    run_experiments.report_top_slowest(opts, 1, as_json=True)
    capsys.readouterr()
    assert (tmp_path / "top_slowest.json").exists()
