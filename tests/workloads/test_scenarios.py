"""Tests for the named workload scenarios."""

from __future__ import annotations

import pytest

from repro.core.orientation.problem import OrientationProblem
from repro.core.token_dropping import TokenDroppingInstance
from repro.graphs.bipartite import CustomerServerGraph
from repro.graphs.compact import CompactBipartite, CompactGraph
from repro.workloads import (
    bounded_degree_token_dropping,
    caterpillar_orientation,
    datacenter_assignment,
    figure2_game,
    hard_matching_bipartite,
    layered_dag_orientation,
    long_path_orientation,
    random_token_dropping,
    regular_orientation,
    sensor_network_orientation,
    two_cliques_bottleneck,
    uniform_assignment,
)


class TestAssignmentScenarios:
    def test_datacenter_assignment_shape(self):
        graph = datacenter_assignment(num_jobs=50, num_servers=10, replicas=3, seed=1)
        assert isinstance(graph, CustomerServerGraph)
        assert len(graph.customers) == 50
        assert len(graph.servers) == 10
        assert graph.max_customer_degree() == 3

    def test_datacenter_assignment_reproducible(self):
        g1 = datacenter_assignment(seed=4)
        g2 = datacenter_assignment(seed=4)
        assert set(g1.edges()) == set(g2.edges())

    def test_uniform_assignment_is_control(self):
        skewed = datacenter_assignment(num_jobs=100, num_servers=20, seed=2)
        uniform = uniform_assignment(num_jobs=100, num_servers=20, seed=2)
        top_skewed = max(skewed.server_degree(s) for s in skewed.servers)
        top_uniform = max(uniform.server_degree(s) for s in uniform.servers)
        assert top_skewed >= top_uniform

    def test_hard_matching_bipartite(self):
        graph = hard_matching_bipartite(side=15, degree=3, seed=0)
        assert len(graph.customers) == 15
        assert len(graph.servers) == 15


class TestOrientationScenarios:
    def test_sensor_network(self):
        problem = sensor_network_orientation(num_nodes=60, max_degree=6, seed=1)
        assert isinstance(problem, OrientationProblem)
        assert problem.max_degree() <= 6

    def test_regular_orientation_fixes_parity(self):
        problem = regular_orientation(degree=3, num_nodes=11, seed=0)
        assert problem.max_degree() == 3

    def test_caterpillar_and_path(self):
        assert caterpillar_orientation(spine=5, legs=2).num_edges() == 4 + 10
        assert long_path_orientation(length=20).num_edges() == 19

    def test_two_cliques_bottleneck(self):
        problem, u, v = two_cliques_bottleneck(clique_size=5)
        assert problem.has_edge(u, v)
        assert problem.num_edges() == 2 * 10 + 1
        with pytest.raises(ValueError):
            two_cliques_bottleneck(clique_size=1)


class TestCompactEmission:
    """``compact=True`` emits the same seeded instance in CSR form."""

    def test_layered_dag_orientation_matches_token_dropping_substrate(self):
        problem = layered_dag_orientation(num_levels=5, width=6, seed=3)
        game = random_token_dropping(
            num_levels=5, width=6, edge_probability=0.4, seed=3
        )
        assert isinstance(problem, OrientationProblem)
        assert problem.num_edges() == len(game.graph.edges)

    @pytest.mark.parametrize(
        "builder,kwargs",
        [
            (sensor_network_orientation, dict(num_nodes=40, seed=2)),
            (regular_orientation, dict(degree=4, num_nodes=20, seed=2)),
            (caterpillar_orientation, dict(spine=8, legs=2)),
            (long_path_orientation, dict(length=25)),
            (layered_dag_orientation, dict(num_levels=4, width=5, seed=2)),
        ],
    )
    def test_orientation_builders_emit_equal_compact_instances(self, builder, kwargs):
        reference = builder(**kwargs)
        compact = builder(**kwargs, compact=True)
        assert isinstance(compact, CompactGraph)
        assert compact.to_orientation_problem() == reference

    @pytest.mark.parametrize(
        "builder,kwargs",
        [
            (datacenter_assignment, dict(num_jobs=40, num_servers=8, seed=5)),
            (uniform_assignment, dict(num_jobs=40, num_servers=8, seed=5)),
            (hard_matching_bipartite, dict(side=12, degree=3, seed=5)),
        ],
    )
    def test_assignment_builders_emit_equal_compact_instances(self, builder, kwargs):
        reference = builder(**kwargs)
        compact = builder(**kwargs, compact=True)
        assert isinstance(compact, CompactBipartite)
        assert compact.to_customer_server_graph() == reference


class TestScenarioDeterminism:
    """Every builder with a fixed seed yields an identical instance twice.

    The experiment engine's cache keys and its parallel-vs-serial
    equivalence both rest on this property, so it is pinned per scenario.
    """

    @staticmethod
    def _orientation_fingerprint(problem):
        return sorted(tuple(sorted(edge)) for edge in problem.edges)

    def test_datacenter_assignment(self):
        a, b = (
            datacenter_assignment(num_jobs=40, num_servers=8, seed=7) for _ in range(2)
        )
        assert sorted(a.edges()) == sorted(b.edges())

    def test_uniform_assignment(self):
        a, b = (
            uniform_assignment(num_jobs=40, num_servers=8, seed=7) for _ in range(2)
        )
        assert sorted(a.edges()) == sorted(b.edges())

    def test_hard_matching_bipartite(self):
        a, b = (hard_matching_bipartite(side=12, degree=3, seed=5) for _ in range(2))
        assert sorted(a.edges()) == sorted(b.edges())

    def test_sensor_network_orientation(self):
        a, b = (
            sensor_network_orientation(num_nodes=50, max_degree=5, seed=9)
            for _ in range(2)
        )
        assert self._orientation_fingerprint(a) == self._orientation_fingerprint(b)

    def test_regular_orientation(self):
        a, b = (regular_orientation(degree=4, num_nodes=20, seed=9) for _ in range(2))
        assert self._orientation_fingerprint(a) == self._orientation_fingerprint(b)

    def test_caterpillar_and_path_are_parameter_deterministic(self):
        a, b = (caterpillar_orientation(spine=6, legs=3) for _ in range(2))
        assert self._orientation_fingerprint(a) == self._orientation_fingerprint(b)
        p, q = (long_path_orientation(length=15) for _ in range(2))
        assert self._orientation_fingerprint(p) == self._orientation_fingerprint(q)

    def test_two_cliques_bottleneck(self):
        (a, u1, v1), (b, u2, v2) = (
            two_cliques_bottleneck(clique_size=4) for _ in range(2)
        )
        assert (u1, v1) == (u2, v2)
        assert self._orientation_fingerprint(a) == self._orientation_fingerprint(b)

    @staticmethod
    def _game_fingerprint(instance):
        graph = instance.graph
        return (
            sorted(graph.nodes),
            sorted(graph.edges),
            sorted(instance.tokens),
        )

    def test_random_token_dropping(self):
        a, b = (random_token_dropping(num_levels=5, width=6, seed=3) for _ in range(2))
        assert self._game_fingerprint(a) == self._game_fingerprint(b)

    def test_bounded_degree_token_dropping(self):
        a, b = (
            bounded_degree_token_dropping(num_levels=4, degree=4, seed=3)
            for _ in range(2)
        )
        assert self._game_fingerprint(a) == self._game_fingerprint(b)

    def test_figure2_game(self):
        assert self._game_fingerprint(figure2_game()) == self._game_fingerprint(
            figure2_game()
        )

    def test_different_seeds_differ(self):
        a = random_token_dropping(num_levels=5, width=6, seed=0)
        b = random_token_dropping(num_levels=5, width=6, seed=1)
        assert self._game_fingerprint(a) != self._game_fingerprint(b)


class TestTokenDroppingScenarios:
    def test_random_token_dropping(self):
        instance = random_token_dropping(num_levels=5, width=6, seed=3)
        assert isinstance(instance, TokenDroppingInstance)
        assert instance.height == 4

    def test_bounded_degree_token_dropping_respects_cap(self):
        for degree in (2, 4, 6):
            instance = bounded_degree_token_dropping(
                num_levels=4, degree=degree, seed=1
            )
            assert instance.max_degree <= degree

    def test_figure2_game(self):
        assert figure2_game().num_tokens == 8
