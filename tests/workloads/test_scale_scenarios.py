"""The million-node scale family: streaming builders vs the dict path.

The scale scenarios (:func:`scale_layered_orientation`,
:func:`scale_token_dropping`) must be *boring* at small n: the streamed
CSR instance equals what the dict-path builders produce from the very
same edge stream, and the streamed dense game equals what interning the
equivalent :class:`TokenDroppingInstance` produces — bit for bit, so
every exactness argument of the compact kernels transfers unchanged to
the 10^6 tiers.  The construction-budget test is the satellite guard
that keeps the whole pipeline O(n + m): any reintroduced per-candidate
scan (the classic generators draw one RNG sample per *candidate*, i.e.
O(L·w²) ≈ 196M draws at the 100k tier) or per-edge dict blows through a
budget the streaming path undercuts by an order of magnitude.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core.orientation._kernels import stable_orientation_kernel
from repro.core.token_dropping._kernels import (
    _DenseGame,
    proposal_game_kernel,
)
from repro.core.token_dropping.game import (
    TokenDroppingInstance,
    random_token_placement,
)
from repro.graphs.compact import CompactGraph
from repro.graphs.generators import layered_dag_edge_stream
from repro.graphs.layered import LayeredGraph
from repro.workloads.scenarios import (
    SCALE_TIER_PARAMS,
    scale_layered_orientation,
    scale_token_dropping,
)

#: Small-n members of the scale family (same generator, same id scheme).
SMALL = dict(num_levels=10, width=40, edge_probability=0.05, seed=3)
TEN_K = dict(num_levels=50, width=200, edge_probability=0.01, seed=11)


def assert_same_compact_graph(a: CompactGraph, b: CompactGraph) -> None:
    assert a.node_ids == b.node_ids
    assert a.index_of == b.index_of
    assert a.indptr == b.indptr
    assert a.indices == b.indices
    assert a.slot_edge == b.slot_edge
    assert a.edge_u == b.edge_u
    assert a.edge_v == b.edge_v


class TestEdgeStreamGenerator:
    def test_deterministic_and_duplicate_free(self):
        first = list(layered_dag_edge_stream(**TEN_K))
        second = list(layered_dag_edge_stream(**TEN_K))
        assert first == second
        assert len(set(first)) == len(first)

    def test_edges_connect_adjacent_levels(self):
        width = SMALL["width"]
        for child, parent in layered_dag_edge_stream(**SMALL):
            assert parent // width == child // width + 1

    def test_probability_extremes(self):
        assert list(layered_dag_edge_stream(3, 4, 0.0, seed=1)) == []
        full = list(layered_dag_edge_stream(3, 4, 1.0, seed=1))
        assert len(full) == 2 * 16
        assert len(set(full)) == len(full)

    def test_density_tracks_probability(self):
        # Geometric-skip sampling must reproduce the Bernoulli density:
        # 49 * 200 * 200 candidates at p=0.01 give ~19,600 edges.
        m = sum(1 for _ in layered_dag_edge_stream(**TEN_K))
        expected = 49 * 200 * 200 * TEN_K["edge_probability"]
        assert 0.9 * expected < m < 1.1 * expected

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            list(layered_dag_edge_stream(0, 4, 0.5))
        with pytest.raises(ValueError):
            list(layered_dag_edge_stream(3, 0, 0.5))
        with pytest.raises(ValueError):
            list(layered_dag_edge_stream(3, 4, 1.5))


class TestScaleOrientation:
    def test_stream_equals_dict_path_at_ten_thousand_nodes(self):
        streamed = scale_layered_orientation(**TEN_K)
        edges = list(layered_dag_edge_stream(**TEN_K))
        n = TEN_K["num_levels"] * TEN_K["width"]
        assert streamed.num_nodes == n == 10_000
        assert_same_compact_graph(
            streamed, CompactGraph.from_edges(edges, nodes=range(n))
        )

    def test_isolated_nodes_survive(self):
        sparse = scale_layered_orientation(
            num_levels=4, width=50, edge_probability=0.005, seed=0
        )
        assert sparse.num_nodes == 200
        assert any(sparse.degree(i) == 0 for i in range(sparse.num_nodes))

    def test_orientation_kernel_runs_on_scale_instance(self):
        graph = scale_layered_orientation(**SMALL)
        heads, load, phases, _, _, _ = stable_orientation_kernel(graph, seed=0)
        assert all(h >= 0 for h in heads)
        assert max(load) <= graph.max_degree()


class TestScaleTokenDropping:
    def test_game_equals_interned_dict_instance(self):
        compact = scale_token_dropping(**SMALL, token_fraction=0.6)
        n = SMALL["num_levels"] * SMALL["width"]
        levels = {node: node // SMALL["width"] for node in range(n)}
        graph = LayeredGraph(
            levels=levels, edges=list(layered_dag_edge_stream(**SMALL))
        )
        tokens = random_token_placement(
            graph, 0.6, random.Random(f"{SMALL['seed']}:tokens")
        )
        reference, node_ids, _ = _DenseGame.from_instance(
            TokenDroppingInstance(graph, tokens)
        )
        assert compact.node_ids == node_ids
        assert compact.game.has_token == reference.has_token
        assert list(compact.game.level) == list(reference.level)
        for attr in (
            "par_ptr",
            "par_node",
            "par_edge",
            "chi_ptr",
            "chi_node",
            "chi_edge",
        ):
            assert list(getattr(compact.game, attr)) == list(
                getattr(reference, attr)
            ), attr
        assert compact.theoretical_round_bound() == TokenDroppingInstance(
            graph, tokens
        ).theoretical_round_bound()

    def test_proposal_kernel_completes_within_theorem_bound(self):
        compact = scale_token_dropping(**SMALL, token_fraction=0.6)
        max_rounds = 3 * compact.theoretical_round_bound()
        *_, engine = proposal_game_kernel(
            compact.game, max_rounds, tie_break="min", count_messages=False
        )
        assert engine.rounds <= max_rounds
        assert engine.n_alive == 0

    def test_token_fraction_validated(self):
        with pytest.raises(ValueError):
            scale_token_dropping(**SMALL, token_fraction=1.5)


#: Wall-time budget for building the 100k tier (~100k nodes / ~196k
#: edges).  The streaming path does this in roughly a second; any
#: O(L·w²) candidate scan (196M RNG draws) or per-edge dict detour takes
#: well over a minute.
CONSTRUCTION_BUDGET_SECONDS = 20.0


def test_100k_tier_construction_stays_linear():
    params = SCALE_TIER_PARAMS["100k"]
    start = time.perf_counter()
    graph = scale_layered_orientation(**params)
    elapsed = time.perf_counter() - start
    assert graph.num_nodes == 100_000
    assert graph.num_edges > 150_000
    assert elapsed < CONSTRUCTION_BUDGET_SECONDS, (
        f"100k-tier construction took {elapsed:.1f}s; the streaming "
        "pipeline must stay O(n + m) end to end"
    )
