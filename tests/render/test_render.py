"""Tests for the ASCII and DOT renderers."""

from __future__ import annotations

from repro.core.assignment import Assignment
from repro.core.orientation import Orientation, OrientationProblem
from repro.core.token_dropping import figure2_instance, run_proposal_algorithm
from repro.graphs.bipartite import CustomerServerGraph
from repro.render import (
    load_bar_chart,
    orientation_to_dot,
    render_assignment,
    render_layered_game,
    render_orientation,
    render_traversals,
    token_dropping_to_dot,
)


class TestAsciiRendering:
    def test_render_layered_game_marks_tokens(self):
        instance = figure2_instance()
        text = render_layered_game(instance)
        assert "level  4" in text
        assert "[*]" in text and "[ ]" in text
        # Exactly as many occupied markers as tokens.
        assert text.count("[*]") == instance.num_tokens

    def test_render_layered_game_with_custom_occupancy(self):
        instance = figure2_instance()
        text = render_layered_game(instance, occupied=[])
        assert "[*]" not in text

    def test_render_traversals_with_and_without_tails(self):
        instance = figure2_instance()
        solution = run_proposal_algorithm(instance)
        plain = render_traversals(solution)
        assert plain.count("token") == instance.num_tokens
        with_tails = render_traversals(solution, include_tails=True)
        assert len(with_tails) >= len(plain)

    def test_render_traversals_empty(self):
        from repro.core.token_dropping import solution_from_paths

        assert "no tokens" in render_traversals(solution_from_paths({}))

    def test_render_orientation(self):
        problem = OrientationProblem(edges=[(1, 2), (2, 3)])
        orientation = Orientation(problem)
        orientation.orient(1, 2, head=2)
        orientation.orient(2, 3, head=2)
        text = render_orientation(orientation)
        assert "UNHAPPY" in text
        assert "loads:" in text

    def test_render_orientation_shows_unoriented(self):
        problem = OrientationProblem(edges=[(1, 2)])
        text = render_orientation(Orientation(problem))
        assert "unoriented" in text

    def test_render_assignment_and_truncation(self):
        graph = CustomerServerGraph(
            customers=[f"c{i}" for i in range(10)],
            servers=["s0", "s1"],
            edges=[(f"c{i}", "s0") for i in range(10)]
            + [(f"c{i}", "s1") for i in range(10)],
        )
        assignment = Assignment(graph, choices={f"c{i}": "s0" for i in range(10)})
        text = render_assignment(assignment, max_rows=3)
        assert "more customers" in text
        assert "histogram" in text

    def test_load_bar_chart(self):
        chart = load_bar_chart({"a": 4, "b": 2, "c": 0})
        assert chart.count("\n") == 2
        assert "####" in chart
        assert load_bar_chart({}) == "(no servers)"


class TestDotExport:
    def test_token_dropping_dot_structure(self):
        instance = figure2_instance()
        solution = run_proposal_algorithm(instance)
        dot = token_dropping_to_dot(instance, solution)
        assert dot.startswith("digraph token_dropping {")
        assert dot.rstrip().endswith("}")
        assert "rank=same" in dot
        # Consumed edges are highlighted.
        assert "color=orange" in dot
        assert "doublecircle" in dot

    def test_token_dropping_dot_without_solution(self):
        dot = token_dropping_to_dot(figure2_instance())
        assert "color=orange" not in dot
        assert "fillcolor=gray80" in dot

    def test_orientation_dot(self):
        problem = OrientationProblem(edges=[(1, 2), (2, 3), (1, 3)])
        orientation = Orientation(problem)
        orientation.orient(1, 2, head=2)
        orientation.orient(2, 3, head=2)
        dot = orientation_to_dot(orientation)
        assert dot.startswith("digraph orientation {")
        assert "load=" in dot
        assert "color=red" in dot  # the unhappy edge
        assert "style=dashed" in dot  # the unoriented edge
