"""Worker-count resolution: argument > ``REPRO_WORKERS`` > CPU count."""

from __future__ import annotations

import pytest

from repro.parallel import WORKERS_ENV_VAR, resolve_workers


def test_argument_wins_over_env(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV_VAR, "8")
    assert resolve_workers(3) == 3


def test_env_wins_over_cpu_count(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV_VAR, "6")
    assert resolve_workers() == 6


def test_defaults_to_cpu_count(monkeypatch):
    import repro.parallel as par

    monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
    monkeypatch.setattr(par.os, "cpu_count", lambda: 5)
    assert resolve_workers() == 5


def test_blank_env_is_ignored(monkeypatch):
    import repro.parallel as par

    monkeypatch.setenv(WORKERS_ENV_VAR, "  ")
    monkeypatch.setattr(par.os, "cpu_count", lambda: 2)
    assert resolve_workers() == 2


@pytest.mark.parametrize("bad", [0, -1])
def test_non_positive_counts_are_rejected(bad):
    with pytest.raises(ValueError, match="workers must be >= 1"):
        resolve_workers(bad)
