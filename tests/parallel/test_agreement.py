"""Bit-for-bit serial vs ``compact-parallel`` agreement.

The whole contract of :mod:`repro.parallel` is that the parallel kernel
is *indistinguishable* from the serial one: same heads, same loads, same
phase count, same per-phase round counts.  This suite asserts exact
tuple equality on 100+ seeded random instances (forcing real pool
dispatch with ``min_edges=0`` / ``min_game_edges=0`` so even tiny games
cross the process boundary), plus the structural corner cases: mixed
Python types as node ids, edgeless graphs, and single-component
worst cases where no parallelism is available at all.
"""

from __future__ import annotations

import random

import pytest

from repro.core.orientation._kernels import stable_orientation_kernel
from repro.core.orientation.phases import run_stable_orientation
from repro.core.orientation.problem import OrientationProblem
from repro.graphs.compact import CompactGraph
from repro.parallel import parallel_stable_orientation_kernel

#: Force real dispatch: two workers, no instance-size or game-size floor.
FORCE = dict(workers=2, min_edges=0, min_game_edges=0)

TIE_BREAKS = ("min", "max", "random")

#: 10 seed blocks x 4 seeds x 3 tie-breaks = 120 random instances.
SEED_BLOCKS = range(10)
SEEDS_PER_BLOCK = 4


def _random_problem(seed: int, n: int = 40, p: float = 0.12) -> OrientationProblem:
    rng = random.Random(seed)
    edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if rng.random() < p
    ]
    return OrientationProblem(edges, nodes=range(n))


def _assert_kernels_agree(graph: CompactGraph, tie_break: str, seed: int) -> None:
    serial = stable_orientation_kernel(graph, tie_break=tie_break, seed=seed)
    parallel = parallel_stable_orientation_kernel(
        graph, tie_break=tie_break, seed=seed, **FORCE
    )
    assert parallel == serial


@pytest.mark.parametrize("tie_break", TIE_BREAKS)
@pytest.mark.parametrize("block", SEED_BLOCKS)
def test_random_instances_agree(block, tie_break):
    """Seeded G(n, p) instances: the parallel run is bit for bit serial."""
    for seed in range(block * SEEDS_PER_BLOCK, (block + 1) * SEEDS_PER_BLOCK):
        graph = CompactGraph.from_orientation_problem(_random_problem(seed))
        _assert_kernels_agree(graph, tie_break, seed)


@pytest.mark.parametrize("tie_break", TIE_BREAKS)
def test_mixed_type_node_ids_agree(tie_break):
    """Ids of mixed Python types survive the worker round-trip.

    Workers never see the original ids (components travel as dense
    ints; random tie-breaks get the pre-rendered reprs), so strings,
    ints, tuples, and floats must all come back identical.
    """
    nodes = ["alpha", 7, ("srv", 1), 3.5, "beta", 0, ("srv", 2), -2]
    rng = random.Random(99)
    edges = [
        (u, v)
        for i, u in enumerate(nodes)
        for v in nodes[i + 1 :]
        if rng.random() < 0.5
    ]
    graph = CompactGraph.from_orientation_problem(
        OrientationProblem(edges, nodes=nodes)
    )
    _assert_kernels_agree(graph, tie_break, seed=99)


def test_edgeless_graph_agrees():
    """No edges: zero phases, and the pool path must not trip on m=0."""
    graph = CompactGraph.from_orientation_problem(
        OrientationProblem([], nodes=range(5))
    )
    _assert_kernels_agree(graph, "min", seed=0)
    heads, loads, phases, *_ = parallel_stable_orientation_kernel(
        graph, seed=0, **FORCE
    )
    assert phases == 0
    assert list(loads) == [0] * 5


@pytest.mark.parametrize("tie_break", TIE_BREAKS)
def test_single_component_path_agrees(tie_break):
    """A path is one connected component: no parallelism to exploit."""
    edges = [(i, i + 1) for i in range(200)]
    graph = CompactGraph.from_orientation_problem(
        OrientationProblem(edges, nodes=range(201))
    )
    _assert_kernels_agree(graph, tie_break, seed=3)


def test_single_component_star_agrees():
    """A star concentrates every game edge on one hub node."""
    edges = [("hub", i) for i in range(80)]
    graph = CompactGraph.from_orientation_problem(
        OrientationProblem(edges, nodes=["hub", *range(80)])
    )
    _assert_kernels_agree(graph, "min", seed=0)


def test_worker_count_does_not_change_results():
    """Results are a function of the instance, never of the pool size."""
    graph = CompactGraph.from_orientation_problem(_random_problem(7))
    reference = parallel_stable_orientation_kernel(
        graph, seed=7, workers=2, min_edges=0, min_game_edges=0
    )
    other = parallel_stable_orientation_kernel(
        graph, seed=7, workers=3, min_edges=0, min_game_edges=0
    )
    assert other == reference


def _result_signature(result):
    return (
        sorted(result.orientation.oriented_edges(), key=repr),
        result.phases,
        result.game_rounds,
        result.communication_rounds,
        result.per_phase,
    )


def test_backend_compact_parallel_matches_compact(monkeypatch):
    """``backend="compact-parallel"`` equals ``backend="compact"``."""
    # Force the backend past its size floor so a real pool spins up.
    monkeypatch.setenv("REPRO_PARALLEL_MIN_EDGES", "0")
    monkeypatch.setenv("REPRO_WORKERS", "2")
    problem = _random_problem(11)
    serial = run_stable_orientation(problem, seed=11, backend="compact")
    parallel = run_stable_orientation(
        problem, seed=11, backend="compact-parallel"
    )
    assert _result_signature(parallel) == _result_signature(serial)


def test_env_backend_selects_parallel(monkeypatch):
    """``REPRO_BACKEND=compact-parallel`` routes the default dispatch."""
    monkeypatch.setenv("REPRO_BACKEND", "compact-parallel")
    monkeypatch.setenv("REPRO_PARALLEL_MIN_EDGES", "0")
    monkeypatch.setenv("REPRO_WORKERS", "2")
    problem = _random_problem(12)
    via_env = run_stable_orientation(problem, seed=12)
    monkeypatch.delenv("REPRO_BACKEND")
    serial = run_stable_orientation(problem, seed=12, backend="compact")
    assert _result_signature(via_env) == _result_signature(serial)


def test_small_instances_never_touch_the_pool(monkeypatch):
    """Below ``min_edges`` the parallel entry point is pure serial."""
    import repro.parallel as par

    def _boom(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("PhaseGamePool created below the size floor")

    monkeypatch.setattr(par, "PhaseGamePool", _boom)
    graph = CompactGraph.from_orientation_problem(_random_problem(5))
    serial = stable_orientation_kernel(graph, seed=5)
    assert parallel_stable_orientation_kernel(graph, seed=5, workers=4) == serial
    # workers=1 skips the pool even with the floor removed.
    assert (
        parallel_stable_orientation_kernel(
            graph, seed=5, workers=1, min_edges=0
        )
        == serial
    )
