"""Shared pytest fixtures for the reproduction test suite."""

from __future__ import annotations

import random

import pytest


@pytest.fixture
def rng() -> random.Random:
    """A deterministically seeded RNG shared by randomised tests."""
    return random.Random(0xC0FFEE)


@pytest.fixture(params=[0, 1, 2])
def seed(request: pytest.FixtureRequest) -> int:
    """A small set of seeds for tests that want a few independent draws."""
    return request.param
