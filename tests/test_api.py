"""The public facade (:mod:`repro.api`) and its top-level re-exports.

The facade is a *thin* layer: every result it returns must agree
bit-for-bit with the historical entry points it delegates to
(``run_stable_orientation``, ``synchronous_repair_orientation``,
``run_bounded_stable_orientation``), whose signatures are unchanged.
"""

from __future__ import annotations

import pytest

import repro
from repro.api import ALGORITHMS, Instance, Solved, solve
from repro.core.orientation import (
    DynamicOrientation,
    run_bounded_stable_orientation,
    run_stable_orientation,
    synchronous_repair_orientation,
)
from repro.graphs.compact import CompactGraph
from repro.workloads.scenarios import (
    ORIENTATION_FAMILIES,
    build_orientation_instance,
    layered_dag_orientation,
)


def _instance():
    return Instance.build(
        "layered", num_levels=6, width=10, edge_probability=0.3, seed=7
    )


class TestInstance:
    def test_build_routes_through_the_family_registry(self):
        instance = _instance()
        direct = layered_dag_orientation(
            num_levels=6, width=10, edge_probability=0.3, seed=7, compact=True
        )
        assert tuple(instance.graph.node_ids) == tuple(direct.node_ids)
        assert list(instance.graph.edge_u) == list(direct.edge_u)
        assert instance.num_nodes == direct.num_nodes
        assert instance.num_edges == direct.num_edges

    def test_every_registered_family_is_buildable(self):
        small = {
            "sensor-network": dict(num_nodes=20, max_degree=4, seed=1),
            "regular": dict(degree=3, num_nodes=12, seed=1),
            "caterpillar": dict(spine=6, legs=2),
            "long-path": dict(length=15),
            "layered": dict(num_levels=3, width=4, seed=1),
            "orientation-smoke": dict(),
            "churn-smoke": dict(),
            "scale-layered": dict(
                num_levels=3, width=10, edge_probability=0.1, seed=1
            ),
        }
        assert set(small) == set(ORIENTATION_FAMILIES)
        for family, params in small.items():
            graph = build_orientation_instance(family, **params)
            assert isinstance(graph, CompactGraph), family
            assert graph.num_nodes > 0, family

    def test_unknown_family_lists_the_known_ones(self):
        with pytest.raises(ValueError, match="layered"):
            Instance.build("no-such-family")

    def test_from_edges_and_from_problem_agree(self):
        edges = [(1, 2), (2, 3), (1, 3), (3, 4)]
        via_edges = Instance.from_edges(edges)
        problem = via_edges.graph.to_orientation_problem()
        via_problem = Instance.from_problem(problem)
        assert tuple(via_edges.graph.node_ids) == tuple(
            via_problem.graph.node_ids
        )
        assert via_edges.num_edges == via_problem.num_edges == 4

    def test_wrapping_non_graph_rejected(self):
        with pytest.raises(TypeError):
            Instance({"not": "a graph"})

    def test_families_listing(self):
        assert Instance.families() == tuple(sorted(ORIENTATION_FAMILIES))


class TestSolve:
    def test_algorithms_constant_matches_dispatch(self):
        for algorithm in ALGORITHMS:
            solved = solve(_instance(), algorithm=algorithm, seed=3)
            assert isinstance(solved, Solved)
            assert solved.algorithm == algorithm
        with pytest.raises(ValueError, match="unknown algorithm"):
            solve(_instance(), algorithm="guess")

    def test_repair_compact_equals_dict_and_the_historical_entry_point(self):
        instance = _instance()
        fast = solve(instance, algorithm="repair", seed=11)
        slow = solve(instance, algorithm="repair", seed=11, backend="dict")
        assert fast.backend == "compact" and slow.backend == "dict"
        assert fast.heads == slow.heads
        assert fast.load == slow.load
        # The historical entry point produces the identical orientation.
        orientation, _ = synchronous_repair_orientation(
            instance.graph.to_orientation_problem(), seed=11
        )
        assert fast.loads() == orientation.loads()
        for (u, v) in instance.graph.edge_keys():
            assert fast.head_of(u, v) == orientation.head_of(u, v)

    def test_phases_delegates_to_run_stable_orientation(self):
        instance = _instance()
        solved = solve(instance, algorithm="phases", seed=4)
        reference = run_stable_orientation(instance.graph, seed=4)
        assert solved.result.phases == reference.phases
        assert solved.loads() == reference.orientation.loads()
        assert solved.is_stable()

    def test_bounded_delegates_to_run_bounded_stable_orientation(self):
        instance = _instance()
        solved = solve(instance, algorithm="bounded", seed=4, k=2)
        reference = run_bounded_stable_orientation(instance.graph, seed=4, k=2)
        assert solved.result.k == reference.k
        assert solved.loads() == reference.orientation.loads()

    def test_bare_compact_graph_is_accepted(self):
        graph = _instance().graph
        solved = solve(graph, seed=2)
        assert isinstance(solved.instance, Instance)
        assert solved.instance.graph is graph

    def test_unsupported_input_rejected(self):
        with pytest.raises(TypeError):
            solve([("a", "b")])

    def test_solved_accessors(self):
        solved = solve(_instance(), seed=1)
        loads = solved.loads()
        assert sum(loads.values()) == solved.instance.num_edges
        assert solved.max_load() == max(loads.values())
        assert solved.is_stable()


class TestDynamicHandoff:
    def test_dynamic_enters_the_engine_without_resolving(self):
        solved = solve(_instance(), seed=9)
        engine = solved.dynamic()
        assert isinstance(engine, DynamicOrientation)
        assert engine.loads() == solved.loads()
        assert engine.seed == 9
        assert engine.updates_applied == 0
        assert not engine.unhappy_edges()

    def test_dynamic_replay_matches_a_solve_time_engine(self):
        instance = _instance()
        solved = solve(instance, seed=9)
        via_facade = solved.dynamic()
        direct = DynamicOrientation(instance.graph, seed=9)
        trace = [repro.EdgeInsert((0, 0), (5, 9)), repro.EdgeDelete((0, 0), (5, 9))]
        for delta in trace:
            assert via_facade.apply(delta) == direct.apply(delta)
        assert via_facade.loads() == direct.loads()


class TestTopLevelReExports:
    def test_facade_names_are_lazily_re_exported(self):
        assert repro.solve is solve
        assert repro.Instance is Instance
        assert repro.Solved is Solved
        assert repro.DynamicOrientation is DynamicOrientation

    def test_dir_includes_the_facade(self):
        names = dir(repro)
        for name in ("Instance", "Solved", "solve", "EdgeInsert", "NodeLeave"):
            assert name in names

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_a_name


class TestHistoricalWrappersUnchanged:
    def test_signatures_are_stable(self):
        import inspect

        assert list(
            inspect.signature(run_stable_orientation).parameters
        ) == [
            "problem",
            "tie_break",
            "seed",
            "check_invariants",
            "max_phases",
            "backend",
        ]
        assert list(
            inspect.signature(synchronous_repair_orientation).parameters
        ) == ["problem", "initial", "seed", "max_iterations", "backend"]
        assert list(
            inspect.signature(run_bounded_stable_orientation).parameters
        ) == ["problem", "k", "tie_break", "seed", "check_invariants", "backend"]
