"""Unit tests for the backend dispatch rule (:mod:`repro.dispatch`)."""

from __future__ import annotations

import pytest

from repro.dispatch import BACKEND_ENV_VAR, BACKENDS, BackendError, resolve_backend


class TestResolveBackend:
    def test_explicit_backend_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "dict")
        assert resolve_backend("compact") == "compact"

    def test_env_var_applies_without_explicit_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "dict")
        assert resolve_backend(None) == "dict"

    def test_auto_resolves_to_entry_point_preference(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend(None) == "compact"
        assert resolve_backend(None, auto="dict") == "dict"
        assert resolve_backend("auto", auto="dict") == "dict"

    def test_names_are_normalized(self):
        assert resolve_backend(" Compact ") == "compact"

    @pytest.mark.parametrize("name", BACKENDS)
    def test_every_documented_name_is_accepted(self, name):
        assert resolve_backend(name) in ("compact", "dict")


class TestParallelBackend:
    """The ``compact-parallel`` name and its per-entry-point gating."""

    def test_resolves_when_entry_point_supports_it(self):
        assert (
            resolve_backend("compact-parallel", supports_parallel=True)
            == "compact-parallel"
        )

    def test_degrades_to_compact_without_support(self):
        # Entry points with nothing to parallelize quietly run compact,
        # so a process-wide REPRO_BACKEND never breaks them.
        assert resolve_backend("compact-parallel") == "compact"

    def test_env_var_selects_parallel(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "compact-parallel")
        assert resolve_backend(None, supports_parallel=True) == "compact-parallel"
        assert resolve_backend(None) == "compact"

    def test_auto_never_resolves_to_parallel(self, monkeypatch):
        # Parallelism is opt-in: auto prefers the serial compact kernel
        # even where a parallel path exists.
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend(None, supports_parallel=True) == "compact"
        assert resolve_backend("auto", supports_parallel=True) == "compact"


class TestBackendErrorDiagnostics:
    """A stale env var and a bad argument must be distinguishable."""

    def test_bad_argument_names_the_call_site(self, monkeypatch):
        # Even with a *valid* env var, a bad argument is the culprit.
        monkeypatch.setenv(BACKEND_ENV_VAR, "dict")
        with pytest.raises(BackendError) as excinfo:
            resolve_backend("numpy")
        message = str(excinfo.value)
        assert "backend= argument" in message
        assert BACKEND_ENV_VAR not in message
        assert "'numpy'" in message

    def test_bad_env_var_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "gpu")
        with pytest.raises(BackendError) as excinfo:
            resolve_backend(None)
        message = str(excinfo.value)
        assert BACKEND_ENV_VAR in message
        assert "backend= argument" not in message
        assert "'gpu'" in message

    @pytest.mark.parametrize("bad", [1, 0, b"compact", ["compact"], object()])
    def test_non_string_backend_raises_backend_error(self, bad):
        # backend=1 used to crash with AttributeError on .lower().
        with pytest.raises(BackendError) as excinfo:
            resolve_backend(bad)
        message = str(excinfo.value)
        assert "must be a string" in message
        assert type(bad).__name__ in message

    def test_backend_error_is_a_value_error(self):
        # Callers catching the documented ValueError keep working.
        with pytest.raises(ValueError):
            resolve_backend("numpy")
