"""Cross-validation: compact fast-path kernels vs. dict reference paths.

The dispatch contract (:mod:`repro.dispatch`) promises that both backends
of every dispatched entry point produce *identical* results — same final
solution, same statistics, same tie-breaking — not merely equally-good
ones.  This suite enforces that promise on 200+ seeded random instances
spanning every kernel and every policy:

* sequential flip orientation: 4 instance families x 20 seeds, policies
  rotated per seed (80 instances);
* best-response assignment dynamics: 2 families x 35 seeds, both
  policies exercised (70 instances);
* greedy semi-matching assignment: 50 instances, both orders.

Seeds are grouped into chunks of 10 per pytest case to keep collection
overhead low while preserving per-chunk failure granularity.
"""

from __future__ import annotations

import pytest

from repro.core.assignment import best_response_dynamics, greedy_assignment
from repro.core.orientation import (
    FLIP_POLICIES,
    OrientationProblem,
    sequential_flip_algorithm,
)
from repro.graphs.generators import bounded_degree_gnp
from repro.workloads import (
    datacenter_assignment,
    layered_dag_orientation,
    regular_orientation,
    sensor_network_orientation,
    uniform_assignment,
)

pytestmark = pytest.mark.integration

SEED_CHUNKS = [range(start, start + 10) for start in (0, 10)]


def _orientation_instance(family: str, seed: int) -> OrientationProblem:
    if family == "gnp":
        problem = OrientationProblem.from_networkx(
            bounded_degree_gnp(26, 0.25, 6, seed=seed)
        )
    elif family == "regular":
        problem = regular_orientation(degree=4, num_nodes=24, seed=seed)
    elif family == "layered":
        problem = layered_dag_orientation(
            num_levels=4, width=6, edge_probability=0.5, seed=seed
        )
    else:  # sensor
        problem = sensor_network_orientation(num_nodes=30, max_degree=6, seed=seed)
    return problem


class TestSequentialFlipsAgree:
    """80 orientation instances; policy rotates with the seed."""

    @pytest.mark.parametrize("family", ["gnp", "regular", "layered", "sensor"])
    @pytest.mark.parametrize("seeds", SEED_CHUNKS, ids=["s0-9", "s10-19"])
    def test_identical_orientations_and_stats(self, family, seeds):
        for seed in seeds:
            problem = _orientation_instance(family, seed)
            policy = FLIP_POLICIES[seed % len(FLIP_POLICIES)]
            ref, ref_stats = sequential_flip_algorithm(
                problem, policy=policy, seed=seed, record_trace=True, backend="dict"
            )
            fast, fast_stats = sequential_flip_algorithm(
                problem, policy=policy, seed=seed, record_trace=True, backend="compact"
            )
            context = (family, seed, policy)
            assert ref.oriented_edges() == fast.oriented_edges(), context
            assert ref.loads() == fast.loads(), context
            assert ref_stats == fast_stats, context
            assert fast.is_stable(), context


class TestBestResponseAgrees:
    """70 assignment instances across both policies."""

    @pytest.mark.parametrize(
        "family,seeds",
        [
            ("datacenter", range(0, 10)),
            ("datacenter", range(10, 20)),
            ("datacenter", range(20, 35)),
            ("uniform", range(0, 10)),
            ("uniform", range(10, 20)),
            ("uniform", range(20, 35)),
        ],
        ids=["dc-s0-9", "dc-s10-19", "dc-s20-34", "uni-s0-9", "uni-s10-19", "uni-s20-34"],
    )
    def test_identical_assignments_and_stats(self, family, seeds):
        for seed in seeds:
            if family == "datacenter":
                graph = datacenter_assignment(
                    num_jobs=55, num_servers=11, replicas=3, seed=seed
                )
            else:
                graph = uniform_assignment(
                    num_jobs=55, num_servers=11, replicas=3, seed=seed
                )
            policy = "first" if seed % 2 == 0 else "random"
            ref, ref_stats = best_response_dynamics(
                graph, policy=policy, seed=seed, backend="dict"
            )
            fast, fast_stats = best_response_dynamics(
                graph, policy=policy, seed=seed, backend="compact"
            )
            context = (family, seed, policy)
            assert ref.choices() == fast.choices(), context
            assert ref.loads() == fast.loads(), context
            assert ref_stats == fast_stats, context
            assert fast.is_stable(), context


class TestGreedyAgrees:
    """50 greedy instances across both processing orders."""

    @pytest.mark.parametrize(
        "seeds", [range(0, 10), range(10, 25)], ids=["s0-9", "s10-24"]
    )
    def test_identical_greedy_choices(self, seeds):
        for seed in seeds:
            for order in ("sorted", "random"):
                graph = datacenter_assignment(
                    num_jobs=45,
                    num_servers=9,
                    replicas=3,
                    popularity_skew=float(seed % 3),
                    seed=seed,
                )
                ref = greedy_assignment(graph, order=order, seed=seed, backend="dict")
                fast = greedy_assignment(
                    graph, order=order, seed=seed, backend="compact"
                )
                assert ref.choices() == fast.choices(), (seed, order)
                assert ref.loads() == fast.loads(), (seed, order)


class TestCompactInstancesMatchReferenceInstances:
    """compact=True emission is the same instance, so results transfer."""

    @pytest.mark.parametrize("seed", range(5))
    def test_orientation_through_compact_instance(self, seed):
        reference = layered_dag_orientation(num_levels=4, width=5, seed=seed)
        compact = layered_dag_orientation(num_levels=4, width=5, seed=seed, compact=True)
        ref, ref_stats = sequential_flip_algorithm(reference, backend="dict")
        fast, fast_stats = sequential_flip_algorithm(compact)
        assert ref.oriented_edges() == fast.oriented_edges()
        assert ref_stats == fast_stats

    @pytest.mark.parametrize("seed", range(5))
    def test_assignment_through_compact_instance(self, seed):
        reference = uniform_assignment(num_jobs=40, num_servers=8, seed=seed)
        compact = uniform_assignment(
            num_jobs=40, num_servers=8, seed=seed, compact=True
        )
        ref, ref_stats = best_response_dynamics(reference, backend="dict")
        fast, fast_stats = best_response_dynamics(compact)
        assert ref.choices() == fast.choices()
        assert ref_stats == fast_stats
