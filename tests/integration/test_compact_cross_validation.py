"""Cross-validation: compact fast-path kernels vs. dict reference paths.

The dispatch contract (:mod:`repro.dispatch`) promises that both backends
of every dispatched entry point produce *identical* results — same final
solution, same statistics, same tie-breaking — not merely equally-good
ones.  This suite enforces that promise on 400+ seeded random instances
spanning every kernel and every policy:

* sequential flip orientation: 4 instance families x 20 seeds, policies
  rotated per seed (80 instances);
* phase-based stable orientation (Theorem 5.1): 4 families x 25 seeds,
  tie-break policies rotated (100 instances, full-result equality:
  orientations, loads, per-phase stats, game and communication rounds);
* synchronous repair baseline: 3 families x 25 seeds plus
  explicit-initial-orientation cases (77 instances, orientation and
  per-iteration statistics equality);
* k-bounded stable orientation: 3 families x 10 seeds x k in {2, 3},
  tie-break policies rotated (60 instances, orientation plus the full
  embedded assignment result — choices, loads, per-phase stats);
* best-response assignment dynamics: 2 families x 35 seeds, both
  policies exercised (70 instances);
* greedy semi-matching assignment: 50 instances, both orders;
* token dropping — proposal algorithm: 3 layered-DAG families x 25
  seeds, tie-break policies rotated (75 executions, full-solution and
  Runner-metrics equality);
* token dropping — three-level algorithm: 30 seeded games across
  degrees, tie-break policies rotated;
* token dropping — centralized greedy baseline: 25 seeds x all 4 move
  orders (100 executions);
* token dropping edge cases: mixed-type node ids, tokenless, empty, and
  single-node games on every kernel;
* orientation edge cases: mixed-type node ids and edgeless problems on
  the full pipeline (phases, repair, bounded).

Seeds are grouped into chunks per pytest case to keep collection
overhead low while preserving per-chunk failure granularity.
"""

from __future__ import annotations

import random

import pytest

from repro.core.assignment import best_response_dynamics, greedy_assignment
from repro.core.orientation import (
    FLIP_POLICIES,
    OrientationProblem,
    arbitrary_complete_orientation,
    run_bounded_stable_orientation,
    run_stable_orientation,
    sequential_flip_algorithm,
    synchronous_repair_orientation,
)
from repro.core.token_dropping import (
    GREEDY_ORDERS,
    TIE_BREAK_POLICIES,
    TokenDroppingInstance,
    greedy_token_dropping,
    run_proposal_algorithm,
    run_three_level_algorithm,
)
from repro.core.token_dropping.proposal import proposal_factory
from repro.core.token_dropping.three_level import three_level_factory
from repro.graphs.generators import bounded_degree_gnp
from repro.graphs.layered import LayeredGraph
from repro.local_model import Runner
from repro.workloads import (
    bounded_degree_token_dropping,
    datacenter_assignment,
    layered_dag_orientation,
    random_token_dropping,
    regular_orientation,
    sensor_network_orientation,
    uniform_assignment,
)

pytestmark = pytest.mark.integration

SEED_CHUNKS = [range(start, start + 10) for start in (0, 10)]


def _orientation_instance(family: str, seed: int) -> OrientationProblem:
    if family == "gnp":
        problem = OrientationProblem.from_networkx(
            bounded_degree_gnp(26, 0.25, 6, seed=seed)
        )
    elif family == "regular":
        problem = regular_orientation(degree=4, num_nodes=24, seed=seed)
    elif family == "layered":
        problem = layered_dag_orientation(
            num_levels=4, width=6, edge_probability=0.5, seed=seed
        )
    else:  # sensor
        problem = sensor_network_orientation(num_nodes=30, max_degree=6, seed=seed)
    return problem


class TestSequentialFlipsAgree:
    """80 orientation instances; policy rotates with the seed."""

    @pytest.mark.parametrize("family", ["gnp", "regular", "layered", "sensor"])
    @pytest.mark.parametrize("seeds", SEED_CHUNKS, ids=["s0-9", "s10-19"])
    def test_identical_orientations_and_stats(self, family, seeds):
        for seed in seeds:
            problem = _orientation_instance(family, seed)
            policy = FLIP_POLICIES[seed % len(FLIP_POLICIES)]
            ref, ref_stats = sequential_flip_algorithm(
                problem, policy=policy, seed=seed, record_trace=True, backend="dict"
            )
            fast, fast_stats = sequential_flip_algorithm(
                problem, policy=policy, seed=seed, record_trace=True, backend="compact"
            )
            context = (family, seed, policy)
            assert ref.oriented_edges() == fast.oriented_edges(), context
            assert ref.loads() == fast.loads(), context
            assert ref_stats == fast_stats, context
            assert fast.is_stable(), context


def _assert_orientation_results_equal(ref, fast, context) -> None:
    """Full StableOrientationResult equality, field by field."""
    assert (
        ref.orientation.oriented_edges() == fast.orientation.oriented_edges()
    ), context
    assert ref.orientation.loads() == fast.orientation.loads(), context
    assert ref.phases == fast.phases, context
    assert ref.game_rounds == fast.game_rounds, context
    assert ref.communication_rounds == fast.communication_rounds, context
    assert ref.per_phase == fast.per_phase, context


class TestStableOrientationAgrees:
    """100 orientation instances; the tie-break policy rotates per seed."""

    @pytest.mark.parametrize("family", ["gnp", "regular", "layered", "sensor"])
    @pytest.mark.parametrize(
        "seeds", [range(0, 10), range(10, 25)], ids=["s0-9", "s10-24"]
    )
    def test_identical_results_and_stats(self, family, seeds):
        for seed in seeds:
            problem = _orientation_instance(family, seed)
            tie_break = TIE_BREAK_POLICIES[seed % len(TIE_BREAK_POLICIES)]
            ref = run_stable_orientation(
                problem, tie_break=tie_break, seed=seed, backend="dict"
            )
            fast = run_stable_orientation(
                problem, tie_break=tie_break, seed=seed, backend="compact"
            )
            context = (family, seed, tie_break)
            _assert_orientation_results_equal(ref, fast, context)
            assert fast.stable, context

    def test_unhappy_edge_sets_match_under_partial_invariants(self):
        """check_invariants=False still yields identical (stable) results."""
        for seed in range(5):
            problem = _orientation_instance("sensor", seed)
            ref = run_stable_orientation(
                problem, check_invariants=False, backend="dict"
            )
            fast = run_stable_orientation(
                problem, check_invariants=False, backend="compact"
            )
            context = ("sensor-noinv", seed)
            _assert_orientation_results_equal(ref, fast, context)
            assert ref.orientation.unhappy_edges() == fast.orientation.unhappy_edges()


class TestRepairAgrees:
    """77 repair runs: seeded random starts plus explicit initials."""

    @pytest.mark.parametrize("family", ["gnp", "regular", "sensor"])
    @pytest.mark.parametrize(
        "seeds", [range(0, 10), range(10, 25)], ids=["s0-9", "s10-24"]
    )
    def test_identical_orientations_and_stats(self, family, seeds):
        for seed in seeds:
            problem = _orientation_instance(family, seed)
            ref, ref_stats = synchronous_repair_orientation(
                problem, seed=seed, backend="dict"
            )
            fast, fast_stats = synchronous_repair_orientation(
                problem, seed=seed, backend="compact"
            )
            context = (family, seed)
            assert ref.oriented_edges() == fast.oriented_edges(), context
            assert ref.loads() == fast.loads(), context
            assert ref_stats == fast_stats, context
            assert fast.is_stable(), context

    @pytest.mark.parametrize("towards", ["max", "random"])
    def test_identical_from_explicit_initial(self, towards):
        problem = _orientation_instance("regular", 7)
        initial = arbitrary_complete_orientation(
            problem, rng=random.Random(11), towards=towards
        )
        ref, ref_stats = synchronous_repair_orientation(
            problem, initial=initial, seed=3, backend="dict"
        )
        fast, fast_stats = synchronous_repair_orientation(
            problem, initial=initial, seed=3, backend="compact"
        )
        assert ref.oriented_edges() == fast.oriented_edges(), towards
        assert ref.loads() == fast.loads(), towards
        assert ref_stats == fast_stats, towards


class TestBoundedOrientationAgrees:
    """60 k-bounded runs; tie-break rotates per seed, k in {2, 3}."""

    @pytest.mark.parametrize("family", ["gnp", "regular", "layered"])
    @pytest.mark.parametrize("k", [2, 3])
    def test_identical_results_and_assignment(self, family, k):
        for seed in range(10):
            problem = _orientation_instance(family, seed)
            tie_break = TIE_BREAK_POLICIES[seed % len(TIE_BREAK_POLICIES)]
            ref = run_bounded_stable_orientation(
                problem, k=k, tie_break=tie_break, seed=seed, backend="dict"
            )
            fast = run_bounded_stable_orientation(
                problem, k=k, tie_break=tie_break, seed=seed, backend="compact"
            )
            context = (family, k, seed, tie_break)
            assert (
                ref.orientation.oriented_edges() == fast.orientation.oriented_edges()
            ), context
            assert ref.orientation.loads() == fast.orientation.loads(), context
            assert ref.phases == fast.phases, context
            assert ref.game_rounds == fast.game_rounds, context
            ref_assignment = ref.assignment_result
            fast_assignment = fast.assignment_result
            assert ref_assignment.per_phase == fast_assignment.per_phase, context
            assert (
                ref_assignment.assignment.choices()
                == fast_assignment.assignment.choices()
            ), context
            assert (
                ref_assignment.assignment.loads() == fast_assignment.assignment.loads()
            ), context
            assert fast.stable, context
            assert fast_assignment.stable, context


class TestOrientationPipelineEdgeCases:
    """Degenerate and mixed-type problems on the whole pipeline."""

    @staticmethod
    def _mixed_type_problem() -> OrientationProblem:
        """Int, str, and tuple node ids in one graph (repr-order ties)."""
        edges = [
            (1, "one"),
            (1, (2, "a")),
            ("one", (2, "a")),
            (10, (2, "a")),
            (10, 3),
            (3, "one"),
            (10, "ten"),
            ("ten", 3),
        ]
        return OrientationProblem(edges=edges)

    def test_mixed_type_node_ids_agree(self):
        problem = self._mixed_type_problem()
        for tie_break in TIE_BREAK_POLICIES:
            ref = run_stable_orientation(
                problem, tie_break=tie_break, seed=2, backend="dict"
            )
            fast = run_stable_orientation(
                problem, tie_break=tie_break, seed=2, backend="compact"
            )
            _assert_orientation_results_equal(ref, fast, tie_break)
            bounded_ref = run_bounded_stable_orientation(
                problem, tie_break=tie_break, seed=2, backend="dict"
            )
            bounded_fast = run_bounded_stable_orientation(
                problem, tie_break=tie_break, seed=2, backend="compact"
            )
            assert (
                bounded_ref.orientation.oriented_edges()
                == bounded_fast.orientation.oriented_edges()
            ), tie_break
            assert (
                bounded_ref.assignment_result.per_phase
                == bounded_fast.assignment_result.per_phase
            ), tie_break
        ref, ref_stats = synchronous_repair_orientation(problem, seed=4, backend="dict")
        fast, fast_stats = synchronous_repair_orientation(
            problem, seed=4, backend="compact"
        )
        assert ref.oriented_edges() == fast.oriented_edges()
        assert ref_stats == fast_stats

    def test_edgeless_problems_agree(self):
        problem = OrientationProblem(edges=[], nodes=["a", "b", 3])
        ref = run_stable_orientation(problem, backend="dict")
        fast = run_stable_orientation(problem, backend="compact")
        _assert_orientation_results_equal(ref, fast, "edgeless")
        assert fast.phases == 0
        bounded_ref = run_bounded_stable_orientation(problem, backend="dict")
        bounded_fast = run_bounded_stable_orientation(problem, backend="compact")
        assert bounded_ref.phases == bounded_fast.phases == 0
        assert bounded_fast.assignment_result is None
        ref_o, ref_stats = synchronous_repair_orientation(problem, backend="dict")
        fast_o, fast_stats = synchronous_repair_orientation(problem, backend="compact")
        assert ref_o.oriented_edges() == fast_o.oriented_edges() == ()
        assert ref_stats == fast_stats


class TestBestResponseAgrees:
    """70 assignment instances across both policies."""

    @pytest.mark.parametrize(
        "family,seeds",
        [
            ("datacenter", range(0, 10)),
            ("datacenter", range(10, 20)),
            ("datacenter", range(20, 35)),
            ("uniform", range(0, 10)),
            ("uniform", range(10, 20)),
            ("uniform", range(20, 35)),
        ],
        ids=[
            "dc-s0-9",
            "dc-s10-19",
            "dc-s20-34",
            "uni-s0-9",
            "uni-s10-19",
            "uni-s20-34",
        ],
    )
    def test_identical_assignments_and_stats(self, family, seeds):
        for seed in seeds:
            if family == "datacenter":
                graph = datacenter_assignment(
                    num_jobs=55, num_servers=11, replicas=3, seed=seed
                )
            else:
                graph = uniform_assignment(
                    num_jobs=55, num_servers=11, replicas=3, seed=seed
                )
            policy = "first" if seed % 2 == 0 else "random"
            ref, ref_stats = best_response_dynamics(
                graph, policy=policy, seed=seed, backend="dict"
            )
            fast, fast_stats = best_response_dynamics(
                graph, policy=policy, seed=seed, backend="compact"
            )
            context = (family, seed, policy)
            assert ref.choices() == fast.choices(), context
            assert ref.loads() == fast.loads(), context
            assert ref_stats == fast_stats, context
            assert fast.is_stable(), context


class TestGreedyAgrees:
    """50 greedy instances across both processing orders."""

    @pytest.mark.parametrize(
        "seeds", [range(0, 10), range(10, 25)], ids=["s0-9", "s10-24"]
    )
    def test_identical_greedy_choices(self, seeds):
        for seed in seeds:
            for order in ("sorted", "random"):
                graph = datacenter_assignment(
                    num_jobs=45,
                    num_servers=9,
                    replicas=3,
                    popularity_skew=float(seed % 3),
                    seed=seed,
                )
                ref = greedy_assignment(graph, order=order, seed=seed, backend="dict")
                fast = greedy_assignment(
                    graph, order=order, seed=seed, backend="compact"
                )
                assert ref.choices() == fast.choices(), (seed, order)
                assert ref.loads() == fast.loads(), (seed, order)


def _token_dropping_instance(family: str, seed: int) -> TokenDroppingInstance:
    if family == "wide":
        return random_token_dropping(
            num_levels=4, width=8, edge_probability=0.4, token_fraction=0.6, seed=seed
        )
    if family == "tall":
        return random_token_dropping(
            num_levels=8, width=4, edge_probability=0.5, token_fraction=0.5, seed=seed
        )
    return bounded_degree_token_dropping(num_levels=5, degree=4, seed=seed)


def _mixed_type_instance() -> TokenDroppingInstance:
    """Int, str, and tuple node ids in one game (repr-order tie-breaks)."""
    levels = {1: 0, "one": 0, (2, "a"): 1, 10: 1, "top": 2, 3: 2}
    edges = [
        (1, (2, "a")),
        ("one", (2, "a")),
        (1, 10),
        ((2, "a"), "top"),
        (10, 3),
        ((2, "a"), 3),
    ]
    graph = LayeredGraph(levels=levels, edges=edges)
    return TokenDroppingInstance(graph, frozenset({(2, "a"), "top", 3, 10}))


class TestProposalAlgorithmAgrees:
    """75 layered games; the tie-break policy rotates with the seed."""

    @pytest.mark.parametrize("family", ["wide", "tall", "bounded"])
    @pytest.mark.parametrize(
        "seeds", [range(0, 10), range(10, 25)], ids=["s0-9", "s10-24"]
    )
    def test_identical_solutions(self, family, seeds):
        for seed in seeds:
            instance = _token_dropping_instance(family, seed)
            tie_break = TIE_BREAK_POLICIES[seed % len(TIE_BREAK_POLICIES)]
            ref = run_proposal_algorithm(
                instance, tie_break=tie_break, seed=seed, backend="dict"
            )
            fast = run_proposal_algorithm(
                instance, tie_break=tie_break, seed=seed, backend="compact"
            )
            context = (family, seed, tie_break)
            # Solution equality covers final placements, used edges, pass
            # histories, and both round counters.
            assert ref == fast, context
            assert fast.validate(instance).valid, context

    @pytest.mark.parametrize("seed", range(10))
    def test_identical_runner_metrics(self, seed):
        """Full ExecutionMetrics equality: rounds, messages, halt rounds."""
        instance = _token_dropping_instance("wide", seed)
        network = instance.to_network()
        budget = 3 * instance.theoretical_round_bound()
        ref = Runner(
            network, proposal_factory("min", seed), max_rounds=budget, backend="dict"
        ).run()
        fast = Runner(
            network, proposal_factory("min", seed), max_rounds=budget, backend="compact"
        ).run()
        assert ref.outputs == fast.outputs, seed
        assert ref.metrics == fast.metrics, seed


class TestThreeLevelAlgorithmAgrees:
    """30 three-level games across degrees and tie-break policies."""

    @pytest.mark.parametrize(
        "seeds", [range(0, 10), range(10, 20), range(20, 30)],
        ids=["s0-9", "s10-19", "s20-29"],
    )
    def test_identical_solutions(self, seeds):
        for seed in seeds:
            degree = (3, 5, 7)[seed % 3]
            instance = bounded_degree_token_dropping(
                num_levels=3, degree=degree, seed=seed
            )
            tie_break = TIE_BREAK_POLICIES[seed % len(TIE_BREAK_POLICIES)]
            ref = run_three_level_algorithm(
                instance, tie_break=tie_break, seed=seed, backend="dict"
            )
            fast = run_three_level_algorithm(
                instance, tie_break=tie_break, seed=seed, backend="compact"
            )
            context = (seed, degree, tie_break)
            assert ref == fast, context
            assert fast.validate(instance).valid, context

    @pytest.mark.parametrize("seed", range(5))
    def test_identical_runner_metrics(self, seed):
        instance = bounded_degree_token_dropping(num_levels=3, degree=5, seed=seed)
        network = instance.to_network(include_levels=True)
        ref = Runner(
            network, three_level_factory("min", seed), max_rounds=1000, backend="dict"
        ).run()
        fast = Runner(
            network,
            three_level_factory("min", seed),
            max_rounds=1000,
            backend="compact",
        ).run()
        assert ref.outputs == fast.outputs, seed
        assert ref.metrics == fast.metrics, seed


class TestGreedyTokenDroppingAgrees:
    """25 games x all 4 centralized move orders (100 executions)."""

    @pytest.mark.parametrize(
        "seeds", [range(0, 10), range(10, 25)], ids=["s0-9", "s10-24"]
    )
    def test_identical_solutions(self, seeds):
        for seed in seeds:
            instance = random_token_dropping(
                num_levels=5,
                width=7,
                edge_probability=0.4,
                token_fraction=0.6,
                seed=seed,
            )
            for order in GREEDY_ORDERS:
                ref = greedy_token_dropping(
                    instance, order=order, seed=seed, backend="dict"
                )
                fast = greedy_token_dropping(
                    instance, order=order, seed=seed, backend="compact"
                )
                assert ref == fast, (seed, order)
                assert fast.validate(instance).valid, (seed, order)


class TestTokenDroppingEdgeCases:
    """Degenerate and mixed-type games on every kernel."""

    def test_mixed_type_node_ids_agree(self):
        instance = _mixed_type_instance()
        for tie_break in TIE_BREAK_POLICIES:
            assert run_proposal_algorithm(
                instance, tie_break=tie_break, seed=3, backend="dict"
            ) == run_proposal_algorithm(
                instance, tie_break=tie_break, seed=3, backend="compact"
            ), tie_break
            assert run_three_level_algorithm(
                instance, tie_break=tie_break, seed=3, backend="dict"
            ) == run_three_level_algorithm(
                instance, tie_break=tie_break, seed=3, backend="compact"
            ), tie_break
        for order in GREEDY_ORDERS:
            assert greedy_token_dropping(
                instance, order=order, seed=5, backend="dict"
            ) == greedy_token_dropping(
                instance, order=order, seed=5, backend="compact"
            ), order

    def test_tokenless_game_agrees(self):
        graph = LayeredGraph(
            levels={"a": 0, "b": 0, "c": 1, "d": 2},
            edges=[("a", "c"), ("b", "c"), ("c", "d")],
        )
        instance = TokenDroppingInstance(graph, frozenset())
        assert run_proposal_algorithm(
            instance, backend="dict"
        ) == run_proposal_algorithm(instance, backend="compact")
        assert greedy_token_dropping(
            instance, backend="dict"
        ) == greedy_token_dropping(instance, backend="compact")

    def test_empty_and_single_node_games_agree(self):
        empty = TokenDroppingInstance(LayeredGraph(levels={}), frozenset())
        lonely = TokenDroppingInstance(
            LayeredGraph(levels={"x": 0}), frozenset({"x"})
        )
        for instance in (empty, lonely):
            ref = run_proposal_algorithm(instance, backend="dict")
            fast = run_proposal_algorithm(instance, backend="compact")
            assert ref == fast
            assert ref.communication_rounds == 0
            assert greedy_token_dropping(
                instance, backend="dict"
            ) == greedy_token_dropping(instance, backend="compact")


class TestCompactInstancesMatchReferenceInstances:
    """compact=True emission is the same instance, so results transfer."""

    @pytest.mark.parametrize("seed", range(5))
    def test_orientation_through_compact_instance(self, seed):
        reference = layered_dag_orientation(num_levels=4, width=5, seed=seed)
        compact = layered_dag_orientation(
            num_levels=4, width=5, seed=seed, compact=True
        )
        ref, ref_stats = sequential_flip_algorithm(reference, backend="dict")
        fast, fast_stats = sequential_flip_algorithm(compact)
        assert ref.oriented_edges() == fast.oriented_edges()
        assert ref_stats == fast_stats

    @pytest.mark.parametrize("seed", range(5))
    def test_assignment_through_compact_instance(self, seed):
        reference = uniform_assignment(num_jobs=40, num_servers=8, seed=seed)
        compact = uniform_assignment(
            num_jobs=40, num_servers=8, seed=seed, compact=True
        )
        ref, ref_stats = best_response_dynamics(reference, backend="dict")
        fast, fast_stats = best_response_dynamics(compact)
        assert ref.choices() == fast.choices()
        assert ref_stats == fast_stats
