"""Cross-module integration tests.

These tests stitch several subsystems together the way the experiments do,
and cross-validate independent implementations against each other:

* distributed vs. centralized token dropping on identical instances;
* the graph engine vs. the hypergraph engine on rank-2 instances;
* the orientation phase algorithm vs. the assignment algorithm on the
  degree-2-customer translation of the same graph;
* measured round counts flowing through the sweep/fit analysis pipeline.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import fit_power_law, max_bound_ratio, parameter_grid, run_sweep
from repro.core.assignment import run_stable_assignment
from repro.core.orientation import OrientationProblem, run_stable_orientation
from repro.core.token_dropping import (
    HypergraphTokenDroppingInstance,
    TokenDroppingInstance,
    exhaustive_is_stuck,
    greedy_token_dropping,
    random_token_placement,
    run_hypergraph_proposal,
    run_proposal_algorithm,
)
from repro.graphs.bipartite import CustomerServerGraph
from repro.graphs.generators import bounded_degree_gnp, random_layered_graph
from repro.workloads import bounded_degree_token_dropping


pytestmark = pytest.mark.integration


class TestDistributedVsCentralized:
    @pytest.mark.parametrize("seed", range(5))
    def test_both_solve_same_instance_and_get_stuck(self, seed):
        rng = random.Random(seed)
        graph = random_layered_graph(5, 5, 0.5, seed=rng)
        tokens = random_token_placement(graph, 0.5, rng)
        instance = TokenDroppingInstance(graph, tokens)

        distributed = run_proposal_algorithm(instance)
        central = greedy_token_dropping(instance)

        for solution in (distributed, central):
            solution.validate(instance).raise_if_invalid()
            assert exhaustive_is_stuck(instance, solution)
            assert set(solution.traversals) == set(instance.tokens)

    @pytest.mark.parametrize("seed", range(5))
    def test_graph_and_hypergraph_engines_agree_on_rank2(self, seed):
        instance = bounded_degree_token_dropping(num_levels=5, degree=5, seed=seed)
        graph_solution = run_proposal_algorithm(instance)
        hyper = HypergraphTokenDroppingInstance.from_rank2_instance(instance)
        hyper_solution = run_hypergraph_proposal(hyper)

        graph_solution.validate(instance).raise_if_invalid()
        assert hyper_solution.validate(hyper) == []
        # Same number of surviving tokens with unique destinations, and the
        # same per-level occupancy profile is not required (solutions are not
        # unique) -- but total moves can differ by at most the number of
        # tokens times the height.
        assert len(hyper_solution.destinations) == len(graph_solution.destinations)


class TestOrientationVsAssignment:
    @pytest.mark.parametrize("seed", range(3))
    def test_degree2_customers_reproduce_orientation_semantics(self, seed):
        graph = bounded_degree_gnp(18, 0.3, 5, seed=seed)
        problem = OrientationProblem.from_networkx(graph)
        orientation_result = run_stable_orientation(problem)

        csg = CustomerServerGraph.from_orientation_graph(problem.edges)
        assignment_result = run_stable_assignment(csg)

        assert orientation_result.stable
        assert assignment_result.stable
        # The two solve the *same* problem; their load multisets agree up to
        # the inherent non-uniqueness of stable solutions, and both cost
        # functions are within a factor 4 of each other (each is a
        # 2-approximation of the common optimum).
        a = orientation_result.orientation.semi_matching_cost()
        b = assignment_result.assignment.semi_matching_cost()
        if a and b:
            assert a <= 2 * b and b <= 2 * a


class TestAnalysisPipeline:
    def test_sweep_fit_and_bound_check_on_real_algorithm(self):
        def measure(*, seed, delta):
            instance = bounded_degree_token_dropping(
                num_levels=4, degree=delta, seed=seed
            )
            solution = run_proposal_algorithm(instance)
            return {
                "game_rounds": solution.game_rounds,
                "bound": instance.theoretical_round_bound(),
            }

        result = run_sweep(
            "e1-mini", measure, parameter_grid(delta=[2, 4, 6, 8]), seeds=(0, 1)
        )
        xs, ys = result.series("delta", "game_rounds")
        fit = fit_power_law(xs, ys)
        # Theorem 4.1 allows quadratic growth; random instances are well below.
        assert fit.exponent <= 2.5
        _, bounds = result.series("delta", "bound")
        ratio = max_bound_ratio(xs, ys, bound=lambda x: bounds[xs.index(x)])
        assert ratio <= 1.0
