"""Cross-validation of the incremental engine against scratch recompute.

The correctness bar of :mod:`repro.core.orientation.incremental`: after
*every* update of *every* trace, the compact frontier-local
re-stabilization must be bit-for-bit identical to solving the mutated
instance from scratch on the dict reference path — same orientation,
same loads, same unhappy-edge sets, same per-update
:class:`~repro.core.orientation.incremental.UpdateStats` (including the
embedded :class:`~repro.core.orientation.repair.RepairRunStats`).

This suite drives 50+ seeded mixed insert/delete/join/leave traces per
scenario family (200+ traces, ~5,000 compared updates) through both
backends in lockstep, plus unit coverage of the
:class:`~repro.graphs.compact.DeltaOverlayGraph` substrate and the
engine's validation/edge-case behaviour.  Conventions follow
``test_compact_cross_validation.py``: seeds grouped into chunks per
pytest case, instance families shared with the named workloads.
"""

from __future__ import annotations

import pytest

from repro.core.orientation import (
    DynamicOrientation,
    EdgeDelete,
    EdgeInsert,
    NodeJoin,
    NodeLeave,
    Orientation,
    OrientationProblem,
    synchronous_repair_orientation,
)
from repro.graphs.compact import CompactGraph, DeltaError, DeltaOverlayGraph
from repro.graphs.generators import bounded_degree_gnp
from repro.workloads import (
    MIXES,
    churn_smoke,
    churn_smoke_trace,
    churn_trace,
    layered_dag_orientation,
    regular_orientation,
    sensor_network_orientation,
)

pytestmark = pytest.mark.integration

SEED_CHUNKS = [range(start, start + 10) for start in (0, 10, 20, 30, 40)]
SEED_CHUNK_IDS = ["s0-9", "s10-19", "s20-29", "s30-39", "s40-49"]
MIX_NAMES = sorted(MIXES)


def _instance(family: str, seed: int) -> OrientationProblem:
    if family == "gnp":
        return OrientationProblem.from_networkx(
            bounded_degree_gnp(26, 0.25, 6, seed=seed)
        )
    if family == "regular":
        return regular_orientation(degree=4, num_nodes=24, seed=seed)
    if family == "layered":
        return layered_dag_orientation(
            num_levels=4, width=6, edge_probability=0.5, seed=seed
        )
    return sensor_network_orientation(num_nodes=30, max_degree=6, seed=seed)


def _assert_lockstep(problem, trace, seed):
    """Replay ``trace`` on both backends, comparing after every step."""
    fast = DynamicOrientation(problem, seed=seed, backend="compact")
    reference = DynamicOrientation(problem, seed=seed, backend="dict")
    assert fast.orientation().oriented_edges() == (
        reference.orientation().oriented_edges()
    )
    for step, delta in enumerate(trace):
        fast_stats = fast.apply(delta)
        ref_stats = reference.apply(delta)
        context = (seed, step, delta)
        assert fast_stats == ref_stats, context
        fast_orientation = fast.orientation()
        ref_orientation = reference.orientation()
        assert fast_orientation.oriented_edges() == (
            ref_orientation.oriented_edges()
        ), context
        assert fast_orientation.loads() == ref_orientation.loads(), context
        assert fast.unhappy_edges() == [] == reference.unhappy_edges(), context
        assert fast.num_nodes == reference.num_nodes, context
        assert fast.num_edges == reference.num_edges, context
    return fast, reference


class TestChurnTracesAgree:
    """50 seeded mixed traces per family, compared update by update."""

    @pytest.mark.parametrize("family", ["gnp", "regular", "layered", "sensor"])
    @pytest.mark.parametrize("seeds", SEED_CHUNKS, ids=SEED_CHUNK_IDS)
    def test_incremental_matches_scratch_bit_for_bit(self, family, seeds):
        for seed in seeds:
            problem = _instance(family, seed)
            mix = MIX_NAMES[seed % len(MIX_NAMES)]
            trace = churn_trace(problem, num_updates=25, seed=seed, mix=mix)
            fast, _ = _assert_lockstep(problem, trace, seed)
            # The final state must also equal an independent scratch
            # repair of the final graph seeded from the final orientation
            # (stability is a fixed point: zero iterations, no flips).
            final = fast.orientation()
            solved, stats = synchronous_repair_orientation(
                final.problem, initial=final, seed=seed, backend="dict"
            )
            assert stats.iterations == 0
            assert solved.oriented_edges() == final.oriented_edges()

    def test_smoke_scenario_agrees(self):
        """The exact replay the perf gate times is also cross-validated."""
        problem = churn_smoke()
        trace = churn_smoke_trace(problem)
        _assert_lockstep(problem, trace, seed=5)


class TestTraceGenerator:
    def test_traces_are_deterministic_and_representation_independent(self):
        problem = _instance("layered", 3)
        compact = CompactGraph.from_orientation_problem(problem)
        for mix in MIX_NAMES:
            t1 = churn_trace(problem, num_updates=30, seed=9, mix=mix)
            t2 = churn_trace(problem, num_updates=30, seed=9, mix=mix)
            t3 = churn_trace(compact, num_updates=30, seed=9, mix=mix)
            assert t1 == t2 == t3
            assert len(t1) == 30

    def test_trace_covers_all_delta_kinds(self):
        trace = churn_trace(
            _instance("gnp", 1), num_updates=60, seed=2, mix="mixed"
        )
        kinds = {type(delta) for delta in trace}
        assert kinds == {EdgeInsert, EdgeDelete, NodeJoin, NodeLeave}

    def test_min_nodes_floor_suppresses_departures(self):
        problem = OrientationProblem(edges=[(0, 1), (1, 2)], nodes=[0, 1, 2])
        trace = churn_trace(
            problem, num_updates=40, seed=0, mix="failures", min_nodes=3
        )
        engine = DynamicOrientation(problem, backend="compact")
        for delta in trace:
            engine.apply(delta)
            assert engine.num_nodes >= 3


class TestDeltaOverlayGraph:
    def _base(self):
        return CompactGraph.from_edges(
            [(0, 1), (1, 2), (2, 3), (0, 3)], nodes=[0, 1, 2, 3]
        )

    def test_invalid_deltas_raise(self):
        overlay = DeltaOverlayGraph(self._base())
        with pytest.raises(DeltaError):
            overlay.add_edge(0, 1)  # duplicate
        with pytest.raises(DeltaError):
            overlay.remove_edge(0, 2)  # absent
        with pytest.raises(DeltaError):
            overlay.add_edge(0, 99)  # unknown endpoint
        with pytest.raises(DeltaError):
            overlay.add_node(2)  # already live
        with pytest.raises(DeltaError):
            overlay.remove_node(99)  # unknown
        overlay.remove_node(2)
        with pytest.raises(DeltaError):
            overlay.add_edge(1, 2)  # dead endpoint

    def test_leave_then_rejoin_revives_the_dense_slot(self):
        overlay = DeltaOverlayGraph(self._base())
        slot = overlay.index_of[2]
        removed = overlay.remove_node(2)
        assert len(removed) == 2
        assert not overlay.has_node(2)
        assert overlay.num_live_nodes == 3
        assert overlay.add_node(2) == slot
        assert overlay.has_node(2)
        assert overlay.degrees[slot] == 0
        overlay.add_edge(1, 2)
        assert overlay.has_edge(2, 1)

    def test_edge_keys_memo_invalidation_is_precise(self):
        base = self._base()
        overlay = DeltaOverlayGraph(base)
        before = overlay.edge_keys()
        assert overlay.edge_keys() is before  # memoized
        overlay.add_edge(1, 3)
        after = overlay.edge_keys()
        assert after is not before
        assert set(after) == set(before) | {(1, 3)}
        assert base.edge_keys() == before  # the base memo is never touched

    def test_to_compact_matches_mutated_edge_set(self):
        overlay = DeltaOverlayGraph(self._base())
        overlay.remove_edge(0, 1)
        overlay.add_node("n")
        overlay.add_edge("n", 2)
        rebuilt = overlay.to_compact()
        fresh = CompactGraph.from_edges(
            [(1, 2), (2, 3), (0, 3), ("n", 2)], nodes=[0, 1, 2, 3, "n"]
        )
        assert rebuilt.edge_keys() == fresh.edge_keys()
        assert rebuilt.node_ids == fresh.node_ids

    def test_degree_bookkeeping_stays_exact(self):
        overlay = DeltaOverlayGraph(self._base())
        overlay.add_node("x")
        overlay.add_edge("x", 0)
        overlay.remove_node(1)
        overlay.add_edge("x", 2)
        live = overlay.live_node_indices()
        expected = {
            i: sum(1 for _ in overlay.incident_edges(i)) for i in live
        }
        assert {i: overlay.degrees[i] for i in live} == expected
        assert overlay.sum_sq_degree == sum(
            d * d for d in overlay.degrees
        )


class TestDynamicOrientationEdgeCases:
    @pytest.mark.parametrize("backend", ["dict", "compact"])
    def test_invalid_deltas_raise_and_leave_state_intact(self, backend):
        problem = OrientationProblem(edges=[(0, 1), (1, 2)], nodes=[0, 1, 2])
        engine = DynamicOrientation(problem, backend=backend)
        before = engine.orientation().oriented_edges()
        for delta in [
            EdgeInsert(0, 1),  # duplicate
            EdgeInsert(0, 99),  # unknown endpoint
            EdgeDelete(0, 2),  # absent edge
            NodeJoin(1),  # already live
            NodeJoin("new", attach=(99,)),  # unknown attach
            NodeJoin("new", attach=(0, 0)),  # duplicate attach
            NodeLeave(99),  # unknown node
        ]:
            with pytest.raises(DeltaError):
                engine.apply(delta)
        assert engine.orientation().oriented_edges() == before
        assert engine.num_nodes == 3 and engine.num_edges == 2

    def test_unstable_or_partial_initial_is_rejected(self):
        problem = OrientationProblem(edges=[(0, 1), (1, 2)], nodes=[0, 1, 2])
        with pytest.raises(ValueError):
            DynamicOrientation(problem, initial=Orientation(problem))
        star = OrientationProblem(edges=[(0, 1), (0, 2), (0, 3)])
        unstable = Orientation(
            star, heads={(0, 1): 0, (0, 2): 0, (0, 3): 0}
        )
        with pytest.raises(ValueError):
            DynamicOrientation(star, initial=unstable)

    @pytest.mark.parametrize("backend", ["dict", "compact"])
    def test_grows_from_nothing(self, backend):
        problem = OrientationProblem(edges=[], nodes=["a"])
        engine = DynamicOrientation(problem, backend=backend)
        engine.apply(NodeJoin("b", attach=("a",)))
        engine.apply(NodeJoin("c", attach=("a", "b")))
        engine.apply(NodeLeave("a"))
        assert engine.is_stable()
        assert engine.num_nodes == 2
        assert engine.num_edges == 1

    def test_mixed_type_node_ids_agree(self):
        problem = OrientationProblem(
            edges=[(0, "a"), ("a", (1, 2)), ((1, 2), 0)], nodes=[0, "a", (1, 2), 7]
        )
        trace = churn_trace(problem, num_updates=20, seed=4, mix="mixed")
        _assert_lockstep(problem, trace, seed=4)

    def test_explicit_update_seed_override_agrees(self):
        problem = _instance("gnp", 6)
        fast = DynamicOrientation(problem, seed=1, backend="compact")
        reference = DynamicOrientation(problem, seed=1, backend="dict")
        trace = churn_trace(problem, num_updates=10, seed=8, mix="mixed")
        for step, delta in enumerate(trace):
            assert fast.apply(delta, seed=step * 17) == reference.apply(
                delta, seed=step * 17
            )
        assert fast.orientation().oriented_edges() == (
            reference.orientation().oriented_edges()
        )

    def test_wrapping_a_presolved_orientation_skips_resolving(self):
        problem = _instance("regular", 2)
        solved, _ = synchronous_repair_orientation(problem, seed=3, backend="dict")
        for backend in ("dict", "compact"):
            engine = DynamicOrientation(problem, initial=solved, backend=backend)
            assert engine.orientation().oriented_edges() == solved.oriented_edges()

    def test_locality_updates_touch_few_frontier_nodes(self):
        """The locality guarantee: a delta seeds O(frontier) repair work,
        and the frontier is the delta's own endpoints — not O(n)."""
        problem = churn_smoke()
        engine = DynamicOrientation(problem, backend="compact")
        stats = engine.apply(EdgeDelete(*engine.orientation().problem.edges[0]))
        assert stats.frontier_nodes == 2
        assert stats.repair.initial_unhappy <= 2 * problem.max_degree()
