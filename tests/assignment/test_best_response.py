"""Tests for best-response dynamics and its compact fast path."""

from __future__ import annotations

import pytest

from repro.core.assignment import (
    Assignment,
    best_response_dynamics,
    greedy_assignment,
    is_two_approximation,
)
from repro.dispatch import BackendError
from repro.graphs.bipartite import CustomerServerGraph
from repro.workloads import datacenter_assignment, uniform_assignment


@pytest.fixture
def skewed_graph() -> CustomerServerGraph:
    return datacenter_assignment(num_jobs=60, num_servers=12, replicas=3, seed=5)


class TestBestResponseDynamics:
    def test_reaches_a_stable_assignment(self, skewed_graph):
        assignment, stats = best_response_dynamics(skewed_graph)
        assert assignment.is_complete()
        assert assignment.is_stable()
        assert stats.final_potential <= stats.initial_potential - 2 * stats.moves

    def test_stable_result_is_a_two_approximation(self, skewed_graph):
        assignment, _ = best_response_dynamics(skewed_graph)
        assert is_two_approximation(assignment)

    def test_improves_on_greedy_under_skew(self):
        graph = datacenter_assignment(
            num_jobs=120, num_servers=20, replicas=3, popularity_skew=1.5, seed=2
        )
        stable, _ = best_response_dynamics(graph)
        greedy = greedy_assignment(graph, order="random", seed=2)
        assert stable.semi_matching_cost() <= greedy.semi_matching_cost()

    def test_random_policy_also_stabilises(self, skewed_graph):
        assignment, stats = best_response_dynamics(
            skewed_graph, policy="random", seed=3
        )
        assert assignment.is_stable()
        assert stats.moves >= 0

    def test_accepts_an_explicit_initial_assignment(self, skewed_graph):
        initial = greedy_assignment(skewed_graph, order="random", seed=11)
        assignment, stats = best_response_dynamics(skewed_graph, initial=initial)
        assert assignment.is_stable()
        # The caller's assignment is not mutated.
        assert initial.choices() != {} and initial is not assignment

    def test_rejects_incomplete_initial(self, skewed_graph):
        with pytest.raises(ValueError):
            best_response_dynamics(skewed_graph, initial=Assignment(skewed_graph))

    def test_rejects_unknown_policy(self, skewed_graph):
        with pytest.raises(ValueError):
            best_response_dynamics(skewed_graph, policy="steepest")

    def test_zero_moves_when_already_stable(self):
        graph = uniform_assignment(num_jobs=4, num_servers=4, replicas=1, seed=0)
        assignment, stats = best_response_dynamics(graph)
        assert stats.moves == 0
        assert stats.initial_potential == stats.final_potential


class TestBackendDispatch:
    @pytest.mark.parametrize("policy", ["first", "random"])
    def test_backends_agree_exactly(self, skewed_graph, policy):
        ref, ref_stats = best_response_dynamics(
            skewed_graph, policy=policy, seed=7, backend="dict"
        )
        fast, fast_stats = best_response_dynamics(
            skewed_graph, policy=policy, seed=7, backend="compact"
        )
        assert ref.choices() == fast.choices()
        assert ref.loads() == fast.loads()
        assert ref_stats == fast_stats

    def test_compact_instance_input(self):
        compact = datacenter_assignment(
            num_jobs=60, num_servers=12, replicas=3, seed=5, compact=True
        )
        reference = datacenter_assignment(
            num_jobs=60, num_servers=12, replicas=3, seed=5
        )
        from_compact, s1 = best_response_dynamics(compact)
        from_reference, s2 = best_response_dynamics(reference)
        assert from_compact.choices() == from_reference.choices()
        assert s1 == s2

    def test_greedy_backends_agree(self, skewed_graph):
        ref = greedy_assignment(skewed_graph, order="sorted", backend="dict")
        fast = greedy_assignment(skewed_graph, order="sorted", backend="compact")
        assert ref.choices() == fast.choices()

    def test_env_var_forces_reference_path(self, skewed_graph, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "dict")
        assignment, _ = best_response_dynamics(skewed_graph)
        assert assignment.is_stable()

    def test_unknown_backend_rejected(self, skewed_graph):
        with pytest.raises(BackendError):
            best_response_dynamics(skewed_graph, backend="numpy")
