"""Tests for the stable assignment algorithms (Theorems 7.3, 7.4, 7.5)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import (
    approximation_ratio,
    is_bounded_stable,
    is_two_approximation,
    maximal_matching_via_bounded_assignment,
    optimal_cost,
    run_bounded_stable_assignment,
    run_stable_assignment,
    theoretical_phase_bound,
    theoretical_round_bound,
    verify_maximal_matching,
)
from repro.graphs.bipartite import CustomerServerGraph
from repro.graphs.generators import (
    complete_bipartite,
    random_bipartite_customer_server,
)


def workloads():
    return {
        "small": CustomerServerGraph(
            customers=["c1", "c2", "c3"],
            servers=["s1", "s2"],
            edges=[
                ("c1", "s1"),
                ("c1", "s2"),
                ("c2", "s1"),
                ("c2", "s2"),
                ("c3", "s1"),
            ],
        ),
        "complete": complete_bipartite(8, 3),
        "uniform": random_bipartite_customer_server(25, 10, 3, seed=1),
        "skewed": random_bipartite_customer_server(30, 8, 2, seed=2, server_skew=2.0),
        "degree1": CustomerServerGraph(
            customers=["a", "b"],
            servers=["s"],
            edges=[("a", "s"), ("b", "s")],
        ),
        "orientation_like": CustomerServerGraph.from_orientation_graph(
            [(1, 2), (2, 3), (3, 4), (4, 1), (1, 3)]
        ),
    }


WORKLOADS = workloads()


class TestStableAssignment:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_output_is_stable(self, name):
        graph = WORKLOADS[name]
        result = run_stable_assignment(graph)
        assert result.stable
        assert result.assignment.is_complete()

    @pytest.mark.parametrize("name", ["uniform", "skewed", "complete"])
    def test_phase_and_round_bounds(self, name):
        graph = WORKLOADS[name]
        result = run_stable_assignment(graph)
        assert result.phases <= theoretical_phase_bound(graph)
        assert result.game_rounds <= theoretical_round_bound(graph)

    def test_badness_invariant_per_phase(self):
        graph = WORKLOADS["skewed"]
        result = run_stable_assignment(graph)
        assert all(stats.max_badness_after <= 1 for stats in result.per_phase)
        assigned_counts = [s.customers_assigned_total for s in result.per_phase]
        assert assigned_counts == sorted(assigned_counts)
        assert assigned_counts[-1] == len(graph.customers)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            run_stable_assignment(WORKLOADS["small"], k=1)

    @pytest.mark.parametrize("tie_break", ["min", "max", "random"])
    def test_tie_break_policies(self, tie_break):
        graph = WORKLOADS["uniform"]
        result = run_stable_assignment(graph, tie_break=tie_break, seed=3)
        assert result.stable

    def test_two_approximation_of_semi_matching(self):
        for name in ("small", "uniform", "skewed", "complete"):
            graph = WORKLOADS[name]
            result = run_stable_assignment(graph)
            optimum = optimal_cost(graph)
            assert is_two_approximation(result.assignment, optimum), (
                name,
                approximation_ratio(result.assignment, optimum),
            )

    def test_matches_orientation_special_case(self):
        """Degree-2 customers = stable orientation; loads must satisfy the
        same stability condition the orientation checker uses."""
        graph = WORKLOADS["orientation_like"]
        result = run_stable_assignment(graph)
        assert result.stable
        assert all(graph.customer_degree(c) == 2 for c in graph.customers)


class TestBoundedAssignment:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_output_is_bounded_stable(self, name):
        graph = WORKLOADS[name]
        result = run_bounded_stable_assignment(graph, k=2)
        assert result.stable
        assert is_bounded_stable(result.assignment, k=2)

    def test_bounded_never_slower_budget(self):
        graph = WORKLOADS["skewed"]
        bounded = run_bounded_stable_assignment(graph, k=2)
        # The relaxation's instances have at most 3 levels.
        assert all(s.token_dropping_height <= 2 for s in bounded.per_phase)

    def test_k_three_also_works(self):
        graph = WORKLOADS["uniform"]
        result = run_bounded_stable_assignment(graph, k=3)
        assert result.stable
        assert is_bounded_stable(result.assignment, k=3)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            run_bounded_stable_assignment(WORKLOADS["small"], k=1)

    def test_full_stability_implies_bounded_stability(self):
        graph = WORKLOADS["uniform"]
        full = run_stable_assignment(graph)
        assert is_bounded_stable(full.assignment, k=2)


class TestMaximalMatchingReduction:
    @pytest.mark.parametrize("name", ["small", "uniform", "complete", "degree1"])
    def test_reduction_produces_maximal_matching(self, name):
        graph = WORKLOADS[name]
        matching, result = maximal_matching_via_bounded_assignment(graph, seed=0)
        assert result.stable
        assert verify_maximal_matching(graph, matching) == []

    def test_verify_detects_non_maximal(self):
        graph = WORKLOADS["small"]
        assert verify_maximal_matching(graph, set()) != []

    def test_verify_detects_double_matching(self):
        graph = WORKLOADS["small"]
        bad = {("c1", "s1"), ("c2", "s1")}
        assert any("matched twice" in v for v in verify_maximal_matching(graph, bad))

    def test_verify_detects_non_edge(self):
        graph = WORKLOADS["small"]
        bad = {("c3", "s2")}
        assert any("not an edge" in v for v in verify_maximal_matching(graph, bad))


class TestPropertyBased:
    @given(
        num_customers=st.integers(min_value=1, max_value=25),
        num_servers=st.integers(min_value=1, max_value=10),
        degree=st.integers(min_value=1, max_value=4),
        skew=st.floats(min_value=0.0, max_value=2.0),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_stable_assignment_always_stable_and_2approx(
        self, num_customers, num_servers, degree, skew, seed
    ):
        degree = min(degree, num_servers)
        graph = random_bipartite_customer_server(
            num_customers, num_servers, degree, seed=seed, server_skew=skew
        )
        result = run_stable_assignment(graph)
        assert result.stable
        assert is_two_approximation(result.assignment)

    @given(
        num_customers=st.integers(min_value=1, max_value=25),
        num_servers=st.integers(min_value=1, max_value=10),
        degree=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_bounded_assignment_always_bounded_stable(
        self, num_customers, num_servers, degree, seed
    ):
        degree = min(degree, num_servers)
        graph = random_bipartite_customer_server(
            num_customers, num_servers, degree, seed=seed
        )
        result = run_bounded_stable_assignment(graph, k=2)
        assert result.stable
        assert is_bounded_stable(result.assignment, k=2)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_maximal_matching_reduction_property(self, seed):
        graph = random_bipartite_customer_server(15, 15, 3, seed=seed)
        matching, _ = maximal_matching_via_bounded_assignment(graph, seed=seed)
        assert verify_maximal_matching(graph, matching) == []
