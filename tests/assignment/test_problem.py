"""Unit tests for assignments, stability, and semi-matching utilities."""

from __future__ import annotations

import pytest

from repro.core.assignment import (
    Assignment,
    AssignmentError,
    AssignmentProblemSummary,
    approximation_ratio,
    check_stable_assignment,
    effective_load,
    greedy_assignment,
    is_two_approximation,
    load_histogram,
    optimal_cost,
    optimal_semi_matching,
    semi_matching_cost,
    triangular,
    worst_server_load,
)
from repro.graphs.bipartite import CustomerServerGraph
from repro.graphs.generators import complete_bipartite, random_bipartite_customer_server


@pytest.fixture
def small_graph() -> CustomerServerGraph:
    return CustomerServerGraph(
        customers=["c1", "c2", "c3"],
        servers=["s1", "s2"],
        edges=[("c1", "s1"), ("c1", "s2"), ("c2", "s1"), ("c2", "s2"), ("c3", "s1")],
    )


class TestAssignmentBasics:
    def test_assign_and_loads(self, small_graph):
        assignment = Assignment(small_graph)
        assignment.assign("c1", "s1")
        assignment.assign("c2", "s1")
        assert assignment.load("s1") == 2
        assert assignment.load("s2") == 0
        assert assignment.server_of("c1") == "s1"
        assert not assignment.is_complete()
        assert assignment.unassigned_customers() == ("c3",)

    def test_reassign_updates_loads(self, small_graph):
        assignment = Assignment(small_graph)
        assignment.assign("c1", "s1")
        assignment.assign("c1", "s2")
        assert assignment.load("s1") == 0
        assert assignment.load("s2") == 1

    def test_unassign(self, small_graph):
        assignment = Assignment(small_graph)
        assignment.assign("c1", "s1")
        assignment.unassign("c1")
        assert assignment.load("s1") == 0
        assert not assignment.is_assigned("c1")

    def test_invalid_assignments_rejected(self, small_graph):
        assignment = Assignment(small_graph)
        with pytest.raises(AssignmentError):
            assignment.assign("zzz", "s1")
        with pytest.raises(AssignmentError):
            assignment.assign("c3", "s2")  # not adjacent

    def test_copy_independent(self, small_graph):
        assignment = Assignment(small_graph)
        assignment.assign("c1", "s1")
        clone = assignment.copy()
        clone.assign("c1", "s2")
        assert assignment.server_of("c1") == "s1"

    def test_constructor_choices(self, small_graph):
        assignment = Assignment(small_graph, choices={"c1": "s2", "c2": "s1"})
        assert assignment.load("s2") == 1
        assert assignment.load("s1") == 1


class TestStability:
    def test_badness_and_happiness(self, small_graph):
        assignment = Assignment(small_graph)
        assignment.assign("c1", "s1")
        assignment.assign("c2", "s1")
        assignment.assign("c3", "s1")
        # c1 on s1 (load 3) with s2 at load 0 -> badness 3, unhappy.
        assert assignment.badness("c1") == 3
        assert not assignment.is_happy("c1")
        # c3 has only one server: badness 0 by convention.
        assert assignment.badness("c3") == 0
        assert assignment.is_happy("c3")
        assert set(assignment.unhappy_customers()) == {"c1", "c2"}
        assert not assignment.is_stable()
        assert assignment.max_badness() == 3

    def test_negative_badness_when_choice_is_best(self, small_graph):
        assignment = Assignment(small_graph)
        assignment.assign("c2", "s1")
        assignment.assign("c3", "s1")
        assignment.assign("c1", "s2")
        # c1 on s2 (load 1) vs s1 (load 2): badness negative.
        assert assignment.badness("c1") == -1
        assert assignment.is_stable()
        assert check_stable_assignment(assignment) == []

    def test_unassigned_badness_raises(self, small_graph):
        assignment = Assignment(small_graph)
        with pytest.raises(AssignmentError):
            assignment.badness("c1")

    def test_check_stable_reports_unassigned(self, small_graph):
        assignment = Assignment(small_graph)
        violations = check_stable_assignment(assignment)
        assert violations and "unassigned" in violations[0]

    def test_effective_load(self):
        assert effective_load(5, None) == 5
        assert effective_load(5, 2) == 2
        assert effective_load(1, 2) == 1
        with pytest.raises(AssignmentError):
            effective_load(3, 1)

    def test_k_bounded_happiness(self, small_graph):
        assignment = Assignment(small_graph)
        assignment.assign("c1", "s1")
        assignment.assign("c2", "s1")
        assignment.assign("c3", "s1")
        # With k=2 the badness of c1 is eff(3)-eff(0) = 2 -> still unhappy.
        assert assignment.badness("c1", k=2) == 2
        assert not assignment.is_stable(k=2)

    def test_summary(self, small_graph):
        summary = AssignmentProblemSummary.of(small_graph)
        assert summary.num_customers == 3
        assert summary.num_servers == 2
        assert summary.max_customer_degree == 2
        assert summary.max_server_degree == 3


class TestSemiMatching:
    def test_triangular(self):
        assert [triangular(x) for x in range(5)] == [0, 1, 3, 6, 10]
        with pytest.raises(ValueError):
            triangular(-1)

    def test_costs(self, small_graph):
        assignment = Assignment(small_graph)
        assignment.assign("c1", "s1")
        assignment.assign("c2", "s2")
        assignment.assign("c3", "s1")
        assert assignment.semi_matching_cost() == triangular(2) + triangular(1)
        assert semi_matching_cost(assignment.loads()) == assignment.semi_matching_cost()
        assert worst_server_load(assignment.loads()) == 2
        assert load_histogram(assignment.loads()) == {1: 1, 2: 1}

    def test_optimal_on_small_graph(self, small_graph):
        optimal = optimal_semi_matching(small_graph)
        assert optimal.is_complete()
        # Best possible: loads (2, 1) -> cost 3 + 1 = 4 (c3 must use s1).
        assert optimal.semi_matching_cost() == 4
        assert optimal_cost(small_graph) == 4

    def test_optimal_is_minimal_over_greedy(self):
        graph = random_bipartite_customer_server(30, 8, 3, seed=7, server_skew=1.5)
        optimal = optimal_semi_matching(graph)
        greedy = greedy_assignment(graph, order="random", seed=1)
        assert optimal.semi_matching_cost() <= greedy.semi_matching_cost()
        assert approximation_ratio(optimal) == pytest.approx(1.0)

    def test_greedy_assignment_complete(self):
        graph = complete_bipartite(6, 3)
        assignment = greedy_assignment(graph)
        assert assignment.is_complete()
        # Complete bipartite: greedy balances perfectly.
        assert assignment.max_load() == 2

    def test_greedy_invalid_order(self, small_graph):
        with pytest.raises(ValueError):
            greedy_assignment(small_graph, order="bogus")

    def test_is_two_approximation_of_optimal(self, small_graph):
        optimal = optimal_semi_matching(small_graph)
        assert is_two_approximation(optimal)

    def test_approximation_ratio_with_precomputed_optimum(self, small_graph):
        optimal = optimal_semi_matching(small_graph)
        ratio = approximation_ratio(optimal, optimum=4)
        assert ratio == pytest.approx(1.0)
