"""Tests for the stable orientation algorithms.

Covers the phase-based O(Δ⁴) algorithm (Theorem 5.1), the centralized flip
baseline, the repair baseline, and the invariants they all must share
(stability of the output, Lemma 5.4's badness invariant, phase bounds).
"""

from __future__ import annotations

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.orientation import (
    FLIP_POLICIES,
    OrientationProblem,
    arbitrary_complete_orientation,
    check_stable,
    flip_chain_length,
    run_stable_orientation,
    sequential_flip_algorithm,
    synchronous_repair_orientation,
    theoretical_phase_bound,
    theoretical_round_bound,
)
from repro.graphs.generators import (
    bounded_degree_gnp,
    caterpillar_graph,
    cycle_graph,
    path_graph,
    perfect_dary_tree,
    random_regular_graph,
    star_graph,
)


def problems_for_testing():
    """A small battery of named problems used across parametrised tests."""
    return {
        "path": OrientationProblem.from_networkx(path_graph(10)),
        "cycle": OrientationProblem.from_networkx(cycle_graph(9)),
        "star": OrientationProblem.from_networkx(star_graph(6)),
        "tree": OrientationProblem.from_networkx(perfect_dary_tree(3, 3)[0]),
        "regular": OrientationProblem.from_networkx(
            random_regular_graph(4, 14, seed=2)
        ),
        "gnp": OrientationProblem.from_networkx(
            bounded_degree_gnp(25, 0.25, 6, seed=4)
        ),
        "caterpillar": OrientationProblem.from_networkx(caterpillar_graph(6, 3)),
        "single_edge": OrientationProblem(edges=[(0, 1)]),
        "empty": OrientationProblem(edges=[], nodes=[0, 1, 2]),
    }


PROBLEMS = problems_for_testing()


class TestSequentialFlip:
    @pytest.mark.parametrize("name", sorted(PROBLEMS))
    def test_produces_stable_orientation(self, name):
        problem = PROBLEMS[name]
        orientation, stats = sequential_flip_algorithm(problem)
        assert orientation.is_stable()
        assert check_stable(orientation) == []
        assert stats.final_potential <= stats.initial_potential

    @pytest.mark.parametrize("policy", FLIP_POLICIES)
    def test_all_policies_work(self, policy):
        problem = PROBLEMS["gnp"]
        orientation, stats = sequential_flip_algorithm(problem, policy=policy, seed=7)
        assert orientation.is_stable()
        assert stats.flips >= 0

    def test_potential_strictly_decreases(self):
        problem = PROBLEMS["star"]
        orientation, stats = sequential_flip_algorithm(problem, record_trace=True)
        trace = stats.potential_trace
        assert all(later < earlier for earlier, later in zip(trace, trace[1:]))
        assert orientation.is_stable()

    def test_star_flip_count(self):
        # All edges initially point at the centre (id 0 is the smaller
        # endpoint, so "towards max" orients them all outward-to-centre
        # depends on labels); just verify stability and a sane flip count.
        problem = PROBLEMS["star"]
        flips = flip_chain_length(problem)
        assert 0 <= flips <= problem.num_edges() ** 2

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            sequential_flip_algorithm(PROBLEMS["path"], policy="bogus")

    def test_incomplete_initial_rejected(self):
        from repro.core.orientation import Orientation

        problem = PROBLEMS["path"]
        with pytest.raises(ValueError):
            sequential_flip_algorithm(problem, initial=Orientation(problem))


class TestRepairBaseline:
    @pytest.mark.parametrize("name", sorted(PROBLEMS))
    def test_produces_stable_orientation(self, name):
        problem = PROBLEMS[name]
        orientation, stats = synchronous_repair_orientation(problem, seed=3)
        assert orientation.is_stable()
        assert stats.iterations >= 0
        assert stats.communication_rounds == stats.iterations * 3

    def test_accepts_explicit_initial(self):
        problem = PROBLEMS["regular"]
        initial = arbitrary_complete_orientation(problem, towards="max")
        orientation, _ = synchronous_repair_orientation(problem, initial=initial)
        assert orientation.is_stable()

    def test_incomplete_initial_rejected(self):
        from repro.core.orientation import Orientation

        problem = PROBLEMS["path"]
        with pytest.raises(ValueError):
            synchronous_repair_orientation(problem, initial=Orientation(problem))


class TestPhaseAlgorithm:
    @pytest.mark.parametrize("name", sorted(PROBLEMS))
    def test_produces_stable_orientation(self, name):
        problem = PROBLEMS[name]
        result = run_stable_orientation(problem)
        assert result.stable
        assert check_stable(result.orientation) == []

    @pytest.mark.parametrize("name", ["path", "cycle", "tree", "regular", "gnp"])
    def test_phase_and_round_bounds(self, name):
        problem = PROBLEMS[name]
        result = run_stable_orientation(problem)
        assert result.phases <= theoretical_phase_bound(problem)
        assert result.game_rounds <= theoretical_round_bound(problem)

    def test_badness_invariant_recorded_per_phase(self):
        problem = PROBLEMS["gnp"]
        result = run_stable_orientation(problem)
        assert all(stats.max_badness_after <= 1 for stats in result.per_phase)
        # Edge counts are monotone and end at m.
        oriented_counts = [stats.edges_oriented_total for stats in result.per_phase]
        assert oriented_counts == sorted(oriented_counts)
        assert oriented_counts[-1] == problem.num_edges()

    def test_token_dropping_height_bounded_by_delta(self):
        problem = PROBLEMS["regular"]
        result = run_stable_orientation(problem)
        delta = problem.max_degree()
        assert all(s.token_dropping_height <= delta for s in result.per_phase)

    def test_empty_graph_trivial(self):
        result = run_stable_orientation(PROBLEMS["empty"])
        assert result.phases == 0
        assert result.game_rounds == 0
        assert result.stable

    def test_same_cost_class_as_sequential(self):
        """Both algorithms find *some* stable orientation; loads need not match,
        but the sum of squared loads of any two stable orientations of the same
        graph are within a factor 4 (both are 2-approximations of the optimum)."""
        problem = PROBLEMS["caterpillar"]
        phase_result = run_stable_orientation(problem)
        seq_orientation, _ = sequential_flip_algorithm(problem)
        a = phase_result.orientation.semi_matching_cost()
        b = seq_orientation.semi_matching_cost()
        assert a <= 2 * b and b <= 2 * a

    @pytest.mark.parametrize("tie_break", ["min", "max", "random"])
    def test_tie_breaking_policies(self, tie_break):
        problem = PROBLEMS["gnp"]
        result = run_stable_orientation(problem, tie_break=tie_break, seed=5)
        assert result.stable


class TestPropertyBased:
    @given(
        n=st.integers(min_value=2, max_value=25),
        p=st.floats(min_value=0.05, max_value=0.5),
        max_degree=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_phase_algorithm_always_stable(self, n, p, max_degree, seed):
        graph = bounded_degree_gnp(n, p, max_degree, seed=seed)
        problem = OrientationProblem.from_networkx(graph)
        result = run_stable_orientation(problem)
        assert result.stable
        assert result.phases <= theoretical_phase_bound(problem)

    @given(
        n=st.integers(min_value=2, max_value=25),
        p=st.floats(min_value=0.05, max_value=0.5),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_sequential_always_stable_and_potential_decreases(self, n, p, seed):
        graph = bounded_degree_gnp(n, p, max_degree=5, seed=seed)
        problem = OrientationProblem.from_networkx(graph)
        orientation, stats = sequential_flip_algorithm(
            problem, policy="random", seed=seed
        )
        assert orientation.is_stable()
        assert stats.final_potential <= stats.initial_potential

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_all_three_algorithms_agree_on_stability(self, seed):
        rng = random.Random(seed)
        graph = bounded_degree_gnp(18, 0.3, 5, seed=rng)
        problem = OrientationProblem.from_networkx(graph)
        r1 = run_stable_orientation(problem)
        o2, _ = sequential_flip_algorithm(problem, policy="random", seed=seed)
        o3, _ = synchronous_repair_orientation(problem, seed=seed)
        assert r1.stable and o2.is_stable() and o3.is_stable()


@pytest.mark.integration
class TestLemma61OnTrees:
    """Lemma 6.1: in any stable orientation of a perfect d-ary tree,
    indegree(v) ≤ h(v) + 1.  All our algorithms must satisfy it."""

    @pytest.mark.parametrize("algorithm", ["phases", "sequential", "repair"])
    def test_indegree_bounded_by_height(self, algorithm):
        import networkx as nx

        from repro.graphs.validation import tree_heights

        graph, _root = perfect_dary_tree(3, 3)
        problem = OrientationProblem.from_networkx(graph)
        if algorithm == "phases":
            orientation = run_stable_orientation(problem).orientation
        elif algorithm == "sequential":
            orientation, _ = sequential_flip_algorithm(problem)
        else:
            orientation, _ = synchronous_repair_orientation(problem, seed=1)
        heights = tree_heights(graph)
        for node in graph.nodes():
            assert orientation.load(node) <= heights[node] + 1

    def test_girth_does_not_matter_for_stability(self):
        graph = nx.complete_graph(6)
        problem = OrientationProblem.from_networkx(graph)
        result = run_stable_orientation(problem)
        assert result.stable
