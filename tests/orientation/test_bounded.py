"""Tests for the 0–1–many (k-bounded) stable orientation relaxation (Section 1.4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.orientation import (
    OrientationProblem,
    bounded_unhappy_edges,
    run_bounded_stable_orientation,
    run_stable_orientation,
    theoretical_bounded_orientation_round_bound,
)
from repro.core.orientation.problem import Orientation
from repro.graphs.generators import bounded_degree_gnp, perfect_dary_tree, star_graph


class TestBoundedUnhappiness:
    def test_zero_load_neighbor_makes_edge_unhappy(self):
        problem = OrientationProblem(edges=[(1, 2), (2, 3)])
        orientation = Orientation(problem)
        orientation.orient(1, 2, head=2)
        orientation.orient(2, 3, head=2)
        # Node 2 has load 2, node 1 and 3 have load 0 -> both edges 0-1-many unhappy.
        assert len(bounded_unhappy_edges(orientation, k=2)) == 2

    def test_relaxation_is_strictly_weaker_than_full_stability(self):
        # A hub of load 3 whose edge-tails all have load 1: ordinarily
        # unhappy (badness 2) but 0-1-many happy, because no tail sees a
        # load-0 alternative.
        problem = OrientationProblem(
            edges=[
                ("c", "a"),
                ("c", "b"),
                ("c", "d"),
                ("a", "x"),
                ("b", "y"),
                ("d", "z"),
            ]
        )
        orientation = Orientation(problem)
        for tail in ("a", "b", "d"):
            orientation.orient("c", tail, head="c")
        orientation.orient("a", "x", head="a")
        orientation.orient("b", "y", head="b")
        orientation.orient("d", "z", head="d")
        assert orientation.load("c") == 3
        assert orientation.unhappy_edges()  # ordinary stability violated
        assert bounded_unhappy_edges(orientation, k=2) == []  # relaxation satisfied


class TestBoundedOrientationAlgorithm:
    @pytest.mark.parametrize("maker", [
        lambda: OrientationProblem(edges=[(1, 2), (2, 3), (1, 3), (3, 4)]),
        lambda: OrientationProblem.from_networkx(star_graph(6)),
        lambda: OrientationProblem.from_networkx(perfect_dary_tree(3, 2)[0]),
        lambda: OrientationProblem.from_networkx(
            bounded_degree_gnp(25, 0.25, 5, seed=3)
        ),
    ])
    def test_produces_bounded_stable_orientation(self, maker):
        problem = maker()
        result = run_bounded_stable_orientation(problem, seed=1)
        assert result.orientation.is_complete()
        assert result.stable
        assert bounded_unhappy_edges(result.orientation, k=result.k) == []

    def test_empty_problem(self):
        problem = OrientationProblem(edges=[], nodes=[1, 2])
        result = run_bounded_stable_orientation(problem)
        assert result.stable
        assert result.phases == 0
        assert result.assignment_result is None

    def test_invalid_k_rejected(self):
        problem = OrientationProblem(edges=[(1, 2)])
        with pytest.raises(ValueError):
            run_bounded_stable_orientation(problem, k=1)

    def test_round_budget_respected(self):
        problem = OrientationProblem.from_networkx(
            bounded_degree_gnp(30, 0.3, 6, seed=5)
        )
        result = run_bounded_stable_orientation(problem, seed=2)
        assert result.game_rounds <= theoretical_bounded_orientation_round_bound(
            problem
        )

    def test_full_stability_implies_bounded_stability(self):
        problem = OrientationProblem.from_networkx(
            bounded_degree_gnp(20, 0.3, 5, seed=9)
        )
        full = run_stable_orientation(problem)
        assert bounded_unhappy_edges(full.orientation, k=2) == []

    @given(
        n=st.integers(min_value=2, max_value=20),
        p=st.floats(min_value=0.1, max_value=0.5),
        seed=st.integers(min_value=0, max_value=5_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_always_bounded_stable(self, n, p, seed):
        problem = OrientationProblem.from_networkx(
            bounded_degree_gnp(n, p, 5, seed=seed)
        )
        result = run_bounded_stable_orientation(problem, seed=seed)
        assert result.stable
