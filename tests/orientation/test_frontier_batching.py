"""Frontier proportionality of the compact orientation phase driver.

The million-node acceptance bar: a phase of
:func:`~repro.core.orientation._kernels.stable_orientation_kernel` may
only materialise state proportional to its *frontier* — the badness-1
game edges, the nodes whose load changed, and their incident CSR slots —
never O(n) scratch for non-participating nodes.  The kernel exports
exactly those three quantities as ``orientation.frontier.*`` obs
counters; this test pins both their structural meaning (they are bounded
by the phase's own flip/accept work) and the scaling consequence (once
the instance converges, late phases touch a vanishing fraction of the
graph even though every phase still runs).
"""

from __future__ import annotations

from collections import defaultdict

from repro import obs
from repro.core.orientation._kernels import stable_orientation_kernel
from repro.workloads.scenarios import layered_dag_orientation

PARAMS = dict(num_levels=30, width=100, edge_probability=0.03, seed=5)


def _run_with_counters(graph):
    with obs.capture() as sink:
        heads, load, phases, _, _, per_phase = stable_orientation_kernel(
            graph, seed=0
        )
    series = defaultdict(list)
    for event in sink.events:
        if event.get("type") == "counter" and event["name"].startswith(
            "orientation.frontier."
        ):
            series[event["name"].rsplit(".", 1)[1]].append(event["value"])
    return heads, phases, per_phase, series


def test_frontier_counters_bound_by_phase_work():
    graph = layered_dag_orientation(**PARAMS, compact=True)
    n = graph.num_nodes
    delta = graph.max_degree()
    heads, phases, per_phase, series = _run_with_counters(graph)

    # One counter triple per phase, all edges oriented.
    assert phases >= 3
    assert len(series["game_edges"]) == phases
    assert len(series["touched_nodes"]) == phases
    assert len(series["refreshed_slots"]) == phases
    assert all(h >= 0 for h in heads)

    for stats, touched, refreshed, game_edges in zip(
        per_phase,
        series["touched_nodes"],
        series["refreshed_slots"],
        series["game_edges"],
    ):
        # A node's load only changes when an incident edge flips or is
        # accepted, so the touched set is bounded by the phase's own
        # work, never by n ...
        assert touched <= 2 * stats.edges_flipped + stats.accepted
        # ... and badness re-examination visits only the touched nodes'
        # incident slots.
        assert refreshed <= touched * delta
        # The game is built from the maintained badness-1 candidate set;
        # phase 1 has no oriented edges and must build an empty game.
        assert game_edges <= graph.num_edges
    assert series["game_edges"][0] == 0

    # Scaling consequence: by the final phase the frontier has collapsed
    # — the driver touches a sliver of the graph, not O(n) per phase.
    assert series["touched_nodes"][-1] < n // 20
    assert series["refreshed_slots"][-1] < (2 * graph.num_edges) // 20


def test_counters_silent_when_obs_disabled():
    graph = layered_dag_orientation(**PARAMS, compact=True)
    assert not obs.enabled()
    with obs.capture() as sink:
        pass  # capture only to prove the previous run emitted nothing
    stable_orientation_kernel(graph, seed=0)
    assert sink.events == []
