"""Batched churn application (:meth:`DynamicOrientation.apply_batch`).

The coalescing contract the serving layer is built on:

* a one-delta batch is *identical* (stats and state) to :meth:`apply`;
* compact and dict backends agree bit-for-bit on every batch;
* an empty batch is a strict no-op (update counter untouched);
* a failing delta re-stabilizes the applied prefix before raising;
* :meth:`solved_arrays` → :meth:`from_solved_arrays` round-trips the
  full serving state, including seed-stream continuity for future deltas.
"""

from __future__ import annotations

import pytest

from repro.core.orientation import (
    BatchStats,
    DynamicOrientation,
    EdgeDelete,
    EdgeInsert,
    NodeJoin,
    NodeLeave,
)
from repro.graphs.compact import DeltaError
from repro.workloads import churn_smoke, churn_smoke_trace, churn_trace
from repro.workloads.scenarios import sensor_network_orientation

pytestmark = pytest.mark.integration


def _engine(seed=5, backend="compact"):
    return DynamicOrientation(churn_smoke(compact=True), seed=seed, backend=backend)


def _trace(n=60):
    return list(churn_smoke_trace(churn_smoke(compact=True)))[:n]


def _state(dynamic):
    graph, heads, load = dynamic.solved_arrays()
    return (
        tuple(graph.node_ids),
        list(graph.edge_u),
        list(graph.edge_v),
        heads,
        load,
        sorted(map(repr, dynamic.unhappy_edges())),
    )


class TestBatchSemantics:
    def test_singleton_batches_equal_sequential_apply(self):
        batched, sequential = _engine(), _engine()
        for delta in _trace():
            batch_stats = batched.apply_batch([delta])
            update_stats = sequential.apply(delta)
            assert batch_stats.update_seed == update_stats.update_seed
            assert batch_stats.repair == update_stats.repair
            assert batch_stats.frontier_nodes == update_stats.frontier_nodes
        assert _state(batched) == _state(sequential)
        assert batched.updates_applied == sequential.updates_applied

    def test_compact_and_dict_agree_on_batches(self):
        fast, reference = _engine(backend="compact"), _engine(backend="dict")
        trace = _trace(80)
        boundaries = [0, 7, 8, 8, 20, 45, 80]  # includes an empty chunk
        for lo, hi in zip(boundaries, boundaries[1:]):
            chunk = trace[lo:hi]
            assert fast.apply_batch(chunk) == reference.apply_batch(chunk)
            assert fast.loads() == reference.loads()
            assert not fast.unhappy_edges() and not reference.unhappy_edges()

    def test_batch_seed_is_last_deltas_stream_seed(self):
        engine = _engine(seed=9)
        trace = _trace(10)
        stats = engine.apply_batch(trace)
        assert isinstance(stats, BatchStats)
        assert stats.num_deltas == len(trace)
        assert stats.update_seed == 9 * 1_000_003 + len(trace) - 1
        assert engine.updates_applied == len(trace)
        # The next batch continues where the counter left off.
        stats2 = engine.apply_batch([_trace(11)[10]])
        assert stats2.update_seed == 9 * 1_000_003 + len(trace)

    def test_empty_batch_is_a_strict_noop(self):
        engine = _engine()
        before = _state(engine)
        stats = engine.apply_batch([])
        assert stats == BatchStats(num_deltas=0, update_seed=None)
        assert engine.updates_applied == 0
        assert _state(engine) == before

    def test_failing_delta_restabilizes_the_applied_prefix(self):
        for backend in ("compact", "dict"):
            engine = _engine(backend=backend)
            good = EdgeInsert(("churn", 0), (0, 2))
            bad = EdgeDelete(("nope", 1), ("nope", 2))
            join = NodeJoin(("churn", 0), [(0, 0), (0, 1)])
            with pytest.raises(DeltaError):
                engine.apply_batch([join, good, bad])
            # The prefix landed and the state is stable again.
            assert engine.load_of(("churn", 0)) >= 0
            assert not engine.unhappy_edges(), backend

    def test_delete_then_insert_same_edge_in_one_batch(self):
        engine, reference = _engine(), _engine()
        graph = churn_smoke(compact=True)
        u, v = graph.node_ids[graph.edge_u[0]], graph.node_ids[graph.edge_v[0]]
        batch = [EdgeDelete(u, v), EdgeInsert(u, v)]
        stats = engine.apply_batch(batch)
        assert stats.edges_removed == 1 and stats.edges_inserted == 1
        # Bit-for-bit against the dict reference applying the same batch.
        ref = DynamicOrientation(graph, seed=5, backend="dict")
        assert ref.apply_batch(batch) == stats
        assert ref.loads() == engine.loads()
        # The edge survived the round trip on both.
        assert engine.head_of(u, v) in (u, v)
        assert ref.head_of(u, v) in (u, v)
        del reference

    def test_node_leave_then_queries_raise_cleanly(self):
        engine = _engine()
        engine.apply_batch([NodeJoin(("x",), [(0, 0)])])
        assert engine.load_of(("x",)) == 0 or engine.load_of(("x",)) == 1
        engine.apply_batch([NodeLeave(("x",))])
        with pytest.raises(DeltaError):
            engine.load_of(("x",))
        assert not engine.unhappy_edges()


class TestSolvedArraysRoundTrip:
    @pytest.mark.parametrize("backend", ["compact", "dict"])
    def test_round_trip_preserves_state_and_future(self, backend):
        engine = _engine(backend=backend)
        trace = _trace(60)
        engine.apply_batch(trace[:40])
        graph, heads, load = engine.solved_arrays()
        clone = DynamicOrientation.from_solved_arrays(
            graph,
            heads,
            load,
            seed=engine.seed,
            updates_applied=engine.updates_applied,
        )
        assert clone.loads() == engine.loads()
        # Seed-stream continuity: the same future replays identically.
        for delta in trace[40:]:
            assert clone.apply(delta) == engine.apply(delta)
        assert _state(clone) == _state(engine)

    def test_pristine_engine_round_trips_without_copy(self):
        graph = sensor_network_orientation(
            num_nodes=40, max_degree=6, seed=3, compact=True
        )
        engine = DynamicOrientation(graph, seed=3)
        got_graph, heads, load = engine.solved_arrays()
        assert got_graph is graph  # pristine → the base CSR is returned as-is
        clone = DynamicOrientation.from_solved_arrays(graph, heads, load, seed=3)
        assert clone.loads() == engine.loads()

    def test_from_solved_arrays_validates(self):
        graph = sensor_network_orientation(
            num_nodes=30, max_degree=5, seed=1, compact=True
        )
        engine = DynamicOrientation(graph, seed=1)
        _, heads, load = engine.solved_arrays()
        with pytest.raises(ValueError):
            DynamicOrientation.from_solved_arrays(graph, heads[:-1], load)
        bad_load = list(load)
        if bad_load:
            bad_load[0] += 1
        with pytest.raises(ValueError):
            DynamicOrientation.from_solved_arrays(graph, heads, bad_load)
        bad_heads = list(heads)
        bad_heads[0] = graph.num_nodes + 5
        with pytest.raises(ValueError):
            DynamicOrientation.from_solved_arrays(graph, bad_heads, None)

    def test_validate_flag_rejects_unstable_heads(self):
        graph = sensor_network_orientation(
            num_nodes=30, max_degree=5, seed=2, compact=True
        )
        engine = DynamicOrientation(graph, seed=2)
        _, heads, _ = engine.solved_arrays()
        # Pile every edge of node 0's neighbourhood onto one endpoint until
        # the orientation is unstable, keeping load consistent with heads.
        bad_heads = list(heads)
        start, end = graph.indptr[0], graph.indptr[1]
        for slot in range(start, end):
            bad_heads[graph.slot_edge[slot]] = 0
        if engine.unhappy_edges() == [] and end - start >= 3:
            with pytest.raises(ValueError):
                DynamicOrientation.from_solved_arrays(graph, bad_heads, None)
            # validate=False lets the same arrays through.
            clone = DynamicOrientation.from_solved_arrays(
                graph, bad_heads, None, validate=False
            )
            assert clone.load_of(graph.node_ids[0]) == end - start


class TestBatchTraceFamilies:
    @pytest.mark.parametrize("mix", ["mixed", "arrivals", "failures"])
    def test_chunked_equals_dict_reference_across_mixes(self, mix):
        instance = sensor_network_orientation(
            num_nodes=30, max_degree=6, seed=7, compact=True
        )
        trace = list(
            churn_trace(instance, num_updates=60, seed=17, mix=mix)
        )
        fast = DynamicOrientation(instance, seed=7, backend="compact")
        reference = DynamicOrientation(instance, seed=7, backend="dict")
        for lo in range(0, len(trace), 9):
            chunk = trace[lo : lo + 9]
            assert fast.apply_batch(chunk) == reference.apply_batch(chunk)
        assert fast.loads() == reference.loads()
        assert not fast.unhappy_edges()
