"""Unit tests for the stable orientation problem structures."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.core.orientation import (
    Orientation,
    OrientationError,
    OrientationProblem,
    arbitrary_complete_orientation,
    check_stable,
    edge_key,
)


@pytest.fixture
def triangle() -> OrientationProblem:
    return OrientationProblem(edges=[(1, 2), (2, 3), (1, 3)])


class TestProblem:
    def test_basic_queries(self, triangle: OrientationProblem):
        assert triangle.nodes == (1, 2, 3)
        assert triangle.num_edges() == 3
        assert triangle.max_degree() == 2
        assert triangle.degree(1) == 2
        assert triangle.neighbors(2) == frozenset({1, 3})
        assert triangle.has_edge(1, 3)
        assert not triangle.has_edge(1, 4)

    def test_isolated_nodes(self):
        problem = OrientationProblem(edges=[(1, 2)], nodes=[5])
        assert 5 in problem.nodes
        assert problem.degree(5) == 0

    def test_duplicate_edge_rejected(self):
        with pytest.raises(OrientationError):
            OrientationProblem(edges=[(1, 2), (2, 1)])

    def test_self_loop_rejected(self):
        with pytest.raises(OrientationError):
            OrientationProblem(edges=[(1, 1)])

    def test_from_networkx(self):
        problem = OrientationProblem.from_networkx(nx.cycle_graph(4))
        assert problem.num_edges() == 4
        assert problem.max_degree() == 2

    def test_edge_key_canonical(self):
        assert edge_key(2, 1) == (1, 2)
        assert edge_key("b", "a") == ("a", "b")
        with pytest.raises(OrientationError):
            edge_key(1, 1)


class _ReprA:
    """A node id whose repr collides with :class:`_ReprB`'s."""

    def __repr__(self) -> str:
        return "node"

    def __hash__(self) -> int:
        return 7


class _ReprB:
    def __repr__(self) -> str:
        return "node"

    def __hash__(self) -> int:
        return 7


class TestEdgeKeyMixedTypes:
    """The TypeError fallback must impose a *total* deterministic order."""

    def test_mixed_types_are_order_insensitive(self):
        assert edge_key(1, "a") == edge_key("a", 1)
        assert edge_key((1, 2), "z") == edge_key("z", (1, 2))

    def test_mixed_types_order_by_type_name_then_repr(self):
        # 'int' < 'str', so the int endpoint comes first even though
        # repr("0") would sort before repr(1) under a bare-repr tie-break.
        assert edge_key(1, "0") == (1, "0")
        assert edge_key("0", 1) == (1, "0")

    def test_equal_reprs_across_types_do_not_collide(self):
        a, b = _ReprA(), _ReprB()
        assert repr(a) == repr(b)
        # Same key from both argument orders (the old bare-repr fallback
        # returned a different tuple per order here)...
        assert edge_key(a, b) == edge_key(b, a)
        # ...and the two distinct directed readings stay distinguishable.
        key = edge_key(a, b)
        assert key[0] is not key[1]

    def test_equal_reprs_give_distinct_keys_per_edge(self):
        a, b, c = _ReprA(), _ReprB(), _ReprB()
        keys = {edge_key(a, b), edge_key(a, c)}
        assert len(keys) == 2

    def test_problem_accepts_repr_colliding_mixed_nodes(self):
        a, b = _ReprA(), _ReprB()
        problem = OrientationProblem(edges=[(a, b)])
        assert problem.num_edges() == 1
        assert problem.has_edge(a, b) and problem.has_edge(b, a)

    def test_same_type_equal_repr_equal_hash_still_total(self):
        # The worst case: indistinguishable by type, repr, AND hash.
        a, b = _ReprB(), _ReprB()
        assert edge_key(a, b) == edge_key(b, a)
        problem = OrientationProblem(edges=[(a, b)])
        orientation = Orientation(problem)
        orientation.orient(b, a, head=a)  # must resolve to the same edge key
        assert orientation.head_of(a, b) is a


class TestOrientation:
    def test_orient_and_loads(self, triangle: OrientationProblem):
        orientation = Orientation(triangle)
        orientation.orient(1, 2, head=2)
        orientation.orient(2, 3, head=2)
        assert orientation.load(2) == 2
        assert orientation.load(1) == 0
        assert orientation.num_oriented() == 2
        assert not orientation.is_complete()
        assert orientation.unoriented_edges() == ((1, 3),)

    def test_orient_unknown_edge_rejected(self, triangle: OrientationProblem):
        orientation = Orientation(triangle)
        with pytest.raises(OrientationError):
            orientation.orient(1, 4, head=1)

    def test_orient_bad_head_rejected(self, triangle: OrientationProblem):
        orientation = Orientation(triangle)
        with pytest.raises(OrientationError):
            orientation.orient(1, 2, head=3)

    def test_flip(self, triangle: OrientationProblem):
        orientation = Orientation(triangle)
        orientation.orient(1, 2, head=2)
        orientation.flip(1, 2)
        assert orientation.head_of(1, 2) == 1
        assert orientation.load(2) == 0
        assert orientation.load(1) == 1

    def test_flip_unoriented_rejected(self, triangle: OrientationProblem):
        orientation = Orientation(triangle)
        with pytest.raises(OrientationError):
            orientation.flip(1, 2)

    def test_head_tail_queries(self, triangle: OrientationProblem):
        orientation = Orientation(triangle)
        assert orientation.head_of(1, 2) is None
        assert orientation.tail_of(1, 2) is None
        orientation.orient(1, 2, head=1)
        assert orientation.head_of(2, 1) == 1
        assert orientation.tail_of(1, 2) == 2
        assert orientation.is_oriented(1, 2)

    def test_badness_and_happiness(self, triangle: OrientationProblem):
        orientation = Orientation(triangle)
        orientation.orient(1, 2, head=2)
        orientation.orient(2, 3, head=2)
        orientation.orient(1, 3, head=3)
        # load: 1 -> 0, 2 -> 2, 3 -> 1
        assert orientation.badness(1, 2) == 2
        assert not orientation.is_happy(1, 2)
        assert orientation.is_happy(1, 3)
        assert orientation.max_badness() == 2
        assert len(orientation.unhappy_edges()) == 1
        assert not orientation.is_stable()

    def test_stable_configuration(self, triangle: OrientationProblem):
        # Orient the triangle as a directed cycle: every load is 1, stable.
        orientation = Orientation(triangle)
        orientation.orient(1, 2, head=2)
        orientation.orient(2, 3, head=3)
        orientation.orient(1, 3, head=1)
        assert orientation.is_stable()
        assert check_stable(orientation) == []

    def test_check_stable_reports_unoriented(self, triangle: OrientationProblem):
        orientation = Orientation(triangle)
        violations = check_stable(orientation)
        assert violations and "unoriented" in violations[0]

    def test_potentials(self, triangle: OrientationProblem):
        orientation = Orientation(triangle)
        orientation.orient(1, 2, head=2)
        orientation.orient(2, 3, head=2)
        orientation.orient(1, 3, head=3)
        assert orientation.sum_squared_loads() == 0 + 4 + 1
        assert orientation.semi_matching_cost() == 0 + 3 + 1
        assert orientation.max_load() == 2

    def test_copy_is_independent(self, triangle: OrientationProblem):
        orientation = Orientation(triangle)
        orientation.orient(1, 2, head=2)
        clone = orientation.copy()
        clone.flip(1, 2)
        assert orientation.head_of(1, 2) == 2
        assert clone.head_of(1, 2) == 1

    def test_arbitrary_orientations(self, triangle: OrientationProblem):
        max_o = arbitrary_complete_orientation(triangle, towards="max")
        assert max_o.is_complete()
        min_o = arbitrary_complete_orientation(triangle, towards="min")
        assert min_o.is_complete()
        rand_o = arbitrary_complete_orientation(
            triangle, rng=random.Random(0), towards="random"
        )
        assert rand_o.is_complete()
        with pytest.raises(OrientationError):
            arbitrary_complete_orientation(triangle, towards="random")
        with pytest.raises(OrientationError):
            arbitrary_complete_orientation(triangle, towards="bogus")
