"""Frontier proportionality of the k-bounded orientation kernel.

The bounded kernel shares the frontier contract of its unbounded
sibling (see ``test_frontier_batching``): each phase's hypergraph game
is built from the maintained badness-1 candidate set, load re-levelling
touches only the nodes whose load actually changed, and badness
re-examination visits only the touched nodes' incident slots — never a
fresh O(m) edge scan.  The kernel exports the same
``orientation.frontier.*`` counters, extended by the per-phase game
engine's ``game_vertices``/``scanned_slots`` pair, and this suite pins
them against the phase's own recorded work.
"""

from __future__ import annotations

from collections import defaultdict

from repro import obs
from repro.core.orientation._kernels import bounded_orientation_kernel
from repro.workloads.scenarios import layered_dag_orientation

PARAMS = dict(num_levels=20, width=50, edge_probability=0.05, seed=5)


def _instance(**overrides):
    return layered_dag_orientation(**{**PARAMS, **overrides}, compact=True)


def _run_with_counters(graph, k=2):
    with obs.capture() as sink:
        choice, load, phases, _, per_phase = bounded_orientation_kernel(
            graph, k=k, seed=0
        )
    series = defaultdict(list)
    for event in sink.events:
        if event.get("type") == "counter" and event["name"].startswith(
            "orientation.frontier."
        ):
            series[event["name"].rsplit(".", 1)[1]].append(event["value"])
    return choice, phases, per_phase, series


def test_bounded_frontier_counters_bound_by_phase_work():
    graph = _instance()
    delta = graph.max_degree()
    choice, phases, per_phase, series = _run_with_counters(graph)

    # One counter quintuple per phase, every customer assigned.
    assert phases >= 3
    for key in (
        "game_edges",
        "touched_nodes",
        "refreshed_slots",
        "game_vertices",
        "scanned_slots",
    ):
        assert len(series[key]) == phases, key
    assert all(h >= 0 for h in choice)

    for stats, game_edges, vertices, touched, refreshed in zip(
        per_phase,
        series["game_edges"],
        series["game_vertices"],
        series["touched_nodes"],
        series["refreshed_slots"],
    ):
        # The game counters agree with the recorded phase stats, and the
        # engine only ever walks the live hyperedges' endpoints.
        assert game_edges == stats.game_hyperedges
        assert vertices <= 2 * game_edges
        # A node's effective level only changes when a pass or an accept
        # moved load across it, so the touched set is bounded by the
        # phase's own work, never by n ...
        assert touched <= 2 * stats.reassignments + stats.accepted
        # ... and badness re-examination visits only their slots.
        assert refreshed <= touched * delta

    # Phase 1 starts with nothing assigned: no badness-1 candidates, so
    # the first game is empty and scans nothing.
    assert series["game_edges"][0] == 0
    assert series["game_vertices"][0] == 0
    assert series["scanned_slots"][0] == 0

    # Collapse: by the final phase only a sliver of the graph moves.
    n = graph.num_nodes
    assert series["touched_nodes"][-1] < n // 10
    assert series["refreshed_slots"][-1] < (2 * graph.num_edges) // 10


def test_bounded_counters_silent_when_obs_disabled():
    graph = _instance(num_levels=6, width=15)
    assert not obs.enabled()
    # No sink configured: the kernel must not pay the counter bookkeeping
    # (the obs.enabled() gate) nor emit anything once a sink appears for
    # an unrelated scope.
    choice, load, phases, _, _ = bounded_orientation_kernel(graph, seed=0)
    with obs.capture() as sink:
        pass
    assert sink.events == []
    assert phases >= 1 and all(h >= 0 for h in choice)
