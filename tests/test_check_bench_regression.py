"""Unit tests for ``scripts/check_bench_regression.py``.

The gate logic is exercised with injected fake gates and a monkeypatched
``timed_median``, so no real benchmark instance is built: the tests cover
the passing path, a >3x regression, the silent-fallback ratio failure,
the min-budget floor for millisecond-scale scenarios, agreement failures,
budget-only suites, and missing/malformed BENCH files.  One registry test
asserts every gate points at a scenario that is actually committed.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_bench_regression.py"

spec = importlib.util.spec_from_file_location("check_bench_regression", SCRIPT)
cbr = importlib.util.module_from_spec(spec)
# The dataclass decorator resolves string annotations through
# sys.modules[cls.__module__], so the module must be registered first.
sys.modules["check_bench_regression"] = cbr
spec.loader.exec_module(cbr)


def _write_bench(tmp_path: Path, suite: str, scenario: str, median: float) -> None:
    (tmp_path / f"BENCH_{suite}.json").write_text(
        json.dumps({"scenarios": {scenario: {"median_seconds": median}}})
    )


def _fake_gate(
    *, with_reference: bool = True, agreement_error=None, min_ratio=None
) -> "cbr.SuiteGate":
    return cbr.SuiteGate(
        scenario="scenario",
        prepare=lambda: {},
        run=lambda ctx: None,
        reference=(lambda ctx: None) if with_reference else None,
        check_agreement=(
            (lambda ctx: agreement_error) if with_reference else None
        ),
        min_ratio=min_ratio,
    )


def _patch(monkeypatch, gate, timings) -> None:
    """Install one fake suite and a deterministic timer.

    ``timings`` are consumed in call order: the gated path is timed
    first, the reference (when present) second.
    """
    monkeypatch.setattr(cbr, "GATES", {"fake": lambda: gate})
    feed = iter(timings)
    monkeypatch.setattr(cbr, "timed_median", lambda fn, rounds: next(feed))


def test_passing_gate(monkeypatch, tmp_path):
    _write_bench(tmp_path, "fake", "scenario", 0.1)
    _patch(monkeypatch, _fake_gate(), [0.12, 1.0])
    assert cbr.main(["--bench-dir", str(tmp_path)]) == 0


def test_provenance_and_extra_keys_are_ignored(monkeypatch, tmp_path):
    # Regenerated BENCH files carry a top-level "provenance" stamp and
    # per-scenario phase_median_* rows; the gate must only ever read
    # scenarios[...]["median_seconds"].
    (tmp_path / "BENCH_fake.json").write_text(
        json.dumps(
            {
                "provenance": {
                    "git_sha": "deadbeef",
                    "python_version": "3.99.0",
                    "platform": "ci-runner",
                    "timestamp": "2026-08-08T00:00:00+00:00",
                },
                "scenarios": {
                    "scenario": {
                        "median_seconds": 0.1,
                        "phase_median_orientation.phase": 0.004,
                        "rounds": 8,
                    }
                },
            }
        )
    )
    _patch(monkeypatch, _fake_gate(), [0.12, 1.0])
    assert cbr.main(["--bench-dir", str(tmp_path)]) == 0


def test_regression_beyond_budget_fails(monkeypatch, tmp_path, capsys):
    _write_bench(tmp_path, "fake", "scenario", 0.1)
    _patch(monkeypatch, _fake_gate(), [0.5, 5.0])
    assert cbr.main(["--bench-dir", str(tmp_path)]) == 1
    assert "regressed more than 3.0x" in capsys.readouterr().err


def test_silent_fallback_ratio_fails(monkeypatch, tmp_path, capsys):
    # Within budget, but the dict reference is barely slower: the ratio
    # floor catches a compact path that silently fell back.
    _write_bench(tmp_path, "fake", "scenario", 0.1)
    _patch(monkeypatch, _fake_gate(), [0.1, 0.15])
    assert cbr.main(["--bench-dir", str(tmp_path)]) == 1
    assert "silent fall-back" in capsys.readouterr().err


def test_per_gate_min_ratio_overrides_cli_default(monkeypatch, tmp_path, capsys):
    # A 5x ratio passes the 3x CLI default but fails a gate that demands
    # 10x (the churn gate's incremental-vs-scratch contract).
    _write_bench(tmp_path, "fake", "scenario", 0.1)
    _patch(monkeypatch, _fake_gate(min_ratio=10.0), [0.1, 0.5])
    assert cbr.main(["--bench-dir", str(tmp_path)]) == 1
    assert "floor 10.0x" in capsys.readouterr().err

    _patch(monkeypatch, _fake_gate(min_ratio=10.0), [0.1, 1.5])
    assert cbr.main(["--bench-dir", str(tmp_path)]) == 0


def test_min_budget_floor_shields_millisecond_scenarios(monkeypatch, tmp_path):
    # 10x over a 1 ms committed median is still far below the 50 ms
    # absolute floor, so a slow runner cannot flake the gate.
    _write_bench(tmp_path, "fake", "scenario", 0.001)
    _patch(monkeypatch, _fake_gate(), [0.01, 0.2])
    assert cbr.main(["--bench-dir", str(tmp_path)]) == 0


def test_agreement_failure_fails_before_timing(monkeypatch, tmp_path, capsys):
    _write_bench(tmp_path, "fake", "scenario", 0.1)
    gate = _fake_gate(agreement_error="backends disagree")
    monkeypatch.setattr(cbr, "GATES", {"fake": lambda: gate})

    def no_timing(fn, rounds):  # pragma: no cover - would mean a bug
        raise AssertionError("timing must not run after an agreement failure")

    monkeypatch.setattr(cbr, "timed_median", no_timing)
    assert cbr.main(["--bench-dir", str(tmp_path)]) == 1
    assert "backends disagree" in capsys.readouterr().err


def test_budget_only_suite_skips_ratio(monkeypatch, tmp_path):
    _write_bench(tmp_path, "fake", "scenario", 0.1)
    # Only one timing is consumed: a second call would raise StopIteration.
    _patch(monkeypatch, _fake_gate(with_reference=False), [0.12])
    assert cbr.main(["--bench-dir", str(tmp_path)]) == 0


def test_missing_bench_file(monkeypatch, tmp_path, capsys):
    _patch(monkeypatch, _fake_gate(), [])
    assert cbr.main(["--bench-dir", str(tmp_path)]) == 2
    assert "no committed median" in capsys.readouterr().err


def test_malformed_bench_file(monkeypatch, tmp_path, capsys):
    (tmp_path / "BENCH_fake.json").write_text("{not json")
    _patch(monkeypatch, _fake_gate(), [])
    assert cbr.main(["--bench-dir", str(tmp_path)]) == 2
    assert "no committed median" in capsys.readouterr().err


def test_scenario_missing_from_bench_file(monkeypatch, tmp_path):
    _write_bench(tmp_path, "fake", "another_scenario", 0.1)
    _patch(monkeypatch, _fake_gate(), [])
    assert cbr.main(["--bench-dir", str(tmp_path)]) == 2


def test_suite_filter_limits_gating(monkeypatch, tmp_path):
    gate = _fake_gate(with_reference=False)
    other_calls = []

    def other_factory():
        other_calls.append(1)  # pragma: no cover - would mean a bug
        raise AssertionError("unselected suite must not be built")

    monkeypatch.setattr(
        cbr, "GATES", {"fake": lambda: gate, "other": other_factory}
    )
    _write_bench(tmp_path, "fake", "scenario", 0.1)
    feed = iter([0.1])
    monkeypatch.setattr(cbr, "timed_median", lambda fn, rounds: next(feed))
    assert cbr.main(["--suite", "fake", "--bench-dir", str(tmp_path)]) == 0
    assert not other_calls


def test_timing_rounds_scale_for_fast_scenarios():
    assert cbr.timing_rounds(1.0, 5) == 5
    assert cbr.timing_rounds(0.002, 5) == 25  # capped
    assert cbr.timing_rounds(0.02, 5) == 5
    assert cbr.timing_rounds(0.004, 5) == 13


@pytest.mark.parametrize("suite", sorted(cbr.GATES))
def test_gate_scenarios_are_committed(suite):
    """Every registered gate re-times a scenario that is committed."""
    gate = cbr.GATES[suite]()
    bench_name = gate.bench_suite or suite
    payload = json.loads((REPO_ROOT / f"BENCH_{bench_name}.json").read_text())
    assert gate.scenario in payload["scenarios"], (suite, gate.scenario)


def test_min_cpus_skips_timing_but_runs_agreement(monkeypatch, tmp_path, capsys):
    _write_bench(tmp_path, "fake", "scenario", 0.1)
    agreement_calls = []

    def check_agreement(ctx):
        agreement_calls.append(1)
        return None

    gate = cbr.SuiteGate(
        scenario="scenario",
        prepare=lambda: {},
        run=lambda ctx: None,
        reference=lambda ctx: None,
        check_agreement=check_agreement,
        min_cpus=4,
    )
    monkeypatch.setattr(cbr, "GATES", {"fake": lambda: gate})
    monkeypatch.setattr(cbr.os, "cpu_count", lambda: 2)

    def no_timing(fn, rounds):  # pragma: no cover - would mean a bug
        raise AssertionError("timing must not run below the CPU floor")

    monkeypatch.setattr(cbr, "timed_median", no_timing)
    assert cbr.main(["--bench-dir", str(tmp_path)]) == 0
    assert agreement_calls == [1]
    assert "SKIPPED timing" in capsys.readouterr().out


def test_min_cpus_agreement_failure_still_fails(monkeypatch, tmp_path, capsys):
    _write_bench(tmp_path, "fake", "scenario", 0.1)
    gate = cbr.SuiteGate(
        scenario="scenario",
        prepare=lambda: {},
        run=lambda ctx: None,
        reference=lambda ctx: None,
        check_agreement=lambda ctx: "parallel and serial disagree",
        min_cpus=64,
    )
    monkeypatch.setattr(cbr, "GATES", {"fake": lambda: gate})
    assert cbr.main(["--bench-dir", str(tmp_path)]) == 1
    assert "parallel and serial disagree" in capsys.readouterr().err


def test_bench_suite_override_reads_other_file(monkeypatch, tmp_path):
    # A gate may point at another suite's BENCH file (scale_parallel
    # reads BENCH_scale.json); its own name must not be consulted.
    _write_bench(tmp_path, "other", "scenario", 0.1)
    gate = cbr.SuiteGate(
        scenario="scenario",
        prepare=lambda: {},
        run=lambda ctx: None,
        bench_suite="other",
    )
    _patch(monkeypatch, gate, [0.12])
    assert cbr.main(["--bench-dir", str(tmp_path)]) == 0


def test_serve_gate_contract():
    # The serve gate's whole point is the coalesced-vs-naive floor: it
    # must carry the 10x override and time a naive reference path.
    gate = cbr.GATES["serve"]()
    assert gate.scenario == "test_serve_coalesced_replay"
    assert gate.min_ratio == 10.0
    assert gate.reference_label == "naive"
    assert gate.reference is not None
    assert gate.check_agreement is not None


def test_serve_gate_agreement_on_the_real_server():
    """The serve gate's agreement check holds on the deployed plumbing."""
    gate = cbr.GATES["serve"]()
    ctx = gate.prepare()
    try:
        assert gate.check_agreement(ctx) is None
        # The persistent warmed sessions stay usable for the timed paths.
        gate.run(ctx)
    finally:
        for client in (ctx["fast"], ctx["naive"]):
            client.close()
        for thread in ctx["threads"]:
            thread.stop()


def _write_bench_with_peak(tmp_path, suite, scenario, median, peak_mb):
    (tmp_path / f"BENCH_{suite}.json").write_text(
        json.dumps(
            {
                "scenarios": {
                    scenario: {
                        "median_seconds": median,
                        "extra_info": {"peak_mb": peak_mb},
                    }
                }
            }
        )
    )


def _memory_gate():
    return cbr.SuiteGate(
        scenario="scenario",
        prepare=lambda: {},
        run=lambda ctx: None,
        gate_peak_mb=True,
    )


def test_peak_mb_within_budget_passes(monkeypatch, tmp_path, capsys):
    _write_bench_with_peak(tmp_path, "fake", "scenario", 0.1, 100.0)
    _patch(monkeypatch, _memory_gate(), [0.12])
    monkeypatch.setattr(cbr, "measured_peak_mb", lambda fn: 150.0)
    assert cbr.main(["--bench-dir", str(tmp_path)]) == 0
    assert "peak 150.0MB" in capsys.readouterr().out


def test_peak_mb_regression_fails(monkeypatch, tmp_path, capsys):
    _write_bench_with_peak(tmp_path, "fake", "scenario", 0.1, 100.0)
    _patch(monkeypatch, _memory_gate(), [0.12])
    monkeypatch.setattr(cbr, "measured_peak_mb", lambda fn: 400.0)
    assert cbr.main(["--bench-dir", str(tmp_path)]) == 1
    assert "memory regression" in capsys.readouterr().err


def test_peak_mb_floor_shields_small_scenarios(monkeypatch, tmp_path):
    # 10x over a 3 MB committed peak is still below the 64 MB absolute
    # floor: tiny scenarios cannot flake on allocator noise.
    _write_bench_with_peak(tmp_path, "fake", "scenario", 0.1, 3.0)
    _patch(monkeypatch, _memory_gate(), [0.12])
    monkeypatch.setattr(cbr, "measured_peak_mb", lambda fn: 30.0)
    assert cbr.main(["--bench-dir", str(tmp_path)]) == 0


def test_peak_mb_skipped_without_committed_column(monkeypatch, tmp_path):
    # gate_peak_mb on a row with no peak_mb column: the memory check is
    # skipped (old BENCH files), not treated as a failure.
    _write_bench(tmp_path, "fake", "scenario", 0.1)
    _patch(monkeypatch, _memory_gate(), [0.12])

    def no_peak(fn):  # pragma: no cover - would mean a bug
        raise AssertionError("peak must not be measured without a budget")

    monkeypatch.setattr(cbr, "measured_peak_mb", no_peak)
    assert cbr.main(["--bench-dir", str(tmp_path)]) == 0
