"""Fork-safety of the obs layer and worker attribution of pool spans.

A :class:`~repro.obs.sinks.JsonlSink` crosses a fork as an inherited
file *object*; :func:`repro.obs.after_fork_in_child` must rebind it to
the child's own descriptor, drop the inherited span stack (child spans
are roots, not children of whatever the parent had open), and restart
span ids.  The parallel pool's batch spans additionally carry the
``worker`` slot index so multi-process traces stay attributable — see
``scripts/report_trace.py``.
"""

from __future__ import annotations

import os
import sys

import pytest

from repro import obs
from repro.obs.sinks import JsonlSink, load_jsonl

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork") or sys.platform.startswith("win"),
    reason="fork-based tests need a POSIX fork",
)


def test_jsonl_sink_survives_fork(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    sink = JsonlSink(path)
    with obs.use(sink):
        with obs.span("parent.before"):
            pass
        with obs.span("parent.outer"):
            # Fork while a span is open: the child must not close under
            # it nor emit through the parent's file object.
            child = os.fork()
            if child == 0:
                try:
                    obs.after_fork_in_child()
                    with obs.span("child.work", worker=0):
                        pass
                finally:
                    os._exit(0)
            _, status = os.waitpid(child, 0)
        assert os.waitstatus_to_exitcode(status) == 0
    sink.close()

    events = load_jsonl(path)  # raises if any line is torn JSON
    spans = {e["name"]: e for e in events if e["type"] == "span"}
    assert set(spans) == {"parent.before", "parent.outer", "child.work"}
    assert spans["child.work"]["pid"] != spans["parent.outer"]["pid"]
    # The child's inherited stack was dropped: its span is a root, and
    # its ids restarted independently of the parent's counter.
    assert spans["child.work"]["parent"] is None
    assert spans["child.work"]["id"] == 1
    assert spans["child.work"]["attrs"]["worker"] == 0


def test_parallel_batches_carry_worker_attribution(tmp_path):
    """A real pool run: worker pids emit ``parallel.batch`` spans."""
    import random

    from repro.core.orientation.problem import OrientationProblem
    from repro.graphs.compact import CompactGraph
    from repro.parallel import parallel_stable_orientation_kernel

    rng = random.Random(1)
    n = 60
    edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if rng.random() < 0.1
    ]
    graph = CompactGraph.from_orientation_problem(
        OrientationProblem(edges, nodes=range(n))
    )

    path = str(tmp_path / "parallel.jsonl")
    sink = JsonlSink(path)
    with obs.use(sink):
        parallel_stable_orientation_kernel(
            graph, seed=1, workers=2, min_edges=0, min_game_edges=0
        )
    sink.close()

    events = load_jsonl(path)
    batches = [
        e for e in events if e["type"] == "span" and e["name"] == "parallel.batch"
    ]
    assert batches, "no parallel.batch spans were traced"
    parent_pid = os.getpid()
    for span in batches:
        assert span["pid"] != parent_pid
        assert span["attrs"]["worker"] >= 0
        assert span["attrs"]["components"] >= 1
    # The master's side of the dispatch is visible in the same trace.
    names = {e["name"] for e in events if e["type"] == "counter"}
    assert "orientation.parallel.components" in names
