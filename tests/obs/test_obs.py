"""Unit tests for :mod:`repro.obs`: sinks, spans, metrics, env config.

The contract under test is the one the hot paths rely on: disabled
observability allocates nothing and emits nothing, enabled observability
records spans with correct nesting/timing/attributes, and the JSONL sink
round-trips every event losslessly.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import obs
from repro.obs.sinks import JsonlSink, MemorySink, load_jsonl, replay


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with observability disabled."""
    obs.disable()
    yield
    obs.disable()


# ----------------------------------------------------------------------
# Disabled-sink no-op semantics
# ----------------------------------------------------------------------
class TestDisabled:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.current_sink() is None

    def test_span_returns_shared_null_singleton(self):
        # The zero-overhead guarantee: no allocation per disabled span.
        assert obs.span("a") is obs.span("b", x=1) is obs.NULL_SPAN

    def test_null_span_is_reusable_context_manager(self):
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                assert inner is outer is obs.NULL_SPAN
                assert inner.set(a=1) is inner

    def test_metrics_are_no_ops(self):
        obs.add("c")
        obs.add("c", 5, tag="x")
        obs.gauge("g", 3)
        obs.observe("h", 0.5)
        # Nothing crashed, nothing recorded anywhere.
        assert obs.current_sink() is None

    def test_null_span_swallows_nothing(self):
        with pytest.raises(ValueError):
            with obs.span("failing"):
                raise ValueError("propagates")


# ----------------------------------------------------------------------
# Spans: nesting, timing, attributes
# ----------------------------------------------------------------------
class TestSpans:
    def test_span_event_shape(self):
        sink = obs.configure(MemorySink())
        with obs.span("work", n=10) as sp:
            sp.set(result="done")
        (event,) = sink.events
        assert event["type"] == "span"
        assert event["name"] == "work"
        assert event["attrs"] == {"n": 10, "result": "done"}
        assert event["pid"] == os.getpid()
        assert event["parent"] is None
        assert event["dur"] >= 0.0

    def test_span_times_the_block(self):
        sink = obs.configure(MemorySink())
        with obs.span("sleepy"):
            time.sleep(0.01)
        (event,) = sink.events
        assert event["dur"] >= 0.009

    def test_nesting_links_parent_ids(self):
        sink = obs.configure(MemorySink())
        with obs.span("outer"):
            with obs.span("inner"):
                pass
            with obs.span("inner"):
                pass
        inner_a, inner_b, outer = sink.events
        assert outer["name"] == "outer" and outer["parent"] is None
        assert inner_a["parent"] == outer["id"]
        assert inner_b["parent"] == outer["id"]
        assert inner_a["id"] != inner_b["id"]

    def test_children_emit_before_parent_and_within_its_time(self):
        sink = obs.configure(MemorySink())
        with obs.span("outer"):
            with obs.span("inner"):
                time.sleep(0.005)
        inner, outer = sink.events
        assert inner["name"] == "inner"
        assert outer["dur"] >= inner["dur"]

    def test_sibling_spans_share_no_parent(self):
        sink = obs.configure(MemorySink())
        with obs.span("a"):
            pass
        with obs.span("b"):
            pass
        a, b = sink.events
        assert a["parent"] is None and b["parent"] is None

    def test_exception_still_emits_and_unwinds(self):
        sink = obs.configure(MemorySink())
        with pytest.raises(RuntimeError):
            with obs.span("outer"):
                with obs.span("failing"):
                    raise RuntimeError("boom")
        assert [e["name"] for e in sink.events] == ["failing", "outer"]
        # The stack unwound: a new span is a root again.
        with obs.span("after"):
            pass
        assert sink.events[-1]["parent"] is None

    def test_attrs_overwrite(self):
        sink = obs.configure(MemorySink())
        with obs.span("s", phase=1) as sp:
            sp.set(phase=2, extra="x")
        assert sink.events[0]["attrs"] == {"phase": 2, "extra": "x"}


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_accumulates(self):
        sink = obs.configure(MemorySink())
        obs.add("hits")
        obs.add("hits", 2)
        obs.add("misses", 7)
        assert sink.counter_total("hits") == 3
        assert sink.counter_total("misses") == 7
        assert sink.counter_total("absent") == 0

    def test_gauge_last_write_wins(self):
        sink = obs.configure(MemorySink())
        obs.gauge("depth", 1)
        obs.gauge("depth", 5)
        assert sink.gauge_value("depth") == 5
        assert sink.gauge_value("absent") is None

    def test_histogram_keeps_raw_samples(self):
        sink = obs.configure(MemorySink())
        for v in (3, 1, 2):
            obs.observe("sizes", v)
        assert sink.samples("sizes") == [3, 1, 2]

    def test_metric_attrs_optional(self):
        sink = obs.configure(MemorySink())
        obs.add("c", 1, kind="x")
        obs.add("c", 1)
        with_attrs, without = sink.events
        assert with_attrs["attrs"] == {"kind": "x"}
        assert "attrs" not in without


# ----------------------------------------------------------------------
# Sink management: configure / disable / use / capture
# ----------------------------------------------------------------------
class TestSinkManagement:
    def test_configure_and_disable(self):
        sink = obs.configure(MemorySink())
        assert obs.enabled() and obs.current_sink() is sink
        obs.disable()
        assert not obs.enabled() and obs.current_sink() is None

    def test_use_swaps_and_restores(self):
        outer = obs.configure(MemorySink())
        inner = MemorySink()
        with obs.use(inner):
            obs.add("c")
        obs.add("c")
        assert inner.counter_total("c") == 1
        assert outer.counter_total("c") == 1

    def test_use_none_disables_temporarily(self):
        outer = obs.configure(MemorySink())
        with obs.use(None):
            assert not obs.enabled()
            obs.add("dropped")
        assert obs.current_sink() is outer
        assert outer.events == []

    def test_capture_isolates_events_and_roots_spans(self):
        outer = obs.configure(MemorySink())
        with obs.span("outer-span"):
            with obs.capture() as mem:
                with obs.span("captured"):
                    pass
        # The captured span went only to the capture sink, rooted.
        (captured,) = mem.events
        assert captured["name"] == "captured"
        assert captured["parent"] is None
        # The outer sink saw only its own span.
        assert [e["name"] for e in outer.events] == ["outer-span"]

    def test_capture_restores_outer_stack(self):
        outer = obs.configure(MemorySink())
        with obs.span("outer-span"):
            with obs.capture():
                pass
            with obs.span("child"):
                pass
        child, outer_span = outer.events
        assert child["parent"] == outer_span["id"]

    def test_configure_from_env(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = obs.configure_from_env({"REPRO_TRACE": str(path)})
        assert isinstance(sink, JsonlSink)
        obs.add("c")
        obs.disable()
        assert load_jsonl(str(path))[0]["name"] == "c"

    def test_configure_from_env_noop_without_var(self):
        assert obs.configure_from_env({}) is None
        assert not obs.enabled()


# ----------------------------------------------------------------------
# JSONL round-trip
# ----------------------------------------------------------------------
class TestJsonl:
    def test_round_trip_preserves_every_event(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.configure(JsonlSink(str(path)))
        with obs.span("outer", graph_n=4):
            obs.add("repair.iterations")
            obs.observe("unhappy", 3)
            with obs.span("inner") as sp:
                sp.set(flips=2)
        obs.gauge("height", 7)
        obs.disable()  # closes the file

        events = load_jsonl(str(path))
        # Same events, same order, as an in-memory capture would hold.
        assert [e["type"] for e in events] == [
            "counter",
            "hist",
            "span",
            "span",
            "gauge",
        ]
        inner, outer = events[2], events[3]
        assert inner["name"] == "inner" and inner["attrs"] == {"flips": 2}
        assert outer["name"] == "outer" and inner["parent"] == outer["id"]

    def test_jsonl_matches_memory_event_for_event(self, tmp_path):
        def workload():
            with obs.span("s", k=1):
                obs.add("c", 2)
                obs.observe("h", 0.5)

        mem = MemorySink()
        with obs.use(mem):
            workload()
        path = tmp_path / "trace.jsonl"
        with obs.use(JsonlSink(str(path))) as jsonl:
            workload()
            jsonl.close()
        loaded = load_jsonl(str(path))
        # Span ids/starts differ between runs; compare the stable parts.
        for recorded, reloaded in zip(mem.events, loaded):
            for key in ("type", "name", "pid"):
                assert recorded[key] == reloaded[key]
            if recorded["type"] == "span":
                assert recorded["attrs"] == reloaded["attrs"]
            else:
                assert recorded["value"] == reloaded["value"]

    def test_appends_and_flushes_per_event(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = obs.configure(JsonlSink(str(path)))
        obs.add("first")
        # Flushed per event: readable before close, e.g. from a crashed run.
        assert len(load_jsonl(str(path))) == 1
        obs.add("second")
        sink.close()
        assert [e["name"] for e in load_jsonl(str(path))] == ["first", "second"]

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "t.jsonl"))
        sink.emit({"type": "counter", "name": "c", "value": 1, "pid": 1})
        sink.close()
        sink.close()

    def test_replay_into_memory_sink(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.configure(JsonlSink(str(path)))
        obs.add("c", 3)
        obs.disable()
        mem = MemorySink()
        replay(load_jsonl(str(path)), mem)
        assert mem.counter_total("c") == 3

    def test_blank_lines_skipped_truncation_is_loud(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "counter", "name": "c", "value": 1}\n\n')
        assert len(load_jsonl(str(path))) == 1
        path.write_text('{"type": "counter", "na')  # crashed writer
        with pytest.raises(json.JSONDecodeError):
            load_jsonl(str(path))
