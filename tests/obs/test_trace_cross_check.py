"""Traced spans must agree with the algorithms' own statistics, exactly.

The observability layer is only trustworthy if what it records *is* the
execution: one ``orientation.phase`` span per phase with the
:class:`PhaseStats` attributes, one ``repair.iterations`` increment per
repair iteration, one ``local.round`` span per scheduler round, one
``churn.apply`` span per delta with the :class:`UpdateStats` attributes.
These tests pin that bit for bit on seeded instances, and finish with
the acceptance-criterion scenario: a JSONL trace captured from the
``orientation_smoke`` and ``churn_smoke`` workloads replayed through
``scripts/report_trace.py`` into a breakdown whose span counts match the
stats objects exactly.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

from repro import obs
from repro.core.orientation import (
    DynamicOrientation,
    run_stable_orientation,
    synchronous_repair_orientation,
)
from repro.core.token_dropping import figure2_instance, proposal_factory
from repro.engine import ExperimentSpec, ResultCache, run_experiment
from repro.local_model import Runner
from repro.obs.sinks import JsonlSink, MemorySink
from repro.workloads import (
    churn_smoke,
    churn_smoke_trace,
    orientation_smoke,
    sensor_network_orientation,
)

SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "report_trace.py"
spec = importlib.util.spec_from_file_location("report_trace", SCRIPT)
report_trace = importlib.util.module_from_spec(spec)
sys.modules[spec.name] = report_trace
spec.loader.exec_module(report_trace)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    yield
    obs.disable()


@pytest.fixture
def sink():
    return obs.configure(MemorySink())


# ----------------------------------------------------------------------
# Orientation phases
# ----------------------------------------------------------------------
def test_phase_spans_match_phase_stats(sink):
    problem = sensor_network_orientation(num_nodes=80, max_degree=6, seed=3)
    result = run_stable_orientation(problem, backend="compact")

    spans = sink.spans("orientation.phase")
    assert len(spans) == result.phases == len(result.per_phase)
    for span, stats in zip(spans, result.per_phase):
        attrs = span["attrs"]
        assert attrs["phase"] == stats.phase
        assert attrs["proposals"] == stats.proposals
        assert attrs["accepted"] == stats.accepted
        assert attrs["tokens"] == stats.tokens
        assert attrs["game_rounds"] == stats.token_dropping_game_rounds
        assert attrs["communication_rounds"] == (
            stats.token_dropping_communication_rounds
        )
        assert attrs["height"] == stats.token_dropping_height
        assert attrs["edges_flipped"] == stats.edges_flipped
        assert attrs["oriented_total"] == stats.edges_oriented_total
        assert attrs["max_badness"] == stats.max_badness_after


def test_phase_spans_nest_under_engine_task_spans(sink):
    # Structural sanity for the report's self-time computation: phases
    # recorded inside a span tree link to their enclosing span.
    with obs.span("outer"):
        run_stable_orientation(orientation_smoke(compact=True))
    outer = sink.spans("outer")[0]
    for span in sink.spans("orientation.phase"):
        assert span["parent"] == outer["id"]


# ----------------------------------------------------------------------
# Repair loop
# ----------------------------------------------------------------------
def test_repair_span_and_counters_match_repair_stats(sink):
    problem = orientation_smoke(compact=True)
    _, stats = synchronous_repair_orientation(problem, seed=2)
    assert stats.iterations > 0  # the instance must actually exercise repair

    (span,) = sink.spans("orientation.repair")
    assert span["attrs"]["initial_unhappy"] == stats.initial_unhappy
    assert span["attrs"]["iterations"] == stats.iterations
    assert span["attrs"]["flips"] == stats.total_flips
    assert span["attrs"]["communication_rounds"] == stats.communication_rounds

    assert sink.counter_total("repair.iterations") == stats.iterations
    assert sink.samples("repair.flips_per_iteration") == (
        stats.flips_per_iteration
    )
    assert sum(sink.samples("repair.flips_per_iteration")) == stats.total_flips
    # One unhappy-set size observation per iteration, starting from the
    # full initial set.
    unhappy = sink.samples("repair.unhappy_edges")
    assert len(unhappy) == stats.iterations
    assert unhappy[0] == stats.initial_unhappy


# ----------------------------------------------------------------------
# LOCAL round runner
# ----------------------------------------------------------------------
def test_round_spans_match_execution_metrics_on_dict_backend(sink):
    instance = figure2_instance()
    result = Runner(
        instance.to_network(),
        proposal_factory(),
        backend="dict",
    ).run()
    assert result.metrics.rounds > 0

    rounds = sink.spans("local.round")
    assert len(rounds) == result.metrics.rounds
    assert [s["attrs"]["round"] for s in rounds] == list(
        range(1, result.metrics.rounds + 1)
    )
    # Per-round deltas cover the messages sent inside steps; the
    # scheduler's start() delivers the wake-up messages before round 1,
    # so the round spans account for everything except that fixed cost.
    assert 0 < sum(s["attrs"]["messages"] for s in rounds) <= (
        result.metrics.messages_sent
    )

    (run_span,) = sink.spans("local.run")
    assert run_span["attrs"]["backend"] == "dict"
    assert run_span["attrs"]["rounds"] == result.metrics.rounds
    assert run_span["attrs"]["messages"] == result.metrics.messages_sent
    assert run_span["attrs"]["nodes"] == result.metrics.total_nodes
    # Round spans nest under the run span.
    assert all(s["parent"] == run_span["id"] for s in rounds)


def test_compact_backend_records_run_span_with_same_totals(sink):
    instance = figure2_instance()
    reference = Runner(
        instance.to_network(), proposal_factory(), backend="dict"
    ).run()
    sink.clear()
    compact = Runner(
        instance.to_network(), proposal_factory(), backend="compact"
    ).run()

    (run_span,) = sink.spans("local.run")
    assert run_span["attrs"]["backend"] == "compact"
    assert run_span["attrs"]["rounds"] == compact.metrics.rounds
    assert compact.metrics.rounds == reference.metrics.rounds
    assert run_span["attrs"]["messages"] == reference.metrics.messages_sent
    # The kernel is a whole-execution fast path: no per-round spans.
    assert sink.spans("local.round") == []


# ----------------------------------------------------------------------
# Incremental churn engine
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["compact", "dict"])
def test_churn_apply_spans_match_update_stats(sink, backend):
    problem = churn_smoke(compact=(backend == "compact"))
    trace = churn_smoke_trace(problem)
    engine = DynamicOrientation(problem, seed=2, backend=backend)
    sink.clear()  # drop the initial-solve spans; measure apply() only

    all_stats = [engine.apply(delta) for delta in trace]

    spans = sink.spans("churn.apply")
    assert len(spans) == len(trace)
    for span, delta, stats in zip(spans, trace, all_stats):
        attrs = span["attrs"]
        assert attrs["kind"] == type(delta).__name__
        assert attrs["backend"] == backend
        assert attrs["frontier_nodes"] == stats.frontier_nodes
        assert attrs["edges_inserted"] == stats.edges_inserted
        assert attrs["edges_removed"] == stats.edges_removed
        assert attrs["initial_unhappy"] == stats.repair.initial_unhappy
        assert attrs["repair_iterations"] == stats.repair.iterations
        assert attrs["repair_flips"] == stats.repair.total_flips
    if backend == "compact":
        # Only the compact engine runs the instrumented shared repair
        # loop (the dict path is the uninstrumented scratch reference);
        # its counter agrees with the summed stats.
        assert sink.counter_total("repair.iterations") == sum(
            s.repair.iterations for s in all_stats
        )


# ----------------------------------------------------------------------
# Experiment engine propagation
# ----------------------------------------------------------------------
def test_engine_task_spans_and_cache_round_trip(sink, tmp_path):
    spec = ExperimentSpec(
        name="obs-crosscheck",
        measure="repro.engine.library:proposal_rounds_vs_delta",
        grid=[{"delta": 2}, {"delta": 3}],
        seeds=(0,),
    )
    cache = ResultCache(str(tmp_path))
    results = run_experiment(spec, cache=cache, jobs=1)
    assert results.executed_count == 2

    # Each task's captured events were forwarded into the parent sink,
    # wrapped in one engine.task span per task.
    task_spans = sink.spans("engine.task")
    assert len(task_spans) == 2
    assert {s["attrs"]["params"]["delta"] for s in task_spans} == {2, 3}
    # The measure runs LOCAL executions, so their spans rode along and
    # are rooted at the task span.
    task_ids = {s["id"] for s in task_spans}
    run_spans = sink.spans("local.run")
    assert run_spans and all(s["parent"] in task_ids for s in run_spans)

    # The cache records carry the trace; a resumed run restores it
    # without re-emitting (no double counting in the parent sink).
    for record in cache.load().values():
        assert any(
            e["type"] == "span" and e["name"] == "engine.task"
            for e in record["trace"]
        )
    sink.clear()
    resumed = run_experiment(spec, cache=cache, jobs=1)
    assert resumed.cached_count == 2
    assert sink.spans("engine.task") == []
    for result in resumed:
        assert any(e.get("name") == "engine.task" for e in result.trace_events)


def test_engine_task_events_propagate_across_the_process_pool(
    sink, tmp_path, monkeypatch
):
    # Workers need observability enabled to capture anything: forked
    # workers inherit the parent's configured sink directly, spawned ones
    # re-run configure_from_env at import — the env var covers the latter
    # (pointing at a scratch file the capture machinery never writes to,
    # because execute_task swaps the sink out for the task's duration).
    monkeypatch.setenv(obs.TRACE_ENV_VAR, str(tmp_path / "worker.jsonl"))
    spec = ExperimentSpec(
        name="obs-pool",
        measure="repro.engine.library:proposal_rounds_vs_delta",
        grid=[{"delta": 2}, {"delta": 3}],
        seeds=(0, 1),
    )
    cache = ResultCache(str(tmp_path))
    results = run_experiment(spec, cache=cache, jobs=2)
    assert results.executed_count == 4
    # Every worker-side task span crossed the pool on its result...
    for result in results:
        assert any(
            e["type"] == "span" and e["name"] == "engine.task"
            for e in result.trace_events
        )
    # ...was re-emitted into the parent's sink, and reached the cache.
    assert len(sink.spans("engine.task")) == 4
    assert all("trace" in record for record in cache.load().values())


def test_disabled_obs_leaves_results_traceless(tmp_path):
    spec = ExperimentSpec(
        name="obs-off",
        measure="repro.engine.library:proposal_rounds_vs_delta",
        grid=[{"delta": 2}],
        seeds=(0,),
    )
    cache = ResultCache(str(tmp_path))
    results = run_experiment(spec, cache=cache, jobs=1)
    assert results.results[0].trace_events == []
    assert all("trace" not in r for r in cache.load().values())


# ----------------------------------------------------------------------
# The acceptance criterion: JSONL -> report_trace with exact counts
# ----------------------------------------------------------------------
def test_jsonl_trace_replays_through_report_trace_with_exact_counts(tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    obs.configure(JsonlSink(str(trace_path)))

    orientation_result = run_stable_orientation(orientation_smoke(compact=True))
    churn_problem = churn_smoke(compact=True)
    deltas = churn_smoke_trace(churn_problem)
    engine = DynamicOrientation(churn_problem, seed=2, backend="compact")
    update_stats = [engine.apply(delta) for delta in deltas]
    obs.disable()

    events = report_trace.load_events(str(trace_path))
    report = report_trace.build_report(events)
    by_name = {row["name"]: row for row in report["spans"]}

    # Span counts match the stats objects exactly.
    assert by_name["orientation.phase"]["count"] == orientation_result.phases
    assert by_name["churn.apply"]["count"] == len(deltas)
    # The initial DynamicOrientation solve runs the repair kernel once.
    assert by_name["orientation.repair"]["count"] == 1
    # The counter total is exactly the initial solve's iterations (read
    # off its span attributes) plus every update's repair iterations.
    (solve_span,) = [
        e
        for e in events
        if e["type"] == "span" and e["name"] == "orientation.repair"
    ]
    assert report["counters"]["repair.iterations"] == (
        solve_span["attrs"]["iterations"]
        + sum(s.repair.iterations for s in update_stats)
    )
    hist = {row["name"]: row for row in report["histograms"]}
    assert hist["repair.flips_per_iteration"]["count"] == (
        report["counters"]["repair.iterations"]
    )
    # Percentile and cumulative columns are well-formed.
    phase_row = by_name["orientation.phase"]
    assert 0 <= phase_row["p50_seconds"] <= phase_row["p95_seconds"]
    assert phase_row["self_seconds"] <= phase_row["cum_seconds"] + 1e-9
    assert report["num_events"] == len(events)


def test_report_trace_cli_renders_and_emits_json(tmp_path, capsys):
    trace_path = tmp_path / "trace.jsonl"
    obs.configure(JsonlSink(str(trace_path)))
    run_stable_orientation(orientation_smoke(compact=True))
    obs.disable()

    assert report_trace.main([str(trace_path)]) == 0
    rendered = capsys.readouterr().out
    assert "orientation.phase" in rendered

    assert report_trace.main([str(trace_path), "--json"]) == 0
    import json

    payload = json.loads(capsys.readouterr().out)
    names = [row["name"] for row in payload["spans"]]
    assert "orientation.phase" in names


def test_percentile_nearest_rank():
    assert report_trace.percentile([1.0], 50) == 1.0
    assert report_trace.percentile([1, 2, 3, 4], 50) == 2
    assert report_trace.percentile([1, 2, 3, 4], 95) == 4
    assert report_trace.percentile([5, 1, 3], 100) == 5
