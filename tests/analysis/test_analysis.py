"""Tests for the analysis harness (sweeps, fits, stats, reporting)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    banner,
    crossover_point,
    fit_power_law,
    format_table,
    geometric_mean,
    markdown_table,
    max_bound_ratio,
    parameter_grid,
    run_sweep,
    speedup_series,
    summarize,
)


class TestPowerLawFit:
    def test_recovers_exact_exponent(self):
        xs = [2, 4, 8, 16, 32]
        ys = [3 * x**2 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(2.0, abs=1e-6)
        assert fit.coefficient == pytest.approx(3.0, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-9)
        assert fit.predict(10) == pytest.approx(300.0, rel=1e-6)
        assert "x^2.00" in str(fit)

    def test_recovers_linear_growth(self):
        xs = [1, 2, 4, 8]
        ys = [5 * x for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.0, abs=1e-6)

    def test_zero_values_clamped(self):
        fit = fit_power_law([1, 2, 4], [0, 0, 0])
        assert fit.exponent == pytest.approx(0.0, abs=1e-9)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            fit_power_law([0, 1], [1, 2])
        with pytest.raises(ValueError):
            fit_power_law([2, 2], [1, 2])

    @given(
        exponent=st.floats(min_value=0.5, max_value=4.0),
        coefficient=st.floats(min_value=0.5, max_value=10.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_recovers_synthetic_power_laws(self, exponent, coefficient):
        xs = [2.0, 3.0, 5.0, 8.0, 13.0]
        ys = [coefficient * x**exponent for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(exponent, abs=1e-6)


class TestBoundsAndComparisons:
    def test_max_bound_ratio(self):
        xs = [1, 2, 3]
        ys = [2, 8, 18]
        ratio = max_bound_ratio(xs, ys, bound=lambda x: 2 * x**2)
        assert ratio == pytest.approx(1.0)

    def test_max_bound_ratio_validation(self):
        with pytest.raises(ValueError):
            max_bound_ratio([1], [1, 2], bound=lambda x: x)
        with pytest.raises(ValueError):
            max_bound_ratio([1], [1], bound=lambda x: 0)

    def test_crossover_point(self):
        xs = [1, 2, 3, 4]
        assert crossover_point(xs, [1, 2, 3, 4], [10, 3, 2, 1]) == (2, 3.0)
        assert crossover_point(xs, [0, 0, 0, 0], [1, 1, 1, 1]) is None
        with pytest.raises(ValueError):
            crossover_point([1], [1, 2], [1])

    def test_speedup_series(self):
        assert speedup_series([10, 20], [5, 10]) == [2.0, 2.0]
        assert speedup_series([1], [0]) == [float("inf")]
        with pytest.raises(ValueError):
            speedup_series([1, 2], [1])


class TestStats:
    def test_summary(self):
        summary = summarize([1, 2, 3, 4])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1 and summary.maximum == 4
        assert "mean=2.50" in str(summary)

    def test_summary_odd_length_median(self):
        assert summarize([5, 1, 3]).median == 3

    def test_summary_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([2, 2, 2]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1, 0])


class TestSweep:
    def test_parameter_grid(self):
        grid = parameter_grid(a=[1, 2], b=["x"])
        assert grid == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]

    def test_run_sweep_and_series(self):
        def measure(*, seed, delta):
            return {"rounds": delta * 10 + seed}

        result = run_sweep(
            "demo", measure, parameter_grid(delta=[1, 2, 3]), seeds=(0, 1)
        )
        assert len(result) == 6
        xs, ys = result.series("delta", "rounds")
        assert xs == [1.0, 2.0, 3.0]
        assert ys == [10.5, 20.5, 30.5]
        assert result.values_of("rounds")
        filtered = result.filter(delta=2)
        assert len(filtered) == 2

    def test_run_sweep_progress_callback(self):
        messages = []
        run_sweep(
            "demo",
            lambda *, seed, x: {"v": x},
            parameter_grid(x=[1]),
            seeds=(0,),
            progress=messages.append,
        )
        assert len(messages) == 1

    def test_sweep_does_not_swallow_errors(self):
        def failing(*, seed, x):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            run_sweep("demo", failing, parameter_grid(x=[1]))


class TestReporting:
    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", math.pi]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4
        assert "3.14" in text

    def test_format_table_validates_width(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_markdown_table(self):
        text = markdown_table(["a", "b"], [[1, 2]])
        assert text.splitlines()[0] == "| a | b |"
        assert "| 1 | 2 |" in text
        with pytest.raises(ValueError):
            markdown_table(["a"], [[1, 2]])

    def test_banner(self):
        text = banner("hello", width=10)
        assert "hello" in text
        assert text.splitlines()[0] == "=" * 10
