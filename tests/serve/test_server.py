"""End-to-end serving tests: queries, coalescing, snapshots, shutdown.

Runs a real :class:`ServerThread` + :class:`ServeClient` pair over
loopback TCP for every test, so the asyncio plumbing, the frame codec,
and the coalescing updater are all exercised exactly as deployed.  The
coalescing-semantics cases assert the served state bit-for-bit against a
local :class:`DynamicOrientation` applying the identical uncoalesced
trace — the server must add *no* semantics of its own.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.orientation import (
    DynamicOrientation,
    EdgeDelete,
    EdgeInsert,
    NodeJoin,
    NodeLeave,
)
from repro.serve import ServeClient, ServeConfig, ServeError, ServerThread, connect
from repro.workloads import churn_smoke, churn_smoke_trace

pytestmark = pytest.mark.integration


def _instance():
    return churn_smoke(compact=True)


def _engine(instance=None, seed=5):
    return DynamicOrientation(instance or _instance(), seed=seed)


@pytest.fixture()
def served():
    """A (server thread, client, engine) triple over a fresh solved engine."""
    engine = _engine()
    with ServerThread(engine, ServeConfig()) as thread:
        with connect(thread.address) as client:
            yield thread, client, engine


class TestQueries:
    def test_ping_and_stats(self, served):
        _, client, engine = served
        assert client.ping()
        stats = client.stats()
        assert stats["num_nodes"] == engine.num_nodes
        assert stats["num_edges"] == engine.num_edges
        assert stats["updates_applied"] == 0
        assert stats["backend"] == "compact"
        assert stats["coalescing_ratio"] is None

    def test_point_queries_match_the_engine(self, served):
        _, client, engine = served
        graph = engine.solved_arrays()[0]
        for e in range(0, graph.num_edges, graph.num_edges // 7):
            u = graph.node_ids[graph.edge_u[e]]
            v = graph.node_ids[graph.edge_v[e]]
            assert client.assignment_of(u, v) == engine.head_of(u, v)
            assert client.load_of(u) == engine.load_of(u)

    def test_unknown_node_is_an_error_not_a_crash(self, served):
        _, client, _ = served
        with pytest.raises(ServeError):
            client.load_of(("no-such-node", 1))
        with pytest.raises(ServeError):
            client.assignment_of(("a", 1), ("b", 2))
        assert client.ping()  # connection survives the error

    def test_unknown_op_is_an_error(self, served):
        _, client, _ = served
        response = client.request({"op": "frobnicate"})
        assert response["ok"] is False and "unknown op" in response["error"]

    def test_tuple_node_ids_round_trip_the_wire(self, served):
        _, client, engine = served
        node = engine.solved_arrays()[0].node_ids[0]
        assert isinstance(node, tuple)
        assert client.load_of(node) == engine.load_of(node)


class TestUpdates:
    def test_updates_match_local_apply_batch_bit_for_bit(self, served):
        _, client, engine = served
        reference = _engine()
        trace = list(churn_smoke_trace(_instance()))[:45]
        for lo in range(0, 45, 9):
            chunk = trace[lo : lo + 9]
            receipt = client.update(chunk)
            reference.apply_batch(chunk)
            assert receipt["applied"] == len(chunk)
        assert engine.loads() == reference.loads()
        assert engine.updates_applied == reference.updates_applied == 45
        assert not engine.unhappy_edges()

    def test_delete_then_insert_same_edge_in_one_request(self, served):
        _, client, engine = served
        reference = _engine()
        graph = _instance()
        u = graph.node_ids[graph.edge_u[0]]
        v = graph.node_ids[graph.edge_v[0]]
        batch = [EdgeDelete(u, v), EdgeInsert(u, v)]
        receipt = client.update(batch)
        assert receipt["applied"] == 2
        reference.apply_batch(batch)
        assert engine.loads() == reference.loads()
        assert client.assignment_of(u, v) == reference.head_of(u, v)

    def test_empty_batch_is_a_served_noop(self, served):
        _, client, engine = served
        before = engine.loads()
        receipt = client.update([])
        assert receipt["applied"] == 0
        assert receipt["updates_applied"] == 0
        assert engine.loads() == before
        assert client.stats()["updates_applied"] == 0

    def test_node_leave_racing_queued_queries(self, served):
        _, client, engine = served
        node = ("racer", 1)
        client.update([NodeJoin(node, ((0, 0), (0, 1)))])
        assert client.load_of(node) >= 0

        errors = []
        loads = []

        def hammer():
            with connect(served[0].address) as c2:
                for _ in range(50):
                    try:
                        loads.append(c2.load_of(node))
                    except ServeError as exc:
                        errors.append(str(exc))

        racer = threading.Thread(target=hammer)
        racer.start()
        client.update([NodeLeave(node)])
        racer.join(timeout=30)
        assert not racer.is_alive()
        # Every racing query either saw the live node or got a clean error;
        # afterwards the node is gone and the state is stable.
        assert all(value >= 0 for value in loads)
        with pytest.raises(ServeError):
            client.load_of(node)
        assert not engine.unhappy_edges()

    def test_invalid_delta_fails_the_request_cleanly(self, served):
        _, client, engine = served
        with pytest.raises(ServeError):
            client.update([EdgeDelete(("ghost", 1), ("ghost", 2))])
        assert client.ping()
        assert not engine.unhappy_edges()

    def test_failed_batch_restabilizes_its_applied_prefix(self, served):
        _, client, engine = served
        node = ("prefix", 1)
        with pytest.raises(ServeError):
            client.update(
                [
                    NodeJoin(node, ((0, 0),)),
                    EdgeDelete(("ghost", 1), ("ghost", 2)),
                ]
            )
        # The join landed before the failure and was re-stabilized.
        assert client.load_of(node) >= 0
        assert not engine.unhappy_edges()


class TestCoalescing:
    def test_concurrent_updates_coalesce(self):
        engine = _engine()
        trace = list(churn_smoke_trace(_instance()))[:64]
        config = ServeConfig(max_batch=256, coalesce_ms=20.0)
        with ServerThread(engine, config) as thread:
            receipts = []
            lock = threading.Lock()

            def submit(chunk):
                with connect(thread.address) as client:
                    receipt = client.update(chunk)
                    with lock:
                        receipts.append(receipt)

            threads = [
                threading.Thread(target=submit, args=(trace[lo : lo + 8],))
                for lo in range(0, 64, 8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            with connect(thread.address) as client:
                stats = client.stats()
        assert stats["updates_applied"] == 64
        assert stats["counters"]["update_requests"] == 8
        # The gathering window must have merged at least one pair of
        # requests into a shared re-stabilization.
        assert stats["counters"]["batches"] < 8
        assert stats["coalescing_ratio"] > 8.0
        assert any(r["batch_requests"] > 1 for r in receipts)
        assert not engine.unhappy_edges()

    def test_max_batch_caps_one_drain(self):
        engine = _engine()
        config = ServeConfig(max_batch=4, coalesce_ms=0.0)
        trace = list(churn_smoke_trace(_instance()))[:12]
        with ServerThread(engine, config) as thread:
            with connect(thread.address) as client:
                receipt = client.update(trace)
        # A single oversized request is still applied whole, in one batch.
        assert receipt["applied"] == 12
        assert receipt["batch_requests"] == 1
        assert engine.updates_applied == 12


class TestSnapshotOp:
    def test_snapshot_then_restore_serves_identically(self, served, tmp_path):
        from repro.serve import load_state

        _, client, engine = served
        trace = list(churn_smoke_trace(_instance()))[:30]
        client.update(trace)
        path = tmp_path / "served.rprosnp"
        receipt = client.snapshot(path)
        assert receipt["bytes"] > 0
        restored = load_state(path)
        with ServerThread(restored, ServeConfig()) as thread2:
            with connect(thread2.address) as client2:
                assert client2.stats()["updates_applied"] == 30
                graph = engine.solved_arrays()[0]
                u = graph.node_ids[graph.edge_u[0]]
                v = graph.node_ids[graph.edge_v[0]]
                assert client2.assignment_of(u, v) == client.assignment_of(u, v)
                assert client2.load_of(u) == client.load_of(u)

    def test_snapshot_to_bad_path_is_an_error(self, served, tmp_path):
        _, client, _ = served
        with pytest.raises(ServeError):
            client.snapshot(tmp_path / "missing-dir" / "x.rprosnp")
        assert client.ping()


class TestLifecycle:
    def test_shutdown_op_stops_the_server(self):
        engine = _engine()
        thread = ServerThread(engine, ServeConfig()).start()
        with connect(thread.address) as client:
            response = client.shutdown()
            assert response["stopping"]
        thread.stop()
        assert not thread._thread.is_alive()
        with pytest.raises(OSError):
            ServeClient(thread.address[0], thread.address[1], timeout=2).ping()

    def test_several_clients_share_one_server(self, served):
        thread, client, engine = served
        others = [connect(thread.address) for _ in range(4)]
        try:
            assert all(c.ping() for c in others)
            assert {c.stats()["num_nodes"] for c in others} == {engine.num_nodes}
        finally:
            for c in others:
                c.close()
        assert client.ping()
