"""Snapshot/restore of the serving state: bit-for-bit and mmap-backed.

The acceptance contract: snapshot → restore → serve round-trips the
orientation, the loads, and the unhappy set bit-for-bit, *and* the
restored engine replays any future delta stream identically (the seed
stream position is part of the state).
"""

from __future__ import annotations

import pytest

from repro.core.orientation import DynamicOrientation
from repro.graphs.compact import ArraySnapshot, SnapshotError, write_array_snapshot
from repro.serve.snapshot import STATE_KIND, load_state, save_state
from repro.workloads import churn_smoke, churn_smoke_trace
from repro.workloads.scenarios import scale_layered_orientation

pytestmark = pytest.mark.integration


def _solved_engine(updates: int = 0):
    instance = churn_smoke(compact=True)
    engine = DynamicOrientation(instance, seed=5)
    trace = list(churn_smoke_trace(instance))
    if updates:
        engine.apply_batch(trace[:updates])
    return engine, trace


def _full_state(dynamic):
    graph, heads, load = dynamic.solved_arrays()
    return (
        tuple(graph.node_ids),
        list(graph.indptr),
        list(graph.indices),
        list(graph.slot_edge),
        list(graph.edge_u),
        list(graph.edge_v),
        list(heads),
        list(load),
        sorted(map(repr, dynamic.unhappy_edges())),
        dynamic.seed,
        dynamic.updates_applied,
    )


class TestRoundTrip:
    @pytest.mark.parametrize("updates", [0, 60])
    def test_bit_for_bit(self, tmp_path, updates):
        engine, _ = _solved_engine(updates)
        path = tmp_path / "state.rprosnp"
        meta = save_state(engine, path)
        assert meta["kind"] == STATE_KIND
        assert meta["updates_applied"] == updates
        restored = load_state(path)
        assert _full_state(restored) == _full_state(engine)

    def test_restored_engine_replays_the_same_future(self, tmp_path):
        engine, trace = _solved_engine(60)
        path = tmp_path / "state.rprosnp"
        save_state(engine, path)
        restored = load_state(path)
        for delta in trace[60:120]:
            assert restored.apply(delta) == engine.apply(delta)
        assert restored.loads() == engine.loads()
        assert not restored.unhappy_edges()

    def test_restored_engine_accepts_batches(self, tmp_path):
        engine, trace = _solved_engine(30)
        path = tmp_path / "state.rprosnp"
        save_state(engine, path)
        restored = load_state(path)
        assert restored.apply_batch(trace[30:60]) == engine.apply_batch(
            trace[30:60]
        )

    def test_dense_int_ids_use_the_range_encoding(self, tmp_path):
        # Interning is repr-sorted, so ids 0..9 land in numeric order and
        # the compact range shortcut applies.
        from repro.graphs.compact import CompactGraph

        graph = CompactGraph.from_edges(
            [(i, (i + 1) % 10) for i in range(10)], nodes=range(10)
        )
        engine = DynamicOrientation(graph, seed=2)
        path = tmp_path / "dense.rprosnp"
        meta = save_state(engine, path)
        assert meta["node_ids"] == {"encoding": "range", "n": graph.num_nodes}
        restored = load_state(path)
        assert _full_state(restored) == _full_state(engine)

    def test_scale_family_round_trips_via_repr_encoding(self, tmp_path):
        graph = scale_layered_orientation(
            num_levels=6, width=40, edge_probability=0.05, seed=2
        )
        engine = DynamicOrientation(graph, seed=2)
        path = tmp_path / "scale.rprosnp"
        meta = save_state(engine, path)
        assert meta["node_ids"]["encoding"] == "repr"
        restored = load_state(path)
        assert _full_state(restored) == _full_state(engine)

    def test_validate_false_skips_the_stability_check(self, tmp_path):
        engine, _ = _solved_engine(10)
        path = tmp_path / "state.rprosnp"
        save_state(engine, path)
        restored = load_state(path, validate=False)
        assert restored.loads() == engine.loads()


class TestFileFormat:
    def test_snapshot_is_mmap_backed(self, tmp_path):
        engine, _ = _solved_engine(0)
        path = tmp_path / "state.rprosnp"
        save_state(engine, path)
        restored = load_state(path)
        graph = restored.solved_arrays()[0]
        # The CSR buffers are views into the mapping, not copies.
        assert isinstance(graph.indptr, memoryview)
        assert restored._snapshot is not None

    def test_wrong_kind_rejected(self, tmp_path):
        from array import array

        path = tmp_path / "other.rprosnp"
        write_array_snapshot(
            path, {"xs": array("q", [1, 2, 3])}, meta={"kind": "other/thing"}
        )
        with pytest.raises(SnapshotError):
            load_state(path)

    def test_truncated_file_rejected(self, tmp_path):
        engine, _ = _solved_engine(0)
        path = tmp_path / "state.rprosnp"
        save_state(engine, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 16])
        with pytest.raises(SnapshotError):
            load_state(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.rprosnp"
        path.write_bytes(b"NOTASNAP" + b"\x00" * 64)
        with pytest.raises(SnapshotError):
            ArraySnapshot(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.rprosnp"
        path.write_bytes(b"")
        with pytest.raises(SnapshotError):
            ArraySnapshot(path)

    def test_array_snapshot_context_manager(self, tmp_path):
        engine, _ = _solved_engine(0)
        path = tmp_path / "state.rprosnp"
        save_state(engine, path)
        with ArraySnapshot(path) as snap:
            assert snap.meta["kind"] == STATE_KIND
            assert "heads" in snap.section_names()
            assert len(snap.section("load")) == engine.num_nodes
