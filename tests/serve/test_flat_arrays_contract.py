"""Lint-style contract: the serving layer is all-flat-arrays.

No module under ``src/repro/serve/`` may import a dict-path constructor
or the dict-side graph machinery — the serving layer must answer every
query and absorb every update through the compact CSR arrays and the
trusted :meth:`DynamicOrientation.from_solved_arrays` entry point.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

SERVE_DIR = (
    Path(__file__).resolve().parents[2] / "src" / "repro" / "serve"
)

#: Names whose import from the serving layer would smuggle the dict path
#: back in: the reference problem/graph classes, their constructors, and
#: networkx itself.
FORBIDDEN_NAMES = {
    "OrientationProblem",
    "Orientation",
    "CustomerServerGraph",
    "from_networkx",
    "to_orientation_problem",
    "arbitrary_complete_orientation",
}
FORBIDDEN_MODULES = {
    "networkx",
    "repro.core.orientation.problem",
    "repro.graphs.bipartite",
}

MODULES = sorted(SERVE_DIR.glob("*.py"))


def _imports(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name, alias.name
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            for alias in node.names:
                yield module, alias.name


def test_serve_package_exists_and_is_nontrivial():
    assert len(MODULES) >= 4, [m.name for m in MODULES]


@pytest.mark.parametrize("path", MODULES, ids=lambda p: p.name)
def test_no_dict_path_imports(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    offences = []
    for module, name in _imports(tree):
        if module in FORBIDDEN_MODULES or module.split(".")[0] == "networkx":
            offences.append(f"import from forbidden module {module!r}")
        if name in FORBIDDEN_NAMES:
            offences.append(f"imports forbidden name {name!r} from {module!r}")
    assert not offences, f"{path.name}: {offences}"


@pytest.mark.parametrize("path", MODULES, ids=lambda p: p.name)
def test_no_dict_path_attribute_calls(path):
    # Belt and braces: calling graph.to_orientation_problem() inside the
    # serving layer would rebuild the dict structure without importing it.
    tree = ast.parse(path.read_text(encoding="utf-8"))
    offences = [
        f"line {node.lineno}: calls .{node.func.attr}()"
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in {"to_orientation_problem", "from_networkx"}
    ]
    assert not offences, f"{path.name}: {offences}"
