"""Unit coverage of the serve wire protocol (frames, nodes, deltas)."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.orientation import EdgeDelete, EdgeInsert, NodeJoin, NodeLeave
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_payload,
    delta_from_wire,
    delta_to_wire,
    encode_frame,
    node_to_wire,
    read_frame,
    wire_to_node,
)


def _read_from_bytes(data: bytes):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(run())


class TestFrames:
    def test_round_trip(self):
        payload = {"op": "stats", "nested": {"a": [1, 2, None]}}
        frame = encode_frame(payload)
        assert _read_from_bytes(frame) == payload

    def test_clean_eof_returns_none(self):
        assert _read_from_bytes(b"") is None

    def test_truncated_frame_raises(self):
        frame = encode_frame({"op": "ping"})
        with pytest.raises(ProtocolError):
            _read_from_bytes(frame[:-2])

    def test_truncated_length_prefix_raises(self):
        with pytest.raises(ProtocolError):
            _read_from_bytes(b"\x00\x00")

    def test_oversized_frame_rejected_without_reading_it(self):
        huge = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError):
            _read_from_bytes(huge)

    def test_non_json_payload_raises(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"not json")


class TestNodeWire:
    @pytest.mark.parametrize(
        "node",
        [0, -3, "server-7", (2, 5), ("churn", 12), (("a", 1), 2), None, True],
    )
    def test_round_trip(self, node):
        assert wire_to_node(node_to_wire(node)) == node

    def test_tuples_become_lists_on_the_wire(self):
        assert node_to_wire((1, (2, "x"))) == [1, [2, "x"]]

    def test_unsupported_type_raises(self):
        with pytest.raises(ProtocolError):
            node_to_wire({"not": "hashable-wire"})


class TestDeltaWire:
    @pytest.mark.parametrize(
        "delta",
        [
            EdgeInsert((0, 1), (1, 2)),
            EdgeDelete("a", "b"),
            NodeJoin(("churn", 3), ((0, 0), (0, 1))),
            NodeJoin("loner", ()),
            NodeLeave((5, 5)),
        ],
    )
    def test_round_trip(self, delta):
        assert delta_from_wire(delta_to_wire(delta)) == delta

    def test_unknown_kind_raises(self):
        with pytest.raises(ProtocolError):
            delta_from_wire({"kind": "edge-teleport", "u": 0, "v": 1})

    def test_malformed_wire_raises(self):
        with pytest.raises(ProtocolError):
            delta_from_wire("not a dict")
        with pytest.raises(ProtocolError):
            delta_from_wire({"kind": "edge-insert", "u": 0})
