#!/usr/bin/env python3
"""CI gate: disabled observability must be free on the hot paths.

``repro.obs`` promises near-zero overhead when no sink is installed.
This script measures that promise on the gate's reference workload — the
fixed ``orientation_smoke`` scenario solved by the compact stable
orientation driver (the same scenario ``check_bench_regression.py``
re-times) — by comparing two medians:

* **instrumented**: the shipped code with no sink installed (every
  ``obs.span`` call hits the module-level ``_sink is None`` check);
* **baseline**: the same code with ``repro.obs`` replaced, in every
  instrumented module's namespace, by a stub whose ``span``/``add``/
  ``observe``/``gauge`` are bare no-op functions and whose ``enabled``
  is hardwired ``False`` — as close to "the instrumentation was never
  written" as is reachable without a second source tree.

Runs are interleaved (A/B/A/B...) so drift on a shared CI runner hits
both sides equally, and the assertion allows a relative margin plus a
small absolute floor (sub-millisecond medians make pure percentages
noise-dominated)::

    python scripts/check_obs_overhead.py
    python scripts/check_obs_overhead.py --rounds 25 --max-overhead 0.05

Exit status 0 when the instrumented median is within bounds, 1 with a
diagnostic otherwise.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time
from typing import Optional, Sequence

from repro import obs
from repro.core.orientation import run_stable_orientation
from repro.workloads import orientation_smoke

#: Modules whose hot paths import ``obs``; the stub is patched into each.
_INSTRUMENTED_MODULES = (
    "repro.local_model.runner",
    "repro.core.orientation._kernels",
    "repro.core.orientation._unhappy",
    "repro.core.orientation.incremental",
    "repro.engine.executor",
)


class _StubNullSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attrs):
        return self


_STUB_SPAN = _StubNullSpan()


class _StubObs:
    """The "never instrumented" baseline: all entry points are no-ops."""

    @staticmethod
    def enabled():
        return False

    @staticmethod
    def span(name, **attrs):
        return _STUB_SPAN

    @staticmethod
    def add(name, value=1, **attrs):
        return None

    @staticmethod
    def gauge(name, value, **attrs):
        return None

    @staticmethod
    def observe(name, value, **attrs):
        return None

    @staticmethod
    def capture():
        raise RuntimeError("the stub baseline cannot capture events")


def _patch_obs(replacement) -> dict:
    """Swap the ``obs`` binding in every instrumented module; return undo map."""
    previous = {}
    for name in _INSTRUMENTED_MODULES:
        module = sys.modules.get(name)
        if module is None or not hasattr(module, "obs"):
            continue
        previous[name] = module.obs
        module.obs = replacement
    return previous


def _restore_obs(previous: dict) -> None:
    for name, original in previous.items():
        sys.modules[name].obs = original


def measure(rounds: int):
    """Interleaved medians (instrumented_seconds, baseline_seconds)."""
    if obs.enabled():
        raise SystemExit(
            "a sink is installed (REPRO_TRACE set?); the overhead gate "
            "measures the *disabled* path — unset it and re-run"
        )
    problem = orientation_smoke(compact=True)
    workload = lambda: run_stable_orientation(problem)  # noqa: E731

    # Warm every lazy cost both sides share: kernel imports, memoized
    # repr-rank tables on the problem instance, allocator state.
    workload()
    stub = _StubObs()

    instrumented = []
    baseline = []
    for _ in range(rounds):
        start = time.perf_counter()
        workload()
        instrumented.append(time.perf_counter() - start)

        previous = _patch_obs(stub)
        try:
            start = time.perf_counter()
            workload()
            baseline.append(time.perf_counter() - start)
        finally:
            _restore_obs(previous)
    return statistics.median(instrumented), statistics.median(baseline)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Assert disabled-sink observability overhead is within "
        "bounds on the orientation_smoke workload."
    )
    parser.add_argument(
        "--rounds", type=int, default=15,
        help="timed rounds per side (interleaved; default 15)",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=0.05,
        help="allowed relative overhead of the disabled-sink path over the "
        "stubbed baseline (default 0.05 = 5%%)",
    )
    parser.add_argument(
        "--abs-floor", type=float, default=0.002,
        help="absolute slack in seconds added to the budget — timer noise "
        "on sub-millisecond medians (default 0.002)",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)

    instrumented, baseline = measure(args.rounds)
    budget = baseline * (1.0 + args.max_overhead) + args.abs_floor
    overhead = (instrumented / baseline - 1.0) if baseline > 0 else 0.0
    verdict = "OK" if instrumented <= budget else "FAIL"
    print(
        f"[{verdict}] orientation_smoke disabled-sink median "
        f"{instrumented * 1e3:.3f}ms vs stubbed baseline "
        f"{baseline * 1e3:.3f}ms ({overhead:+.1%}; budget "
        f"{budget * 1e3:.3f}ms = baseline x {1 + args.max_overhead:.2f} "
        f"+ {args.abs_floor * 1e3:.1f}ms)"
    )
    return 0 if instrumented <= budget else 1


if __name__ == "__main__":
    sys.exit(main())
