#!/usr/bin/env python3
"""Regenerate the measured tables of EXPERIMENTS.md.

Runs one moderate-size sweep per experiment (E1-E9 in DESIGN.md) and prints
a Markdown report to stdout:

    python scripts/run_experiments.py > EXPERIMENTS_measured.md

The sweeps are intentionally smaller than the benchmark suite's so the
whole report regenerates in a few minutes on a laptop; the benchmark suite
(`pytest benchmarks/ --benchmark-only`) measures the same quantities with
wall-clock timing attached.
"""

from __future__ import annotations

import math
import sys

import networkx as nx

from repro.analysis import fit_power_law, markdown_table, max_bound_ratio
from repro.core.assignment import (
    approximation_ratio,
    greedy_assignment,
    maximal_matching_via_bounded_assignment,
    optimal_cost,
    run_bounded_stable_assignment,
    run_stable_assignment,
    verify_maximal_matching,
)
from repro.core.orientation import (
    OrientationProblem,
    run_stable_orientation,
    sequential_flip_algorithm,
    synchronous_repair_orientation,
    theoretical_round_bound,
)
from repro.core.token_dropping import (
    run_proposal_algorithm,
    run_three_level_algorithm,
)
from repro.graphs.validation import check_perfect_dary_tree, graph_girth, is_regular
from repro.lower_bounds import (
    height2_matching_instance,
    lemma61_violations,
    lemma62_witness,
    matching_from_height2_solution,
    theorem63_instance_pair,
    views_isomorphic,
)
from repro.workloads import (
    bounded_degree_token_dropping,
    datacenter_assignment,
    hard_matching_bipartite,
    random_token_dropping,
    regular_orientation,
    uniform_assignment,
)

SEEDS = (0, 1, 2)


def out(text: str = "") -> None:
    print(text)
    sys.stdout.flush()


def mean(values) -> float:
    values = list(values)
    return sum(values) / len(values)


# ----------------------------------------------------------------------
def experiment_e1() -> None:
    out("## E1 — Theorem 4.1: proposal algorithm in O(L·Δ²) game rounds\n")
    rows = []
    deltas = [2, 4, 6, 8, 12]
    means = []
    bound_ratios = []
    for delta in deltas:
        rounds, bounds = [], []
        for seed in SEEDS:
            instance = bounded_degree_token_dropping(num_levels=6, degree=delta, seed=seed)
            solution = run_proposal_algorithm(instance)
            solution.validate(instance).raise_if_invalid()
            rounds.append(solution.game_rounds)
            bounds.append(instance.theoretical_round_bound())
        means.append(mean(rounds))
        bound_ratios.append(mean(rounds) / mean(bounds))
        rows.append([delta, 5, f"{mean(rounds):.1f}", f"{mean(rounds) / mean(bounds):.4f}"])
    fit = fit_power_law([float(d) for d in deltas], means)
    out(markdown_table(["Δ (cap)", "height L", "game rounds (mean)", "rounds / 8(L+1)(Δ+1)² bound"], rows))
    out(f"\nFitted rounds ≈ {fit.coefficient:.2f}·Δ^{fit.exponent:.2f} at fixed L "
        f"(theorem allows exponent ≤ 2); every run stayed below the explicit bound.\n")

    rows = []
    heights = [2, 4, 6, 8, 10]
    h_means = []
    for height in heights:
        rounds = []
        for seed in SEEDS:
            instance = random_token_dropping(
                num_levels=height + 1, width=6, edge_probability=0.5,
                token_fraction=0.6, max_degree=6, seed=seed,
            )
            solution = run_proposal_algorithm(instance)
            rounds.append(solution.game_rounds)
        h_means.append(mean(rounds))
        rows.append([height, 6, f"{mean(rounds):.1f}"])
    fit_h = fit_power_law([float(h) for h in heights], h_means)
    out(markdown_table(["height L", "Δ (cap)", "game rounds (mean)"], rows))
    out(f"\nFitted rounds ≈ {fit_h.coefficient:.2f}·L^{fit_h.exponent:.2f} at fixed Δ "
        "(theorem allows exponent ≤ 1 in L).\n")


def experiment_e2() -> None:
    out("## E2 — Theorems 4.6 / 7.4: reductions from bipartite maximal matching\n")
    rows = []
    for side in (20, 40, 60):
        graph = hard_matching_bipartite(side=side, degree=4, seed=side)
        instance = height2_matching_instance(graph)
        solution = run_proposal_algorithm(instance)
        matching = matching_from_height2_solution(graph, solution)
        ok_td = not verify_maximal_matching(graph, matching)
        matching2, result2 = maximal_matching_via_bounded_assignment(graph, seed=0)
        ok_ba = not verify_maximal_matching(graph, matching2)
        rows.append(
            [side, solution.game_rounds, len(matching), "yes" if ok_td else "NO",
             result2.phases, len(matching2), "yes" if ok_ba else "NO"]
        )
    out(markdown_table(
        ["side n", "TD game rounds", "TD matching size", "maximal?",
         "2-bounded phases", "BA matching size", "maximal?"], rows))
    out("\nBoth reductions always produce maximal matchings, which is the content of the "
        "lower-bound arguments (hardness transfers from maximal matching).\n")


def experiment_e3() -> None:
    out("## E3 — Theorem 4.7: three-level games in O(Δ) rounds\n")
    rows = []
    deltas = [2, 4, 6, 8, 12]
    fast_means, generic_means = [], []
    for delta in deltas:
        fast_rounds, generic_rounds = [], []
        for seed in SEEDS:
            instance = bounded_degree_token_dropping(num_levels=3, degree=delta, seed=seed)
            fast = run_three_level_algorithm(instance)
            generic = run_proposal_algorithm(instance)
            fast.validate(instance).raise_if_invalid()
            fast_rounds.append(fast.game_rounds)
            generic_rounds.append(generic.game_rounds)
        fast_means.append(mean(fast_rounds))
        generic_means.append(mean(generic_rounds))
        rows.append([delta, f"{mean(fast_rounds):.1f}", f"{mean(generic_rounds):.1f}"])
    fit_fast = fit_power_law([float(d) for d in deltas], fast_means)
    out(markdown_table(["Δ (cap)", "three-level rounds", "generic proposal rounds"], rows))
    out(f"\nThree-level algorithm fitted exponent {fit_fast.exponent:.2f} (theorem: ≤ 1).\n")


def experiment_e4_e9() -> None:
    out("## E4 / E9 — Theorem 5.1: stable orientation in O(Δ⁴), vs. baselines\n")
    rows = []
    deltas = [3, 4, 6, 8, 10]
    phase_means = []
    for delta in deltas:
        phase_rounds, phases, repair_rounds, flips, ratios = [], [], [], [], []
        for seed in SEEDS:
            problem = regular_orientation(degree=delta, num_nodes=12 * delta, seed=seed)
            result = run_stable_orientation(problem)
            _, repair = synchronous_repair_orientation(problem, seed=seed)
            _, seq = sequential_flip_algorithm(problem, policy="random", seed=seed)
            phase_rounds.append(result.game_rounds)
            phases.append(result.phases)
            repair_rounds.append(repair.communication_rounds)
            flips.append(seq.flips)
            ratios.append(result.game_rounds / theoretical_round_bound(problem))
        phase_means.append(mean(phase_rounds))
        rows.append(
            [delta, f"{mean(phases):.1f}", f"{mean(phase_rounds):.1f}",
             f"{mean(ratios):.5f}", f"{mean(repair_rounds):.1f}", f"{mean(flips):.1f}"]
        )
    fit = fit_power_law([float(d) for d in deltas], phase_means)
    out(markdown_table(
        ["Δ", "phases (Thm 5.1)", "game rounds (Thm 5.1)", "rounds / 16(Δ+1)⁴ bound",
         "repair baseline rounds", "sequential flips (E9)"], rows))
    out(f"\nPhase-algorithm rounds grow ≈ Δ^{fit.exponent:.2f} on random Δ-regular graphs — far "
        "below the worst-case Δ⁴ budget, and every run respects the explicit bound.  On these "
        "non-adversarial instances the repair baseline also finishes quickly; the paper's "
        "improvement is about the worst-case guarantee (O(Δ⁴) vs O(Δ⁵)), which the bound-ratio "
        "column certifies, not about typical random instances.\n")


def experiment_e5() -> None:
    out("## E5 — Theorem 6.3 / Lemmas 6.1–6.2: the lower-bound instance pair\n")
    rows = []
    for delta in (3, 4, 5):
        regular, tree, root = theorem63_instance_pair(delta, seed=delta)
        assert is_regular(regular, delta)
        depth = check_perfect_dary_tree(tree, delta, root)
        girth = graph_girth(regular, cap=10)
        reg_orientation = run_stable_orientation(OrientationProblem.from_networkx(regular)).orientation
        tree_orientation = run_stable_orientation(OrientationProblem.from_networkx(tree)).orientation
        witness = lemma62_witness(reg_orientation, delta)
        lemma61_ok = lemma61_violations(tree, tree_orientation) == []
        radius = max(1, (int(girth) - 1) // 2 - 1) if math.isfinite(girth) else 1
        depths = nx.single_source_shortest_path_length(tree, root)
        interior = next(n for n, d in depths.items()
                        if radius <= d <= depth - radius and tree.degree(n) == delta)
        indist = views_isomorphic(regular, next(iter(regular.nodes())), tree, interior, radius)
        rows.append(
            [delta, regular.number_of_nodes(), girth, tree.number_of_nodes(),
             f"{reg_orientation.load(witness)} ≥ {math.ceil(delta / 2)}",
             "holds" if lemma61_ok else "VIOLATED",
             f"r={radius}: {'isomorphic' if indist else 'differ'}"]
        )
    out(markdown_table(
        ["Δ", "|V| regular", "girth", "|V| tree", "Lemma 6.2 witness load",
         "Lemma 6.1", "local views"], rows))
    out("\nPremises and both lemmas verified on every pair (girth scaled down from the "
        "paper's Δ+1 to keep instance sizes laptop-scale; see DESIGN.md).\n")


def experiment_e6_e7() -> None:
    out("## E6 / E7 — Theorems 7.3 / 7.5: stable assignment and the 2-bounded relaxation\n")
    rows = []
    for replicas in (2, 3, 4, 6):
        general_rounds, bounded_rounds, general_phases, bounded_phases = [], [], [], []
        for seed in SEEDS:
            graph = uniform_assignment(num_jobs=120, num_servers=24, replicas=replicas, seed=seed)
            general = run_stable_assignment(graph, seed=seed)
            bounded = run_bounded_stable_assignment(graph, k=2, seed=seed)
            general_rounds.append(general.game_rounds)
            bounded_rounds.append(bounded.game_rounds)
            general_phases.append(general.phases)
            bounded_phases.append(bounded.phases)
        rows.append(
            [replicas,
             f"{mean(general_phases):.1f}", f"{mean(general_rounds):.1f}",
             f"{mean(bounded_phases):.1f}", f"{mean(bounded_rounds):.1f}"]
        )
    out(markdown_table(
        ["C (replicas)", "general phases", "general rounds (Thm 7.3)",
         "2-bounded phases", "2-bounded rounds (Thm 7.5)"], rows))
    out("\nBoth produce stable solutions on every instance, and the relaxation's embedded token "
        "dropping games never exceed three levels (the mechanism behind Theorem 7.5's better "
        "bound).  On these easy random instances the relaxation uses somewhat *more* phases "
        "because effective loads make the proposal step less informative; the theorem's "
        "advantage is the worst-case budget (O(C·S²) vs O(C·S⁴)), not typical-case rounds — "
        "see EXPERIMENTS.md.\n")


def experiment_e8() -> None:
    out("## E8 — §1.3: stable assignment as a semi-matching 2-approximation\n")
    rows = []
    worst = 0.0
    for skew in (0.0, 1.0, 2.0):
        stable_ratios, greedy_ratios = [], []
        for seed in SEEDS:
            if skew == 0.0:
                graph = uniform_assignment(num_jobs=120, num_servers=24, replicas=3, seed=seed)
            else:
                graph = datacenter_assignment(num_jobs=120, num_servers=24, replicas=3,
                                              popularity_skew=skew, seed=seed)
            optimum = optimal_cost(graph)
            stable = run_stable_assignment(graph, seed=seed)
            stable_ratios.append(approximation_ratio(stable.assignment, optimum))
            greedy_ratios.append(
                approximation_ratio(greedy_assignment(graph, order="random", seed=seed), optimum)
            )
        worst = max(worst, max(stable_ratios))
        rows.append([skew, f"{mean(stable_ratios):.4f}", f"{max(stable_ratios):.4f}",
                     f"{mean(greedy_ratios):.4f}"])
    out(markdown_table(
        ["server skew", "stable/optimal (mean)", "stable/optimal (max)", "greedy/optimal (mean)"],
        rows))
    out(f"\nWorst stable-assignment ratio observed: {worst:.4f} ≤ 2 (the guaranteed factor).\n")


def main() -> None:
    out("# Measured experiment tables\n")
    out("Regenerate with `python scripts/run_experiments.py`.  Sweeps use seeds "
        f"{list(SEEDS)}; see EXPERIMENTS.md for the paper-vs-measured discussion.\n")
    experiment_e1()
    experiment_e3()
    experiment_e4_e9()
    experiment_e2()
    experiment_e5()
    experiment_e6_e7()
    experiment_e8()


if __name__ == "__main__":
    main()
