#!/usr/bin/env python3
"""Regenerate the measured tables of EXPERIMENTS.md through ``repro.engine``.

Runs one moderate-size sweep per experiment (E1-E9 in DESIGN.md, plus the
E10 fast-path sweep) and prints a Markdown report to stdout:

    python scripts/run_experiments.py > EXPERIMENTS_measured.md

Every experiment is specified as an :class:`~repro.engine.ExperimentSpec`
over a measure function from :mod:`repro.engine.library`, so the whole
report can be sharded across CPUs and resumed after an interrupt:

    python scripts/run_experiments.py --jobs 4 --cache-dir .sweep-cache
    # ... Ctrl-C mid-way, then continue where it stopped:
    python scripts/run_experiments.py --jobs 4 --cache-dir .sweep-cache --resume

``--experiment`` restricts the run to a subset (e.g. ``--experiment E3``),
and ``--seeds`` overrides the per-point seed list (useful for quick smoke
runs in CI).  The benchmark suite (`pytest benchmarks/ --benchmark-only`)
measures the same quantities with wall-clock timing attached.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis import fit_power_law, markdown_table
from repro.engine import (
    ExperimentSpec,
    ProgressReporter,
    ResultCache,
    ResultSet,
    library,
    open_cache,
    parameter_grid,
    run_experiment,
)

SEEDS = (0, 1, 2)


@dataclass
class EngineOptions:
    """Execution knobs shared by every experiment in the report."""

    jobs: int = 1
    cache_dir: Optional[str] = None
    resume: bool = True
    quiet: bool = False
    seeds: Optional[Sequence[int]] = None
    #: Every TaskResult of the run, collected for the --top-slowest report.
    collected: List = field(default_factory=list)


def out(text: str = "") -> None:
    print(text)
    sys.stdout.flush()


def mean(values) -> float:
    values = list(values)
    return sum(values) / len(values)


def sweep(
    name: str,
    measure,
    grid,
    opts: EngineOptions,
    *,
    seeds: Sequence[int] = SEEDS,
) -> ResultSet:
    """Run one engine sweep with the report's shared execution options.

    ``--seeds`` only overrides the seed-swept experiments (those using the
    default ``SEEDS``); experiments that deliberately pin a single seed
    per grid point (E2, E5) print one table row per task and would emit
    malformed tables under a widened seed list.
    """
    if opts.seeds and tuple(seeds) == SEEDS:
        seeds = opts.seeds
    spec = ExperimentSpec(name=name, measure=measure, grid=grid, seeds=seeds)
    reporter = ProgressReporter(total=len(spec), label=name, enabled=not opts.quiet)
    results = run_experiment(
        spec,
        jobs=opts.jobs,
        cache=open_cache(opts.cache_dir),
        resume=opts.resume,
        progress=reporter,
    )
    reporter.close()
    opts.collected.extend(results)
    return results


def report_top_slowest(
    opts: EngineOptions, count: int, *, as_json: bool = False
) -> None:
    """Print the ``count`` slowest tasks of the run (hot spots at a glance).

    Per-task wall time is recorded in every result (and persisted as
    ``elapsed_seconds`` in the cache's ``results.jsonl``), so this report
    needs no re-profiling; cache-restored tasks report the wall time of
    their original execution.  With ``as_json`` the same rows are also
    written machine-readably to ``top_slowest.json`` next to the cache
    (the working directory when no cache is configured).
    """
    if count <= 0 or not opts.collected:
        return
    slowest = sorted(
        opts.collected, key=lambda r: r.elapsed_seconds, reverse=True
    )[:count]
    if as_json:
        payload = {
            "count": len(slowest),
            "tasks": [
                {
                    "experiment": r.experiment,
                    "params": dict(r.params),
                    "seed": r.seed,
                    "elapsed_seconds": r.elapsed_seconds,
                    "cached": r.cached,
                }
                for r in slowest
            ],
        }
        target = Path(opts.cache_dir or ".") / "top_slowest.json"
        target.write_text(json.dumps(payload, indent=2, default=str) + "\n")
        print(f"top-slowest JSON written to {target}", file=sys.stderr)
    out(f"## Top {len(slowest)} slowest tasks\n")
    rows = []
    for result in slowest:
        params = " ".join(f"{k}={v}" for k, v in sorted(result.params.items()))
        rows.append(
            [
                result.experiment,
                params or "-",
                result.seed,
                f"{result.elapsed_seconds:.3f}",
                "cache" if result.cached else "run",
            ]
        )
    out(
        markdown_table(
            ["experiment", "params", "seed", "wall time (s)", "source"], rows
        )
    )
    out()


# ----------------------------------------------------------------------
def experiment_e1(opts: EngineOptions) -> None:
    out("## E1 — Theorem 4.1: proposal algorithm in O(L·Δ²) game rounds\n")
    deltas = [2, 4, 6, 8, 12]
    results = sweep(
        "E1-delta",
        library.proposal_rounds_vs_delta,
        parameter_grid(delta=deltas),
        opts,
    )
    rows = []
    means = []
    for delta in deltas:
        point = results.filter(delta=delta)
        rounds = mean(point.values_of("game_rounds"))
        ratio = rounds / mean(point.values_of("bound"))
        means.append(rounds)
        rows.append([delta, 5, f"{rounds:.1f}", f"{ratio:.4f}"])
    fit = fit_power_law([float(d) for d in deltas], means)
    out(
        markdown_table(
            [
                "Δ (cap)",
                "height L",
                "game rounds (mean)",
                "rounds / 8(L+1)(Δ+1)² bound",
            ],
            rows,
        )
    )
    out(
        f"\nFitted rounds ≈ {fit.coefficient:.2f}·Δ^{fit.exponent:.2f} at fixed L "
        f"(theorem allows exponent ≤ 2); every run stayed below the explicit bound.\n"
    )

    heights = [2, 4, 6, 8, 10]
    results = sweep(
        "E1-height",
        library.proposal_rounds_vs_height,
        parameter_grid(height=heights),
        opts,
    )
    rows = []
    h_means = []
    for height in heights:
        point = results.filter(height=height)
        rounds = mean(point.values_of("game_rounds"))
        h_means.append(rounds)
        rows.append([height, 6, f"{rounds:.1f}"])
    fit_h = fit_power_law([float(h) for h in heights], h_means)
    out(markdown_table(["height L", "Δ (cap)", "game rounds (mean)"], rows))
    out(f"\nFitted rounds ≈ {fit_h.coefficient:.2f}·L^{fit_h.exponent:.2f} at fixed Δ "
        "(theorem allows exponent ≤ 1 in L).\n")


def experiment_e2(opts: EngineOptions) -> None:
    out("## E2 — Theorems 4.6 / 7.4: reductions from bipartite maximal matching\n")
    sides = [20, 40, 60]
    results = sweep(
        "E2",
        library.matching_reductions,
        parameter_grid(side=sides),
        opts,
        seeds=(0,),
    )
    rows = []
    for result in results:
        v = result.values
        rows.append(
            [
                v["side"],
                v["td_game_rounds"],
                v["td_matching_size"],
                "yes" if v["td_maximal"] else "NO",
                v["ba_phases"],
                v["ba_matching_size"],
                "yes" if v["ba_maximal"] else "NO",
            ]
        )
    out(
        markdown_table(
            [
                "side n",
                "TD game rounds",
                "TD matching size",
                "maximal?",
                "2-bounded phases",
                "BA matching size",
                "maximal?",
            ],
            rows,
        )
    )
    out(
        "\nBoth reductions always produce maximal matchings, which is the content "
        "of the lower-bound arguments (hardness transfers from maximal matching).\n"
    )


def experiment_e3(opts: EngineOptions) -> None:
    out("## E3 — Theorem 4.7: three-level games in O(Δ) rounds\n")
    deltas = [2, 4, 6, 8, 12]
    results = sweep(
        "E3",
        library.three_level_vs_generic,
        parameter_grid(delta=deltas),
        opts,
    )
    rows = []
    fast_means = []
    for delta in deltas:
        point = results.filter(delta=delta)
        fast = mean(point.values_of("three_level_rounds"))
        generic = mean(point.values_of("generic_rounds"))
        fast_means.append(fast)
        rows.append([delta, f"{fast:.1f}", f"{generic:.1f}"])
    fit_fast = fit_power_law([float(d) for d in deltas], fast_means)
    out(
        markdown_table(
            ["Δ (cap)", "three-level rounds", "generic proposal rounds"], rows
        )
    )
    out(
        f"\nThree-level algorithm fitted exponent {fit_fast.exponent:.2f} "
        "(theorem: ≤ 1).\n"
    )


def experiment_e4_e9(opts: EngineOptions) -> None:
    out("## E4 / E9 — Theorem 5.1: stable orientation in O(Δ⁴), vs. baselines\n")
    deltas = [3, 4, 6, 8, 10]
    results = sweep(
        "E4-E9",
        library.orientation_vs_baselines,
        parameter_grid(delta=deltas),
        opts,
    )
    rows = []
    phase_means = []
    for delta in deltas:
        point = results.filter(delta=delta)
        rounds = mean(point.values_of("game_rounds"))
        phase_means.append(rounds)
        rows.append(
            [
                delta,
                f"{mean(point.values_of('phases')):.1f}",
                f"{rounds:.1f}",
                f"{mean(point.values_of('bound_ratio')):.5f}",
                f"{mean(point.values_of('repair_rounds')):.1f}",
                f"{mean(point.values_of('sequential_flips')):.1f}",
            ]
        )
    fit = fit_power_law([float(d) for d in deltas], phase_means)
    out(
        markdown_table(
            [
                "Δ",
                "phases (Thm 5.1)",
                "game rounds (Thm 5.1)",
                "rounds / 16(Δ+1)⁴ bound",
                "repair baseline rounds",
                "sequential flips (E9)",
            ],
            rows,
        )
    )
    out(
        f"\nPhase-algorithm rounds grow ≈ Δ^{fit.exponent:.2f} on random Δ-regular "
        "graphs — far below the worst-case Δ⁴ budget, and every run respects the "
        "explicit bound.  On these non-adversarial instances the repair baseline "
        "also finishes quickly; the paper's improvement is about the worst-case "
        "guarantee (O(Δ⁴) vs O(Δ⁵)), which the bound-ratio column certifies, not "
        "about typical random instances.\n"
    )


def experiment_e5(opts: EngineOptions) -> None:
    out("## E5 — Theorem 6.3 / Lemmas 6.1–6.2: the lower-bound instance pair\n")
    deltas = [3, 4, 5]
    results = sweep(
        "E5",
        library.lower_bound_pair,
        [{"delta": d} for d in deltas],
        opts,
        seeds=(0,),
    )
    rows = []
    for result in results:
        v = result.values
        girth = v["girth"] if v["girth"] >= 0 else math.inf
        views = "isomorphic" if v["views_isomorphic"] else "differ"
        rows.append(
            [
                v["delta"],
                v["regular_nodes"],
                girth,
                v["tree_nodes"],
                f"{v['witness_load']} ≥ {v['witness_required']}",
                "holds" if v["lemma61_holds"] else "VIOLATED",
                f"r={v['view_radius']}: {views}",
            ]
        )
    out(
        markdown_table(
            [
                "Δ",
                "|V| regular",
                "girth",
                "|V| tree",
                "Lemma 6.2 witness load",
                "Lemma 6.1",
                "local views",
            ],
            rows,
        )
    )
    out(
        "\nPremises and both lemmas verified on every pair (girth scaled down "
        "from the paper's Δ+1 to keep instance sizes laptop-scale; see "
        "DESIGN.md).\n"
    )


def experiment_e6_e7(opts: EngineOptions) -> None:
    out(
        "## E6 / E7 — Theorems 7.3 / 7.5: stable assignment and the 2-bounded "
        "relaxation\n"
    )
    replicas_sweep = [2, 3, 4, 6]
    results = sweep(
        "E6-E7",
        library.assignment_vs_bounded,
        parameter_grid(replicas=replicas_sweep),
        opts,
    )
    rows = []
    for replicas in replicas_sweep:
        point = results.filter(replicas=replicas)
        rows.append(
            [
                replicas,
                f"{mean(point.values_of('general_phases')):.1f}",
                f"{mean(point.values_of('general_rounds')):.1f}",
                f"{mean(point.values_of('bounded_phases')):.1f}",
                f"{mean(point.values_of('bounded_rounds')):.1f}",
            ]
        )
    out(
        markdown_table(
            [
                "C (replicas)",
                "general phases",
                "general rounds (Thm 7.3)",
                "2-bounded phases",
                "2-bounded rounds (Thm 7.5)",
            ],
            rows,
        )
    )
    out(
        "\nBoth produce stable solutions on every instance, and the relaxation's "
        "embedded token dropping games never exceed three levels (the mechanism "
        "behind Theorem 7.5's better bound).  On these easy random instances the "
        "relaxation uses somewhat *more* phases because effective loads make the "
        "proposal step less informative; the theorem's advantage is the "
        "worst-case budget (O(C·S²) vs O(C·S⁴)), not typical-case rounds — see "
        "EXPERIMENTS.md.\n"
    )


def experiment_e8(opts: EngineOptions) -> None:
    out("## E8 — §1.3: stable assignment as a semi-matching 2-approximation\n")
    skews = [0.0, 1.0, 2.0]
    results = sweep(
        "E8",
        library.semi_matching_quality,
        parameter_grid(skew=skews),
        opts,
    )
    rows = []
    worst = 0.0
    for skew in skews:
        point = results.filter(skew=skew)
        stable_ratios = point.values_of("stable_ratio")
        worst = max(worst, max(stable_ratios))
        rows.append(
            [
                skew,
                f"{mean(stable_ratios):.4f}",
                f"{max(stable_ratios):.4f}",
                f"{mean(point.values_of('greedy_ratio')):.4f}",
            ]
        )
    out(
        markdown_table(
            [
                "server skew",
                "stable/optimal (mean)",
                "stable/optimal (max)",
                "greedy/optimal (mean)",
            ],
            rows,
        )
    )
    out(
        f"\nWorst stable-assignment ratio observed: {worst:.4f} ≤ 2 "
        "(the guaranteed factor).\n"
    )


def experiment_e10(opts: EngineOptions) -> None:
    out("## E10 — best-response dynamics on compact workloads (fast-path kernels)\n")
    skews = [0.0, 1.0, 2.0]
    results = sweep(
        "E10",
        library.best_response_quality,
        parameter_grid(skew=skews),
        opts,
    )
    rows = []
    for skew in skews:
        point = results.filter(skew=skew)
        rows.append(
            [
                skew,
                f"{mean(point.values_of('moves')):.1f}",
                f"{mean(point.values_of('greedy_overhead')):.4f}",
                f"{mean(point.values_of('max_load')):.1f}",
                f"{mean(point.values_of('greedy_max_load')):.1f}",
                "yes" if all(point.values_of("stable")) else "NO",
            ]
        )
    out(
        markdown_table(
            [
                "server skew",
                "moves to stability",
                "greedy cost / stable cost",
                "stable max load",
                "greedy max load",
                "stable?",
            ],
            rows,
        )
    )
    out(
        "\nBest-response dynamics converge after few moves even at thousands of "
        "jobs (the compact CSR kernels keep the sweep cheap) and strictly improve "
        "on greedy under skew — the production-path counterpart of the paper's "
        "distributed constructions.\n"
    )


EXPERIMENTS = {
    "E1": experiment_e1,
    "E3": experiment_e3,
    "E4": experiment_e4_e9,
    "E2": experiment_e2,
    "E5": experiment_e5,
    "E6": experiment_e6_e7,
    "E8": experiment_e8,
    "E10": experiment_e10,
}

#: Experiments reported jointly with another id select the same section.
EXPERIMENT_ALIASES = {"E7": "E6", "E9": "E4"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Regenerate the measured experiment tables via repro.engine."
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes (1 = serial, 0 = all cores; default 1)",
    )
    parser.add_argument(
        "--cache-dir", type=str, default=None,
        help="directory for the on-disk result cache (enables resumability)",
    )
    parser.add_argument(
        "--resume", dest="resume", action="store_true", default=True,
        help="reuse cached results where available (default)",
    )
    parser.add_argument(
        "--no-resume", dest="resume", action="store_false",
        help="ignore existing cached results and recompute everything",
    )
    parser.add_argument(
        "--experiment", "-e", action="append",
        choices=sorted(EXPERIMENTS) + sorted(EXPERIMENT_ALIASES),
        help="run only the given experiment(s); repeatable (default: all; "
        "E7/E9 select their joint sections E6/E4)",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=None,
        help="override the seed list of the seed-swept experiments "
        "(e.g. --seeds 0 for a smoke run)",
    )
    parser.add_argument(
        "--quiet", "-q", action="store_true",
        help="suppress per-task progress lines on stderr",
    )
    parser.add_argument(
        "--top-slowest", type=int, default=0, metavar="N",
        help="after the report, list the N slowest tasks by recorded wall "
        "time (hot spots without re-profiling; 0 disables)",
    )
    parser.add_argument(
        "--json", dest="as_json", action="store_true",
        help="with --top-slowest, also write the report as top_slowest.json "
        "next to the cache (or into the working directory)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    opts = EngineOptions(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        resume=args.resume,
        quiet=args.quiet,
        seeds=tuple(args.seeds) if args.seeds else None,
    )
    if opts.cache_dir and not opts.resume:
        # A full recompute starts from an empty store; otherwise every
        # --no-resume run appends another copy of each record.
        ResultCache(opts.cache_dir).clear()
    selected = {
        EXPERIMENT_ALIASES.get(name, name)
        for name in (args.experiment or EXPERIMENTS)
    }
    out("# Measured experiment tables\n")
    out("Regenerate with `python scripts/run_experiments.py`.  Sweeps use seeds "
        f"{list(opts.seeds or SEEDS)}; see EXPERIMENTS.md for the paper-vs-measured "
        "discussion.\n")
    for name in EXPERIMENTS:
        if name in selected:
            EXPERIMENTS[name](opts)
    report_top_slowest(opts, args.top_slowest, as_json=args.as_json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
