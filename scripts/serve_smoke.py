#!/usr/bin/env python3
"""CI smoke for the serving layer: real CLI server, closed-loop client.

Starts ``python -m repro serve`` as a subprocess on an ephemeral port,
drives a short closed-loop trace over loopback TCP — point queries,
coalesced update batches, a snapshot, a restore-and-compare — then shuts
the server down over the wire and requires a clean exit.  This is the
deployment path end to end: argument parsing, the solve-then-serve
startup, the frame codec, the coalescing updater, and the snapshot op.

Usage (CI runs exactly this)::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve import ServeClient, load_state  # noqa: E402
from repro.workloads import serve_smoke, serve_smoke_trace  # noqa: E402

FAMILY_ARGS = [
    "--family",
    "sensor-network",
    "--params",
    '{"num_nodes": 64, "max_degree": 4, "density": 0.1, "seed": 3}',
]


def main() -> int:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *FAMILY_ARGS],
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    try:
        for line in proc.stdout:
            print(f"[server] {line.rstrip()}")
            match = re.search(r"listening on (\S+):(\d+)", line)
            if match:
                host, port = match.group(1), int(match.group(2))
                break
        else:
            raise RuntimeError("server exited before announcing its port")

        client = ServeClient(host, port, timeout=30)
        stats = client.stats()
        assert stats["num_nodes"] == 64, stats
        assert stats["updates_applied"] == 0, stats

        # Short closed-loop trace: the serve-gate flap workload, applied
        # in coalesced chunks, matches the documented scenario exactly.
        trace = serve_smoke_trace(serve_smoke())[:128]
        for lo in range(0, len(trace), 32):
            receipt = client.update(trace[lo : lo + 32])
            assert receipt["applied"] == 32, receipt
        assert client.stats()["updates_applied"] == len(trace)

        # Point queries answer from the served flat arrays.
        graph = serve_smoke()
        u, v = graph.node_ids[graph.edge_u[0]], graph.node_ids[graph.edge_v[0]]
        assert client.assignment_of(u, v) in (u, v)
        assert client.load_of(u) >= 0

        # Snapshot over the wire, restore locally, compare a point query.
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "smoke.rprosnp"
            receipt = client.snapshot(path)
            assert receipt["bytes"] > 0, receipt
            restored = load_state(path)
            assert restored.updates_applied == len(trace)
            assert restored.load_of(u) == client.load_of(u)

        client.shutdown()
        client.close()
        returncode = proc.wait(timeout=30)
        for line in proc.stdout:
            print(f"[server] {line.rstrip()}")
        if returncode != 0:
            raise RuntimeError(f"server exited with {returncode}")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    print("serve smoke OK: queries, coalesced updates, snapshot, shutdown")
    return 0


if __name__ == "__main__":
    sys.exit(main())
