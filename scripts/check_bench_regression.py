#!/usr/bin/env python3
"""Perf-regression gates over every committed ``BENCH_*.json`` suite.

For each gated suite the script re-times one representative committed
scenario and fails when the fresh median exceeds the committed median by
more than ``--max-factor`` (3x by default — generous enough to absorb
machine differences, tight enough to catch an accidental fall-back to a
reference path or a kernel pessimisation).  Sub-``--min-budget`` medians
are compared against the budget floor instead: a scenario committed at a
couple of milliseconds would otherwise flake on any slower runner.

Because committed medians were measured on a different machine, the
absolute budget alone cannot distinguish "slow CI runner" from "kernel
fell back to the reference path".  Suites with a compact fast path
(``token_dropping``, ``orientation``, ``compact_core``) therefore also
time the dict reference *on the same machine in the same process* and
require the gated path to stay at least ``--min-ratio`` times faster (3x
by default).  A silent fallback drives that ratio to ~1 and fails
regardless of runner speed.  Suites without a compact backend
(``assignment``, ``semi_matching``, ``lower_bounds``) get the budget
check only.

Before timing anything, each compact-backed gate cross-checks the compact
and reference backends on its instance and fails on any disagreement, so
CI keeps a standing compact-vs-reference agreement check even when every
timing is fine.

Suites whose committed rows carry a ``peak_mb`` column (the tracemalloc
peak the benchmark conftest records) can opt into a memory gate
(``gate_peak_mb=True``): one extra run is re-measured under tracemalloc
and must stay within ``--max-mem-factor`` of the committed peak (with an
absolute ``--min-mem-budget`` floor so small scenarios cannot flake on
allocator noise).  Python-heap peaks are machine-stable, so the memory
budget is much tighter in practice than the timing one.

The ``serve`` gate drives a real :mod:`repro.serve` server over loopback
TCP on the fixed edge-flap scenario and compares the coalesced update
path (one request per 256-delta batch) against naive serving (one round
trip and one re-stabilization per delta) *on the same machine*,
requiring a ≥10x ratio — a coalescing layer that stops amortizing
per-request overhead fails regardless of runner speed.  Its agreement
check asserts a served session equals a local engine applying the
identical chunks.

The ``scale_parallel`` gate compares the shared-memory parallel
orientation backend against the serial kernel *on the same machine* and
requires a ≥1.5x ratio at 4 workers.  Parallel speedup is meaningless
without cores, so gates may declare ``min_cpus``: below that count the
correctness (agreement) check still runs but the timing comparison is
skipped with a printed note instead of producing a bogus failure.

Usage (CI runs exactly this):

    PYTHONPATH=src python scripts/check_bench_regression.py --max-factor 3

Run a single suite with ``--suite orientation`` (repeatable).
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
import tracemalloc
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent


@dataclass(frozen=True)
class SuiteGate:
    """One committed-median gate: how to rebuild and re-time a scenario."""

    #: Scenario key inside the suite's ``BENCH_<suite>.json``.
    scenario: str
    #: Build the (warmed-up) instances the runners share.
    prepare: Callable[[], dict]
    #: The gated path — exactly what the committed median measures.
    run: Callable[[dict], object]
    #: Same-machine reference for the ratio floor; None when the suite has
    #: no compact fast path (budget check only).
    reference: Optional[Callable[[dict], object]] = None
    #: Correctness check run before any timing; returns an error message
    #: or None.  Usually compact-vs-reference agreement; budget-only
    #: gates may use it for structural invariants instead.
    check_agreement: Optional[Callable[[dict], Optional[str]]] = None
    #: Per-gate override of the ``--min-ratio`` floor.  The churn gate
    #: uses this: its whole contract is that incremental re-stabilization
    #: beats per-update recompute by a wide margin, so it demands 10x
    #: where ordinary kernel gates accept the CLI default.
    min_ratio: Optional[float] = None
    #: Which ``BENCH_<name>.json`` holds the committed row; defaults to
    #: the registry key.  The ``scale_parallel`` gate reads the scale
    #: suite's file — its scenarios live in ``bench_scale.py``.
    bench_suite: Optional[str] = None
    #: What the ratio's denominator path is called in output ("dict" for
    #: the reference-path gates, "serial" for the parallel gate).
    reference_label: str = "dict"
    #: Minimum ``os.cpu_count()`` for the timing comparison to be
    #: meaningful.  Below it the agreement check still runs; timing,
    #: ratio, and memory checks are skipped with a note.
    min_cpus: int = 0
    #: Re-measure one run under tracemalloc and gate it against the
    #: committed ``extra_info.peak_mb`` (times ``--max-mem-factor``,
    #: floored at ``--min-mem-budget``).
    gate_peak_mb: bool = False


# ----------------------------------------------------------------------
# Gate definitions, one per committed BENCH_*.json
# ----------------------------------------------------------------------
def _token_dropping_gate() -> SuiteGate:
    from repro.core.token_dropping import run_proposal_algorithm
    from repro.workloads import token_dropping_smoke

    def prepare() -> dict:
        instance = token_dropping_smoke()
        # Warm the instance's network/compact caches, like the benchmark
        # does before timing.
        run_proposal_algorithm(instance, backend="compact")
        return {"instance": instance}

    def check_agreement(ctx: dict) -> Optional[str]:
        fast = run_proposal_algorithm(ctx["instance"], backend="compact")
        reference = run_proposal_algorithm(ctx["instance"], backend="dict")
        if fast != reference:
            return (
                "compact and reference token-dropping executions disagree "
                "on the smoke instance"
            )
        fast.validate(ctx["instance"]).raise_if_invalid()
        return None

    return SuiteGate(
        scenario="test_proposal_smoke_scale",
        prepare=prepare,
        run=lambda ctx: run_proposal_algorithm(ctx["instance"], backend="compact"),
        reference=lambda ctx: run_proposal_algorithm(ctx["instance"], backend="dict"),
        check_agreement=check_agreement,
    )


def _orientation_gate() -> SuiteGate:
    from repro.core.orientation import run_stable_orientation
    from repro.workloads import orientation_smoke

    def prepare() -> dict:
        compact = orientation_smoke(compact=True)
        reference = orientation_smoke()
        run_stable_orientation(compact, backend="compact")
        return {"compact": compact, "reference": reference}

    def check_agreement(ctx: dict) -> Optional[str]:
        fast = run_stable_orientation(ctx["compact"], backend="compact")
        ref = run_stable_orientation(ctx["reference"], backend="dict")
        if (
            ref.orientation.oriented_edges() != fast.orientation.oriented_edges()
            or ref.per_phase != fast.per_phase
            or (ref.phases, ref.game_rounds, ref.communication_rounds)
            != (fast.phases, fast.game_rounds, fast.communication_rounds)
        ):
            return (
                "compact and reference stable-orientation runs disagree on "
                "the smoke instance"
            )
        return None

    return SuiteGate(
        scenario="test_stable_orientation_smoke_scale",
        prepare=prepare,
        run=lambda ctx: run_stable_orientation(ctx["compact"], backend="compact"),
        reference=lambda ctx: run_stable_orientation(
            ctx["reference"], backend="dict"
        ),
        check_agreement=check_agreement,
    )


def _compact_core_gate() -> SuiteGate:
    from repro.core.orientation import sequential_flip_algorithm
    from repro.workloads import layered_dag_orientation

    # The bench_compact_core.py full-scale sequential-flips instance.
    params = dict(num_levels=100, width=100, edge_probability=0.003, seed=0)

    def prepare() -> dict:
        compact = layered_dag_orientation(**params, compact=True)
        reference = layered_dag_orientation(**params)
        sequential_flip_algorithm(compact, backend="compact")
        return {"compact": compact, "reference": reference}

    def check_agreement(ctx: dict) -> Optional[str]:
        fast, fast_stats = sequential_flip_algorithm(
            ctx["compact"], backend="compact"
        )
        ref, ref_stats = sequential_flip_algorithm(
            ctx["reference"], backend="dict"
        )
        if ref.oriented_edges() != fast.oriented_edges() or ref_stats != fast_stats:
            return (
                "compact and reference sequential-flip runs disagree on the "
                "layered-DAG instance"
            )
        return None

    return SuiteGate(
        scenario="test_sequential_flips_on_layered_dag",
        prepare=prepare,
        run=lambda ctx: sequential_flip_algorithm(ctx["compact"], backend="compact"),
        reference=lambda ctx: sequential_flip_algorithm(
            ctx["reference"], backend="dict"
        ),
        check_agreement=check_agreement,
    )


def _churn_gate() -> SuiteGate:
    from repro.core.orientation import DynamicOrientation
    from repro.workloads import churn_smoke, churn_smoke_trace

    def replay(problem, trace, backend):
        engine = DynamicOrientation(problem, seed=2, backend=backend)
        for delta in trace:
            engine.apply(delta)
        return engine

    def prepare() -> dict:
        compact = churn_smoke(compact=True)
        reference = churn_smoke()
        trace = churn_smoke_trace(compact)
        replay(compact, trace, "compact")  # warm caches like the benchmark
        return {"compact": compact, "reference": reference, "trace": trace}

    def check_agreement(ctx: dict) -> Optional[str]:
        fast = DynamicOrientation(ctx["compact"], seed=2, backend="compact")
        ref = DynamicOrientation(ctx["reference"], seed=2, backend="dict")
        for step, delta in enumerate(ctx["trace"]):
            if fast.apply(delta) != ref.apply(delta):
                return (
                    f"incremental and scratch-reference engines disagree at "
                    f"churn update {step} ({delta!r})"
                )
        if fast.orientation().oriented_edges() != ref.orientation().oriented_edges():
            return (
                "incremental and scratch-reference engines disagree on the "
                "final orientation of the churn smoke trace"
            )
        return None

    # The reference replay rebuilds the mutated problem and re-solves it
    # from scratch on every update — exactly what a silent full-recompute
    # fallback inside the compact apply() would cost, so the ratio floor
    # (10x, overriding the CLI default) catches that fallback regardless
    # of runner speed.
    return SuiteGate(
        scenario="test_churn_smoke_scale",
        prepare=prepare,
        run=lambda ctx: replay(ctx["compact"], ctx["trace"], "compact"),
        reference=lambda ctx: replay(ctx["reference"], ctx["trace"], "dict"),
        check_agreement=check_agreement,
        min_ratio=10.0,
    )


def _scale_gate() -> SuiteGate:
    from repro.core.orientation._kernels import stable_orientation_kernel
    from repro.workloads import SCALE_TIER_PARAMS, scale_layered_orientation

    # The 100k tier: large enough that a lost frontier batching or a
    # reintroduced O(n)-per-phase scan moves the median far beyond any
    # runner-speed wobble, small enough to re-time in CI.  No dict
    # reference exists at this size (avoiding it is the suite's point),
    # so this is a budget-only gate; the structural frontier guarantees
    # are enforced separately by tests/orientation/test_frontier_batching.
    def prepare() -> dict:
        graph = scale_layered_orientation(**SCALE_TIER_PARAMS["100k"])
        stable_orientation_kernel(graph, seed=0)  # warm derived caches
        return {"graph": graph}

    def check_agreement(ctx: dict) -> Optional[str]:
        heads, load, *_ = stable_orientation_kernel(ctx["graph"], seed=0)
        if any(h < 0 for h in heads):
            return "scale orientation left unoriented edges at the 100k tier"
        if max(load) > ctx["graph"].max_degree():
            return "scale orientation exceeded the max-degree load bound"
        return None

    return SuiteGate(
        scenario="test_scale_orientation[100k]",
        prepare=prepare,
        run=lambda ctx: stable_orientation_kernel(ctx["graph"], seed=0),
        check_agreement=check_agreement,
        gate_peak_mb=True,
    )


def _scale_parallel_gate() -> SuiteGate:
    from repro.core.orientation._kernels import stable_orientation_kernel
    from repro.parallel import parallel_stable_orientation_kernel
    from repro.workloads import SCALE_TIER_PARAMS, scale_layered_orientation

    # The committed scenario is the workers=4 row of the bench_scale.py
    # sweep; the same-machine reference is the serial kernel, so the
    # ratio floor (1.5x, overriding the CLI default) fails when the
    # worker pool stops pulling its weight — provided the runner has the
    # cores to make the comparison meaningful (min_cpus below).  The
    # agreement check runs regardless of core count: bit-for-bit equality
    # against the serial kernel is the backend's contract everywhere.
    def prepare() -> dict:
        graph = scale_layered_orientation(**SCALE_TIER_PARAMS["100k"])
        stable_orientation_kernel(graph, seed=0)  # warm derived caches
        return {"graph": graph}

    def check_agreement(ctx: dict) -> Optional[str]:
        serial = stable_orientation_kernel(ctx["graph"], seed=0)
        par = parallel_stable_orientation_kernel(
            ctx["graph"], seed=0, workers=2, min_edges=0
        )
        if serial != par:
            return (
                "parallel and serial stable-orientation kernels disagree "
                "on the 100k scale instance"
            )
        return None

    return SuiteGate(
        scenario="test_scale_orientation_workers[4]",
        prepare=prepare,
        run=lambda ctx: parallel_stable_orientation_kernel(
            ctx["graph"], seed=0, workers=4
        ),
        reference=lambda ctx: stable_orientation_kernel(ctx["graph"], seed=0),
        check_agreement=check_agreement,
        min_ratio=1.5,
        bench_suite="scale",
        reference_label="serial",
        min_cpus=4,
    )


def _serve_gate() -> SuiteGate:
    from repro.core.orientation import DynamicOrientation
    from repro.serve import ServeConfig, ServerThread, connect
    from repro.workloads import serve_smoke, serve_smoke_trace

    batch = 256  # one request per chunk, the default ServeConfig.max_batch

    def replay(client, trace, batch_size):
        for lo in range(0, len(trace), batch_size):
            client.update(trace[lo : lo + batch_size])

    # Both paths drive a real server over loopback TCP.  The flap trace
    # is edge-set preserving, so the same persistent servers absorb
    # every timing round and setup stays out of the timed region; the
    # daemon server threads die with the process (this script is one
    # short-lived CI step, so no explicit teardown hook exists).
    def prepare() -> dict:
        trace = serve_smoke_trace(serve_smoke())
        fast_thread = ServerThread(
            DynamicOrientation(serve_smoke(), seed=2), ServeConfig()
        ).start()
        naive_thread = ServerThread(
            DynamicOrientation(serve_smoke(), seed=2), ServeConfig()
        ).start()
        fast = connect(fast_thread.address)
        naive = connect(naive_thread.address)
        replay(fast, trace, batch)  # warm both paths end to end
        replay(naive, trace, 1)
        return {
            "trace": trace,
            "fast": fast,
            "naive": naive,
            "threads": (fast_thread, naive_thread),
        }

    def check_agreement(ctx: dict) -> Optional[str]:
        # The server must add no semantics: a served coalesced session
        # equals a local engine applying the identical chunks.
        trace = ctx["trace"]
        engine = DynamicOrientation(serve_smoke(), seed=2)
        with ServerThread(engine, ServeConfig()) as thread:
            with connect(thread.address) as client:
                replay(client, trace, batch)
        reference = DynamicOrientation(serve_smoke(), seed=2)
        for lo in range(0, len(trace), batch):
            reference.apply_batch(trace[lo : lo + batch])
        if engine.loads() != reference.loads():
            return (
                "served coalesced replay and local apply_batch disagree "
                "on the final loads"
            )
        if engine.updates_applied != reference.updates_applied:
            return (
                "served coalesced replay lost or duplicated updates "
                f"({engine.updates_applied} vs {reference.updates_applied})"
            )
        if engine.unhappy_edges():
            return "served state is not stable after the flap trace"
        return None

    # The naive reference serves the same trace one delta per request —
    # one wire round trip and one re-stabilization each, i.e. serving
    # without the coalescing layer.  The ratio floor (10x) fails when
    # the updater stops amortizing per-request overhead, regardless of
    # runner speed.
    return SuiteGate(
        scenario="test_serve_coalesced_replay",
        prepare=prepare,
        run=lambda ctx: replay(ctx["fast"], ctx["trace"], batch),
        reference=lambda ctx: replay(ctx["naive"], ctx["trace"], 1),
        check_agreement=check_agreement,
        min_ratio=10.0,
        reference_label="naive",
    )


def _assignment_gate() -> SuiteGate:
    from repro.core.assignment import run_stable_assignment
    from repro.workloads import datacenter_assignment

    # The bench_assignment.py S=40 scenario (dict-only algorithm).
    def prepare() -> dict:
        graph = datacenter_assignment(
            num_jobs=240, num_servers=40, replicas=3, popularity_skew=1.2, seed=40
        )
        return {"graph": graph}

    return SuiteGate(
        scenario="test_assignment_rounds_vs_server_degree[40]",
        prepare=prepare,
        run=lambda ctx: run_stable_assignment(ctx["graph"], seed=1),
    )


def _semi_matching_gate() -> SuiteGate:
    from repro.core.assignment import optimal_cost
    from repro.workloads import datacenter_assignment

    def prepare() -> dict:
        graph = datacenter_assignment(
            num_jobs=200, num_servers=40, replicas=3, popularity_skew=1.5, seed=9
        )
        return {"graph": graph}

    return SuiteGate(
        scenario="test_optimal_semi_matching_cost",
        prepare=prepare,
        run=lambda ctx: optimal_cost(ctx["graph"]),
    )


def _lower_bounds_gate() -> SuiteGate:
    from repro.core.assignment import maximal_matching_via_bounded_assignment
    from repro.workloads import hard_matching_bipartite

    def prepare() -> dict:
        graph = hard_matching_bipartite(side=40, degree=4, seed=140)
        return {"graph": graph}

    return SuiteGate(
        scenario="test_matching_reduction_via_bounded_assignment[40]",
        prepare=prepare,
        run=lambda ctx: maximal_matching_via_bounded_assignment(
            ctx["graph"], seed=0
        ),
    )


#: Suite name -> gate factory (lazy, so a --suite run only imports what it
#: needs and a broken suite cannot take the other gates down at import).
GATES: Dict[str, Callable[[], SuiteGate]] = {
    "token_dropping": _token_dropping_gate,
    "orientation": _orientation_gate,
    "compact_core": _compact_core_gate,
    "churn": _churn_gate,
    "scale": _scale_gate,
    "serve": _serve_gate,
    "scale_parallel": _scale_parallel_gate,
    "assignment": _assignment_gate,
    "semi_matching": _semi_matching_gate,
    "lower_bounds": _lower_bounds_gate,
}


def timed_median(fn: Callable[[], object], rounds: int) -> float:
    """Median wall time of ``fn`` over ``rounds`` runs."""
    times = []
    for _ in range(max(1, rounds)):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def measured_peak_mb(fn: Callable[[], object]) -> float:
    """tracemalloc peak (MB) of one run — the benchmark conftest's metric."""
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not already_tracing:
            tracemalloc.stop()
    return peak / (1024 * 1024)


def timing_rounds(
    committed: float, base_rounds: int, min_budget: float = 0.05
) -> int:
    """More repetitions for fast scenarios, so medians beat noise.

    Scales the round count so every gate spends at least ``min_budget``
    seconds of total measurement per timed path (the same value that
    floors the per-scenario budget), capped at 25 rounds.
    """
    if committed <= 0:
        return base_rounds
    return max(base_rounds, min(25, int(min_budget / committed) + 1))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Fail when any committed BENCH_*.json scenario regresses."
    )
    parser.add_argument(
        "--suite", action="append", choices=sorted(GATES), default=None,
        help="gate only this suite (repeatable; default: all suites)",
    )
    parser.add_argument(
        "--max-factor", type=float, default=3.0,
        help="allowed multiple of the committed median (default 3)",
    )
    parser.add_argument(
        "--min-ratio", type=float, default=3.0,
        help="required dict/compact median ratio on this machine for "
        "compact-backed suites (default 3)",
    )
    parser.add_argument(
        "--max-mem-factor", type=float, default=3.0,
        help="allowed multiple of the committed peak_mb for memory-gated "
        "suites (default 3; tracemalloc peaks are machine-stable, the "
        "slack covers interpreter-version drift)",
    )
    parser.add_argument(
        "--min-mem-budget", type=float, default=64.0,
        help="absolute floor in MB for the memory budget, so small "
        "scenarios cannot flake on allocator noise (default 64)",
    )
    parser.add_argument(
        "--min-budget", type=float, default=0.05,
        help="absolute floor in seconds for the per-scenario budget, so "
        "millisecond-scale medians cannot flake on a slow runner "
        "(default 0.05)",
    )
    parser.add_argument(
        "--rounds", type=int, default=5,
        help="baseline timing repetitions; the median is compared "
        "(default 5; fast scenarios repeat more, see timing_rounds)",
    )
    parser.add_argument(
        "--bench-dir", type=Path, default=REPO_ROOT,
        help="directory holding the committed BENCH_*.json files "
        "(default: repo root)",
    )
    return parser


def check_suite(suite: str, gate: SuiteGate, args: argparse.Namespace) -> int:
    """Run one suite's gate; returns 0 (ok), 1 (failed), or 2 (unusable)."""
    bench_name = gate.bench_suite or suite
    bench_file = args.bench_dir / f"BENCH_{bench_name}.json"
    try:
        payload = json.loads(bench_file.read_text())
        row = payload["scenarios"][gate.scenario]
        committed = row["median_seconds"]
        budget = committed * args.max_factor
    except (OSError, ValueError, KeyError, TypeError):
        print(
            f"ERROR: no committed median for {gate.scenario!r} in "
            f"{bench_file}; regenerate it with: pytest "
            f"benchmarks/bench_{bench_name}.py --benchmark-only",
            file=sys.stderr,
        )
        return 2

    ctx = gate.prepare()

    # Agreement first: a fast-but-wrong kernel must fail before any timing
    # (and regardless of core count — correctness needs no parallelism).
    if gate.check_agreement is not None:
        error = gate.check_agreement(ctx)
        if error is not None:
            print(f"ERROR: [{suite}] {error}", file=sys.stderr)
            return 1

    cpus = os.cpu_count() or 1
    if gate.min_cpus and cpus < gate.min_cpus:
        print(
            f"[{suite}] {gate.scenario}: SKIPPED timing — {cpus} CPU(s) "
            f"available, gate needs {gate.min_cpus} for a meaningful "
            "comparison (agreement check passed)"
        )
        return 0

    rounds = timing_rounds(committed, args.rounds, args.min_budget)
    median = timed_median(lambda: gate.run(ctx), rounds)
    effective_budget = max(budget, args.min_budget)

    line = (
        f"[{suite}] {gate.scenario}: measured median {median:.4f}s, "
        f"committed {committed:.4f}s, budget {effective_budget:.4f}s "
        f"({args.max_factor:.1f}x, floor {args.min_budget:.2f}s)"
    )
    ratio = None
    min_ratio = gate.min_ratio if gate.min_ratio is not None else args.min_ratio
    if gate.reference is not None:
        ref_median = timed_median(lambda: gate.reference(ctx), rounds)
        ratio = ref_median / median if median else float("inf")
        line += (
            f"; {gate.reference_label} median {ref_median:.4f}s, "
            f"ratio {ratio:.1f}x (floor {min_ratio:.1f}x)"
        )

    peak_mb = None
    mem_budget = None
    committed_peak = (row.get("extra_info") or {}).get("peak_mb")
    if gate.gate_peak_mb and isinstance(committed_peak, (int, float)):
        peak_mb = measured_peak_mb(lambda: gate.run(ctx))
        mem_budget = max(committed_peak * args.max_mem_factor, args.min_mem_budget)
        line += (
            f"; peak {peak_mb:.1f}MB, committed {committed_peak:.1f}MB, "
            f"budget {mem_budget:.1f}MB"
        )

    failed = (
        median > effective_budget
        or (ratio is not None and ratio < min_ratio)
        or (peak_mb is not None and peak_mb > mem_budget)
    )
    print(line + (" — FAILED" if failed else " — OK"))
    if median > effective_budget:
        print(
            f"ERROR: [{suite}] {gate.scenario} regressed more than "
            f"{args.max_factor:.1f}x against the committed median",
            file=sys.stderr,
        )
    if ratio is not None and ratio < min_ratio:
        print(
            f"ERROR: [{suite}] gated path is only {ratio:.1f}x faster "
            f"than the {gate.reference_label} path on this machine (floor "
            f"{min_ratio:.1f}x) — likely a silent fall-back or "
            "kernel pessimisation",
            file=sys.stderr,
        )
    if peak_mb is not None and peak_mb > mem_budget:
        print(
            f"ERROR: [{suite}] {gate.scenario} peak memory {peak_mb:.1f}MB "
            f"exceeds the committed-peak budget {mem_budget:.1f}MB "
            f"({args.max_mem_factor:.1f}x of {committed_peak:.1f}MB, floor "
            f"{args.min_mem_budget:.0f}MB) — a memory regression",
            file=sys.stderr,
        )
    return 1 if failed else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    suites = args.suite or sorted(GATES)

    worst = 0
    for suite in suites:
        gate = GATES[suite]()
        worst = max(worst, check_suite(suite, gate, args))
    if worst == 0:
        print(f"OK: {len(suites)} suite gate(s) within budget; backends agree")
    return worst


if __name__ == "__main__":
    sys.exit(main())
