#!/usr/bin/env python3
"""Perf-regression smoke check for the compact token-dropping path.

Re-times the fixed smoke scenario committed in ``BENCH_token_dropping.json``
(``test_proposal_smoke_scale``, built by
:func:`repro.workloads.token_dropping_smoke`) and fails when the fresh
median exceeds the committed median by more than ``--max-factor`` (3x by
default — generous enough to absorb machine differences, tight enough to
catch an accidental fall-back to the reference scheduler or a kernel
pessimisation).

Because the committed median was measured on a different machine, the
absolute budget alone cannot distinguish "slow CI runner" from "kernel
fell back to the reference scheduler".  The script therefore also times
the reference backend *on the same machine in the same process* and
requires the compact path to stay at least ``--min-ratio`` times faster
(3x by default; the measured ratio on the smoke instance runs ~7x).  A
silent fallback drives that ratio to ~1 and fails regardless of runner
speed.

Before timing anything, the script cross-checks the compact and reference
backends on the same instance and fails on any disagreement, so CI keeps
a standing compact-vs-reference agreement check for the token-dropping
kernels even when every timing is fine.

Usage (CI runs exactly this):

    PYTHONPATH=src python scripts/check_bench_regression.py --max-factor 3
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.core.token_dropping import run_proposal_algorithm
from repro.workloads import token_dropping_smoke

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_token_dropping.json"
SCENARIO = "test_proposal_smoke_scale"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Fail when the compact token-dropping median regresses."
    )
    parser.add_argument(
        "--max-factor", type=float, default=3.0,
        help="allowed multiple of the committed median (default 3)",
    )
    parser.add_argument(
        "--min-ratio", type=float, default=3.0,
        help="required dict/compact median ratio on this machine (default 3)",
    )
    parser.add_argument(
        "--rounds", type=int, default=5,
        help="timing repetitions; the median is compared (default 5)",
    )
    parser.add_argument(
        "--bench-file", type=Path, default=BENCH_FILE,
        help="committed medians file (default BENCH_token_dropping.json)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(list(argv) if argv is not None else None)

    try:
        payload = json.loads(args.bench_file.read_text())
        committed = payload["scenarios"][SCENARIO]["median_seconds"]
    except (OSError, ValueError, KeyError):
        print(
            f"ERROR: no committed median for {SCENARIO!r} in {args.bench_file}; "
            "regenerate it with: pytest benchmarks/bench_token_dropping.py "
            "--benchmark-only",
            file=sys.stderr,
        )
        return 2

    instance = token_dropping_smoke()

    # Agreement first: a fast-but-wrong kernel must fail before any timing.
    fast = run_proposal_algorithm(instance, backend="compact")
    reference = run_proposal_algorithm(instance, backend="dict")
    if fast != reference:
        print(
            "ERROR: compact and reference token-dropping executions disagree "
            "on the smoke instance",
            file=sys.stderr,
        )
        return 1
    fast.validate(instance).raise_if_invalid()

    def timed_median(backend: str) -> float:
        times = []
        for _ in range(max(1, args.rounds)):
            start = time.perf_counter()
            run_proposal_algorithm(instance, backend=backend)
            times.append(time.perf_counter() - start)
        return statistics.median(times)

    # The agreement runs above warmed the instance's network/compact caches,
    # like the benchmark does before timing.
    median = timed_median("compact")
    dict_median = timed_median("dict")
    ratio = dict_median / median if median else float("inf")

    budget = committed * args.max_factor
    print(
        f"{SCENARIO}: measured median {median:.4f}s, committed "
        f"{committed:.4f}s, budget {budget:.4f}s ({args.max_factor:.1f}x); "
        f"dict median {dict_median:.4f}s, ratio {ratio:.1f}x "
        f"(floor {args.min_ratio:.1f}x)"
    )
    failed = False
    if median > budget:
        print(
            f"ERROR: compact token-dropping path regressed more than "
            f"{args.max_factor:.1f}x against the committed median",
            file=sys.stderr,
        )
        failed = True
    if ratio < args.min_ratio:
        print(
            f"ERROR: compact path is only {ratio:.1f}x faster than the "
            f"reference scheduler on this machine (floor "
            f"{args.min_ratio:.1f}x) — likely a silent fall-back or kernel "
            "pessimisation",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print("OK: within budget and ratio floor; backends agree")
    return 0


if __name__ == "__main__":
    sys.exit(main())
