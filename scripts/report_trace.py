#!/usr/bin/env python3
"""Render a captured ``repro.obs`` JSONL trace into a time breakdown.

Reads the event stream a :class:`repro.obs.JsonlSink` produced (e.g. via
``REPRO_TRACE=trace.jsonl``) and prints, per span name:

* ``count`` — how many spans closed under that name;
* ``cum`` — cumulative wall time (sum of span durations);
* ``self`` — cumulative time minus the time spent in *direct* child
  spans, i.e. the time attributable to the span's own code;
* ``p50`` / ``p95`` — duration percentiles (nearest-rank) across the
  spans of that name.

Counters are reported as totals and histogram series as
count/p50/p95/max — the same nearest-rank percentiles used for spans.

Multi-process traces additionally get a per-process table attributing
span counts and self time to each pid.  Worker processes of the
:mod:`repro.parallel` pool label their spans with a ``worker`` attribute
(the pool slot index), which the table surfaces so "which worker did the
work" is readable straight off a ``compact-parallel`` trace.

Usage::

    REPRO_TRACE=trace.jsonl python -m pytest ... # or any entry point
    python scripts/report_trace.py trace.jsonl
    python scripts/report_trace.py trace.jsonl --json   # machine-readable

Traces may span several processes (the experiment engine forwards worker
events to the parent); span ids are only unique per process, so parent
links are resolved per ``(pid, id)``.  A span whose parent never closed
(or lives in an untraced ancestor process) is treated as a root.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from typing import Any, Dict, List, Optional, Sequence


def load_events(path: str) -> List[Dict[str, Any]]:
    """Read one JSON event per line, skipping blank lines."""
    events: List[Dict[str, Any]] = []
    try:
        fh = open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise SystemExit(f"cannot read trace file: {exc}") from exc
    with fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError as exc:
                raise SystemExit(
                    f"{path}:{lineno}: not valid JSON ({exc})"
                ) from exc
    return events


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty sequence."""
    ordered = sorted(samples)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil(n * q / 100)
    return ordered[int(rank) - 1]


def build_report(events: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate raw events into the per-name breakdown tables."""
    events = list(events)
    spans = [e for e in events if e.get("type") == "span"]
    counters: Dict[str, float] = defaultdict(float)
    hists: Dict[str, List[float]] = defaultdict(list)
    for e in events:
        kind = e.get("type")
        if kind == "counter":
            counters[e["name"]] += e["value"]
        elif kind == "hist":
            hists[e["name"]].append(e["value"])

    # Self time = duration minus the durations of *direct* children.
    # Children arrive before their parent in the stream (a span is
    # emitted when it closes), but resolution is order-independent: sum
    # child durations per (pid, parent-id) key, then subtract.
    child_time: Dict[tuple, float] = defaultdict(float)
    for e in spans:
        if e.get("parent") is not None:
            child_time[(e.get("pid"), e["parent"])] += e["dur"]

    per_name: Dict[str, Dict[str, List[float]]] = defaultdict(
        lambda: {"dur": [], "self": []}
    )
    per_pid: Dict[Any, Dict[str, Any]] = {}
    for e in spans:
        own = e["dur"] - child_time.get((e.get("pid"), e["id"]), 0.0)
        per_name[e["name"]]["dur"].append(e["dur"])
        per_name[e["name"]]["self"].append(max(own, 0.0))
        pid = e.get("pid")
        row = per_pid.setdefault(
            pid, {"pid": pid, "worker": None, "spans": 0, "self_seconds": 0.0}
        )
        row["spans"] += 1
        row["self_seconds"] += max(own, 0.0)
        # Pool workers stamp their spans with the worker slot index; any
        # span carrying it identifies the whole process.
        worker = (e.get("attrs") or {}).get("worker")
        if worker is not None:
            row["worker"] = worker

    span_rows = []
    for name, data in per_name.items():
        durs = data["dur"]
        span_rows.append(
            {
                "name": name,
                "count": len(durs),
                "cum_seconds": sum(durs),
                "self_seconds": sum(data["self"]),
                "p50_seconds": percentile(durs, 50),
                "p95_seconds": percentile(durs, 95),
            }
        )
    span_rows.sort(key=lambda row: row["cum_seconds"], reverse=True)

    hist_rows = []
    for name in sorted(hists):
        samples = hists[name]
        hist_rows.append(
            {
                "name": name,
                "count": len(samples),
                "p50": percentile(samples, 50),
                "p95": percentile(samples, 95),
                "max": max(samples),
            }
        )

    process_rows = sorted(
        per_pid.values(), key=lambda row: row["self_seconds"], reverse=True
    )

    return {
        "spans": span_rows,
        "counters": {name: counters[name] for name in sorted(counters)},
        "histograms": hist_rows,
        "processes": process_rows,
        "num_events": len(events),
    }


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}µs"


def render(report: Dict[str, Any], out=None) -> None:
    """Print the aligned human-readable breakdown."""
    if out is None:
        out = sys.stdout  # resolved at call time, so capture works
    spans = report["spans"]
    if spans:
        header = (
            f"{'span':<24} {'count':>7} {'cum':>10} {'self':>10} "
            f"{'p50':>10} {'p95':>10}"
        )
        print(header, file=out)
        print("-" * len(header), file=out)
        for row in spans:
            print(
                f"{row['name']:<24} {row['count']:>7} "
                f"{_fmt_seconds(row['cum_seconds']):>10} "
                f"{_fmt_seconds(row['self_seconds']):>10} "
                f"{_fmt_seconds(row['p50_seconds']):>10} "
                f"{_fmt_seconds(row['p95_seconds']):>10}",
                file=out,
            )
    else:
        print("no spans recorded", file=out)

    processes = report.get("processes", [])
    # One single-process trace needs no attribution table; print it as
    # soon as a second pid or a labelled pool worker shows up.
    if len(processes) > 1 or any(
        row["worker"] is not None for row in processes
    ):
        print(file=out)
        header = f"{'process':<16} {'worker':>8} {'spans':>7} {'self':>10}"
        print(header, file=out)
        print("-" * len(header), file=out)
        for row in processes:
            worker = "-" if row["worker"] is None else str(row["worker"])
            print(
                f"{str(row['pid']):<16} {worker:>8} {row['spans']:>7} "
                f"{_fmt_seconds(row['self_seconds']):>10}",
                file=out,
            )

    if report["counters"]:
        print(file=out)
        print(f"{'counter':<32} {'total':>12}", file=out)
        print("-" * 45, file=out)
        for name, total in report["counters"].items():
            value = int(total) if float(total).is_integer() else total
            print(f"{name:<32} {value:>12}", file=out)

    if report["histograms"]:
        print(file=out)
        header = f"{'histogram':<32} {'count':>7} {'p50':>9} {'p95':>9} {'max':>9}"
        print(header, file=out)
        print("-" * len(header), file=out)
        for row in report["histograms"]:
            print(
                f"{row['name']:<32} {row['count']:>7} "
                f"{row['p50']:>9g} {row['p95']:>9g} {row['max']:>9g}",
                file=out,
            )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Summarise a repro.obs JSONL trace (spans, counters, "
        "histograms)."
    )
    parser.add_argument("trace", help="path to the JSONL trace file")
    parser.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="emit the report as JSON instead of the aligned tables",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)
    report = build_report(load_events(args.trace))
    if args.as_json:
        json.dump(report, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        render(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
