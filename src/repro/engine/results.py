"""Typed result records produced by the experiment engine.

A :class:`TaskResult` is the flat, JSON-serialisable outcome of one task;
a :class:`ResultSet` is the ordered collection for a whole experiment.
``ResultSet.to_sweep_result`` bridges into the existing analysis stack
(:mod:`repro.analysis.sweep` / :mod:`repro.analysis.stats` /
:mod:`repro.analysis.reporting`) so tables and power-law fits work
unchanged on engine output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Sequence


@dataclass
class TaskResult:
    """Outcome of one executed (or cache-restored) task."""

    experiment: str
    params: Dict[str, Any]
    seed: int
    values: Dict[str, Any]
    elapsed_seconds: float
    task_hash: str
    cached: bool = False
    index: int = 0
    #: Observability events captured while the task ran (empty unless a
    #: sink was enabled).  Persisted in the cache record, so traces
    #: recorded on pool workers propagate back through the existing JSONL
    #: plumbing and survive cache restores.
    trace_events: List[Dict[str, Any]] = field(default_factory=list)

    def to_record(self) -> Dict[str, Any]:
        """The JSON-line payload persisted by :mod:`repro.engine.cache`."""
        record = {
            "task_hash": self.task_hash,
            "experiment": self.experiment,
            "params": dict(self.params),
            "seed": self.seed,
            "values": dict(self.values),
            "elapsed_seconds": self.elapsed_seconds,
        }
        if self.trace_events:
            record["trace"] = list(self.trace_events)
        return record


@dataclass
class ResultSet:
    """All results of one engine run, in deterministic task order."""

    name: str
    results: List[TaskResult] = field(default_factory=list)

    def append(self, result: TaskResult) -> None:
        self.results.append(result)

    def sort(self) -> None:
        """Restore deterministic task order after out-of-order completion."""
        self.results.sort(key=lambda r: r.index)

    @property
    def executed_count(self) -> int:
        """Tasks that actually ran in this invocation (cache misses)."""
        return sum(1 for r in self.results if not r.cached)

    @property
    def cached_count(self) -> int:
        """Tasks answered from the on-disk cache (zero new work)."""
        return sum(1 for r in self.results if r.cached)

    def values_of(self, value: str) -> List[Any]:
        return [r.values[value] for r in self.results]

    def filter(self, **params: Any) -> "ResultSet":
        subset = ResultSet(name=self.name)
        for result in self.results:
            if all(result.params.get(k) == v for k, v in params.items()):
                subset.append(result)
        return subset

    def series(
        self,
        x_param: str,
        value: str,
        reduce: Callable[[Sequence[float]], float] = None,
    ) -> tuple:
        """Aggregate ``value`` per distinct ``x_param`` (mean over seeds)."""
        return self.to_sweep_result().series(x_param, value, reduce)

    def to_sweep_result(self):
        """Convert into the analysis stack's :class:`SweepResult`."""
        # Imported lazily: analysis.sweep builds on the engine, so a
        # top-level import here would be circular.
        from repro.analysis.sweep import SweepRecord, SweepResult

        sweep = SweepResult(name=self.name)
        for result in self.results:
            sweep.append(
                SweepRecord(
                    params=dict(result.params),
                    seed=result.seed,
                    values=dict(result.values),
                    elapsed_seconds=result.elapsed_seconds,
                )
            )
        return sweep

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)


def result_from_record(
    record: Mapping[str, Any], *, experiment: str, index: int
) -> TaskResult:
    """Rehydrate a cached JSON record into a :class:`TaskResult`.

    The experiment label and ordering index come from the *current* task,
    not the record, so a cache shared between differently named sweeps
    still reports under the caller's experiment name.
    """
    return TaskResult(
        experiment=experiment,
        params=dict(record.get("params", {})),
        seed=int(record.get("seed", 0)),
        values=dict(record["values"]),
        elapsed_seconds=float(record.get("elapsed_seconds", 0.0)),
        task_hash=str(record["task_hash"]),
        cached=True,
        index=index,
        trace_events=list(record.get("trace", [])),
    )
