"""Declarative experiment specifications with content-addressed tasks.

An :class:`ExperimentSpec` names a *measure function*, a parameter grid,
and a set of seeds; expanding it yields one :class:`TaskSpec` per
(parameters, seed) pair.  Each task carries a deterministic content hash
over ``(measure reference, parameters, seed)`` so that

* the on-disk cache (:mod:`repro.engine.cache`) can recognise already
  computed tasks across process restarts, and
* changing any parameter, the seed, or the measure function's identity
  yields a different hash and therefore a fresh execution.

Measure functions are referenced by their importable dotted path
(``module:qualname``) rather than by pickled code, which keeps task
payloads tiny and lets worker processes re-import the function on their
side of a :class:`~concurrent.futures.ProcessPoolExecutor`.
"""

from __future__ import annotations

import hashlib
import importlib
import inspect
import itertools
import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

#: A measure takes ``seed=...`` plus grid parameters as keyword arguments
#: and returns a JSON-serialisable mapping of metric name -> value.
MeasureFn = Callable[..., Mapping[str, Any]]

#: Bump when the hash layout changes so stale caches are never reused.
HASH_VERSION = "repro-task-v1"


def measure_reference(measure: Union[MeasureFn, str]) -> str:
    """The ``module:qualname`` string identifying ``measure``.

    Accepts either a callable or an already-formed reference string.  The
    reference is used both as the hash identity of the measure and as the
    import path workers use to re-resolve it.
    """
    if isinstance(measure, str):
        if ":" not in measure:
            raise ValueError(
                f"measure reference {measure!r} must look like 'module:qualname'"
            )
        return measure
    module = getattr(measure, "__module__", None)
    qualname = getattr(measure, "__qualname__", None)
    if not module or not qualname:
        raise ValueError(f"cannot build a reference for {measure!r}")
    return f"{module}:{qualname}"


def resolve_measure(reference: str) -> MeasureFn:
    """Import and return the measure function named by ``reference``.

    Raises :class:`ValueError` when the reference does not point at an
    importable top-level function (e.g. it names a lambda or a closure) —
    such measures can only run in-process, never on a worker.
    """
    module_name, _, qualname = reference.partition(":")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ValueError(
            f"cannot import module of measure {reference!r}: {exc}"
        ) from exc
    obj: Any = module
    for part in qualname.split("."):
        if part == "<locals>" or part == "<lambda>":
            raise ValueError(
                f"measure {reference!r} is not importable (lambda/closure); "
                "define it as a top-level function to run with --jobs > 1"
            )
        try:
            obj = getattr(obj, part)
        except AttributeError as exc:
            raise ValueError(f"cannot resolve measure {reference!r}: {exc}") from exc
    if not callable(obj):
        raise ValueError(f"measure {reference!r} resolved to non-callable {obj!r}")
    return obj


def measure_fingerprint(measure: Union[MeasureFn, str]) -> Optional[str]:
    """Digest of the measure's *source code*, when retrievable.

    Folded into task hashes so that editing a measure's body (a bug fix,
    a changed default) invalidates its cached results instead of silently
    reusing stale numbers.  Returns ``None`` when the source cannot be
    read (builtins, REPL definitions); those measures fall back to
    reference-only identity.
    """
    fn: Optional[MeasureFn]
    if callable(measure):
        fn = measure
    else:
        try:
            fn = resolve_measure(measure)
        except ValueError:
            return None
    try:
        source = inspect.getsource(fn)
    except (OSError, TypeError):
        return None
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]


def canonical_json(payload: Any) -> str:
    """Deterministic JSON encoding used for hashing (sorted keys, no spaces)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=_json_default
    )


def _json_default(value: Any) -> Any:
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, tuple):
        return list(value)
    raise TypeError(f"task parameters must be JSON-serialisable, got {value!r}")


@dataclass(frozen=True)
class TaskSpec:
    """One unit of work: run ``measure(seed=seed, **params)``.

    ``index`` is the task's position inside its experiment's expansion and
    fixes result ordering regardless of parallel completion order; it is
    deliberately *excluded* from the content hash, which depends only on
    what is computed, not where in the grid it sits.
    """

    experiment: str
    measure_ref: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    index: int = 0
    #: Source-code digest of the measure (see :func:`measure_fingerprint`);
    #: ``None`` means identity falls back to the reference alone.
    measure_fingerprint: Optional[str] = None

    def task_hash(self) -> str:
        """Deterministic content hash of (measure identity, params, seed)."""
        payload = canonical_json(
            {
                "version": HASH_VERSION,
                "measure": self.measure_ref,
                "source": self.measure_fingerprint,
                "params": dict(self.params),
                "seed": self.seed,
            }
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        pairs = " ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.experiment}[{pairs} seed={self.seed}]"


@dataclass
class ExperimentSpec:
    """A named family of tasks: measure x parameter grid x seeds.

    ``measure`` may be a callable (preferred; its reference is derived) or
    a ``module:qualname`` string.  ``grid`` is a sequence of parameter
    dictionaries, typically built with :func:`parameter_grid`.
    """

    name: str
    measure: Union[MeasureFn, str]
    grid: Sequence[Mapping[str, Any]] = field(default_factory=lambda: [{}])
    seeds: Sequence[int] = (0, 1, 2)

    def measure_ref(self) -> str:
        return measure_reference(self.measure)

    def measure_fn(self) -> MeasureFn:
        """The in-process callable (works even for lambdas/closures)."""
        if callable(self.measure):
            return self.measure
        return resolve_measure(self.measure)

    def tasks(self) -> List[TaskSpec]:
        """Expand the spec into its task list, in deterministic grid order."""
        reference = self.measure_ref()
        fingerprint = measure_fingerprint(self.measure)
        specs: List[TaskSpec] = []
        for index, (params, seed) in enumerate(
            itertools.product(self.grid, self.seeds)
        ):
            specs.append(
                TaskSpec(
                    experiment=self.name,
                    measure_ref=reference,
                    params=dict(params),
                    seed=int(seed),
                    index=index,
                    measure_fingerprint=fingerprint,
                )
            )
        return specs

    def __len__(self) -> int:
        return len(self.grid) * len(self.seeds)


def parameter_grid(**axes: Iterable[Any]) -> List[Dict[str, Any]]:
    """Cartesian product of named parameter axes as a list of dicts.

    >>> parameter_grid(delta=[2, 3], levels=[4])
    [{'delta': 2, 'levels': 4}, {'delta': 3, 'levels': 4}]
    """
    names = sorted(axes)
    combos = itertools.product(*(list(axes[name]) for name in names))
    return [dict(zip(names, combo)) for combo in combos]
