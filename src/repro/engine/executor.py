"""Task execution: serial fallback and a sharded process-pool backend.

:func:`run_tasks` is the low-level primitive — give it tasks, get results
back *in task order* no matter which worker finished first.  With
``jobs == 1`` everything runs in-process (and may therefore use
non-importable measures such as lambdas); with ``jobs > 1`` tasks are
sharded across a :class:`concurrent.futures.ProcessPoolExecutor` in
contiguous chunks, each worker re-importing the measure function by its
``module:qualname`` reference.

:func:`run_experiment` is the high-level entry point every consumer
(CLI, ``scripts/run_experiments.py``, benchmarks, ``analysis.sweep``)
shares: expand the spec, answer what the cache already knows, execute
only the missing tasks, persist fresh results, and return a merged
:class:`~repro.engine.results.ResultSet` in deterministic order.

Failures are never swallowed: one crashing task aborts the run (after
letting already-submitted tasks drain into the cache), because a silently
dropped grid point would bias the reported scaling.  Completed work stays
cached, so fixing the bug and re-running with ``resume=True`` continues
where the sweep stopped.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.engine.cache import ResultCache
from repro.engine.progress import ProgressCallback
from repro.engine.results import ResultSet, TaskResult, result_from_record
from repro.engine.spec import (
    ExperimentSpec,
    MeasureFn,
    TaskSpec,
    resolve_measure,
)


class TaskError(RuntimeError):
    """A measure raised; names the exact task that failed.

    ``cause`` is the original exception in-process, or its ``repr`` when
    the failure happened on a pool worker (tracebacks do not reliably
    survive pickling back across the pool).
    """

    def __init__(self, description: str, cause: object) -> None:
        super().__init__(f"task {description} failed: {cause}")
        self.description = description
        self.cause = cause


def default_jobs() -> int:
    """Worker count for ``--jobs 0`` / "use the whole machine" requests."""
    return max(1, os.cpu_count() or 1)


def execute_task(task: TaskSpec, measure: Optional[MeasureFn] = None) -> TaskResult:
    """Run one task in the current process and time it.

    ``measure`` short-circuits reference resolution for in-process callers
    holding a non-importable callable (the serial path of ``run_sweep``).

    With observability enabled the measure runs under a captured
    ``engine.task`` span and the events ride back on the result's
    ``trace_events`` — the only channel that reliably crosses the process
    pool (workers must not write to a sink file the parent also holds).
    The parent re-emits them into its own sink in ``run_experiment``.
    """
    fn = measure if measure is not None else resolve_measure(task.measure_ref)
    trace_events: List[Dict[str, object]] = []
    start = time.perf_counter()
    if obs.enabled():
        with obs.capture() as mem:
            with obs.span(
                "engine.task",
                experiment=task.experiment,
                seed=task.seed,
                params=dict(task.params),
            ):
                values = dict(fn(seed=task.seed, **dict(task.params)))
        trace_events = mem.events
    else:
        values = dict(fn(seed=task.seed, **dict(task.params)))
    elapsed = time.perf_counter() - start
    return TaskResult(
        experiment=task.experiment,
        params=dict(task.params),
        seed=task.seed,
        values=values,
        elapsed_seconds=elapsed,
        task_hash=task.task_hash(),
        cached=False,
        index=task.index,
        trace_events=trace_events,
    )


#: Worker-side failure record: (failing task's description, repr of the cause).
ChunkFailure = Tuple[str, str]


def _execute_chunk(
    tasks: Sequence[TaskSpec],
) -> Tuple[List[Tuple[int, TaskResult]], Optional[ChunkFailure]]:
    """Worker-side entry point: run a contiguous shard of tasks.

    Returns the ``(index, result)`` pairs that completed plus an optional
    failure record, instead of raising: results finished before a crash
    must reach the parent (and its cache), and the failure must name the
    *actual* failing task, neither of which an exception flying across
    the pool preserves.
    """
    completed: List[Tuple[int, TaskResult]] = []
    for task in tasks:
        try:
            completed.append((task.index, execute_task(task)))
        except Exception as exc:  # noqa: BLE001 - reported via the failure record
            return completed, (task.describe(), repr(exc))
    return completed, None


def _chunk_size(num_tasks: int, jobs: int) -> int:
    """Contiguous shard size: several chunks per worker to balance stragglers."""
    return max(1, num_tasks // (jobs * 4))


def run_tasks(
    tasks: Sequence[TaskSpec],
    *,
    jobs: int = 1,
    measure: Optional[MeasureFn] = None,
    progress: Optional[ProgressCallback] = None,
) -> List[TaskResult]:
    """Execute ``tasks`` and return results in task order.

    ``jobs == 1`` (or a single task) runs serially in-process; larger
    values shard across a process pool.  Parallel execution requires the
    tasks' measure references to be importable — checked up front so the
    failure is a clear message, not a pickling traceback.
    """
    if jobs < 1:
        jobs = default_jobs()
    if not tasks:
        return []

    if jobs == 1 or len(tasks) == 1:
        results: List[TaskResult] = []
        for task in tasks:
            try:
                result = execute_task(task, measure)
            except Exception as exc:  # noqa: BLE001 - re-raised with context
                raise TaskError(task.describe(), exc) from exc
            results.append(result)
            if progress is not None:
                progress(result)
        return results

    # Fail fast (and helpfully) if the measure cannot be re-imported on a
    # worker; also warms the import so the first chunk is not slower.
    for reference in {task.measure_ref for task in tasks}:
        resolve_measure(reference)

    size = _chunk_size(len(tasks), jobs)
    chunks = [tasks[i : i + size] for i in range(0, len(tasks), size)]
    by_index: Dict[int, TaskResult] = {}
    first_error: Optional[TaskError] = None
    with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
        future_to_chunk = {
            pool.submit(_execute_chunk, chunk): chunk for chunk in chunks
        }
        for future in concurrent.futures.as_completed(future_to_chunk):
            chunk = future_to_chunk[future]
            try:
                completed, failure = future.result()
            except Exception as exc:  # noqa: BLE001 - pool-level failure
                # Not a measure crash (those come back as failure records):
                # the pool itself broke, e.g. an unpicklable payload or a
                # killed worker.  Attribute it to the chunk, not one task.
                if first_error is None:
                    first_error = TaskError(
                        f"chunk starting at {chunk[0].describe()}", exc
                    )
                    for pending in future_to_chunk:
                        pending.cancel()
                continue
            # Results that finished before any crash still count (and are
            # cached via ``progress``), so a fixed-up re-run resumes them.
            for index, result in completed:
                by_index[index] = result
                if progress is not None:
                    progress(result)
            if failure is not None and first_error is None:
                first_error = TaskError(*failure)
                for pending in future_to_chunk:
                    pending.cancel()
    if first_error is not None:
        raise first_error
    return [by_index[task.index] for task in tasks]


def run_experiment(
    spec: ExperimentSpec,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    resume: bool = True,
    progress: Optional[ProgressCallback] = None,
) -> ResultSet:
    """Expand ``spec``, execute what the cache does not answer, merge.

    With a ``cache`` and ``resume=True``, tasks whose content hash is
    already stored are restored instead of executed (their results are
    reported through ``progress`` with ``cached=True``).  Fresh results
    are appended to the cache as they complete, so an interrupted sweep
    resumes from the last finished task.  ``resume=False`` ignores (and
    re-executes over) any existing entries.

    The returned :class:`ResultSet` is always in deterministic task order
    — identical for serial and parallel runs of the same spec.
    """
    tasks = spec.tasks()
    cached_records = cache.load() if (cache is not None and resume) else {}

    restored: List[TaskResult] = []
    pending: List[TaskSpec] = []
    for task in tasks:
        record = cached_records.get(task.task_hash())
        if record is not None:
            result = result_from_record(
                record, experiment=task.experiment, index=task.index
            )
            restored.append(result)
            if progress is not None:
                progress(result)
        else:
            pending.append(task)

    measure = spec.measure_fn() if callable(spec.measure) else None

    def _record_and_report(result: TaskResult) -> None:
        if cache is not None:
            cache.append(result.to_record())
        if result.trace_events:
            # Fresh results carry their captured task events (possibly
            # from a pool worker); forward them into the parent's sink so
            # a single JSONL trace covers the whole sweep.  Cache-restored
            # results are not re-emitted — their work did not happen in
            # this run.
            sink = obs.current_sink()
            if sink is not None:
                for event in result.trace_events:
                    sink.emit(event)
        if progress is not None:
            progress(result)

    executed = run_tasks(
        pending, jobs=jobs, measure=measure, progress=_record_and_report
    )

    result_set = ResultSet(name=spec.name, results=restored + executed)
    result_set.sort()
    return result_set
