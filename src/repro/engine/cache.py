"""On-disk result cache keyed by task content hash.

The store is a single append-only JSON-lines file (``results.jsonl``)
inside the cache directory.  Append-only makes interrupted sweeps safe to
resume: every completed task is flushed as one line, a crash at worst
truncates the final line (which :meth:`ResultCache.load` skips), and a
re-run executes only the tasks whose hashes are not yet present.

The key is :meth:`repro.engine.spec.TaskSpec.task_hash`, i.e. a digest of
``(measure reference, parameters, seed)`` — changing any of those yields a
cache miss, while renaming an experiment or reordering its grid does not.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

RESULTS_FILENAME = "results.jsonl"


class ResultCache:
    """JSON-lines store of task results under ``directory``."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.path = self.directory / RESULTS_FILENAME

    def load(self) -> Dict[str, Dict[str, Any]]:
        """All cached records as ``{task_hash: record}`` (last write wins).

        Corrupt lines — typically a partial final line after an interrupt —
        are skipped rather than failing the whole resume.
        """
        records: Dict[str, Dict[str, Any]] = {}
        if not self.path.exists():
            return records
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                task_hash = record.get("task_hash")
                if isinstance(task_hash, str) and "values" in record:
                    records[task_hash] = record
        return records

    def append(self, record: Mapping[str, Any]) -> None:
        """Persist one completed task, flushed immediately for resumability."""
        self.directory.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def __len__(self) -> int:
        return len(self.load())

    def clear(self) -> None:
        """Drop the store, e.g. before a ``--no-resume`` full recompute."""
        if self.path.exists():
            self.path.unlink()


def open_cache(directory: Optional[Union[str, Path]]) -> Optional[ResultCache]:
    """Convenience: ``None`` stays ``None``, a path becomes a cache."""
    if directory is None:
        return None
    return ResultCache(directory)
