"""Importable measure functions for the paper's experiments (E1–E10).

Each function takes ``seed=...`` plus grid parameters, builds its scenario
from :mod:`repro.workloads.scenarios`, runs an algorithm, and returns a
flat JSON-serialisable mapping of metrics.  Because they are top-level
named functions, the engine can reference them as ``module:qualname``
strings, re-import them inside pool workers, and hash their identity into
task content hashes.

These are the shared building blocks of ``scripts/run_experiments.py``,
``python -m repro experiments``, and the engine-driven benchmarks — one
definition of "what E1 measures", three consumers.

Measures whose algorithms have compact fast paths (sequential flips,
best-response dynamics, greedy assignment) run through them automatically
via :mod:`repro.dispatch`; set ``REPRO_BACKEND=dict`` to sweep the
reference paths instead when debugging.
"""

from __future__ import annotations

import math
from typing import Any, Dict

import networkx as nx

from repro.core.assignment import (
    approximation_ratio,
    best_response_dynamics,
    greedy_assignment,
    maximal_matching_via_bounded_assignment,
    optimal_cost,
    run_bounded_stable_assignment,
    run_stable_assignment,
    verify_maximal_matching,
)
from repro.core.orientation import (
    OrientationProblem,
    run_stable_orientation,
    sequential_flip_algorithm,
    synchronous_repair_orientation,
    theoretical_round_bound,
)
from repro.core.token_dropping import (
    greedy_token_dropping,
    run_proposal_algorithm,
    run_three_level_algorithm,
)
from repro.graphs.validation import check_perfect_dary_tree, graph_girth, is_regular
from repro.lower_bounds import (
    height2_matching_instance,
    lemma61_violations,
    lemma62_witness,
    matching_from_height2_solution,
    theorem63_instance_pair,
    views_isomorphic,
)
from repro.workloads import (
    bounded_degree_token_dropping,
    datacenter_assignment,
    hard_matching_bipartite,
    random_token_dropping,
    regular_orientation,
    uniform_assignment,
)


# ----------------------------------------------------------------------
# E10 — best-response dynamics at scale (compact fast path)
# ----------------------------------------------------------------------
def best_response_quality(
    *, seed: int, skew: float, jobs: int = 2000, servers: int = 400, replicas: int = 3
) -> Dict[str, Any]:
    """E10: best-response dynamics vs. greedy on compact datacenter workloads.

    Builds the instance in compact CSR form and runs both algorithms
    through the fast-path kernels, so this measure stays cheap at sizes
    where the dict reference paths would dominate a sweep.
    """
    graph = datacenter_assignment(
        num_jobs=jobs,
        num_servers=servers,
        replicas=replicas,
        popularity_skew=skew,
        seed=seed,
        compact=True,
    )
    assignment, stats = best_response_dynamics(graph, policy="first")
    greedy = greedy_assignment(graph, order="sorted")
    br_cost = assignment.semi_matching_cost()
    greedy_cost = greedy.semi_matching_cost()
    return {
        "skew": skew,
        "jobs": jobs,
        "servers": servers,
        "moves": stats.moves,
        "initial_potential": stats.initial_potential,
        "final_potential": stats.final_potential,
        "stable": assignment.is_stable(),
        "best_response_cost": br_cost,
        "greedy_cost": greedy_cost,
        "greedy_overhead": greedy_cost / br_cost if br_cost else 1.0,
        "max_load": assignment.max_load(),
        "greedy_max_load": greedy.max_load(),
    }


# ----------------------------------------------------------------------
# E1 / E3 — token dropping round complexity (Theorems 4.1, 4.7)
# ----------------------------------------------------------------------
def proposal_rounds_vs_delta(
    *, seed: int, delta: int, levels: int = 6
) -> Dict[str, Any]:
    """E1: proposal-algorithm game rounds on a Δ-capped layered game."""
    instance = bounded_degree_token_dropping(num_levels=levels, degree=delta, seed=seed)
    solution = run_proposal_algorithm(instance)
    solution.validate(instance).raise_if_invalid()
    bound = instance.theoretical_round_bound()
    return {
        "delta": instance.max_degree,
        "height": instance.height,
        "tokens": instance.num_tokens,
        "game_rounds": solution.game_rounds,
        "communication_rounds": solution.communication_rounds,
        "bound": bound,
        "bound_ratio": solution.game_rounds / bound,
    }


def proposal_rounds_vs_height(
    *,
    seed: int,
    height: int,
    width: int = 6,
    edge_probability: float = 0.5,
    token_fraction: float = 0.6,
    max_degree: int = 6,
) -> Dict[str, Any]:
    """E1: proposal-algorithm game rounds as the height L grows (fixed Δ)."""
    instance = random_token_dropping(
        num_levels=height + 1,
        width=width,
        edge_probability=edge_probability,
        token_fraction=token_fraction,
        max_degree=max_degree,
        seed=seed,
    )
    solution = run_proposal_algorithm(instance)
    solution.validate(instance).raise_if_invalid()
    return {
        "delta": instance.max_degree,
        "height": instance.height,
        "game_rounds": solution.game_rounds,
        "bound": instance.theoretical_round_bound(),
    }


def three_level_vs_generic(*, seed: int, delta: int) -> Dict[str, Any]:
    """E3: Theorem 4.7's O(Δ) algorithm vs. the generic one on 3-level games."""
    instance = bounded_degree_token_dropping(num_levels=3, degree=delta, seed=seed)
    fast = run_three_level_algorithm(instance)
    fast.validate(instance).raise_if_invalid()
    generic = run_proposal_algorithm(instance)
    return {
        "delta": instance.max_degree,
        "tokens": instance.num_tokens,
        "three_level_rounds": fast.game_rounds,
        "generic_rounds": generic.game_rounds,
        "speedup": (generic.game_rounds or 1) / max(fast.game_rounds, 1),
        "linear_bound": 8 * (instance.max_degree + 1) + 8,
    }


def greedy_order_ablation(
    *,
    seed: int,
    order: str,
    levels: int = 7,
    width: int = 8,
    edge_probability: float = 0.4,
    token_fraction: float = 0.6,
) -> Dict[str, Any]:
    """E1 ablation: does centralized move-selection order change total moves?"""
    instance = random_token_dropping(
        num_levels=levels,
        width=width,
        edge_probability=edge_probability,
        token_fraction=token_fraction,
        seed=seed,
    )
    solution = greedy_token_dropping(instance, order=order, seed=1)
    solution.validate(instance).raise_if_invalid()
    return {
        "order": order,
        "total_moves": solution.total_moves(),
        "tokens": instance.num_tokens,
    }


# ----------------------------------------------------------------------
# E2 — reductions from bipartite maximal matching (Theorems 4.6 / 7.4)
# ----------------------------------------------------------------------
def matching_reductions(*, seed: int, side: int, degree: int = 4) -> Dict[str, Any]:
    """E2: both maximal-matching reductions on a hard bipartite instance."""
    graph = hard_matching_bipartite(side=side, degree=degree, seed=seed)
    instance = height2_matching_instance(graph)
    solution = run_proposal_algorithm(instance)
    matching = matching_from_height2_solution(graph, solution)
    bounded_matching, bounded_result = maximal_matching_via_bounded_assignment(
        graph, seed=0
    )
    return {
        "side": side,
        "td_game_rounds": solution.game_rounds,
        "td_matching_size": len(matching),
        "td_maximal": not verify_maximal_matching(graph, matching),
        "ba_phases": bounded_result.phases,
        "ba_matching_size": len(bounded_matching),
        "ba_maximal": not verify_maximal_matching(graph, bounded_matching),
    }


# ----------------------------------------------------------------------
# E4 / E9 — stable orientation (Theorem 5.1) and baselines
# ----------------------------------------------------------------------
def orientation_vs_baselines(
    *, seed: int, delta: int, nodes_per_delta: int = 12
) -> Dict[str, Any]:
    """E4/E9: phase algorithm, repair baseline, sequential flips on Δ-regular."""
    problem = regular_orientation(
        degree=delta, num_nodes=nodes_per_delta * delta, seed=seed
    )
    result = run_stable_orientation(problem)
    _, repair = synchronous_repair_orientation(problem, seed=seed)
    _, seq = sequential_flip_algorithm(problem, policy="random", seed=seed)
    bound = theoretical_round_bound(problem)
    return {
        "delta": delta,
        "edges": problem.num_edges(),
        "phases": result.phases,
        "game_rounds": result.game_rounds,
        "round_bound": bound,
        "bound_ratio": result.game_rounds / bound,
        "stable": result.stable,
        "repair_rounds": repair.communication_rounds,
        "sequential_flips": seq.flips,
    }


# ----------------------------------------------------------------------
# E5 — the lower-bound instance pair (Theorem 6.3, Lemmas 6.1–6.2)
# ----------------------------------------------------------------------
def lower_bound_pair(*, seed: int, delta: int) -> Dict[str, Any]:
    """E5: verify the lemmas' premises and witnesses on the instance pair."""
    regular, tree, root = theorem63_instance_pair(delta, seed=seed)
    if not is_regular(regular, delta):
        raise AssertionError(f"theorem63 regular instance is not {delta}-regular")
    depth = check_perfect_dary_tree(tree, delta, root)
    girth = graph_girth(regular, cap=10)
    reg_orientation = run_stable_orientation(
        OrientationProblem.from_networkx(regular)
    ).orientation
    tree_orientation = run_stable_orientation(
        OrientationProblem.from_networkx(tree)
    ).orientation
    witness = lemma62_witness(reg_orientation, delta)
    lemma61_ok = lemma61_violations(tree, tree_orientation) == []
    radius = max(1, (int(girth) - 1) // 2 - 1) if math.isfinite(girth) else 1
    depths = nx.single_source_shortest_path_length(tree, root)
    interior = next(
        n
        for n, d in depths.items()
        if radius <= d <= depth - radius and tree.degree(n) == delta
    )
    indist = views_isomorphic(
        regular, next(iter(regular.nodes())), tree, interior, radius
    )
    return {
        "delta": delta,
        "regular_nodes": regular.number_of_nodes(),
        "girth": girth if math.isfinite(girth) else -1,
        "tree_nodes": tree.number_of_nodes(),
        "witness_load": reg_orientation.load(witness),
        "witness_required": math.ceil(delta / 2),
        "lemma61_holds": lemma61_ok,
        "view_radius": radius,
        "views_isomorphic": indist,
    }


# ----------------------------------------------------------------------
# E6 / E7 — stable assignment and the 2-bounded relaxation (Thms 7.3 / 7.5)
# ----------------------------------------------------------------------
def assignment_vs_bounded(
    *, seed: int, replicas: int, jobs: int = 120, servers: int = 24
) -> Dict[str, Any]:
    """E6/E7: general vs. 2-bounded stable assignment on uniform workloads."""
    graph = uniform_assignment(
        num_jobs=jobs, num_servers=servers, replicas=replicas, seed=seed
    )
    general = run_stable_assignment(graph, seed=seed)
    bounded = run_bounded_stable_assignment(graph, k=2, seed=seed)
    return {
        "replicas": replicas,
        "general_phases": general.phases,
        "general_rounds": general.game_rounds,
        "bounded_phases": bounded.phases,
        "bounded_rounds": bounded.game_rounds,
        "general_stable": general.stable,
        "bounded_stable": bounded.stable,
    }


# ----------------------------------------------------------------------
# E8 — semi-matching approximation quality (§1.3)
# ----------------------------------------------------------------------
def semi_matching_quality(
    *, seed: int, skew: float, jobs: int = 120, servers: int = 24, replicas: int = 3
) -> Dict[str, Any]:
    """E8: stable-vs-optimal and greedy-vs-optimal semi-matching cost ratios."""
    if skew == 0.0:
        graph = uniform_assignment(
            num_jobs=jobs, num_servers=servers, replicas=replicas, seed=seed
        )
    else:
        graph = datacenter_assignment(
            num_jobs=jobs,
            num_servers=servers,
            replicas=replicas,
            popularity_skew=skew,
            seed=seed,
        )
    optimum = optimal_cost(graph)
    stable = run_stable_assignment(graph, seed=seed)
    greedy = greedy_assignment(graph, order="random", seed=seed)
    return {
        "skew": skew,
        "optimal_cost": optimum,
        "stable_cost": stable.assignment.semi_matching_cost(),
        "stable_ratio": approximation_ratio(stable.assignment, optimum),
        "greedy_ratio": approximation_ratio(greedy, optimum),
        "stable": stable.stable,
    }
