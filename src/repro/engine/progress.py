"""Progress reporting for engine runs.

The executor calls a plain ``Callable[[TaskResult], None]`` after every
task, so anything — a logger, a list's ``append`` — can observe progress.
:class:`ProgressReporter` is the standard implementation: a one-line-per-
task counter on stderr that distinguishes cache hits from fresh work and
prints a final summary (how many tasks ran vs. were restored), which is
how a ``--resume`` run visibly reports "0 executed".
"""

from __future__ import annotations

import math
import sys
import time
from typing import Callable, Optional, TextIO

from repro.engine.results import TaskResult

ProgressCallback = Callable[[TaskResult], None]


class ProgressReporter:
    """Counts task completions and prints ``[done/total]`` lines."""

    def __init__(
        self,
        total: int,
        *,
        label: str = "",
        stream: Optional[TextIO] = None,
        enabled: bool = True,
    ) -> None:
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self.done = 0
        self.executed = 0
        self.cached = 0
        self._started = time.perf_counter()

    def __call__(self, result: TaskResult) -> None:
        self.done += 1
        if result.cached:
            self.cached += 1
        else:
            self.executed += 1
        if self.enabled:
            origin = "cache" if result.cached else f"{result.elapsed_seconds:.3f}s"
            prefix = f"{self.label}: " if self.label else ""
            self._emit(
                f"{prefix}[{self.done}/{self.total}] "
                f"{result.experiment} {self._params(result)} ({origin})"
                f"{self._pace()}"
            )

    @staticmethod
    def _params(result: TaskResult) -> str:
        pairs = " ".join(f"{k}={v}" for k, v in sorted(result.params.items()))
        return f"{pairs} seed={result.seed}".strip()

    def _pace(self) -> str:
        """`` [rate/s eta Ns]`` suffix once a rate is measurable.

        Uses completions (cache hits included — they consume grid points
        just the same) over wall time; empty during the first instants of
        a run, where a rate would be noise.
        """
        elapsed = time.perf_counter() - self._started
        # elapsed can be 0 exactly (first task under the timer resolution)
        # or denormal-tiny (rate overflows to inf); both make the suffix
        # meaningless, so skip it rather than print inf/nan.
        if self.done == 0 or elapsed <= 0:
            return ""
        rate = self.done / elapsed
        remaining = max(self.total - self.done, 0)
        if rate <= 0 or not math.isfinite(rate):
            return ""
        return f" [{rate:.1f}/s eta {self._format_eta(remaining / rate)}]"

    @staticmethod
    def _format_eta(seconds: float) -> str:
        if not math.isfinite(seconds):
            return "?"
        if seconds >= 3600:
            return f"{seconds / 3600:.1f}h"
        if seconds >= 60:
            return f"{seconds / 60:.1f}m"
        return f"{seconds:.0f}s"

    def summary(self) -> str:
        elapsed = time.perf_counter() - self._started
        rate = self.done / elapsed if elapsed > 0 and self.done else 0.0
        if not math.isfinite(rate):
            rate = 0.0
        # The "(N executed, M from cache)" clause is load-bearing: CI's
        # resume smoke greps for it verbatim.  Additions go after it.
        return (
            f"{self.label or 'sweep'}: {self.done} tasks "
            f"({self.executed} executed, {self.cached} from cache) "
            f"in {elapsed:.2f}s ({rate:.1f} tasks/s)"
        )

    def close(self) -> None:
        if self.enabled:
            self._emit(self.summary())

    def _emit(self, message: str) -> None:
        print(message, file=self.stream)
        try:
            self.stream.flush()
        except (AttributeError, ValueError):
            pass


def silent_progress(_: TaskResult) -> None:
    """A no-op callback for callers that want no reporting."""
