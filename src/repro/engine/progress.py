"""Progress reporting for engine runs.

The executor calls a plain ``Callable[[TaskResult], None]`` after every
task, so anything — a logger, a list's ``append`` — can observe progress.
:class:`ProgressReporter` is the standard implementation: a one-line-per-
task counter on stderr that distinguishes cache hits from fresh work and
prints a final summary (how many tasks ran vs. were restored), which is
how a ``--resume`` run visibly reports "0 executed".
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional, TextIO

from repro.engine.results import TaskResult

ProgressCallback = Callable[[TaskResult], None]


class ProgressReporter:
    """Counts task completions and prints ``[done/total]`` lines."""

    def __init__(
        self,
        total: int,
        *,
        label: str = "",
        stream: Optional[TextIO] = None,
        enabled: bool = True,
    ) -> None:
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self.done = 0
        self.executed = 0
        self.cached = 0
        self._started = time.perf_counter()

    def __call__(self, result: TaskResult) -> None:
        self.done += 1
        if result.cached:
            self.cached += 1
        else:
            self.executed += 1
        if self.enabled:
            origin = "cache" if result.cached else f"{result.elapsed_seconds:.3f}s"
            prefix = f"{self.label}: " if self.label else ""
            self._emit(
                f"{prefix}[{self.done}/{self.total}] "
                f"{result.experiment} {self._params(result)} ({origin})"
            )

    @staticmethod
    def _params(result: TaskResult) -> str:
        pairs = " ".join(f"{k}={v}" for k, v in sorted(result.params.items()))
        return f"{pairs} seed={result.seed}".strip()

    def summary(self) -> str:
        elapsed = time.perf_counter() - self._started
        return (
            f"{self.label or 'sweep'}: {self.done} tasks "
            f"({self.executed} executed, {self.cached} from cache) "
            f"in {elapsed:.2f}s"
        )

    def close(self) -> None:
        if self.enabled:
            self._emit(self.summary())

    def _emit(self, message: str) -> None:
        print(message, file=self.stream)
        try:
            self.stream.flush()
        except (AttributeError, ValueError):
            pass


def silent_progress(_: TaskResult) -> None:
    """A no-op callback for callers that want no reporting."""
