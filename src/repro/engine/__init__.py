"""Parallel experiment engine: sharded, cached, resumable sweeps.

The engine separates experiment *specification* from *execution*:

1. **Specify** — :class:`ExperimentSpec` names a measure function (an
   importable callable returning a metrics mapping), a parameter grid
   (:func:`parameter_grid`), and seeds.  Expansion yields
   :class:`TaskSpec` objects, each with a deterministic content hash over
   ``(measure, params, seed)``.
2. **Execute** — :func:`run_experiment` shards pending tasks across a
   process pool (``jobs > 1``) or runs them in-process (``jobs == 1``),
   always returning results in deterministic task order.
3. **Cache** — with a :class:`ResultCache`, completed tasks are appended
   to an on-disk JSON-lines store as they finish; a re-run (``resume``)
   executes only tasks whose hashes are missing, so interrupted sweeps
   continue where they stopped and unchanged sweeps cost nothing.
4. **Analyze** — :class:`ResultSet` feeds the existing analysis stack
   (``repro.analysis``) via ``to_sweep_result()``; nothing downstream
   needs to know how results were produced.

Typical use::

    from repro.engine import ExperimentSpec, ResultCache, parameter_grid, run_experiment
    from repro.engine import library

    spec = ExperimentSpec(
        name="E1",
        measure=library.proposal_rounds_vs_delta,
        grid=parameter_grid(delta=[2, 4, 6, 8]),
        seeds=(0, 1, 2),
    )
    results = run_experiment(spec, jobs=4, cache=ResultCache(".sweep-cache"))
    xs, ys = results.series("delta", "game_rounds")

New execution backends (threads, a job queue, a cluster) only need to
implement the :func:`run_tasks` contract: tasks in, ordered results out.
"""

from repro.engine import library
from repro.engine.cache import ResultCache, open_cache
from repro.engine.executor import (
    TaskError,
    default_jobs,
    execute_task,
    run_experiment,
    run_tasks,
)
from repro.engine.progress import ProgressReporter, silent_progress
from repro.engine.results import ResultSet, TaskResult, result_from_record
from repro.engine.spec import (
    ExperimentSpec,
    TaskSpec,
    canonical_json,
    measure_fingerprint,
    measure_reference,
    parameter_grid,
    resolve_measure,
)

__all__ = [
    "ExperimentSpec",
    "library",
    "ProgressReporter",
    "ResultCache",
    "ResultSet",
    "TaskError",
    "TaskResult",
    "TaskSpec",
    "canonical_json",
    "default_jobs",
    "execute_task",
    "measure_fingerprint",
    "measure_reference",
    "open_cache",
    "parameter_grid",
    "resolve_measure",
    "result_from_record",
    "run_experiment",
    "run_tasks",
    "silent_progress",
]
