"""``repro.obs`` — zero-overhead tracing and metrics for the hot paths.

Every claim this reproduction makes is quantitative — round complexities,
kernel speedups, incremental-vs-scratch churn ratios — and this module is
the substrate that makes *where* the time and work go visible: counters,
gauges, histogram samples, and span-based tracing with a pluggable sink
API.

The contract
------------
Observability is **off by default** and must cost nearly nothing when
off.  The global state is a single module-level sink reference; every
entry point checks it first:

* :func:`span` returns one shared no-op context manager when no sink is
  installed (no allocation beyond the call's keyword dict, no clock
  read, no stack bookkeeping);
* :func:`add` / :func:`gauge` / :func:`observe` return immediately;
* hot loops that would pay even a per-iteration function call can guard
  with ``if obs.enabled():`` and skip their instrumentation block
  entirely (the pattern used by the LOCAL round runner and the repair
  loop).

``scripts/check_obs_overhead.py`` gates this contract in CI: the
disabled-sink orientation benchmark median must stay within a few
percent of a baseline with the instrumentation stubbed out.

Sinks
-----
* ``None`` (the default) — disabled, near-zero overhead;
* :class:`~repro.obs.sinks.MemorySink` — collects events in a list, for
  tests and in-process breakdowns (the benchmark suites use it to record
  per-phase medians);
* :class:`~repro.obs.sinks.JsonlSink` — appends one JSON object per
  event to a file for offline analysis with ``scripts/report_trace.py``.

Setting the ``REPRO_TRACE`` environment variable to a path installs a
:class:`JsonlSink` at import time (and, because the variable is
inherited, in every engine worker process too).

Event model
-----------
Every event is a flat JSON-serialisable dict with a ``type``:

* ``span`` — ``{"type", "name", "id", "parent", "start", "dur", "pid",
  "attrs"}``.  Spans nest: ``id`` is unique per process, ``parent`` is
  the id of the enclosing open span (or ``None`` for a root), ``start``
  is a ``perf_counter`` timestamp (process-relative — meaningful for
  ordering and durations, not wall-clock), ``dur`` is seconds.
* ``counter`` / ``gauge`` / ``hist`` — ``{"type", "name", "value",
  "pid"}`` plus optional ``attrs``.  Counters accumulate by summation,
  gauges by last-write-wins, histogram samples are kept raw so the
  reader computes percentiles (p50/p95) offline.

Usage
-----
>>> from repro import obs
>>> from repro.obs.sinks import MemorySink
>>> sink = obs.configure(MemorySink())
>>> with obs.span("repair", graph_n=100) as sp:
...     obs.add("repair.iterations")
...     sp.set(flips=3)
>>> sink.spans("repair")[0]["attrs"]["flips"]
3
>>> obs.disable()
"""

from __future__ import annotations

import itertools
import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.sinks import JsonlSink, MemorySink, Sink

__all__ = [
    "JsonlSink",
    "MemorySink",
    "Sink",
    "TRACE_ENV_VAR",
    "add",
    "after_fork_in_child",
    "capture",
    "configure",
    "configure_from_env",
    "current_sink",
    "disable",
    "enabled",
    "gauge",
    "observe",
    "span",
    "use",
]

#: Environment variable naming a JSONL trace file to record into.
TRACE_ENV_VAR = "REPRO_TRACE"

#: The installed sink; ``None`` means observability is disabled.
_sink: Optional[Sink] = None

#: Stack of currently open spans (per process; the simulator, kernels,
#: and engine workers are all single-threaded).
_stack: List["_Span"] = []

#: Process-unique span ids.  Restarted per process; merged traces are
#: disambiguated by the ``pid`` field on every event.
_ids = itertools.count(1)


# ----------------------------------------------------------------------
# Global sink management
# ----------------------------------------------------------------------
def enabled() -> bool:
    """True when a sink is installed (the hot-loop guard)."""
    return _sink is not None


def current_sink() -> Optional[Sink]:
    """The installed sink, or ``None`` when disabled."""
    return _sink


def configure(sink: Sink) -> Sink:
    """Install ``sink`` as the global event destination; returns it."""
    global _sink
    _sink = sink
    return sink


def disable() -> None:
    """Remove the installed sink (closing it) and drop the span stack.

    The stack reset makes ``disable()`` a safe recovery point even if an
    exception escaped an instrumented region without unwinding its span.
    """
    global _sink
    sink, _sink = _sink, None
    _stack.clear()
    if sink is not None:
        sink.close()


def configure_from_env(environ=os.environ) -> Optional[Sink]:
    """Install a :class:`JsonlSink` when ``REPRO_TRACE`` names a path.

    Called once at import, so ``REPRO_TRACE=trace.jsonl python ...``
    traces any entry point — including engine worker processes, which
    inherit the variable but capture per-task events in memory instead
    (see :func:`repro.engine.executor.execute_task`).
    """
    path = environ.get(TRACE_ENV_VAR)
    if path:
        return configure(JsonlSink(path))
    return _sink


def after_fork_in_child() -> None:
    """Reset inherited per-process obs state in a freshly forked worker.

    Worker initializers (the :mod:`repro.parallel` pool) call this before
    any instrumented code runs:

    * the span stack copied from the parent is dropped — those spans
      close in the parent's process, and linking worker spans under them
      would mis-attribute self-time across processes;
    * span ids restart (events are disambiguated by ``pid`` anyway);
    * a sink with a ``reopen_after_fork`` method (:class:`JsonlSink`)
      rebinds to this pid *before* the first span, so the worker never
      emits — or closes — through the parent's inherited file handle.
    """
    global _ids
    _stack.clear()
    _ids = itertools.count(1)
    reopen = getattr(_sink, "reopen_after_fork", None)
    if reopen is not None:
        reopen()


@contextmanager
def use(sink: Optional[Sink]) -> Iterator[Optional[Sink]]:
    """Temporarily swap the global sink (``None`` disables) and restore."""
    global _sink
    previous = _sink
    _sink = sink
    try:
        yield sink
    finally:
        _sink = previous


@contextmanager
def capture() -> Iterator[MemorySink]:
    """Record events into a fresh :class:`MemorySink` for the block.

    The previous sink is fully swapped out (events are *captured*, not
    teed) and the span stack is isolated, so captured spans are rooted
    even when an outer span is open — the engine executor uses this to
    attach one task's events to its result without double-writing them
    to the parent's sink.
    """
    global _sink
    previous_sink = _sink
    previous_stack = _stack[:]
    _sink = MemorySink()
    _stack.clear()
    try:
        yield _sink
    finally:
        _sink = previous_sink
        _stack.clear()
        _stack.extend(previous_stack)


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class _NullSpan:
    """The shared do-nothing span returned while observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


#: Singleton: ``span(...)`` with no sink always returns this instance.
NULL_SPAN = _NullSpan()


class _Span:
    """One live span: times the block, records nesting, emits on exit."""

    __slots__ = ("name", "attrs", "id", "parent", "_start")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.id = 0
        self.parent: Optional[int] = None
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self.id = next(_ids)
        self.parent = _stack[-1].id if _stack else None
        _stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter() - self._start
        # Pop robustly: an exception that skipped an inner span's exit
        # must not corrupt the nesting of everything that follows.
        if _stack and _stack[-1] is self:
            _stack.pop()
        else:  # pragma: no cover - defensive unwinding
            try:
                _stack.remove(self)
            except ValueError:
                pass
        sink = _sink
        if sink is not None:
            sink.emit(
                {
                    "type": "span",
                    "name": self.name,
                    "id": self.id,
                    "parent": self.parent,
                    "start": self._start,
                    "dur": dur,
                    "pid": os.getpid(),
                    "attrs": self.attrs,
                }
            )
        return False

    def set(self, **attrs: Any) -> "_Span":
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)
        return self


def span(name: str, **attrs: Any):
    """A context manager timing the enclosed block as a named span.

    With no sink installed this returns the shared :data:`NULL_SPAN`
    immediately; otherwise a :class:`_Span` that assigns itself an id,
    links to the enclosing open span, and emits one ``span`` event when
    the block exits.  ``attrs`` seed the span's attribute dict;
    ``sp.set(...)`` adds more from inside the block.
    """
    if _sink is None:
        return NULL_SPAN
    return _Span(name, attrs)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def _emit_metric(
    kind: str, name: str, value: Any, attrs: Dict[str, Any]
) -> None:
    event: Dict[str, Any] = {
        "type": kind,
        "name": name,
        "value": value,
        "pid": os.getpid(),
    }
    if attrs:
        event["attrs"] = attrs
    _sink.emit(event)  # type: ignore[union-attr]  # caller checked


def add(name: str, value: float = 1, **attrs: Any) -> None:
    """Increment counter ``name`` by ``value`` (sums at read time)."""
    if _sink is not None:
        _emit_metric("counter", name, value, attrs)


def gauge(name: str, value: Any, **attrs: Any) -> None:
    """Set gauge ``name`` to ``value`` (last write wins at read time)."""
    if _sink is not None:
        _emit_metric("gauge", name, value, attrs)


def observe(name: str, value: float, **attrs: Any) -> None:
    """Record one histogram sample for ``name`` (percentiles at read time)."""
    if _sink is not None:
        _emit_metric("hist", name, value, attrs)


# REPRO_TRACE=path.jsonl enables the JSONL sink for the whole process.
configure_from_env()
