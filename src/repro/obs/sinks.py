"""Event sinks for :mod:`repro.obs`.

A sink receives flat JSON-serialisable event dicts (see the event model
in :mod:`repro.obs`).  Three implementations cover the needs of the
repo:

* no sink at all (``repro.obs`` holds ``None``) — the disabled state;
* :class:`MemorySink` — an in-process list with small query helpers,
  used by tests and the benchmark phase-breakdown helpers;
* :class:`JsonlSink` — one JSON object per line appended to a file, the
  offline-analysis format consumed by ``scripts/report_trace.py``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional


class Sink:
    """Interface: ``emit`` one event dict; ``close`` releases resources."""

    def emit(self, event: Dict[str, Any]) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; safe to call more than once."""


class MemorySink(Sink):
    """Collects events into :attr:`events`, with query helpers for tests."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    # -- query helpers -------------------------------------------------
    def spans(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """Span events, optionally restricted to one span name."""
        return [
            e
            for e in self.events
            if e["type"] == "span" and (name is None or e["name"] == name)
        ]

    def counter_total(self, name: str) -> float:
        """Sum of all ``counter`` increments recorded under ``name``."""
        return sum(
            e["value"]
            for e in self.events
            if e["type"] == "counter" and e["name"] == name
        )

    def samples(self, name: str) -> List[float]:
        """Raw histogram samples recorded under ``name``, in order."""
        return [
            e["value"]
            for e in self.events
            if e["type"] == "hist" and e["name"] == name
        ]

    def gauge_value(self, name: str) -> Any:
        """Last ``gauge`` value recorded under ``name`` (None if never set)."""
        value = None
        for e in self.events:
            if e["type"] == "gauge" and e["name"] == name:
                value = e["value"]
        return value

    def clear(self) -> None:
        self.events.clear()


class JsonlSink(Sink):
    """Appends one JSON object per event to ``path``.

    The file is opened lazily on first emit and re-opened after a fork:
    each emit checks ``os.getpid()`` so a handle inherited by an engine
    worker process is never shared (two processes appending through one
    inherited file object would interleave partial lines).  In practice
    workers capture events in memory instead of writing here, but the
    guard makes the sink safe regardless of how it crosses a fork.

    Events are written with ``sort_keys`` and flushed per line so a
    trace is readable (and diffable) even from a crashed run.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._file = None
        self._pid: Optional[int] = None

    def emit(self, event: Dict[str, Any]) -> None:
        pid = os.getpid()
        if self._file is None or self._pid != pid:
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:  # pragma: no cover - inherited stale handle
                    pass
            self._file = open(self.path, "a", encoding="utf-8")
            self._pid = pid
        json.dump(event, self._file, sort_keys=True, default=str)
        self._file.write("\n")
        self._file.flush()

    def reopen_after_fork(self) -> None:
        """Rebind an inherited sink to this process, before the first span.

        A forked worker inherits the parent's open file *object*.  The
        lazy pid guard in :meth:`emit` would close it on first use — from
        the wrong process, mid-whatever the parent was doing — so worker
        initializers (:func:`repro.obs.after_fork_in_child`) call this
        first: the inherited handle is dropped without closing (it is the
        parent's to close) and a fresh per-pid append handle is opened
        eagerly, so even the worker's first span emits through its own
        descriptor.  O_APPEND plus one flushed ``write`` per event keeps
        concurrent lines from interleaving.
        """
        self._file = open(self.path, "a", encoding="utf-8")
        self._pid = os.getpid()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
            self._pid = None


def load_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL trace back into a list of event dicts.

    Skips blank lines; a truncated final line (crashed writer) raises
    ``json.JSONDecodeError`` so corruption is loud, not silent.
    """
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def replay(events: Iterable[Dict[str, Any]], sink: Sink) -> None:
    """Feed previously captured events into another sink."""
    for event in events:
        sink.emit(event)
