"""Backend dispatch: compact fast-path kernels vs. dict reference paths.

Several public entry points (``sequential_flip_algorithm``,
``best_response_dynamics``, ``greedy_assignment``, the token dropping
solvers, and the full stable-orientation pipeline —
``run_stable_orientation``, ``synchronous_repair_orientation``,
``run_bounded_stable_orientation``) have two implementations:

* the **dict reference path** — the original implementation over
  dict-of-Hashable structures, kept as the readable correctness oracle;
* the **compact fast path** — an int-array kernel over the CSR
  representations of :mod:`repro.graphs.compact` that reproduces the
  reference results exactly (asserted by the cross-validation suite).

A third name, ``compact-parallel``, selects the compact kernel with its
per-phase games distributed across a shared-memory worker pool
(:mod:`repro.parallel`) — bit-for-bit identical output again, just more
cores.  Only entry points that declare ``supports_parallel`` actually
fan out (currently ``run_stable_orientation``); everywhere else the name
quietly degrades to ``compact``, so ``REPRO_BACKEND=compact-parallel``
can be set process-wide without breaking the rest of the pipeline.

The dispatch rule
-----------------
1. An explicit ``backend=`` keyword on the call wins.
2. Otherwise the ``REPRO_BACKEND`` environment variable applies.
3. Otherwise (``auto``) each entry point's preferred backend is used —
   compact for iterative algorithms, dict for single-pass greedy on
   not-yet-interned inputs (see :func:`resolve_backend`).

``backend="compact"`` (or ``REPRO_BACKEND=compact``) forces the fast
path; ``backend="dict"`` forces the reference path — the debugging
escape hatch.  Unknown names raise :class:`BackendError`.
"""

from __future__ import annotations

import os
from typing import Optional

#: Recognised backend names, in documentation order.
BACKENDS = ("auto", "compact", "compact-parallel", "dict")

#: Environment variable consulted when no per-call backend is given.
BACKEND_ENV_VAR = "REPRO_BACKEND"


class BackendError(ValueError):
    """Raised for unrecognised backend names."""


def resolve_backend(
    backend: Optional[str] = None,
    *,
    auto: str = "compact",
    supports_parallel: bool = False,
) -> str:
    """Resolve a per-call backend choice to a concrete backend name.

    Parameters
    ----------
    backend:
        Per-call override (``"auto"``, ``"compact"``,
        ``"compact-parallel"``, ``"dict"`` or None to defer to the
        environment).
    auto:
        What ``auto`` resolves to.  Iterative entry points amortize the
        one-time interning cost and default to ``"compact"``; single-pass
        ones (e.g. greedy assignment) pass ``"dict"`` unless the input is
        already compact, because re-representing would cost more than the
        pass saves.
    supports_parallel:
        Whether the calling entry point has a ``compact-parallel``
        execution path.  When it does not, ``compact-parallel`` resolves
        to ``compact`` — same results either way, so a process-wide
        ``REPRO_BACKEND=compact-parallel`` never breaks an entry point
        that simply has nothing to parallelize.
    """
    if backend is not None:
        choice = backend
        source = "the backend= argument"
    else:
        choice = os.environ.get(BACKEND_ENV_VAR, "auto")
        source = f"the {BACKEND_ENV_VAR} environment variable"
    if not isinstance(choice, str):
        # A non-string (e.g. backend=1) must raise the documented error,
        # not an AttributeError from .lower() below.
        raise BackendError(
            f"backend name must be a string, got {choice!r} "
            f"({type(choice).__name__}) from {source}"
        )
    choice = choice.lower().strip()
    if choice not in BACKENDS:
        raise BackendError(
            f"unknown backend {choice!r} from {source}; "
            f"expected one of {BACKENDS}"
        )
    if choice == "auto":
        choice = auto
    if choice == "compact-parallel" and not supports_parallel:
        return "compact"
    return choice
