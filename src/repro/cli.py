"""Command-line interface: ``python -m repro <command> ...``.

The CLI exposes the library's main entry points for quick experimentation
without writing Python:

``token-dropping``
    Generate (or load the Figure 2) game, solve it with the chosen
    algorithm, print the configuration, traversals, and round counts.
``orient``
    Generate an orientation workload, run the phase algorithm (or a
    baseline), print the orientation and its round counts.
``assign``
    Generate a customer--server workload, run the stable assignment (or
    the k-bounded relaxation / greedy), print loads and quality.
``experiments``
    Regenerate the measured experiment tables (same as
    ``scripts/run_experiments.py``).
``serve``
    Solve an orientation workload once (or restore a snapshot) and serve
    it over length-prefixed JSON/TCP until shut down; see
    :mod:`repro.serve`.

Every command accepts ``--seed`` so runs are reproducible, and ``--dot``
writes a Graphviz rendering of the result next to the textual output.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro._version import __version__
from repro.analysis import banner
from repro.core.assignment import (
    approximation_ratio,
    greedy_assignment,
    optimal_cost,
    run_bounded_stable_assignment,
    run_stable_assignment,
)
from repro.core.orientation import (
    run_bounded_stable_orientation,
    run_stable_orientation,
    sequential_flip_algorithm,
    synchronous_repair_orientation,
)
from repro.core.token_dropping import (
    greedy_token_dropping,
    run_proposal_algorithm,
    run_three_level_algorithm,
)
from repro.render import (
    orientation_to_dot,
    render_assignment,
    render_layered_game,
    render_orientation,
    render_traversals,
    token_dropping_to_dot,
)
from repro.workloads import (
    datacenter_assignment,
    figure2_game,
    random_token_dropping,
    regular_orientation,
    sensor_network_orientation,
)


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed token dropping, stable orientations, and stable "
        "assignments (reproduction of Brandt et al., SPAA 2021).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    td = sub.add_parser(
        "token-dropping", help="generate and solve a token dropping game"
    )
    td.add_argument(
        "--figure2", action="store_true", help="use the paper's Figure 2 game"
    )
    td.add_argument(
        "--levels", type=int, default=6, help="number of levels (default 6)"
    )
    td.add_argument("--width", type=int, default=6, help="nodes per level (default 6)")
    td.add_argument("--edge-probability", type=float, default=0.4)
    td.add_argument("--token-fraction", type=float, default=0.5)
    td.add_argument(
        "--algorithm",
        choices=["proposal", "three-level", "greedy"],
        default="proposal",
        help="proposal = Theorem 4.1; three-level = Theorem 4.7 (heights <= 2); "
        "greedy = centralized",
    )
    td.add_argument("--seed", type=int, default=0)
    td.add_argument("--tails", action="store_true", help="also print traversal tails")
    td.add_argument(
        "--dot", type=str, default=None, help="write a Graphviz DOT file here"
    )

    orient = sub.add_parser("orient", help="find a stable orientation")
    orient.add_argument(
        "--workload",
        choices=["sensor", "regular"],
        default="sensor",
        help="instance family",
    )
    orient.add_argument("--nodes", type=int, default=80)
    orient.add_argument(
        "--degree",
        type=int,
        default=6,
        help="max degree (sensor) / degree (regular)",
    )
    orient.add_argument(
        "--algorithm",
        choices=["phases", "sequential", "repair", "bounded"],
        default="phases",
        help="phases = Theorem 5.1; bounded = the 0-1-many relaxation (Section 1.4)",
    )
    orient.add_argument("--seed", type=int, default=0)
    orient.add_argument(
        "--dot", type=str, default=None, help="write a Graphviz DOT file here"
    )

    assign = sub.add_parser("assign", help="find a stable assignment")
    assign.add_argument("--jobs", type=int, default=120)
    assign.add_argument("--servers", type=int, default=24)
    assign.add_argument("--replicas", type=int, default=3)
    assign.add_argument("--skew", type=float, default=1.0)
    assign.add_argument(
        "--algorithm",
        choices=["stable", "bounded", "greedy"],
        default="stable",
        help="stable = Theorem 7.3; bounded = Theorem 7.5 (k=2); "
        "greedy = naive baseline",
    )
    assign.add_argument("--seed", type=int, default=0)
    assign.add_argument(
        "--compare-optimal",
        action="store_true",
        help="also compute the exact optimal semi-matching and report the ratio",
    )

    experiments = sub.add_parser(
        "experiments",
        help="regenerate the measured experiment tables via repro.engine (slow)",
    )
    experiments.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes for the sweeps (1 = serial, 0 = all cores)",
    )
    experiments.add_argument(
        "--cache-dir", type=str, default=None,
        help="on-disk result cache directory (makes the run resumable)",
    )
    experiments.add_argument(
        "--resume", dest="resume", action="store_true", default=True,
        help="reuse cached results where available (default)",
    )
    experiments.add_argument(
        "--no-resume", dest="resume", action="store_false",
        help="ignore existing cached results and recompute everything",
    )
    experiments.add_argument(
        "--experiment", "-e", action="append", default=None,
        # Kept in sync with EXPERIMENTS/EXPERIMENT_ALIASES in
        # scripts/run_experiments.py, which re-validates the selection (the
        # script is loaded lazily at command time, so its registry is not
        # importable here at parser-build time).
        choices=[f"E{i}" for i in range(1, 11)],
        help="run only the given experiment id(s), e.g. -e E1 -e E10 (repeatable; "
        "E7/E9 select their joint sections E6/E4)",
    )
    experiments.add_argument(
        "--seeds", type=int, nargs="+", default=None,
        help="override every sweep's seed list (e.g. --seeds 0 for a smoke run)",
    )
    experiments.add_argument(
        "--quiet", action="store_true", help="suppress per-task progress lines"
    )

    serve = sub.add_parser(
        "serve",
        help="solve an orientation instance and serve it over JSON/TCP",
    )
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="listening port (default 0 = ephemeral; the bound port is printed)",
    )
    serve.add_argument(
        "--family", type=str, default="orientation-smoke",
        help="orientation workload family to build and solve "
        "(see repro.workloads.scenarios.ORIENTATION_FAMILIES)",
    )
    serve.add_argument(
        "--params", type=str, default=None,
        help='family parameters as a JSON object, e.g. \'{"num_levels": 8}\'',
    )
    serve.add_argument(
        "--from-snapshot", type=str, default=None,
        help="restore serving state from a snapshot file instead of solving",
    )
    serve.add_argument(
        "--algorithm", choices=["repair", "phases"], default="repair",
        help="solver for the initial orientation (bounded is excluded: "
        "its k-relaxed output cannot enter the incremental engine)",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--backend", type=str, default=None,
        help="solver backend (auto/compact/dict; dispatch default when omitted)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=None,
        help="max deltas per coalesced apply (default: "
        "$REPRO_SERVE_MAX_BATCH or 256)",
    )
    serve.add_argument(
        "--coalesce-ms", type=float, default=None,
        help="gathering window after the first queued update (default: "
        "$REPRO_SERVE_COALESCE_MS or 0)",
    )
    return parser


# ----------------------------------------------------------------------
def _cmd_token_dropping(args: argparse.Namespace) -> int:
    instance = (
        figure2_game()
        if args.figure2
        else random_token_dropping(
            num_levels=args.levels,
            width=args.width,
            edge_probability=args.edge_probability,
            token_fraction=args.token_fraction,
            seed=args.seed,
        )
    )
    print(banner("token dropping game"))
    print(instance.describe())
    print(render_layered_game(instance))

    if args.algorithm == "proposal":
        solution = run_proposal_algorithm(instance, seed=args.seed)
    elif args.algorithm == "three-level":
        solution = run_three_level_algorithm(instance, seed=args.seed)
    else:
        solution = greedy_token_dropping(instance, seed=args.seed)
    report = solution.validate(instance)
    report.raise_if_invalid()

    print()
    if solution.game_rounds is not None:
        print(
            f"solved in {solution.game_rounds} game rounds "
            f"({solution.communication_rounds} communication rounds)"
        )
    else:
        print(f"solved centrally with {solution.total_moves()} sequential moves")
    print(render_layered_game(instance, solution.destinations))
    print()
    print(render_traversals(solution, include_tails=args.tails))

    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(token_dropping_to_dot(instance, solution))
        print(f"\nwrote {args.dot}")
    return 0


def _cmd_orient(args: argparse.Namespace) -> int:
    if args.workload == "sensor":
        problem = sensor_network_orientation(
            num_nodes=args.nodes, max_degree=args.degree, seed=args.seed
        )
    else:
        problem = regular_orientation(
            degree=args.degree, num_nodes=args.nodes, seed=args.seed
        )

    print(banner("stable orientation"))
    print(
        f"{len(problem.nodes)} nodes, {problem.num_edges()} edges, "
        f"Δ={problem.max_degree()}, algorithm={args.algorithm}"
    )
    if args.algorithm == "phases":
        result = run_stable_orientation(problem, seed=args.seed)
        orientation = result.orientation
        print(
            f"phases={result.phases} game_rounds={result.game_rounds} "
            f"stable={result.stable}"
        )
    elif args.algorithm == "bounded":
        result = run_bounded_stable_orientation(problem, seed=args.seed)
        orientation = result.orientation
        print(
            f"phases={result.phases} game_rounds={result.game_rounds} "
            f"0-1-many stable={result.stable}"
        )
    elif args.algorithm == "sequential":
        orientation, stats = sequential_flip_algorithm(
            problem, policy="random", seed=args.seed
        )
        print(f"flips={stats.flips} stable={orientation.is_stable()}")
    else:
        orientation, stats = synchronous_repair_orientation(problem, seed=args.seed)
        print(
            f"iterations={stats.iterations} rounds={stats.communication_rounds} "
            f"stable={orientation.is_stable()}"
        )
    print()
    print(render_orientation(orientation))

    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(orientation_to_dot(orientation))
        print(f"\nwrote {args.dot}")
    return 0


def _cmd_assign(args: argparse.Namespace) -> int:
    graph = datacenter_assignment(
        num_jobs=args.jobs,
        num_servers=args.servers,
        replicas=args.replicas,
        popularity_skew=args.skew,
        seed=args.seed,
    )
    print(banner("stable assignment"))
    print(
        f"{len(graph.customers)} jobs, {len(graph.servers)} servers, "
        f"C={graph.max_customer_degree()}, S={graph.max_server_degree()}, "
        f"algorithm={args.algorithm}"
    )
    if args.algorithm == "stable":
        result = run_stable_assignment(graph, seed=args.seed)
        assignment = result.assignment
        print(
            f"phases={result.phases} game_rounds={result.game_rounds} "
            f"stable={result.stable}"
        )
    elif args.algorithm == "bounded":
        result = run_bounded_stable_assignment(graph, k=2, seed=args.seed)
        assignment = result.assignment
        print(
            f"phases={result.phases} game_rounds={result.game_rounds} "
            f"2-bounded stable={result.stable}"
        )
    else:
        assignment = greedy_assignment(graph, order="random", seed=args.seed)
        print("greedy baseline (no stability guarantee)")

    print(f"semi-matching cost Σf(load) = {assignment.semi_matching_cost()}")
    if args.compare_optimal:
        optimum = optimal_cost(graph)
        print(
            f"optimal cost = {optimum}; "
            f"ratio = {approximation_ratio(assignment, optimum):.4f} "
            "(stable assignments are guaranteed <= 2)"
        )
    print()
    print(render_assignment(assignment, max_rows=20))
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    # Import lazily: the experiments module pulls in every subsystem.
    import importlib.util
    from pathlib import Path

    script = Path(__file__).resolve().parents[2] / "scripts" / "run_experiments.py"
    if not script.exists():
        print(
            "scripts/run_experiments.py not found "
            "(installed package without the repository)"
        )
        return 1
    spec = importlib.util.spec_from_file_location("run_experiments", script)
    module = importlib.util.module_from_spec(spec)
    # Register before executing: the module defines dataclasses, whose
    # decorator looks its module up in sys.modules.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)  # type: ignore[union-attr]

    argv: List[str] = ["--jobs", str(args.jobs)]
    if args.cache_dir:
        argv += ["--cache-dir", args.cache_dir]
    if not args.resume:
        argv += ["--no-resume"]
    for experiment in args.experiment or []:
        argv += ["--experiment", experiment]
    if args.seeds:
        argv += ["--seeds", *[str(s) for s in args.seeds]]
    if args.quiet:
        argv += ["--quiet"]
    return int(module.main(argv))


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily: the serving stack (asyncio, snapshot mmap) is not
    # needed by any other command.
    import asyncio
    import json

    from repro.api import Instance, solve
    from repro.serve import OrientationServer, ServeConfig, load_state

    if args.from_snapshot:
        dynamic = load_state(args.from_snapshot)
        origin = f"snapshot {args.from_snapshot}"
    else:
        params = json.loads(args.params) if args.params else {}
        instance = Instance.build(args.family, **params)
        solved = solve(
            instance,
            algorithm=args.algorithm,
            backend=args.backend,
            seed=args.seed,
        )
        dynamic = solved.dynamic()
        origin = (
            f"{args.family} solved with {args.algorithm} "
            f"({solved.backend} backend, seed {args.seed})"
        )

    config = ServeConfig(host=args.host, port=args.port)
    if args.max_batch is not None:
        config.max_batch = args.max_batch
    if args.coalesce_ms is not None:
        config.coalesce_ms = args.coalesce_ms

    async def _run() -> None:
        server = OrientationServer(dynamic, config)
        await server.start()
        host, port = server.address
        print(banner("serving stable orientation"))
        print(f"state: {origin}")
        print(
            f"{dynamic.num_nodes} nodes, {dynamic.num_edges} edges, "
            f"max_batch={config.max_batch}, coalesce_ms={config.coalesce_ms}"
        )
        print(f"listening on {host}:{port}", flush=True)
        await server.serve_forever()
        print("server stopped")

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        print("interrupted")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    handlers = {
        "token-dropping": _cmd_token_dropping,
        "orient": _cmd_orient,
        "assign": _cmd_assign,
        "experiments": _cmd_experiments,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
