"""Small statistics helpers shared by sweeps and benchmark reports."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample of measurements."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.2f} std={self.std:.2f} "
            f"min={self.minimum:.2f} median={self.median:.2f} max={self.maximum:.2f}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of a non-empty sequence of numbers."""
    if not values:
        raise ValueError("cannot summarise an empty sequence")
    ordered = sorted(float(v) for v in values)
    n = len(ordered)
    mean = sum(ordered) / n
    variance = sum((v - mean) ** 2 for v in ordered) / n
    mid = n // 2
    median = ordered[mid] if n % 2 == 1 else 0.5 * (ordered[mid - 1] + ordered[mid])
    return Summary(
        count=n,
        mean=mean,
        std=math.sqrt(variance),
        minimum=ordered[0],
        median=median,
        maximum=ordered[-1],
    )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (used for ratio aggregation)."""
    if not values:
        raise ValueError("cannot take the geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
