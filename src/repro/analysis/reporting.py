"""Plain-text and Markdown table rendering for experiment reports.

Benchmarks print the same rows that EXPERIMENTS.md records, using these
helpers so the formatting is identical everywhere.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence


def _stringify(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.3g}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render an aligned plain-text table."""
    string_rows: List[List[str]] = [[_stringify(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.ljust(width) for cell, width in zip(cells, widths)
        ).rstrip()

    lines = [render_row(list(headers)), render_row(["-" * w for w in widths])]
    lines.extend(render_row(row) for row in string_rows)
    return "\n".join(lines)


def markdown_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render a GitHub-flavoured Markdown table (used for EXPERIMENTS.md)."""
    string_rows = [[_stringify(c) for c in row] for row in rows]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    lines.extend("| " + " | ".join(row) + " |" for row in string_rows)
    return "\n".join(lines)


def banner(title: str, width: int = 72) -> str:
    """A section banner used by the example scripts and bench output."""
    bar = "=" * width
    return f"{bar}\n{title}\n{bar}"
