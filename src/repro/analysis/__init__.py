"""Experiment harness: sweeps, scaling fits, statistics, and table rendering."""

from repro.analysis.complexity import (
    PowerLawFit,
    crossover_point,
    fit_power_law,
    max_bound_ratio,
    speedup_series,
)
from repro.analysis.reporting import banner, format_table, markdown_table
from repro.analysis.stats import Summary, geometric_mean, summarize
from repro.analysis.sweep import (
    SweepRecord,
    SweepResult,
    parameter_grid,
    run_sweep,
)

__all__ = [
    "PowerLawFit",
    "Summary",
    "SweepRecord",
    "SweepResult",
    "banner",
    "crossover_point",
    "fit_power_law",
    "format_table",
    "geometric_mean",
    "markdown_table",
    "max_bound_ratio",
    "parameter_grid",
    "run_sweep",
    "speedup_series",
    "summarize",
]
