"""Parameter sweep records and the thin adapter onto ``repro.engine``.

A sweep runs a measurement function over a grid of parameter dictionaries,
repeating each point with several seeds, and collects flat records that
the reporting module turns into tables.  Everything is deliberately plain
(lists of dicts) so pytest-benchmark, the examples, and the EXPERIMENTS.md
generator can all share the same code path.

Execution is delegated to the experiment engine
(:mod:`repro.engine`): :func:`run_sweep` builds an
:class:`~repro.engine.spec.ExperimentSpec` and converts the engine's
result set back into a :class:`SweepResult`.  That means every sweep —
including ones written before the engine existed — can opt into process
parallelism (``jobs``) and on-disk caching/resume (``cache_dir``,
``resume``) without changing its measure function, as long as the measure
is an importable top-level function when ``jobs > 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.engine import (
    ExperimentSpec,
    open_cache,
    parameter_grid,
    run_experiment,
)

__all__ = [
    "SweepRecord",
    "SweepResult",
    "parameter_grid",
    "run_sweep",
]


@dataclass
class SweepRecord:
    """One measurement: the parameters, the seed, and the measured values."""

    params: Dict[str, Any]
    seed: int
    values: Dict[str, float]
    elapsed_seconds: float


@dataclass
class SweepResult:
    """All records of a sweep plus grouping/aggregation helpers."""

    name: str
    records: List[SweepRecord] = field(default_factory=list)

    def append(self, record: SweepRecord) -> None:
        self.records.append(record)

    def filter(self, **params: Any) -> "SweepResult":
        """Records whose parameters match all the given key=value pairs."""
        subset = SweepResult(name=self.name)
        for record in self.records:
            if all(record.params.get(k) == v for k, v in params.items()):
                subset.append(record)
        return subset

    def series(
        self,
        x_param: str,
        value: str,
        reduce: Callable[[Sequence[float]], float] = None,
    ) -> tuple[List[float], List[float]]:
        """Aggregate ``value`` per distinct ``x_param``, averaged over seeds.

        Returns ``(xs, ys)`` sorted by x.  ``reduce`` defaults to the mean.
        """
        if reduce is None:
            reduce = lambda vals: sum(vals) / len(vals)  # noqa: E731
        grouped: Dict[Any, List[float]] = {}
        for record in self.records:
            grouped.setdefault(record.params[x_param], []).append(record.values[value])
        xs = sorted(grouped)
        ys = [reduce(grouped[x]) for x in xs]
        return [float(x) for x in xs], [float(y) for y in ys]

    def values_of(self, value: str) -> List[float]:
        """All measurements of one value across the sweep."""
        return [record.values[value] for record in self.records]

    def __len__(self) -> int:
        return len(self.records)


def run_sweep(
    name: str,
    measure: Callable[..., Mapping[str, float]],
    grid: Sequence[Mapping[str, Any]],
    *,
    seeds: Sequence[int] = (0, 1, 2),
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    resume: bool = True,
) -> SweepResult:
    """Run ``measure(seed=..., **params)`` for every grid point and seed.

    ``measure`` must return a mapping of metric name to number.  Failures
    are not swallowed: a crashing measurement aborts the sweep, because a
    silently dropped point would bias the reported scaling.

    ``jobs`` shards the sweep across worker processes (``measure`` must
    then be importable by name); ``cache_dir`` persists per-task results
    so a re-run with ``resume=True`` executes only missing tasks.
    """
    spec = ExperimentSpec(
        name=name, measure=measure, grid=list(grid), seeds=tuple(seeds)
    )

    engine_progress = None
    if progress is not None:

        def engine_progress(result):  # noqa: ANN001 - TaskResult
            origin = " [cache]" if result.cached else ""
            progress(
                f"{name}: {result.params} seed={result.seed} -> "
                f"{result.values}{origin}"
            )

    result_set = run_experiment(
        spec,
        jobs=jobs,
        cache=open_cache(cache_dir),
        resume=resume,
        progress=engine_progress,
    )
    return result_set.to_sweep_result()
