"""Parameter sweep harness used by benchmarks and EXPERIMENTS.md generation.

A sweep runs a measurement function over a grid of parameter dictionaries,
repeating each point with several seeds, and collects flat records that
the reporting module turns into tables.  Everything is deliberately plain
(lists of dicts) so pytest-benchmark, the examples, and the EXPERIMENTS.md
generator can all share the same code path.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence


@dataclass
class SweepRecord:
    """One measurement: the parameters, the seed, and the measured values."""

    params: Dict[str, Any]
    seed: int
    values: Dict[str, float]
    elapsed_seconds: float


@dataclass
class SweepResult:
    """All records of a sweep plus grouping/aggregation helpers."""

    name: str
    records: List[SweepRecord] = field(default_factory=list)

    def append(self, record: SweepRecord) -> None:
        self.records.append(record)

    def filter(self, **params: Any) -> "SweepResult":
        """Records whose parameters match all the given key=value pairs."""
        subset = SweepResult(name=self.name)
        for record in self.records:
            if all(record.params.get(k) == v for k, v in params.items()):
                subset.append(record)
        return subset

    def series(
        self, x_param: str, value: str, reduce: Callable[[Sequence[float]], float] = None
    ) -> tuple[List[float], List[float]]:
        """Aggregate ``value`` per distinct ``x_param``, averaged over seeds.

        Returns ``(xs, ys)`` sorted by x.  ``reduce`` defaults to the mean.
        """
        if reduce is None:
            reduce = lambda vals: sum(vals) / len(vals)  # noqa: E731
        grouped: Dict[Any, List[float]] = {}
        for record in self.records:
            grouped.setdefault(record.params[x_param], []).append(record.values[value])
        xs = sorted(grouped)
        ys = [reduce(grouped[x]) for x in xs]
        return [float(x) for x in xs], [float(y) for y in ys]

    def values_of(self, value: str) -> List[float]:
        """All measurements of one value across the sweep."""
        return [record.values[value] for record in self.records]

    def __len__(self) -> int:
        return len(self.records)


def parameter_grid(**axes: Iterable[Any]) -> List[Dict[str, Any]]:
    """Cartesian product of named parameter axes as a list of dicts.

    >>> parameter_grid(delta=[2, 3], levels=[4])
    [{'delta': 2, 'levels': 4}, {'delta': 3, 'levels': 4}]
    """
    names = sorted(axes)
    combos = itertools.product(*(list(axes[name]) for name in names))
    return [dict(zip(names, combo)) for combo in combos]


def run_sweep(
    name: str,
    measure: Callable[..., Mapping[str, float]],
    grid: Sequence[Mapping[str, Any]],
    *,
    seeds: Sequence[int] = (0, 1, 2),
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Run ``measure(seed=..., **params)`` for every grid point and seed.

    ``measure`` must return a mapping of metric name to number.  Failures
    are not swallowed: a crashing measurement aborts the sweep, because a
    silently dropped point would bias the reported scaling.
    """
    result = SweepResult(name=name)
    for params in grid:
        for seed in seeds:
            start = time.perf_counter()
            values = dict(measure(seed=seed, **params))
            elapsed = time.perf_counter() - start
            result.append(
                SweepRecord(
                    params=dict(params), seed=seed, values=values, elapsed_seconds=elapsed
                )
            )
            if progress is not None:
                progress(f"{name}: {params} seed={seed} -> {values}")
    return result
