"""Growth-exponent fitting for round-complexity experiments.

The paper's results are asymptotic bounds (O(L·Δ²), O(Δ⁴), O(Δ), ...).
The benchmark harness measures round counts across parameter sweeps and
uses this module to

* fit a power law ``rounds ≈ a · x^b`` on a log--log scale and report the
  exponent ``b`` (experiments compare it against the theorem's exponent),
* check that the measured values never exceed an explicit-constant version
  of the bound (``max_bound_ratio``), and
* compare two algorithms' scaling (who wins, and how the gap evolves).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``y ≈ coefficient · x^exponent``."""

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, x: float) -> float:
        """Predicted y value at ``x``."""
        return self.coefficient * x**self.exponent

    def __str__(self) -> str:
        return (
            f"y ≈ {self.coefficient:.3g} · x^{self.exponent:.2f} "
            f"(R²={self.r_squared:.3f})"
        )


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y = c · x^b`` by linear regression on logarithms.

    Requires at least two distinct positive x values and positive y values
    (zero y values are clamped to 1, which is the right floor for round
    counts: an algorithm cannot take fewer than one round once it does
    anything at all).
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit a power law")
    xs_arr = np.asarray(xs, dtype=float)
    ys_arr = np.asarray(ys, dtype=float)
    # Round counts of 0 (an algorithm that never had to act) are clamped to
    # 1 so the logarithm exists; positive fractional values are left alone.
    ys_arr = np.where(ys_arr <= 0, 1.0, ys_arr)
    if np.any(xs_arr <= 0):
        raise ValueError("x values must be positive")
    if len(set(xs_arr.tolist())) < 2:
        raise ValueError("need at least two distinct x values")

    log_x = np.log(xs_arr)
    log_y = np.log(ys_arr)
    slope, intercept = np.polyfit(log_x, log_y, deg=1)
    predictions = slope * log_x + intercept
    residual = float(np.sum((log_y - predictions) ** 2))
    total = float(np.sum((log_y - np.mean(log_y)) ** 2))
    r_squared = 1.0 if total == 0 else max(0.0, 1.0 - residual / total)
    return PowerLawFit(
        exponent=float(slope),
        coefficient=float(math.exp(intercept)),
        r_squared=r_squared,
    )


def max_bound_ratio(
    xs: Sequence[float], ys: Sequence[float], bound: Callable[[float], float]
) -> float:
    """The worst observed ``y / bound(x)`` ratio.

    A value ≤ 1 certifies that every measurement respects the explicit
    bound; experiments report this next to the fitted exponent.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    worst = 0.0
    for x, y in zip(xs, ys):
        b = bound(x)
        if b <= 0:
            raise ValueError(f"bound({x}) = {b} must be positive")
        worst = max(worst, y / b)
    return worst


def crossover_point(
    xs: Sequence[float], ys_a: Sequence[float], ys_b: Sequence[float]
) -> Tuple[int, float] | None:
    """First index (and x value) at which series A becomes at least series B.

    Used to report "where the curves cross" in comparison experiments;
    returns ``None`` when A stays below B over the whole sweep.
    """
    if not (len(xs) == len(ys_a) == len(ys_b)):
        raise ValueError("all series must have the same length")
    for index, (x, a, b) in enumerate(zip(xs, ys_a, ys_b)):
        if a >= b:
            return index, float(x)
    return None


def speedup_series(
    ys_baseline: Sequence[float], ys_new: Sequence[float]
) -> list[float]:
    """Element-wise baseline / new ratios (values > 1 mean the new method wins)."""
    if len(ys_baseline) != len(ys_new):
        raise ValueError("series must have the same length")
    out = []
    for base, new in zip(ys_baseline, ys_new):
        out.append(float("inf") if new == 0 else base / new)
    return out
