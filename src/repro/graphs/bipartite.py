"""Customer--server bipartite graphs.

Sections 1.3 and 7 of the paper study the *stable assignment* problem on a
bipartite graph with customers on one side and servers on the other; every
customer must pick exactly one adjacent server and prefers servers with a
low load.  :class:`CustomerServerGraph` is the substrate for that problem
and for semi-matching computations.

The class tracks the two degree parameters used in the paper's bounds:
``C`` (maximum customer degree, i.e. the rank of the hyperedges in the
hypergraph view) and ``S`` (maximum server degree).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Set, Tuple

NodeId = Hashable


class BipartiteGraphError(ValueError):
    """Raised when a customer--server graph is malformed."""


@dataclass(frozen=True)
class CustomerServerGraph:
    """An immutable bipartite graph of customers and servers.

    Parameters
    ----------
    customers:
        Iterable of customer identifiers.
    servers:
        Iterable of server identifiers (disjoint from customers).
    edges:
        Iterable of ``(customer, server)`` pairs.  Each customer must have
        at least one incident edge, otherwise the assignment problem has
        no feasible solution and construction fails.
    """

    customer_adjacency: Mapping[NodeId, FrozenSet[NodeId]]
    server_adjacency: Mapping[NodeId, FrozenSet[NodeId]]

    def __init__(
        self,
        customers: Iterable[NodeId],
        servers: Iterable[NodeId],
        edges: Iterable[Tuple[NodeId, NodeId]],
    ) -> None:
        customer_set = list(dict.fromkeys(customers))
        server_set = list(dict.fromkeys(servers))
        overlap = set(customer_set) & set(server_set)
        if overlap:
            raise BipartiteGraphError(
                f"identifiers used on both sides: {sorted(map(repr, overlap))}"
            )

        cust_adj: Dict[NodeId, Set[NodeId]] = {c: set() for c in customer_set}
        serv_adj: Dict[NodeId, Set[NodeId]] = {s: set() for s in server_set}
        for edge in edges:
            if len(edge) != 2:
                raise BipartiteGraphError(
                    f"edge {edge!r} is not a (customer, server) pair"
                )
            customer, server = edge
            if customer not in cust_adj:
                raise BipartiteGraphError(
                    f"unknown customer {customer!r} in edge {edge!r}"
                )
            if server not in serv_adj:
                raise BipartiteGraphError(f"unknown server {server!r} in edge {edge!r}")
            if server in cust_adj[customer]:
                raise BipartiteGraphError(f"duplicate edge ({customer!r}, {server!r})")
            cust_adj[customer].add(server)
            serv_adj[server].add(customer)

        isolated = [c for c, adj in cust_adj.items() if not adj]
        if isolated:
            raise BipartiteGraphError(
                "every customer needs at least one adjacent server; isolated "
                f"customer(s): {sorted(map(repr, isolated))}"
            )

        object.__setattr__(
            self,
            "customer_adjacency",
            {c: frozenset(adj) for c, adj in cust_adj.items()},
        )
        object.__setattr__(
            self,
            "server_adjacency",
            {s: frozenset(adj) for s, adj in serv_adj.items()},
        )

    @classmethod
    def from_validated_adjacency(
        cls,
        customer_adjacency: Mapping[NodeId, FrozenSet[NodeId]],
        server_adjacency: Mapping[NodeId, FrozenSet[NodeId]],
    ) -> "CustomerServerGraph":
        """Trusted constructor from already-validated adjacency maps.

        Mirrors :meth:`repro.local_model.network.Network.
        from_validated_adjacency`: callers that build the adjacency from a
        structure whose invariants already hold (e.g. the compact
        orientation kernels, where every edge customer has exactly its
        two distinct endpoints as servers) skip the per-edge validation
        pass of ``__init__``.
        """
        graph = cls.__new__(cls)
        object.__setattr__(graph, "customer_adjacency", dict(customer_adjacency))
        object.__setattr__(graph, "server_adjacency", dict(server_adjacency))
        return graph

    # ------------------------------------------------------------------
    @property
    def customers(self) -> Tuple[NodeId, ...]:
        """Customer identifiers in deterministic order."""
        return tuple(sorted(self.customer_adjacency, key=repr))

    @property
    def servers(self) -> Tuple[NodeId, ...]:
        """Server identifiers in deterministic order."""
        return tuple(sorted(self.server_adjacency, key=repr))

    def servers_of(self, customer: NodeId) -> FrozenSet[NodeId]:
        """Servers adjacent to ``customer``."""
        return self.customer_adjacency[customer]

    def customers_of(self, server: NodeId) -> FrozenSet[NodeId]:
        """Customers adjacent to ``server``."""
        return self.server_adjacency[server]

    def customer_degree(self, customer: NodeId) -> int:
        """Degree of one customer."""
        return len(self.customer_adjacency[customer])

    def server_degree(self, server: NodeId) -> int:
        """Degree of one server."""
        return len(self.server_adjacency[server])

    def max_customer_degree(self) -> int:
        """C: the maximum customer degree (0 if there are no customers)."""
        if not self.customer_adjacency:
            return 0
        return max(len(adj) for adj in self.customer_adjacency.values())

    def max_server_degree(self) -> int:
        """S: the maximum server degree (0 if there are no servers)."""
        if not self.server_adjacency:
            return 0
        return max(len(adj) for adj in self.server_adjacency.values())

    def max_degree(self) -> int:
        """Δ = max{C, S}, the maximum degree of the whole network."""
        return max(self.max_customer_degree(), self.max_server_degree())

    def num_edges(self) -> int:
        """Number of customer--server edges."""
        return sum(len(adj) for adj in self.customer_adjacency.values())

    def edges(self) -> Tuple[Tuple[NodeId, NodeId], ...]:
        """All (customer, server) edges in deterministic order."""
        out = []
        for customer in self.customers:
            for server in sorted(self.customer_adjacency[customer], key=repr):
                out.append((customer, server))
        return tuple(out)

    def __len__(self) -> int:
        return len(self.customer_adjacency) + len(self.server_adjacency)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CustomerServerGraph(customers={len(self.customer_adjacency)}, "
            f"servers={len(self.server_adjacency)}, edges={self.num_edges()}, "
            f"C={self.max_customer_degree()}, S={self.max_server_degree()})"
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_orientation_graph(
        cls, edges: Iterable[Tuple[NodeId, NodeId]]
    ) -> "CustomerServerGraph":
        """Build the degree-2-customer instance equivalent to an orientation problem.

        The stable orientation problem is the special case of stable
        assignment where every customer has degree exactly 2: each
        undirected edge ``{u, v}`` of the orientation instance becomes a
        customer connected to servers ``u`` and ``v`` (Section 1.3).

        Edge customers are labelled ``("edge", u, v)`` with endpoints in
        sorted order so the mapping is deterministic and invertible.
        """
        undirected = set()
        for u, v in edges:
            if u == v:
                raise BipartiteGraphError(f"self-loop on {u!r} is not allowed")
            key = tuple(sorted((u, v), key=repr))
            undirected.add(key)
        servers = sorted({x for pair in undirected for x in pair}, key=repr)
        customers = [("edge",) + pair for pair in sorted(undirected, key=repr)]
        bip_edges = []
        for pair in sorted(undirected, key=repr):
            customer = ("edge",) + pair
            bip_edges.append((customer, pair[0]))
            bip_edges.append((customer, pair[1]))
        return cls(customers=customers, servers=servers, edges=bip_edges)
