"""Reproducible graph generators for experiments and tests.

Every generator takes an explicit ``seed`` (or ``rng``) so that sweeps in
the benchmark harness are repeatable.  Generators return either

* a :class:`networkx.Graph` for plain undirected topologies (orientation
  experiments, lower-bound constructions),
* a :class:`~repro.graphs.layered.LayeredGraph` for token dropping
  instances, or
* a :class:`~repro.graphs.bipartite.CustomerServerGraph` for assignment
  and semi-matching workloads.

The instance families mirror those used in the paper's arguments:
d-regular graphs and perfect d-ary trees (Section 6), bipartite
maximal-matching-style instances (Theorems 4.6 and 7.4), and random
layered DAGs exercising the Theorem 4.1 bound.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx

from repro.graphs.bipartite import CustomerServerGraph
from repro.graphs.compact import CompactBipartite
from repro.graphs.layered import LayeredGraph

NodeId = Hashable


def _make_rng(seed: Optional[int | random.Random]) -> random.Random:
    """Return a :class:`random.Random` from a seed or pass one through."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


# ----------------------------------------------------------------------
# Plain undirected topologies
# ----------------------------------------------------------------------
def path_graph(n: int) -> nx.Graph:
    """A path on ``n`` nodes labelled ``0 .. n-1`` (Δ = 2)."""
    if n < 1:
        raise ValueError(f"path needs at least one node, got n={n}")
    return nx.path_graph(n)


def cycle_graph(n: int) -> nx.Graph:
    """A cycle on ``n >= 3`` nodes (2-regular)."""
    if n < 3:
        raise ValueError(f"cycle needs at least three nodes, got n={n}")
    return nx.cycle_graph(n)


def star_graph(leaves: int) -> nx.Graph:
    """A star with one centre (node 0) and ``leaves`` leaves (Δ = leaves)."""
    if leaves < 1:
        raise ValueError(f"star needs at least one leaf, got {leaves}")
    return nx.star_graph(leaves)


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """A ``rows x cols`` grid with integer-tuple node labels (Δ ≤ 4)."""
    if rows < 1 or cols < 1:
        raise ValueError(f"grid dimensions must be positive, got {rows}x{cols}")
    return nx.grid_2d_graph(rows, cols)


def caterpillar_graph(spine: int, legs_per_node: int) -> nx.Graph:
    """A caterpillar: a path of length ``spine`` with ``legs_per_node`` leaves each.

    Caterpillars produce skewed load-balancing instances: spine nodes are
    natural high-load servers while leaves force local decisions.
    """
    if spine < 1:
        raise ValueError(f"spine must have at least one node, got {spine}")
    if legs_per_node < 0:
        raise ValueError(f"legs_per_node must be non-negative, got {legs_per_node}")
    graph = nx.path_graph(spine)
    next_label = spine
    for spine_node in range(spine):
        for _ in range(legs_per_node):
            graph.add_edge(spine_node, next_label)
            next_label += 1
    return graph


def bounded_degree_gnp_edges(
    n: int, p: float, max_degree: int, seed: Optional[int | random.Random] = None
) -> Iterator[Tuple[int, int]]:
    """The edge stream of :func:`bounded_degree_gnp`, without the graph.

    Consumes the RNG exactly like :func:`bounded_degree_gnp` (same
    shuffled candidate order, one draw per candidate, same greedy degree
    cap), so the yielded edges are the edge set of the seeded networkx
    instance — but nothing larger than a flat degree counter is ever
    materialised.  Streaming consumers
    (:meth:`~repro.graphs.compact.CompactGraph.from_edge_stream`) build
    the CSR instance straight from this iterator.
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must lie in [0, 1], got {p}")
    if max_degree < 0:
        raise ValueError(f"max_degree must be non-negative, got {max_degree}")
    rng = _make_rng(seed)

    def edge_stream() -> Iterator[Tuple[int, int]]:
        degree = [0] * n
        candidates = list(itertools.combinations(range(n), 2))
        rng.shuffle(candidates)
        for u, v in candidates:
            if rng.random() >= p:
                continue
            if degree[u] >= max_degree or degree[v] >= max_degree:
                continue
            degree[u] += 1
            degree[v] += 1
            yield (u, v)

    return edge_stream()


def bounded_degree_gnp(
    n: int, p: float, max_degree: int, seed: Optional[int | random.Random] = None
) -> nx.Graph:
    """An Erdős--Rényi graph post-processed to respect a degree cap.

    Edges are sampled G(n, p); edges that would push either endpoint above
    ``max_degree`` are discarded.  The result is a "typical" bounded-degree
    graph used as a realistic (non-worst-case) orientation workload.
    """
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(bounded_degree_gnp_edges(n, p, max_degree, seed=seed))
    return graph


def random_regular_graph(
    degree: int, n: int, seed: Optional[int] = None
) -> nx.Graph:
    """A uniformly random ``degree``-regular simple graph on ``n`` nodes.

    Thin wrapper over :func:`networkx.random_regular_graph` with argument
    validation matching this package's conventions (``degree * n`` must be
    even and ``degree < n``).
    """
    if degree < 0:
        raise ValueError(f"degree must be non-negative, got {degree}")
    if n <= degree:
        raise ValueError(
            f"need n > degree for a simple graph, got n={n}, degree={degree}"
        )
    if (degree * n) % 2 != 0:
        raise ValueError(f"degree * n must be even, got degree={degree}, n={n}")
    return nx.random_regular_graph(degree, n, seed=seed)


def high_girth_regular_graph(
    degree: int,
    n: int,
    girth: int,
    seed: Optional[int] = None,
    max_attempts: int = 2000,
) -> nx.Graph:
    """A ``degree``-regular graph with girth at least ``girth``.

    Theorem 6.3 uses Δ-regular graphs of girth ≥ Δ + 1, whose existence is
    classical but whose explicit construction is expensive.  For the
    moderate parameters used in experiments we obtain one by degree-
    preserving double edge swaps that break the shortest cycles of a random
    regular graph, retrying until the girth target is met.

    Raises
    ------
    RuntimeError
        If the target girth could not be reached within ``max_attempts``
        swap attempts (likely because ``n`` is too small for the requested
        degree/girth combination -- Moore-bound territory).
    """
    if girth < 3:
        raise ValueError(f"girth must be at least 3, got {girth}")
    rng = random.Random(seed)
    if degree <= 1 or girth == 3:
        return random_regular_graph(degree, n, seed=rng.randrange(2**31))

    # Start from a bipartite double cover of a smaller random regular graph:
    # it is degree-regular, triangle-free (girth >= 4), and cheap, which
    # leaves the swap loop below only the >= 5 part of the work.  The node
    # count is rounded up to the nearest feasible even split.
    def double_cover_start() -> nx.Graph:
        half = (n + 1) // 2
        if (half * degree) % 2 == 1:
            half += 1
        if half <= degree:
            half = degree + 1 + ((degree + 1) * degree) % 2
        base = random_regular_graph(degree, half, seed=rng.randrange(2**31))
        cover = nx.Graph()
        cover.add_nodes_from((node, side) for node in base.nodes() for side in (0, 1))
        for u, v in base.edges():
            cover.add_edge((u, 0), (v, 1))
            cover.add_edge((u, 1), (v, 0))
        return nx.convert_node_labels_to_integers(cover)

    graph = double_cover_start()
    if girth == 4:
        return graph

    for _ in range(max_attempts):
        cycle = _shortest_cycle(graph, girth)
        if cycle is None:
            return graph
        # Break the offending cycle with a double edge swap that preserves
        # regularity: remove one cycle edge and one random other edge, then
        # reconnect crosswise (only if the new edges keep the graph simple).
        u, v = cycle[0], cycle[1]
        edges = list(graph.edges())
        rng.shuffle(edges)
        swapped = False
        for x, y in edges:
            if len({u, v, x, y}) < 4:
                continue
            if graph.has_edge(u, x) or graph.has_edge(v, y):
                continue
            graph.remove_edge(u, v)
            graph.remove_edge(x, y)
            graph.add_edge(u, x)
            graph.add_edge(v, y)
            swapped = True
            break
        if not swapped:
            # Re-randomise entirely: cheaper than exhaustive search.
            graph = double_cover_start()
    cycle = _shortest_cycle(graph, girth)
    if cycle is None:
        return graph
    raise RuntimeError(
        f"could not reach girth {girth} for a {degree}-regular graph on {n} nodes "
        f"within {max_attempts} attempts; increase n"
    )


def _shortest_cycle(graph: nx.Graph, below: int) -> Optional[List[NodeId]]:
    """Return some cycle shorter than ``below``, or None if none exists.

    Runs a BFS from every node, stopping early at depth ``below // 2``;
    adequate for the small graphs used in girth experiments.
    """
    best: Optional[List[NodeId]] = None
    best_len = below
    for source in graph.nodes():
        # BFS recording parents; a non-tree edge closes a cycle.
        depth = {source: 0}
        parent = {source: None}
        queue = [source]
        while queue:
            current = queue.pop(0)
            if depth[current] * 2 >= best_len:
                continue
            for neighbor in graph.neighbors(current):
                if neighbor == parent[current]:
                    continue
                if neighbor in depth:
                    cycle_len = depth[current] + depth[neighbor] + 1
                    if cycle_len < best_len:
                        best_len = cycle_len
                        best = [current, neighbor]
                else:
                    depth[neighbor] = depth[current] + 1
                    parent[neighbor] = current
                    queue.append(neighbor)
    return best


def perfect_dary_tree(degree: int, depth: int) -> Tuple[nx.Graph, NodeId]:
    """A perfect d-ary tree in the paper's sense (Section 6).

    Every non-leaf node has total degree ``degree`` and all leaves are at
    the same distance ``depth`` from the root.  Concretely the root has
    ``degree`` children and every internal non-root node has ``degree - 1``
    children.  Returns ``(graph, root)``.
    """
    if degree < 2:
        raise ValueError(f"degree must be at least 2, got {degree}")
    if depth < 0:
        raise ValueError(f"depth must be non-negative, got {depth}")
    graph = nx.Graph()
    root = 0
    graph.add_node(root)
    next_label = 1
    frontier = [root]
    for level in range(depth):
        new_frontier: List[NodeId] = []
        for node in frontier:
            n_children = degree if node == root else degree - 1
            for _ in range(n_children):
                child = next_label
                next_label += 1
                graph.add_edge(node, child)
                new_frontier.append(child)
        frontier = new_frontier
    return graph, root


def complete_bipartite(num_customers: int, num_servers: int) -> CustomerServerGraph:
    """Every customer adjacent to every server (C = num_servers, S = num_customers)."""
    if num_customers < 1 or num_servers < 1:
        raise ValueError("need at least one customer and one server")
    customers = [f"c{i}" for i in range(num_customers)]
    servers = [f"s{j}" for j in range(num_servers)]
    edges = [(c, s) for c in customers for s in servers]
    return CustomerServerGraph(customers=customers, servers=servers, edges=edges)


def random_bipartite_customer_server(
    num_customers: int,
    num_servers: int,
    customer_degree: int,
    seed: Optional[int | random.Random] = None,
    server_skew: float = 0.0,
    compact: bool = False,
) -> "CustomerServerGraph | CompactBipartite":
    """A random customer--server workload with fixed customer degree.

    Each customer picks ``customer_degree`` distinct servers.  With
    ``server_skew > 0`` servers are sampled with Zipf-like weights
    ``1 / (rank + 1) ** server_skew`` so a few "popular" servers attract
    far more customers -- the regime where stable assignments visibly beat
    naive ones.

    Parameters
    ----------
    num_customers, num_servers:
        Side sizes (both positive; ``customer_degree <= num_servers``).
    customer_degree:
        C, the exact degree of every customer.
    seed:
        RNG seed or a shared :class:`random.Random`.
    server_skew:
        Zipf exponent for server popularity; 0 means uniform.
    compact:
        Emit a :class:`~repro.graphs.compact.CompactBipartite` built
        straight from the sampled edge list (same instance, CSR form)
        instead of the reference :class:`CustomerServerGraph`.
    """
    if num_customers < 1 or num_servers < 1:
        raise ValueError("need at least one customer and one server")
    if not 1 <= customer_degree <= num_servers:
        raise ValueError(
            f"customer_degree must be in [1, num_servers], got {customer_degree} "
            f"with num_servers={num_servers}"
        )
    if server_skew < 0:
        raise ValueError(f"server_skew must be non-negative, got {server_skew}")
    rng = _make_rng(seed)
    customers = [f"c{i}" for i in range(num_customers)]
    servers = [f"s{j}" for j in range(num_servers)]
    weights = [1.0 / (rank + 1.0) ** server_skew for rank in range(num_servers)]

    edges: List[Tuple[NodeId, NodeId]] = []
    for customer in customers:
        chosen: List[str] = []
        available = list(range(num_servers))
        avail_weights = list(weights)
        for _ in range(customer_degree):
            total = sum(avail_weights)
            pick = rng.random() * total
            acc = 0.0
            idx = 0
            for idx, w in enumerate(avail_weights):
                acc += w
                if pick <= acc:
                    break
            chosen.append(servers[available[idx]])
            del available[idx]
            del avail_weights[idx]
        edges.extend((customer, server) for server in chosen)
    if compact:
        return CompactBipartite.from_edges(
            customers=customers, servers=servers, edges=edges
        )
    return CustomerServerGraph(customers=customers, servers=servers, edges=edges)


# ----------------------------------------------------------------------
# Layered DAGs for the token dropping game
# ----------------------------------------------------------------------
def _validate_layered_params(
    num_levels: int, width: int, edge_probability: float, max_degree: Optional[int]
) -> None:
    if num_levels < 1:
        raise ValueError(f"num_levels must be positive, got {num_levels}")
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError(f"edge_probability must lie in [0, 1], got {edge_probability}")
    if max_degree is not None and max_degree < 0:
        raise ValueError(f"max_degree must be non-negative, got {max_degree}")


def layered_dag_edges(
    num_levels: int,
    width: int,
    edge_probability: float,
    seed: Optional[int | random.Random] = None,
    max_degree: Optional[int] = None,
) -> Iterator[Tuple[NodeId, NodeId]]:
    """The ``(child, parent)`` edge stream of :func:`random_layered_graph`.

    Yields exactly the edges (in exactly the order) the seeded
    :func:`random_layered_graph` call would record — same shuffled
    candidate list, one RNG draw per candidate, same greedy degree cap —
    without building the ``LayeredGraph`` containers.  When a shared
    ``random.Random`` is passed as ``seed``, consume the stream fully
    before drawing from the RNG again: the generator draws lazily.
    """
    _validate_layered_params(num_levels, width, edge_probability, max_degree)
    rng = _make_rng(seed)

    def edge_stream() -> Iterator[Tuple[NodeId, NodeId]]:
        degree: Dict[NodeId, int] = {}
        candidates = [
            ((level, i), (level + 1, j))
            for level in range(num_levels - 1)
            for i in range(width)
            for j in range(width)
        ]
        rng.shuffle(candidates)
        for child, parent in candidates:
            if rng.random() >= edge_probability:
                continue
            if max_degree is not None and (
                degree.get(child, 0) >= max_degree
                or degree.get(parent, 0) >= max_degree
            ):
                continue
            degree[child] = degree.get(child, 0) + 1
            degree[parent] = degree.get(parent, 0) + 1
            yield (child, parent)

    return edge_stream()


def random_layered_graph(
    num_levels: int,
    width: int,
    edge_probability: float,
    seed: Optional[int | random.Random] = None,
    max_degree: Optional[int] = None,
) -> LayeredGraph:
    """A random layered DAG with ``num_levels`` levels of ``width`` nodes.

    Every potential edge between adjacent levels is included independently
    with probability ``edge_probability``, subject to an optional degree
    cap (applied greedily in a shuffled order so the cap does not bias
    towards low-index nodes).

    Node identifiers are ``(level, index)`` tuples, which keeps levels
    recoverable from the identifier in examples and traces.
    """
    levels: Dict[NodeId, int] = {}
    for level in range(num_levels):
        for index in range(width):
            levels[(level, index)] = level
    edges = list(
        layered_dag_edges(
            num_levels, width, edge_probability, seed=seed, max_degree=max_degree
        )
    )
    return LayeredGraph(levels=levels, edges=edges)


def layered_dag_edge_stream(
    num_levels: int,
    width: int,
    edge_probability: float,
    *,
    seed: Optional[int | random.Random] = None,
) -> Iterator[Tuple[int, int]]:
    """A million-node-scale layered DAG as a lazy ``(child, parent)`` stream.

    The scale counterpart of :func:`random_layered_graph` for instances
    where even the O(L·w²) candidate list is unaffordable: candidates are
    *skipped over* geometrically (one RNG draw per **sampled** edge, not
    per candidate), so generating the stream costs O(m) time and O(1)
    memory for any ``num_levels × width``.  Node identifiers are dense
    ints ``level * width + index`` — at 10^6–10^7 nodes, tuple ids would
    triple the interning cost for no informational gain (the level is
    recoverable as ``node // width``).

    This is a **different instance family** from
    :func:`random_layered_graph` (the RNG discipline differs by design);
    it is cross-validated against the dict reference by feeding the *same
    stream* to both the streaming and the dict-path builders at small n.

    Each potential edge between adjacent levels is included independently
    with probability ``edge_probability`` via inverse-transform sampling
    of the geometric gap between successes.  No degree cap: the expected
    degree is controlled by ``edge_probability`` directly (mean total
    degree ≈ ``2 · width · edge_probability`` away from the boundary
    levels).
    """
    _validate_layered_params(num_levels, width, edge_probability, None)
    rng = _make_rng(seed)

    def edge_stream() -> Iterator[Tuple[int, int]]:
        if edge_probability <= 0.0:
            return
        block = width * width
        exhaustive = edge_probability >= 1.0
        log_skip = 0.0 if exhaustive else math.log1p(-edge_probability)
        for level in range(num_levels - 1):
            child_base = level * width
            parent_base = child_base + width
            if exhaustive:
                for i in range(width):
                    child = child_base + i
                    for j in range(width):
                        yield (child, parent_base + j)
                continue
            # Jump between successes of the per-candidate Bernoulli(p)
            # process: the gap is Geometric(p), sampled by inverse
            # transform.  1 - random() lies in (0, 1], keeping the log
            # finite.
            pos = -1
            while True:
                gap = int(math.log(1.0 - rng.random()) / log_skip)
                pos += gap + 1
                if pos >= block:
                    break
                yield (child_base + pos // width, parent_base + pos % width)

    return edge_stream()


def layered_from_levels(
    level_sizes: Sequence[int],
    edges: Sequence[Tuple[Tuple[int, int], Tuple[int, int]]],
) -> LayeredGraph:
    """Build a layered graph from explicit level sizes and (child, parent) edges.

    Convenience for hand-built examples (e.g. reproducing Figure 2): node
    ``(level, index)`` exists for every ``index < level_sizes[level]``.
    """
    levels: Dict[NodeId, int] = {}
    for level, size in enumerate(level_sizes):
        if size < 0:
            raise ValueError(f"level sizes must be non-negative, got {size}")
        for index in range(size):
            levels[(level, index)] = level
    return LayeredGraph(levels=levels, edges=edges)
