"""Graph substrates and instance generators.

This subpackage contains the combinatorial structures every algorithm in
the reproduction operates on:

* :mod:`repro.graphs.layered` -- layered DAGs, the input shape of the
  token dropping game (Section 4 of the paper);
* :mod:`repro.graphs.bipartite` -- customer--server bipartite graphs used
  by stable assignments and semi-matchings (Sections 1.3 and 7);
* :mod:`repro.graphs.hypergraph` -- hypergraphs in which customers act as
  hyperedges over servers (Section 7.1);
* :mod:`repro.graphs.compact` -- CSR-style compact cores with dense
  integer ids, the substrate of the fast-path algorithm kernels (see
  :mod:`repro.dispatch`);
* :mod:`repro.graphs.generators` -- reproducible generators for the
  instance families used in the paper's arguments and our experiments
  (d-regular graphs, perfect d-ary trees, random bipartite workloads,
  paths, cycles, grids, ...);
* :mod:`repro.graphs.validation` -- structural checks (simplicity, degree
  bounds, bipartiteness, girth) used to validate generated instances and
  lower-bound constructions.
"""

from repro.graphs.bipartite import CustomerServerGraph
from repro.graphs.compact import (
    CompactBipartite,
    CompactGraph,
    DeltaError,
    DeltaOverlayGraph,
    intern_nodes,
)
from repro.graphs.hypergraph import Hypergraph
from repro.graphs.layered import LayeredGraph
from repro.graphs.generators import (
    bounded_degree_gnp,
    caterpillar_graph,
    complete_bipartite,
    cycle_graph,
    grid_graph,
    high_girth_regular_graph,
    layered_from_levels,
    path_graph,
    perfect_dary_tree,
    random_bipartite_customer_server,
    random_layered_graph,
    random_regular_graph,
    star_graph,
)
from repro.graphs.validation import (
    GraphValidationError,
    check_bipartite,
    check_girth_at_least,
    check_is_tree,
    check_max_degree,
    check_perfect_dary_tree,
    check_simple_graph,
    degree_histogram,
    graph_girth,
    is_regular,
    tree_heights,
)

__all__ = [
    "CompactBipartite",
    "CompactGraph",
    "CustomerServerGraph",
    "DeltaError",
    "DeltaOverlayGraph",
    "GraphValidationError",
    "intern_nodes",
    "Hypergraph",
    "LayeredGraph",
    "bounded_degree_gnp",
    "caterpillar_graph",
    "check_bipartite",
    "check_girth_at_least",
    "check_is_tree",
    "check_max_degree",
    "check_perfect_dary_tree",
    "check_simple_graph",
    "complete_bipartite",
    "cycle_graph",
    "degree_histogram",
    "graph_girth",
    "grid_graph",
    "high_girth_regular_graph",
    "is_regular",
    "layered_from_levels",
    "path_graph",
    "perfect_dary_tree",
    "random_bipartite_customer_server",
    "random_layered_graph",
    "random_regular_graph",
    "star_graph",
    "tree_heights",
]
