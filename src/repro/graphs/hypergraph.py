"""Hypergraphs with customers as hyperedges.

Section 7.1 of the paper generalises the token dropping game (and stable
assignment) by viewing the bipartite customer--server graph as a
hypergraph: every customer becomes a hyperedge over the servers it is
adjacent to, and orienting a hyperedge means choosing one endpoint as its
*head* (the chosen server).

:class:`Hypergraph` stores this view explicitly.  It is intentionally a
thin structure -- orientation semantics (heads, badness, happiness) live
in :mod:`repro.core.assignment.problem` -- but it owns the degree/rank
bookkeeping used throughout the Section 7 bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Set, Tuple

from repro.graphs.bipartite import CustomerServerGraph

NodeId = Hashable
EdgeId = Hashable


class HypergraphError(ValueError):
    """Raised when a hypergraph is malformed."""


@dataclass(frozen=True)
class Hypergraph:
    """An immutable hypergraph over a fixed vertex set.

    Parameters
    ----------
    vertices:
        Iterable of vertex identifiers (the servers, in the assignment
        interpretation).
    hyperedges:
        Mapping from hyperedge identifier (the customer) to an iterable of
        at least one distinct vertex.
    """

    edge_members: Mapping[EdgeId, FrozenSet[NodeId]]
    vertex_edges: Mapping[NodeId, FrozenSet[EdgeId]]

    def __init__(
        self,
        vertices: Iterable[NodeId],
        hyperedges: Mapping[EdgeId, Iterable[NodeId]],
    ) -> None:
        vertex_set = list(dict.fromkeys(vertices))
        vertex_edges: Dict[NodeId, Set[EdgeId]] = {v: set() for v in vertex_set}
        edge_members: Dict[EdgeId, FrozenSet[NodeId]] = {}

        for edge_id, members in hyperedges.items():
            member_set = frozenset(members)
            if not member_set:
                raise HypergraphError(f"hyperedge {edge_id!r} has no endpoints")
            unknown = member_set - set(vertex_edges)
            if unknown:
                raise HypergraphError(
                    f"hyperedge {edge_id!r} references unknown vertex/vertices "
                    f"{sorted(map(repr, unknown))}"
                )
            if edge_id in edge_members:
                raise HypergraphError(f"duplicate hyperedge identifier {edge_id!r}")
            edge_members[edge_id] = member_set
            for v in member_set:
                vertex_edges[v].add(edge_id)

        object.__setattr__(self, "edge_members", dict(edge_members))
        object.__setattr__(
            self, "vertex_edges", {v: frozenset(e) for v, e in vertex_edges.items()}
        )

    # ------------------------------------------------------------------
    @property
    def vertices(self) -> Tuple[NodeId, ...]:
        """Vertex identifiers in deterministic order."""
        return tuple(sorted(self.vertex_edges, key=repr))

    @property
    def hyperedges(self) -> Tuple[EdgeId, ...]:
        """Hyperedge identifiers in deterministic order."""
        return tuple(sorted(self.edge_members, key=repr))

    def members(self, edge_id: EdgeId) -> FrozenSet[NodeId]:
        """Vertices contained in hyperedge ``edge_id``."""
        return self.edge_members[edge_id]

    def edges_at(self, vertex: NodeId) -> FrozenSet[EdgeId]:
        """Hyperedges incident to ``vertex``."""
        return self.vertex_edges[vertex]

    def rank(self, edge_id: EdgeId) -> int:
        """Number of endpoints of one hyperedge."""
        return len(self.edge_members[edge_id])

    def max_rank(self) -> int:
        """C: the maximum hyperedge rank (0 if there are no hyperedges)."""
        if not self.edge_members:
            return 0
        return max(len(m) for m in self.edge_members.values())

    def vertex_degree(self, vertex: NodeId) -> int:
        """Number of hyperedges incident to ``vertex``."""
        return len(self.vertex_edges[vertex])

    def max_vertex_degree(self) -> int:
        """S: the maximum vertex degree (0 if there are no vertices)."""
        if not self.vertex_edges:
            return 0
        return max(len(e) for e in self.vertex_edges.values())

    def num_hyperedges(self) -> int:
        """Number of hyperedges."""
        return len(self.edge_members)

    def __len__(self) -> int:
        return len(self.vertex_edges)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Hypergraph(vertices={len(self)}, hyperedges={self.num_hyperedges()}, "
            f"max_rank={self.max_rank()}, max_vertex_degree={self.max_vertex_degree()})"
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_customer_server(cls, graph: CustomerServerGraph) -> "Hypergraph":
        """View a customer--server graph as a hypergraph (customers = hyperedges)."""
        return cls(
            vertices=graph.servers,
            hyperedges={c: graph.servers_of(c) for c in graph.customers},
        )

    def to_customer_server(self) -> CustomerServerGraph:
        """Inverse of :meth:`from_customer_server`."""
        edges = [
            (edge_id, vertex)
            for edge_id in self.hyperedges
            for vertex in sorted(self.edge_members[edge_id], key=repr)
        ]
        return CustomerServerGraph(
            customers=self.hyperedges, servers=self.vertices, edges=edges
        )
