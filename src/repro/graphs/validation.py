"""Structural validation utilities for generated instances.

These checks back two kinds of uses:

* tests assert that generators produce what they promise (regularity,
  degree caps, bipartiteness, girth);
* the lower-bound experiments verify the *premises* of the paper's
  indistinguishability arguments (e.g. "Δ-regular with girth ≥ Δ + 1",
  "perfect Δ-ary tree") before measuring anything on the instance.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Optional, Set, Tuple

import networkx as nx

NodeId = Hashable


class GraphValidationError(ValueError):
    """Raised when a graph fails a structural check."""


def check_simple_graph(graph: nx.Graph) -> None:
    """Assert the graph is simple and undirected (no self-loops, no multi-edges).

    ``networkx.Graph`` cannot represent parallel edges, so only self-loops
    need an explicit check; directedness is rejected by type.
    """
    if graph.is_directed():
        raise GraphValidationError("expected an undirected graph")
    loops = list(nx.selfloop_edges(graph))
    if loops:
        raise GraphValidationError(f"graph contains self-loop(s): {loops[:5]}")


def check_max_degree(graph: nx.Graph, max_degree: int) -> None:
    """Assert that every node has degree at most ``max_degree``."""
    offenders = [(n, d) for n, d in graph.degree() if d > max_degree]
    if offenders:
        raise GraphValidationError(
            f"{len(offenders)} node(s) exceed max degree {max_degree}; "
            f"examples: {offenders[:5]}"
        )


def is_regular(graph: nx.Graph, degree: Optional[int] = None) -> bool:
    """Return True if all nodes share one degree (optionally a specific one)."""
    degrees = {d for _, d in graph.degree()}
    if not degrees:
        return True
    if len(degrees) != 1:
        return False
    if degree is not None:
        return degrees == {degree}
    return True


def check_bipartite(graph: nx.Graph) -> Tuple[Set[NodeId], Set[NodeId]]:
    """Return a bipartition of the graph or raise if none exists."""
    if not nx.is_bipartite(graph):
        raise GraphValidationError("graph is not bipartite")
    left, right = (
        nx.bipartite.sets(graph) if graph.number_of_nodes() else (set(), set())
    )
    return set(left), set(right)


def graph_girth(graph: nx.Graph, cap: Optional[int] = None) -> float:
    """Return the girth (length of the shortest cycle), or ``inf`` for forests.

    A breadth-first search from every node; with ``cap`` given, the search
    stops once it is certain the girth is at least ``cap`` (useful when we
    only need to certify "girth ≥ g").
    """
    best = math.inf
    for source in graph.nodes():
        depth: Dict[NodeId, int] = {source: 0}
        parent: Dict[NodeId, Optional[NodeId]] = {source: None}
        queue = [source]
        while queue:
            current = queue.pop(0)
            limit = best if cap is None else min(best, cap)
            if 2 * depth[current] >= limit:
                continue
            for neighbor in graph.neighbors(current):
                if neighbor == parent[current]:
                    continue
                if neighbor in depth:
                    cycle_len = depth[current] + depth[neighbor] + 1
                    best = min(best, cycle_len)
                else:
                    depth[neighbor] = depth[current] + 1
                    parent[neighbor] = current
                    queue.append(neighbor)
    if cap is not None and best >= cap:
        return best if best != math.inf else math.inf
    return best


def check_girth_at_least(graph: nx.Graph, girth: int) -> None:
    """Assert that the graph has girth at least ``girth``."""
    actual = graph_girth(graph, cap=girth)
    if actual < girth:
        raise GraphValidationError(
            f"graph girth {actual} is below the required {girth}"
        )


def check_is_tree(graph: nx.Graph) -> None:
    """Assert that the graph is a tree (connected and acyclic)."""
    if graph.number_of_nodes() == 0:
        raise GraphValidationError("empty graph is not a tree")
    if not nx.is_tree(graph):
        raise GraphValidationError("graph is not a tree")


def tree_heights(graph: nx.Graph) -> Dict[NodeId, int]:
    """Heights h(v) = distance to the closest leaf, for every node of a tree.

    Matches the paper's definition in Section 6 (leaves have height 0).
    Runs a multi-source BFS from all leaves.
    """
    check_is_tree(graph)
    if graph.number_of_nodes() == 1:
        only = next(iter(graph.nodes()))
        return {only: 0}
    leaves = [n for n in graph.nodes() if graph.degree(n) == 1]
    heights: Dict[NodeId, int] = {leaf: 0 for leaf in leaves}
    frontier = list(leaves)
    while frontier:
        next_frontier = []
        for node in frontier:
            for neighbor in graph.neighbors(node):
                if neighbor not in heights:
                    heights[neighbor] = heights[node] + 1
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return heights


def check_perfect_dary_tree(graph: nx.Graph, degree: int, root: NodeId) -> int:
    """Verify a perfect d-ary tree (non-leaves have degree d, leaves equal depth).

    Returns the common leaf depth.  Raises :class:`GraphValidationError`
    on any violation.
    """
    check_is_tree(graph)
    depths = nx.single_source_shortest_path_length(graph, root)
    leaf_depths = {
        d for node, d in depths.items() if graph.degree(node) <= 1 and node != root
    }
    if graph.number_of_nodes() == 1:
        return 0
    if len(leaf_depths) != 1:
        raise GraphValidationError(
            f"leaves are at multiple depths {sorted(leaf_depths)}; tree is not perfect"
        )
    depth = leaf_depths.pop()
    for node in graph.nodes():
        node_depth = depths[node]
        if node_depth == depth:
            continue  # a leaf
        if graph.degree(node) != degree:
            raise GraphValidationError(
                f"non-leaf node {node!r} has degree {graph.degree(node)}, "
                f"expected {degree}"
            )
    return depth


def degree_histogram(graph: nx.Graph) -> Dict[int, int]:
    """Return ``{degree: count}`` for the graph (useful in workload reports)."""
    histogram: Dict[int, int] = {}
    for _, degree in graph.degree():
        histogram[degree] = histogram.get(degree, 0) + 1
    return dict(sorted(histogram.items()))


def edges_as_tuples(graph: nx.Graph) -> Tuple[Tuple[NodeId, NodeId], ...]:
    """Edges of a networkx graph as a deterministic tuple of sorted pairs."""
    out = []
    for u, v in graph.edges():
        try:
            pair = (u, v) if u <= v else (v, u)
        except TypeError:
            pair = tuple(sorted((u, v), key=repr))
        out.append(pair)
    return tuple(sorted(out, key=repr))
