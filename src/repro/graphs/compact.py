"""Compact indexed graph cores: CSR adjacency over dense integer ids.

Every algorithm in the reproduction was originally written against
dict-of-Hashable adjacency maps (:class:`~repro.core.orientation.problem.
OrientationProblem`, :class:`~repro.graphs.bipartite.CustomerServerGraph`).
Those are the *reference* representations: easy to inspect, easy to prove
correct, and agnostic about what a node id is.  Their hot loops, however,
pay hashing, boxing, and ``repr``-based ordering costs on every edge
visit.

This module re-represents an instance **once**, up front:

* node ids (arbitrary Hashables) are interned into dense integers
  ``0 .. n-1`` in ``repr``-sorted order — the same deterministic order the
  reference structures use — so "dense id order" and "reference iteration
  order" coincide and fast-path kernels can reproduce reference results
  exactly;
* adjacency is stored in flat CSR arrays (:mod:`array` of signed 64-bit
  ints, exposed as :class:`memoryview`\\ s — no numpy dependency);
* the translation is lossless: :meth:`CompactGraph.to_orientation_problem`
  and :meth:`CompactBipartite.to_customer_server_graph` rebuild structures
  that compare equal to the originals.

The int-array algorithm kernels that run on these structures live next to
their reference implementations (``repro.core.orientation._kernels``,
``repro.core.assignment._kernels``) and are dispatched automatically from
the public entry points; see :mod:`repro.dispatch` for the dispatch rule.
"""

from __future__ import annotations

from array import array
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

NodeId = Hashable

#: Typecode for all index arrays: signed 64-bit, large enough for any
#: realistic instance and directly usable as a memoryview format.
INDEX_TYPECODE = "q"

_ITEMSIZE = array(INDEX_TYPECODE).itemsize


def _zeros(n: int) -> array:
    """A zero-initialised index array of length ``n``."""
    return array(INDEX_TYPECODE, bytes(_ITEMSIZE * n))


def intern_nodes(
    nodes: Iterable[NodeId],
) -> Tuple[Tuple[NodeId, ...], Dict[NodeId, int]]:
    """Intern arbitrary Hashable node ids into dense integers.

    Returns ``(ids, index_of)`` where ``ids[i]`` is the original id of
    dense node ``i`` and ``index_of`` inverts the mapping.  The order is
    ``repr``-sorted, matching the deterministic iteration order of the
    reference dict structures (``OrientationProblem.nodes``,
    ``CustomerServerGraph.customers`` / ``.servers``), which is what lets
    the compact kernels replay reference tie-breaking exactly.
    """
    ids = tuple(sorted(set(nodes), key=repr))
    return ids, {node: i for i, node in enumerate(ids)}


def _csr_from_pairs(
    n: int, pairs: Sequence[Tuple[int, int]], payloads: Sequence[int]
) -> Tuple[array, array, array]:
    """Build CSR ``(indptr, indices, slot_payload)`` from (row, col, payload) data.

    Within each row, columns are stored in ascending dense-id order (which
    is ``repr`` order by construction of the interning).
    """
    counts = [0] * (n + 1)
    for row, _ in pairs:
        counts[row + 1] += 1
    indptr = array(INDEX_TYPECODE, counts)
    for i in range(1, n + 1):
        indptr[i] += indptr[i - 1]
    indices = _zeros(len(pairs))
    slot_payload = _zeros(len(pairs))
    cursor = list(indptr[:n])
    order = sorted(range(len(pairs)), key=lambda k: pairs[k])
    for k in order:
        row, col = pairs[k]
        slot = cursor[row]
        indices[slot] = col
        slot_payload[slot] = payloads[k]
        cursor[row] = slot + 1
    return indptr, indices, slot_payload


def _csr_from_edge_arrays(
    n: int, edge_u: array, edge_v: array
) -> Tuple[array, array, array]:
    """CSR over both directions of ``m`` undirected edges, edge ids as payload.

    Produces exactly the arrays ``_csr_from_pairs`` would for the pair
    list ``[(u, v), (v, u) for each edge]`` with payloads ``[e, e]`` —
    ascending columns within each row — but with two counting passes over
    flat ``array('q')`` scratch instead of a sorted list of ``2m`` tuples,
    so peak memory stays a few machine words per edge.
    """
    m = len(edge_u)
    # Pass 1: bucket the 2m directed pairs by *column*.
    col_counts = [0] * (n + 1)
    for e in range(m):
        col_counts[edge_v[e] + 1] += 1
        col_counts[edge_u[e] + 1] += 1
    for i in range(1, n + 1):
        col_counts[i] += col_counts[i - 1]
    by_col_row = _zeros(2 * m)
    by_col_edge = _zeros(2 * m)
    # col_counts[c] doubles as the fill cursor of bucket c; after the
    # loop it holds bucket c's *end*, which pass 2 uses as boundaries.
    for e in range(m):
        u = edge_u[e]
        v = edge_v[e]
        s = col_counts[v]
        by_col_row[s] = u
        by_col_edge[s] = e
        col_counts[v] = s + 1
        s = col_counts[u]
        by_col_row[s] = v
        by_col_edge[s] = e
        col_counts[u] = s + 1

    # Pass 2: row degrees -> indptr, then place the column-sorted pairs
    # into per-row cursors (each row receives its columns ascending).
    row_counts = [0] * (n + 1)
    for e in range(m):
        row_counts[edge_u[e] + 1] += 1
        row_counts[edge_v[e] + 1] += 1
    indptr = array(INDEX_TYPECODE, row_counts)
    for i in range(1, n + 1):
        indptr[i] += indptr[i - 1]
    indices = _zeros(2 * m)
    slot_edge = _zeros(2 * m)
    cursor = list(indptr[:n])
    base = 0
    for c in range(n):
        end = col_counts[c]
        for s in range(base, end):
            row = by_col_row[s]
            slot = cursor[row]
            indices[slot] = c
            slot_edge[slot] = by_col_edge[s]
            cursor[row] = slot + 1
        base = end
    return indptr, indices, slot_edge


def _csr_from_directed(
    n_rows: int, n_cols: int, rows: array, cols: array
) -> Tuple[array, array]:
    """CSR ``(indptr, indices)`` of directed (row, col) pairs, columns ascending.

    The single-direction analogue of :func:`_csr_from_edge_arrays` (used
    for each side of a bipartite graph): counting sort by column, then
    placement into row cursors, all in flat arrays.
    """
    m = len(rows)
    col_counts = [0] * (n_cols + 1)
    for k in range(m):
        col_counts[cols[k] + 1] += 1
    for i in range(1, n_cols + 1):
        col_counts[i] += col_counts[i - 1]
    by_col_row = _zeros(m)
    for k in range(m):
        c = cols[k]
        s = col_counts[c]
        by_col_row[s] = rows[k]
        col_counts[c] = s + 1

    row_counts = [0] * (n_rows + 1)
    for k in range(m):
        row_counts[rows[k] + 1] += 1
    indptr = array(INDEX_TYPECODE, row_counts)
    for i in range(1, n_rows + 1):
        indptr[i] += indptr[i - 1]
    indices = _zeros(m)
    cursor = list(indptr[:n_rows])
    base = 0
    for c in range(n_cols):
        end = col_counts[c]
        for s in range(base, end):
            row = by_col_row[s]
            slot = cursor[row]
            indices[slot] = c
            cursor[row] = slot + 1
        base = end
    return indptr, indices


class ShmError(RuntimeError):
    """Raised for invalid shared-memory graph lifecycle operations."""


#: The flat CSR buffers a shared-memory export packs, in segment order.
_SHM_FIELDS = ("indptr", "indices", "slot_edge", "edge_u", "edge_v")

#: Process-local refcounts per live segment name.  Every in-process
#: handle (the owner *and* same-process attachments) holds one reference;
#: the unlink requested by the owner's ``close()`` is deferred until the
#: last in-process handle goes away, so a same-process attachment never
#: has the segment pulled out from under it while other processes keep
#: their (POSIX-guaranteed) mappings regardless.
_SHM_REFS: Dict[str, List] = {}


def _shm_acquire(name: str) -> None:
    entry = _SHM_REFS.setdefault(name, [0, False])
    entry[0] += 1


def _shm_release(name: str, shm, *, request_unlink: bool) -> None:
    entry = _SHM_REFS.get(name)
    if entry is None:  # pragma: no cover - defensive; close() is idempotent
        return
    if request_unlink:
        entry[1] = True
    entry[0] -= 1
    if entry[0] <= 0:
        del _SHM_REFS[name]
        if entry[1]:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


class ShmGraph:
    """A handle over one graph's shared-memory segment.

    Returned by :meth:`CompactGraph.to_shm` (``owner=True``: this process
    created the segment and is responsible for unlinking it) and
    :meth:`CompactGraph.attach_shm` (``owner=False``: ``graph`` is a
    zero-copy :class:`CompactGraph` whose CSR buffers are memoryviews
    straight into the mapped segment).

    ``meta`` is a small picklable dict — segment name plus array lengths —
    which is all another process needs to attach; the ~8 bytes/slot of
    array payload never crosses a pipe.  ``close()`` releases this
    handle's views and mapping (idempotent); the owner's ``close()``
    additionally unlinks the segment once the last same-process handle is
    gone.  Attached graphs must not be used after ``close()``.
    """

    __slots__ = ("meta", "graph", "owner", "_shm", "_views", "_closed")

    def __init__(self, meta: Dict, graph: "CompactGraph", owner: bool, shm, views):
        self.meta = meta
        self.graph = graph
        self.owner = owner
        self._shm = shm
        self._views = views
        self._closed = False
        _shm_acquire(meta["name"])

    def close(self) -> None:
        """Release this handle's mapping; the owner's close also unlinks."""
        if self._closed:
            return
        self._closed = True
        for view in reversed(self._views):
            view.release()
        self._views = ()
        self._shm.close()
        _shm_release(self.meta["name"], self._shm, request_unlink=self.owner)

    def __enter__(self) -> "ShmGraph":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        role = "owner" if self.owner else "attached"
        return f"ShmGraph({self.meta['name']!r}, {role}, {state})"


class SnapshotError(ValueError):
    """Raised for malformed or truncated array-snapshot files."""


#: Magic prefix of the single-file array snapshot format (version in the
#: trailing byte; bump it on incompatible layout changes).
SNAPSHOT_MAGIC = b"RPROSNP1"


def write_array_snapshot(path, sections: Dict[str, "array"], meta=None) -> None:
    """Write named ``array('q')`` sections into one snapshot file.

    Layout: the 8-byte magic, an 8-byte little-endian header length, a
    JSON header (``{"version", "meta", "sections": [[name, length], ...]}``),
    zero padding up to an 8-byte boundary, then the raw int64 payload of
    every section concatenated in header order.  The payload alignment is
    what makes the file mmap-able: :class:`ArraySnapshot` casts slices of
    the mapping straight to ``'q'`` memoryviews, so loading never copies
    the arrays.

    The write is atomic (temp file + rename in the target directory): a
    crash mid-write can never leave a truncated file under ``path``,
    which matters when a live server snapshots over its previous state.
    """
    import json
    import os

    names = list(sections)
    header = {
        "version": 1,
        "meta": {} if meta is None else meta,
        "sections": [[name, len(sections[name])] for name in names],
    }
    blob = json.dumps(header, separators=(",", ":"), sort_keys=True).encode("utf-8")
    pad = (-(len(SNAPSHOT_MAGIC) + 8 + len(blob))) % _ITEMSIZE
    tmp = f"{path}.tmp"
    try:
        with open(tmp, "wb") as fh:
            fh.write(SNAPSHOT_MAGIC)
            fh.write(len(blob).to_bytes(8, "little"))
            fh.write(blob)
            fh.write(b"\0" * pad)
            for name in names:
                fh.write(memoryview(sections[name]).cast("B"))
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ArraySnapshot:
    """A read-only, mmap-backed view of a :func:`write_array_snapshot` file.

    ``meta`` is the header's meta dict; :meth:`section` returns each
    named section as a zero-copy ``'q'`` memoryview into the mapping.
    ``close()`` releases the views and the mapping — consumers that keep
    a section (e.g. a :class:`CompactGraph` built over it) must keep the
    snapshot open for as long as they use it.
    """

    def __init__(self, path) -> None:
        import json
        import mmap

        self.path = path
        self._fh = open(path, "rb")
        self._views: List = []
        try:
            self._mm = mmap.mmap(self._fh.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError:
            self._fh.close()
            raise SnapshotError(f"{path}: empty or unmappable snapshot file")
        try:
            raw = memoryview(self._mm)
            self._views.append(raw)
            magic = bytes(raw[: len(SNAPSHOT_MAGIC)])
            if magic != SNAPSHOT_MAGIC:
                raise SnapshotError(
                    f"{path}: bad magic {magic!r} (expected {SNAPSHOT_MAGIC!r})"
                )
            pos = len(SNAPSHOT_MAGIC)
            header_len = int.from_bytes(bytes(raw[pos : pos + 8]), "little")
            pos += 8
            if pos + header_len > len(raw):
                raise SnapshotError(f"{path}: truncated header")
            header = json.loads(bytes(raw[pos : pos + header_len]))
            pos += header_len
            pos += (-pos) % _ITEMSIZE
            if header.get("version") != 1:
                raise SnapshotError(
                    f"{path}: unsupported snapshot version {header.get('version')!r}"
                )
            self.meta = header["meta"]
            self._sections: Dict[str, memoryview] = {}
            for name, length in header["sections"]:
                nbytes = length * _ITEMSIZE
                if pos + nbytes > len(raw):
                    raise SnapshotError(f"{path}: truncated section {name!r}")
                sliced = raw[pos : pos + nbytes]
                cast = sliced.cast(INDEX_TYPECODE)
                self._views.append(sliced)
                self._views.append(cast)
                self._sections[name] = cast
                pos += nbytes
        except Exception:
            self.close()
            raise

    def section(self, name: str) -> memoryview:
        """Zero-copy ``'q'`` view of one named section."""
        return self._sections[name]

    def section_names(self) -> Tuple[str, ...]:
        return tuple(self._sections)

    def close(self) -> None:
        self._sections = {}
        for view in reversed(self._views):
            view.release()
        self._views = []
        mm = getattr(self, "_mm", None)
        if mm is not None:
            mm.close()
            self._mm = None
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "ArraySnapshot":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArraySnapshot({self.path!r}, sections={list(self._sections)})"


class CompactGraph:
    """An immutable undirected simple graph in CSR form.

    Attributes
    ----------
    node_ids:
        Dense id → original Hashable id, ``repr``-sorted.
    indptr, indices:
        CSR adjacency: the neighbours of dense node ``i`` are
        ``indices[indptr[i]:indptr[i+1]]``, ascending.
    slot_edge:
        Parallel to ``indices``: the edge index of each adjacency slot.
    edge_u, edge_v:
        Per-edge dense endpoints in canonical
        :func:`~repro.core.orientation.problem.edge_key` order, with edges
        sorted exactly like ``OrientationProblem.edges`` (by ``repr`` of
        the canonical key), so edge index ``e`` means the same edge in
        both representations.
    """

    __slots__ = (
        "node_ids",
        "index_of",
        "indptr",
        "indices",
        "slot_edge",
        "edge_u",
        "edge_v",
        "derived",
        "_problem",
        "_edge_index",
    )

    def __init__(
        self,
        node_ids: Tuple[NodeId, ...],
        index_of: Dict[NodeId, int],
        indptr: array,
        indices: array,
        slot_edge: array,
        edge_u: array,
        edge_v: array,
    ) -> None:
        self.node_ids = node_ids
        self.index_of = index_of
        self.indptr = indptr
        self.indices = indices
        self.slot_edge = slot_edge
        self.edge_u = edge_u
        self.edge_v = edge_v
        #: Memo for immutable structures kernels derive from this graph
        #: (e.g. directed repr ranks); keyed by kernel family.  Graphs are
        #: immutable, so derived structures are computed at most once.
        self.derived: Dict[str, object] = {}
        self._problem = None
        self._edge_index: Optional[Dict[Tuple[NodeId, NodeId], int]] = None

    # -- construction ---------------------------------------------------
    @classmethod
    def from_edges(
        cls, edges: Iterable[Tuple[NodeId, NodeId]], nodes: Iterable[NodeId] = ()
    ) -> "CompactGraph":
        """Build directly from an undirected edge list (plus isolated nodes).

        Applies the same validation as :class:`OrientationProblem`
        (self-loops and duplicate edges are rejected) without building any
        per-node dict-of-frozensets, so scenario builders can emit compact
        instances without paying for the reference representation first.
        """
        from repro.core.orientation.problem import OrientationError, edge_key

        keys: Dict[Tuple[NodeId, NodeId], None] = {}
        for u, v in edges:
            key = edge_key(u, v)
            if key in keys:
                raise OrientationError(f"duplicate edge {key!r}")
            keys[key] = None
        all_nodes: List[NodeId] = list(nodes)
        for u, v in keys:
            all_nodes.append(u)
            all_nodes.append(v)
        node_ids, index_of = intern_nodes(all_nodes)
        ordered_keys = sorted(keys, key=repr)

        edge_u = _zeros(len(ordered_keys))
        edge_v = _zeros(len(ordered_keys))
        pairs: List[Tuple[int, int]] = []
        payloads: List[int] = []
        for e, (u, v) in enumerate(ordered_keys):
            ui, vi = index_of[u], index_of[v]
            edge_u[e] = ui
            edge_v[e] = vi
            pairs.append((ui, vi))
            pairs.append((vi, ui))
            payloads.append(e)
            payloads.append(e)
        indptr, indices, slot_edge = _csr_from_pairs(len(node_ids), pairs, payloads)
        return cls(node_ids, index_of, indptr, indices, slot_edge, edge_u, edge_v)

    @classmethod
    def from_edge_stream(
        cls, edges: Iterable[Tuple[NodeId, NodeId]], nodes: Iterable[NodeId] = ()
    ) -> "CompactGraph":
        """Build from an edge *stream* without per-edge dicts or tuple lists.

        Bit-for-bit equivalent to :meth:`from_edges` — same node order,
        edge order, CSR layout, and validation errors — but sized for
        million-edge streams: endpoints are interned first-seen into
        growing ``array('q')`` buffers as the stream is consumed, edges
        are then ordered by the ``repr`` of their canonical key
        (assembled from per-node ``repr`` strings cached once per node,
        so no per-edge tuples are ever built), and adjacency is
        bucket-sorted into CSR by :func:`_csr_from_edge_arrays`.  Peak
        overhead is a few machine words plus one key string per edge,
        versus the dict, key list, and 2m-tuple pair list of the
        reference constructor.

        The dict path stays the semantic reference: equality is enforced
        on seeded instances up to n=10^4 in
        ``tests/graphs/test_compact_stream.py``.
        """
        from repro.core.orientation.problem import OrientationError, edge_key

        tmp_index: Dict[NodeId, int] = {}
        tmp_nodes: List[NodeId] = []
        tmp_reprs: List[str] = []

        def intern(node: NodeId) -> int:
            i = tmp_index.get(node)
            if i is None:
                i = len(tmp_nodes)
                tmp_index[node] = i
                tmp_nodes.append(node)
                tmp_reprs.append(repr(node))
            return i

        for node in nodes:
            intern(node)
        stream_u = array(INDEX_TYPECODE)
        stream_v = array(INDEX_TYPECODE)
        for u, v in edges:
            ku, kv = edge_key(u, v)
            stream_u.append(intern(ku))
            stream_v.append(intern(kv))
        m = len(stream_u)

        # Exactly ``repr((ku, kv))`` of each canonical key, assembled
        # from the cached per-node reprs; sorting by it reproduces the
        # reference edge order (sorted() is stable, so ties keep
        # first-seen order like the reference dict's insertion order).
        edge_strs = [
            "(" + tmp_reprs[stream_u[e]] + ", " + tmp_reprs[stream_v[e]] + ")"
            for e in range(m)
        ]
        order = sorted(range(m), key=edge_strs.__getitem__)

        # Duplicates now sit inside runs of equal key strings (a run is
        # almost always a single edge; distinct nodes can share a repr
        # only for pathological id types).
        k = 0
        while k < m:
            j = k + 1
            while j < m and edge_strs[order[j]] == edge_strs[order[k]]:
                j += 1
            if j - k > 1:
                run_pairs = set()
                for t in range(k, j):
                    e = order[t]
                    pair = (stream_u[e], stream_v[e])
                    if pair in run_pairs:
                        raise OrientationError("duplicate edge " + edge_strs[e])
                    run_pairs.add(pair)
            k = j

        n = len(tmp_nodes)
        node_order = sorted(range(n), key=tmp_reprs.__getitem__)
        node_ids = tuple(tmp_nodes[i] for i in node_order)
        index_of = {node: i for i, node in enumerate(node_ids)}
        rank = _zeros(n)
        for dense, i in enumerate(node_order):
            rank[i] = dense

        edge_u = _zeros(m)
        edge_v = _zeros(m)
        for e, k in enumerate(order):
            edge_u[e] = rank[stream_u[k]]
            edge_v[e] = rank[stream_v[k]]
        del stream_u, stream_v, edge_strs, order, tmp_reprs, tmp_index, rank

        indptr, indices, slot_edge = _csr_from_edge_arrays(n, edge_u, edge_v)
        return cls(node_ids, index_of, indptr, indices, slot_edge, edge_u, edge_v)

    @classmethod
    def from_orientation_problem(cls, problem) -> "CompactGraph":
        """Intern an :class:`OrientationProblem` (lossless; see round-trip tests)."""
        compact = cls.from_edges(problem.edges, nodes=problem.adjacency.keys())
        compact._problem = problem
        return compact

    def to_orientation_problem(self):
        """The equivalent reference :class:`OrientationProblem` (cached)."""
        if self._problem is None:
            from repro.core.orientation.problem import OrientationProblem

            self._problem = OrientationProblem(
                edges=self.edge_keys(), nodes=self.node_ids
            )
        return self._problem

    # -- queries --------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def num_edges(self) -> int:
        return len(self.edge_u)

    def degree(self, i: int) -> int:
        """Degree of dense node ``i``."""
        return self.indptr[i + 1] - self.indptr[i]

    def max_degree(self) -> int:
        ptr = self.indptr
        return max(
            (ptr[i + 1] - ptr[i] for i in range(self.num_nodes)), default=0
        )

    def neighbors(self, i: int) -> memoryview:
        """Dense neighbour ids of dense node ``i`` as a zero-copy memoryview."""
        return memoryview(self.indices)[self.indptr[i] : self.indptr[i + 1]]

    def edge_keys(self) -> Tuple[Tuple[NodeId, NodeId], ...]:
        """Original-id canonical edge keys, in edge-index order (cached)."""
        cached = self.derived.get("edge_keys")
        if cached is None:
            ids = self.node_ids
            cached = tuple(
                (ids[self.edge_u[e]], ids[self.edge_v[e]])
                for e in range(self.num_edges)
            )
            self.derived["edge_keys"] = cached
        return cached

    def edge_index(self, u: NodeId, v: NodeId) -> int:
        """Edge index of the undirected edge {u, v} (original ids)."""
        from repro.core.orientation.problem import edge_key

        if self._edge_index is None:
            self._edge_index = {key: e for e, key in enumerate(self.edge_keys())}
        return self._edge_index[edge_key(u, v)]

    # -- shared memory --------------------------------------------------
    def to_shm(self) -> ShmGraph:
        """Export the five CSR buffers into one shared-memory segment.

        The returned :class:`ShmGraph` owns the segment: ship its
        picklable ``meta`` to worker processes, have them
        :meth:`attach_shm`, and ``close()`` the handle (which unlinks the
        segment) when the workers are done.  This graph itself is left
        untouched — the export is one bulk copy per buffer.
        """
        from multiprocessing import shared_memory

        buffers = [getattr(self, field) for field in _SHM_FIELDS]
        lengths = [len(buf) for buf in buffers]
        total = sum(lengths) * _ITEMSIZE
        shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        raw = shm.buf
        offset = 0
        for buf in buffers:
            nbytes = len(buf) * _ITEMSIZE
            raw[offset : offset + nbytes] = memoryview(buf).cast("B")
            offset += nbytes
        meta = {
            "name": shm.name,
            "num_nodes": self.num_nodes,
            "lengths": dict(zip(_SHM_FIELDS, lengths)),
        }
        return ShmGraph(meta, self, owner=True, shm=shm, views=())

    @classmethod
    def attach_shm(cls, meta: Dict) -> ShmGraph:
        """Attach to a segment exported by :meth:`to_shm` — zero copy.

        The handle's ``graph`` reads the CSR buffers directly out of the
        mapped segment.  It is a *dense-id* graph: original node ids are
        deliberately not shipped (that is the point of the export), so
        ``node_ids`` is the identity ``range`` and only kernels that work
        purely on dense ids should run on it.  The memo caches start
        fresh — nothing derived leaks across the process boundary.

        Raises :class:`ShmError` if the segment is gone (the owner
        already unlinked it) or the meta layout does not match.
        """
        from multiprocessing import shared_memory

        name = meta["name"]
        try:
            shm = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            raise ShmError(
                f"shared-memory segment {name!r} does not exist "
                "(never exported, or the owner already unlinked it)"
            ) from None
        lengths = meta["lengths"]
        total = sum(lengths[field] for field in _SHM_FIELDS) * _ITEMSIZE
        if shm.size < total:
            shm.close()
            raise ShmError(
                f"shared-memory segment {name!r} holds {shm.size} bytes "
                f"but the meta layout needs {total}"
            )
        raw = memoryview(shm.buf)
        views = [raw]
        arrays = {}
        offset = 0
        for field in _SHM_FIELDS:
            nbytes = lengths[field] * _ITEMSIZE
            sliced = raw[offset : offset + nbytes]
            cast = sliced.cast(INDEX_TYPECODE)
            views.append(sliced)
            views.append(cast)
            arrays[field] = cast
            offset += nbytes
        n = meta["num_nodes"]
        graph = cls(
            node_ids=range(n),
            index_of=None,
            indptr=arrays["indptr"],
            indices=arrays["indices"],
            slot_edge=arrays["slot_edge"],
            edge_u=arrays["edge_u"],
            edge_v=arrays["edge_v"],
        )
        return ShmGraph(meta, graph, owner=False, shm=shm, views=views)

    # -- snapshots ------------------------------------------------------
    def snapshot_sections(self) -> Dict[str, array]:
        """The five CSR buffers keyed by field name, in segment order.

        The write side of the snapshot round trip: pass these (plus any
        caller sections) to :func:`write_array_snapshot` and rebuild with
        :meth:`from_buffers` over an :class:`ArraySnapshot`'s views.
        """
        return {field: getattr(self, field) for field in _SHM_FIELDS}

    @classmethod
    def from_buffers(
        cls, node_ids: Sequence[NodeId], sections: Dict[str, memoryview]
    ) -> "CompactGraph":
        """Rebuild a graph over externally-owned CSR buffers — zero copy.

        ``sections`` maps the :data:`_SHM_FIELDS` names to ``'q'``
        buffers (typically :meth:`ArraySnapshot.section` views, which
        stay mmap-backed).  Buffer lengths are cross-checked; the caller
        keeps the backing storage alive for the graph's lifetime.
        """
        node_ids = tuple(node_ids)
        n = len(node_ids)
        missing = [f for f in _SHM_FIELDS if f not in sections]
        if missing:
            raise SnapshotError(f"missing CSR sections: {missing}")
        indptr = sections["indptr"]
        indices = sections["indices"]
        slot_edge = sections["slot_edge"]
        edge_u = sections["edge_u"]
        edge_v = sections["edge_v"]
        m = len(edge_u)
        if len(indptr) != n + 1:
            raise SnapshotError(
                f"indptr has {len(indptr)} entries for {n} nodes"
            )
        if len(edge_v) != m or len(indices) != 2 * m or len(slot_edge) != 2 * m:
            raise SnapshotError("CSR section lengths are inconsistent")
        return cls(
            node_ids=node_ids,
            index_of={node: i for i, node in enumerate(node_ids)},
            indptr=indptr,
            indices=indices,
            slot_edge=slot_edge,
            edge_u=edge_u,
            edge_v=edge_v,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompactGraph(nodes={self.num_nodes}, edges={self.num_edges})"


class DeltaError(ValueError):
    """Raised for invalid graph deltas (unknown nodes, duplicate edges, ...)."""


class DeltaOverlayGraph:
    """A mutable node/edge overlay over an immutable :class:`CompactGraph`.

    The incremental engine (:mod:`repro.core.orientation.incremental`)
    applies long churn traces to a solved instance; rebuilding the CSR
    arrays per update would cost O(n + m) each time.  This view instead
    keeps the base graph untouched and layers deltas on top:

    * base edges carry their original edge indices; deleting one only
      flips its bit in ``edge_alive``;
    * inserted edges get fresh indices ``>= base.num_edges`` with their
      endpoints appended to ``edge_u``/``edge_v`` and their adjacency
      kept in per-node overlay lists;
    * joined nodes get fresh dense ids ``>= base.num_nodes`` (appended,
      *not* repr-sorted — consumers of the overlay never rely on the
      dense-order-equals-repr-order invariant of :class:`CompactGraph`);
    * a node that leaves keeps its dense slot (dead, degree 0) so edge
      endpoints never dangle; re-joining the same id revives the slot.

    Memo invalidation is precise: the base graph's ``derived`` cache
    (``directed_ranks``, ``edge_keys``) is never touched — the base is
    immutable, so those stay valid for anyone still holding the base —
    while the overlay's own aggregate memos (``derived``) are dropped on
    every mutation.  Per-edge facts (endpoints, repr keys derived from
    them) are immutable per edge index and are therefore cached by
    consumers without any invalidation protocol.
    """

    __slots__ = (
        "base",
        "node_ids",
        "index_of",
        "node_alive",
        "edge_u",
        "edge_v",
        "edge_alive",
        "extra_adj",
        "_extra_dead",
        "degrees",
        "sum_sq_degree",
        "_edge_slot",
        "_num_live_nodes",
        "_num_live_edges",
        "derived",
    )

    def __init__(self, base: CompactGraph) -> None:
        self.base = base
        n = base.num_nodes
        m = base.num_edges
        self.node_ids: List[NodeId] = list(base.node_ids)
        self.index_of: Dict[NodeId, int] = dict(base.index_of)
        self.node_alive = bytearray([1]) * n if n else bytearray()
        self.edge_u: List[int] = list(base.edge_u)
        self.edge_v: List[int] = list(base.edge_v)
        self.edge_alive = bytearray([1]) * m if m else bytearray()
        #: Dense node id -> overlay edge ids touching it (may contain
        #: dead ids; iteration filters on ``edge_alive``).
        self.extra_adj: Dict[int, List[int]] = {}
        #: Dense node id -> dead ids currently in its ``extra_adj`` list.
        #: A long-lived engine under steady edge churn (the serving
        #: workload: delete/re-insert flaps) would otherwise grow these
        #: lists without bound and every frontier refresh would slow
        #: down; ``_kill_edge`` compacts a list once half of it is dead,
        #: which is amortized O(1) per kill.
        self._extra_dead: Dict[int, int] = {}
        self.degrees: List[int] = [base.degree(i) for i in range(n)]
        #: Σ deg(v)² over live nodes, maintained incrementally (sizes the
        #: repair loop's safety valve without an O(n) rescan per update).
        self.sum_sq_degree = sum(d * d for d in self.degrees)
        #: Canonical edge key -> live edge index (duplicate detection and
        #: delete lookup).
        self._edge_slot: Dict[Tuple[NodeId, NodeId], int] = {
            key: e for e, key in enumerate(base.edge_keys())
        }
        self._num_live_nodes = n
        self._num_live_edges = m
        #: Aggregate memos (dropped on every mutation); per-edge facts
        #: never change for a given edge index and need no invalidation.
        self.derived: Dict[str, object] = {}

    # -- queries --------------------------------------------------------
    @property
    def num_live_nodes(self) -> int:
        return self._num_live_nodes

    @property
    def num_live_edges(self) -> int:
        return self._num_live_edges

    @property
    def num_edge_slots(self) -> int:
        """Total edge indices ever allocated (live and dead)."""
        return len(self.edge_u)

    def has_node(self, node: NodeId) -> bool:
        i = self.index_of.get(node)
        return i is not None and bool(self.node_alive[i])

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        from repro.core.orientation.problem import edge_key

        return edge_key(u, v) in self._edge_slot

    def edge_index(self, u: NodeId, v: NodeId) -> int:
        """Live edge index of {u, v}; raises :class:`DeltaError` if absent."""
        from repro.core.orientation.problem import edge_key

        key = edge_key(u, v)
        e = self._edge_slot.get(key)
        if e is None:
            raise DeltaError(f"no live edge {key!r}")
        return e

    def incident_edges(self, i: int):
        """Live edge indices incident to dense node ``i`` (lazy)."""
        alive = self.edge_alive
        if i < self.base.num_nodes:
            ptr = self.base.indptr
            slot_edge = self.base.slot_edge
            for s in range(ptr[i], ptr[i + 1]):
                e = slot_edge[s]
                if alive[e]:
                    yield e
        for e in self.extra_adj.get(i, ()):
            if alive[e]:
                yield e

    def live_node_indices(self) -> List[int]:
        return [i for i in range(len(self.node_ids)) if self.node_alive[i]]

    def live_edge_indices(self) -> List[int]:
        return [e for e in range(len(self.edge_u)) if self.edge_alive[e]]

    def edge_keys(self) -> Tuple[Tuple[NodeId, NodeId], ...]:
        """Canonical keys of the live edges, in edge-index order (memoized)."""
        cached = self.derived.get("edge_keys")
        if cached is None:
            ids = self.node_ids
            from repro.core.orientation.problem import edge_key

            cached = tuple(
                edge_key(ids[self.edge_u[e]], ids[self.edge_v[e]])
                for e in self.live_edge_indices()
            )
            self.derived["edge_keys"] = cached
        return cached

    # -- mutation -------------------------------------------------------
    def add_node(self, node: NodeId) -> int:
        """Add (or revive) an isolated node; returns its dense id."""
        i = self.index_of.get(node)
        if i is not None:
            if self.node_alive[i]:
                raise DeltaError(f"node {node!r} already exists")
            self.node_alive[i] = 1
        else:
            i = len(self.node_ids)
            self.node_ids.append(node)
            self.index_of[node] = i
            self.node_alive.append(1)
            self.degrees.append(0)
        self._num_live_nodes += 1
        self.derived.clear()
        return i

    def remove_node(self, node: NodeId) -> List[int]:
        """Remove a node and its incident edges; returns the removed edge ids."""
        i = self.index_of.get(node)
        if i is None or not self.node_alive[i]:
            raise DeltaError(f"node {node!r} does not exist")
        removed = list(self.incident_edges(i))
        for e in removed:
            self._kill_edge(e)
        self.node_alive[i] = 0
        self._num_live_nodes -= 1
        self.derived.clear()
        return removed

    def add_edge(self, u: NodeId, v: NodeId) -> int:
        """Insert edge {u, v} between existing live nodes; returns its id."""
        from repro.core.orientation.problem import edge_key

        key = edge_key(u, v)
        if key in self._edge_slot:
            raise DeltaError(f"duplicate edge {key!r}")
        ui = self.index_of.get(u)
        vi = self.index_of.get(v)
        if ui is None or not self.node_alive[ui]:
            raise DeltaError(f"unknown node {u!r} in edge {key!r}")
        if vi is None or not self.node_alive[vi]:
            raise DeltaError(f"unknown node {v!r} in edge {key!r}")
        e = len(self.edge_u)
        # Endpoints stored in canonical-key order, like CompactGraph.
        ku, kv = key
        self.edge_u.append(self.index_of[ku])
        self.edge_v.append(self.index_of[kv])
        self.edge_alive.append(1)
        self.extra_adj.setdefault(ui, []).append(e)
        self.extra_adj.setdefault(vi, []).append(e)
        self._edge_slot[key] = e
        self._bump_degree(ui, +1)
        self._bump_degree(vi, +1)
        self._num_live_edges += 1
        self.derived.clear()
        return e

    def remove_edge(self, u: NodeId, v: NodeId) -> int:
        """Delete edge {u, v}; returns the edge id that died."""
        e = self.edge_index(u, v)
        self._kill_edge(e)
        self.derived.clear()
        return e

    def _kill_edge(self, e: int) -> None:
        ids = self.node_ids
        from repro.core.orientation.problem import edge_key

        del self._edge_slot[edge_key(ids[self.edge_u[e]], ids[self.edge_v[e]])]
        self.edge_alive[e] = 0
        self._bump_degree(self.edge_u[e], -1)
        self._bump_degree(self.edge_v[e], -1)
        self._num_live_edges -= 1
        if e >= self.base.num_edges:
            # Only inserted edges live in extra_adj; base edges are
            # tombstoned in place inside the (bounded) CSR slots.
            self._prune_extra(self.edge_u[e])
            self._prune_extra(self.edge_v[e])

    def _prune_extra(self, i: int) -> None:
        """Drop dead ids from ``extra_adj[i]`` once half the list is dead.

        Keeps the relative order of the live ids, so incident-edge
        iteration order — and with it every downstream tie-break — is
        unchanged.
        """
        dead = self._extra_dead.get(i, 0) + 1
        extra = self.extra_adj[i]
        if len(extra) >= 8 and dead * 2 >= len(extra):
            alive = self.edge_alive
            self.extra_adj[i] = [x for x in extra if alive[x]]
            self._extra_dead[i] = 0
        else:
            self._extra_dead[i] = dead

    def _bump_degree(self, i: int, delta: int) -> None:
        d = self.degrees[i]
        self.degrees[i] = d + delta
        self.sum_sq_degree += (d + delta) * (d + delta) - d * d

    # -- materialization ------------------------------------------------
    def to_compact(self) -> CompactGraph:
        """Materialize the live graph as a fresh (repr-sorted) CompactGraph."""
        return CompactGraph.from_edges(
            self.edge_keys(),
            nodes=[self.node_ids[i] for i in self.live_node_indices()],
        )

    def to_orientation_problem(self):
        """Materialize the live graph as a reference OrientationProblem."""
        from repro.core.orientation.problem import OrientationProblem

        return OrientationProblem(
            edges=self.edge_keys(),
            nodes=[self.node_ids[i] for i in self.live_node_indices()],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeltaOverlayGraph(live_nodes={self._num_live_nodes}, "
            f"live_edges={self._num_live_edges}, "
            f"slots={len(self.edge_u)})"
        )


class CompactBipartite:
    """An immutable customer--server bipartite graph in CSR form.

    Customers and servers are interned separately (each side
    ``repr``-sorted), with both adjacency directions stored:
    ``cust_indptr``/``cust_indices`` map a dense customer id to its dense
    server ids (ascending, i.e. in reference ``repr`` order) and
    ``serv_indptr``/``serv_indices`` the reverse.
    """

    __slots__ = (
        "customer_ids",
        "server_ids",
        "customer_index",
        "server_index",
        "cust_indptr",
        "cust_indices",
        "serv_indptr",
        "serv_indices",
        "_graph",
    )

    def __init__(
        self,
        customer_ids: Tuple[NodeId, ...],
        server_ids: Tuple[NodeId, ...],
        customer_index: Dict[NodeId, int],
        server_index: Dict[NodeId, int],
        cust_indptr: array,
        cust_indices: array,
        serv_indptr: array,
        serv_indices: array,
    ) -> None:
        self.customer_ids = customer_ids
        self.server_ids = server_ids
        self.customer_index = customer_index
        self.server_index = server_index
        self.cust_indptr = cust_indptr
        self.cust_indices = cust_indices
        self.serv_indptr = serv_indptr
        self.serv_indices = serv_indices
        self._graph = None

    # -- construction ---------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        customers: Iterable[NodeId],
        servers: Iterable[NodeId],
        edges: Iterable[Tuple[NodeId, NodeId]],
    ) -> "CompactBipartite":
        """Build directly from ``(customer, server)`` edges.

        Mirrors :class:`CustomerServerGraph` validation: overlapping ids,
        unknown endpoints, duplicate edges, and isolated customers are all
        rejected, so the two constructors accept exactly the same inputs.
        """
        from repro.graphs.bipartite import BipartiteGraphError

        customer_ids, customer_index = intern_nodes(customers)
        server_ids, server_index = intern_nodes(servers)
        overlap = set(customer_ids) & set(server_ids)
        if overlap:
            raise BipartiteGraphError(
                f"identifiers used on both sides: {sorted(map(repr, overlap))}"
            )

        seen = set()
        pairs: List[Tuple[int, int]] = []
        for edge in edges:
            if len(edge) != 2:
                raise BipartiteGraphError(
                    f"edge {edge!r} is not a (customer, server) pair"
                )
            customer, server = edge
            ci = customer_index.get(customer)
            if ci is None:
                raise BipartiteGraphError(
                    f"unknown customer {customer!r} in edge {edge!r}"
                )
            si = server_index.get(server)
            if si is None:
                raise BipartiteGraphError(f"unknown server {server!r} in edge {edge!r}")
            if (ci, si) in seen:
                raise BipartiteGraphError(f"duplicate edge ({customer!r}, {server!r})")
            seen.add((ci, si))
            pairs.append((ci, si))

        degrees = [0] * len(customer_ids)
        for ci, _ in pairs:
            degrees[ci] += 1
        isolated = [customer_ids[ci] for ci, d in enumerate(degrees) if d == 0]
        if isolated:
            raise BipartiteGraphError(
                "every customer needs at least one adjacent server; isolated "
                f"customer(s): {sorted(map(repr, isolated))}"
            )

        payloads = list(range(len(pairs)))
        cust_indptr, cust_indices, _ = _csr_from_pairs(
            len(customer_ids), pairs, payloads
        )
        reverse = [(si, ci) for ci, si in pairs]
        serv_indptr, serv_indices, _ = _csr_from_pairs(
            len(server_ids), reverse, payloads
        )
        return cls(
            customer_ids,
            server_ids,
            customer_index,
            server_index,
            cust_indptr,
            cust_indices,
            serv_indptr,
            serv_indices,
        )

    @classmethod
    def from_edge_stream(
        cls,
        customers: Iterable[NodeId],
        servers: Iterable[NodeId],
        edges: Iterable[Tuple[NodeId, NodeId]],
    ) -> "CompactBipartite":
        """Build from a ``(customer, server)`` edge stream, CSR-direct.

        Same validation and same arrays as :meth:`from_edges` (overlap,
        unknown endpoints, duplicates, isolated customers), but edges go
        straight into ``array('q')`` buffers and both CSR directions are
        counting-sorted by :func:`_csr_from_directed` — no per-edge
        tuple list or seen-set.  Duplicates are detected after the sort
        (equal columns land in adjacent slots of a customer's row).
        """
        from repro.graphs.bipartite import BipartiteGraphError

        customer_ids, customer_index = intern_nodes(customers)
        server_ids, server_index = intern_nodes(servers)
        overlap = set(customer_ids) & set(server_ids)
        if overlap:
            raise BipartiteGraphError(
                f"identifiers used on both sides: {sorted(map(repr, overlap))}"
            )

        stream_c = array(INDEX_TYPECODE)
        stream_s = array(INDEX_TYPECODE)
        for edge in edges:
            if len(edge) != 2:
                raise BipartiteGraphError(
                    f"edge {edge!r} is not a (customer, server) pair"
                )
            customer, server = edge
            ci = customer_index.get(customer)
            if ci is None:
                raise BipartiteGraphError(
                    f"unknown customer {customer!r} in edge {edge!r}"
                )
            si = server_index.get(server)
            if si is None:
                raise BipartiteGraphError(f"unknown server {server!r} in edge {edge!r}")
            stream_c.append(ci)
            stream_s.append(si)

        cust_indptr, cust_indices = _csr_from_directed(
            len(customer_ids), len(server_ids), stream_c, stream_s
        )
        for ci in range(len(customer_ids)):
            for slot in range(cust_indptr[ci] + 1, cust_indptr[ci + 1]):
                if cust_indices[slot] == cust_indices[slot - 1]:
                    raise BipartiteGraphError(
                        f"duplicate edge ({customer_ids[ci]!r}, "
                        f"{server_ids[cust_indices[slot]]!r})"
                    )
        isolated = [
            customer_ids[ci]
            for ci in range(len(customer_ids))
            if cust_indptr[ci] == cust_indptr[ci + 1]
        ]
        if isolated:
            raise BipartiteGraphError(
                "every customer needs at least one adjacent server; isolated "
                f"customer(s): {sorted(map(repr, isolated))}"
            )
        serv_indptr, serv_indices = _csr_from_directed(
            len(server_ids), len(customer_ids), stream_s, stream_c
        )
        return cls(
            customer_ids,
            server_ids,
            customer_index,
            server_index,
            cust_indptr,
            cust_indices,
            serv_indptr,
            serv_indices,
        )

    @classmethod
    def from_customer_server_graph(cls, graph) -> "CompactBipartite":
        """Intern a :class:`CustomerServerGraph` (lossless; see round-trip tests)."""
        compact = cls.from_edges(
            customers=graph.customer_adjacency.keys(),
            servers=graph.server_adjacency.keys(),
            edges=graph.edges(),
        )
        compact._graph = graph
        return compact

    def to_customer_server_graph(self):
        """The equivalent reference :class:`CustomerServerGraph` (cached)."""
        if self._graph is None:
            from repro.graphs.bipartite import CustomerServerGraph

            edges = []
            for ci in range(self.num_customers):
                customer = self.customer_ids[ci]
                for slot in range(self.cust_indptr[ci], self.cust_indptr[ci + 1]):
                    edges.append((customer, self.server_ids[self.cust_indices[slot]]))
            self._graph = CustomerServerGraph(
                customers=self.customer_ids, servers=self.server_ids, edges=edges
            )
        return self._graph

    # -- queries --------------------------------------------------------
    @property
    def num_customers(self) -> int:
        return len(self.customer_ids)

    @property
    def num_servers(self) -> int:
        return len(self.server_ids)

    @property
    def num_edges(self) -> int:
        return len(self.cust_indices)

    def customer_degree(self, ci: int) -> int:
        return self.cust_indptr[ci + 1] - self.cust_indptr[ci]

    def server_degree(self, si: int) -> int:
        return self.serv_indptr[si + 1] - self.serv_indptr[si]

    def servers_of(self, ci: int) -> memoryview:
        """Dense server ids adjacent to dense customer ``ci`` (ascending)."""
        return memoryview(self.cust_indices)[
            self.cust_indptr[ci] : self.cust_indptr[ci + 1]
        ]

    def customers_of(self, si: int) -> memoryview:
        """Dense customer ids adjacent to dense server ``si`` (ascending)."""
        return memoryview(self.serv_indices)[
            self.serv_indptr[si] : self.serv_indptr[si + 1]
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompactBipartite(customers={self.num_customers}, "
            f"servers={self.num_servers}, edges={self.num_edges})"
        )
