"""Layered DAGs: the structural input of the token dropping game.

Section 4 of the paper defines the game on a directed graph without
directed cycles in which every node ``v`` has a level ``ℓ(v) ≤ L`` and a
directed edge ``(u, v)`` (``v`` is the *parent* of ``u``) requires
``ℓ(v) = ℓ(u) + 1``.  :class:`LayeredGraph` captures exactly this shape
and validates it at construction time.

The class stores edges in the *parent direction*: ``parents(u)`` are the
nodes one level above ``u`` that ``u`` is connected to (i.e. the nodes a
token at a parent could be dropped *from*), and ``children(v)`` are the
nodes one level below that ``v`` could pass a token *to*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Set, Tuple

NodeId = Hashable
#: A directed edge (child, parent): the token may move parent -> child.
DirectedEdge = Tuple[NodeId, NodeId]


class LayeredGraphError(ValueError):
    """Raised when a layered graph violates the level constraints."""


@dataclass(frozen=True)
class LayeredGraph:
    """An immutable layered DAG.

    Parameters
    ----------
    levels:
        Mapping from node identifier to its level, a non-negative integer.
    edges:
        Iterable of ``(child, parent)`` pairs with
        ``levels[parent] == levels[child] + 1``.  The orientation in the
        token dropping game always points "down", so storing the pair as
        (child, parent) makes the allowed token move explicit:
        ``parent -> child``.

    Notes
    -----
    The paper also allows ``ℓ(parent) > ℓ(child) + 1`` (footnote 1); for
    clarity the reproduction follows the main-text convention of adjacent
    levels.  All algorithms only rely on "parents are strictly above".
    """

    levels: Mapping[NodeId, int]
    edges: FrozenSet[DirectedEdge]
    _parents: Dict[NodeId, FrozenSet[NodeId]] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )
    _children: Dict[NodeId, FrozenSet[NodeId]] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __init__(
        self,
        levels: Mapping[NodeId, int],
        edges: Iterable[DirectedEdge] = (),
    ) -> None:
        levels_dict: Dict[NodeId, int] = dict(levels)
        for node, level in levels_dict.items():
            if not isinstance(level, int) or level < 0:
                raise LayeredGraphError(
                    f"level of node {node!r} must be a non-negative integer, "
                    f"got {level!r}"
                )

        edge_set: Set[DirectedEdge] = set()
        parents: Dict[NodeId, Set[NodeId]] = {node: set() for node in levels_dict}
        children: Dict[NodeId, Set[NodeId]] = {node: set() for node in levels_dict}
        for edge in edges:
            if len(edge) != 2:
                raise LayeredGraphError(f"edge {edge!r} is not a (child, parent) pair")
            child, parent = edge
            if child not in levels_dict or parent not in levels_dict:
                raise LayeredGraphError(
                    f"edge ({child!r}, {parent!r}) references a node without a level"
                )
            if child == parent:
                raise LayeredGraphError(f"self-loop on {child!r} is not allowed")
            if levels_dict[parent] != levels_dict[child] + 1:
                raise LayeredGraphError(
                    f"edge ({child!r}, {parent!r}) violates the level constraint: "
                    f"level({parent!r})={levels_dict[parent]} must equal "
                    f"level({child!r})+1={levels_dict[child] + 1}"
                )
            if (child, parent) in edge_set:
                raise LayeredGraphError(f"duplicate edge ({child!r}, {parent!r})")
            edge_set.add((child, parent))
            parents[child].add(parent)
            children[parent].add(child)

        object.__setattr__(self, "levels", dict(levels_dict))
        object.__setattr__(self, "edges", frozenset(edge_set))
        object.__setattr__(
            self, "_parents", {n: frozenset(p) for n, p in parents.items()}
        )
        object.__setattr__(
            self, "_children", {n: frozenset(c) for n, c in children.items()}
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[NodeId, ...]:
        """All node identifiers in a deterministic order."""
        return tuple(sorted(self.levels, key=repr))

    def __len__(self) -> int:
        return len(self.levels)

    def __contains__(self, node: NodeId) -> bool:
        return node in self.levels

    def level(self, node: NodeId) -> int:
        """Return the level of ``node``."""
        return self.levels[node]

    def height(self) -> int:
        """Return L, the maximum level present in the graph (0 if empty)."""
        if not self.levels:
            return 0
        return max(self.levels.values())

    def parents(self, node: NodeId) -> FrozenSet[NodeId]:
        """Nodes one level above ``node`` connected to it."""
        return self._parents[node]

    def children(self, node: NodeId) -> FrozenSet[NodeId]:
        """Nodes one level below ``node`` connected to it."""
        return self._children[node]

    def degree(self, node: NodeId) -> int:
        """Total degree (parents + children) of ``node``."""
        return len(self._parents[node]) + len(self._children[node])

    def max_degree(self) -> int:
        """Return Δ over the underlying undirected graph."""
        if not self.levels:
            return 0
        return max(self.degree(node) for node in self.levels)

    def num_edges(self) -> int:
        """Return the number of (directed) edges."""
        return len(self.edges)

    def nodes_at_level(self, level: int) -> Tuple[NodeId, ...]:
        """Nodes whose level equals ``level``, in deterministic order."""
        return tuple(
            sorted((n for n, l in self.levels.items() if l == level), key=repr)
        )

    def undirected_edges(self) -> Tuple[Tuple[NodeId, NodeId], ...]:
        """The edges with orientation dropped, as (child, parent) tuples."""
        return tuple(sorted(self.edges, key=repr))

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    def as_adjacency(self) -> Dict[NodeId, List[NodeId]]:
        """Undirected adjacency lists (used to build the LOCAL network)."""
        adjacency: Dict[NodeId, List[NodeId]] = {node: [] for node in self.levels}
        for child, parent in self.edges:
            adjacency[child].append(parent)
            adjacency[parent].append(child)
        return adjacency

    def restrict_to(self, nodes: Iterable[NodeId]) -> "LayeredGraph":
        """Return the induced sub-layered-graph on ``nodes``."""
        keep = set(nodes)
        missing = keep - set(self.levels)
        if missing:
            raise LayeredGraphError(f"unknown node(s): {sorted(map(repr, missing))}")
        return LayeredGraph(
            levels={n: self.levels[n] for n in keep},
            edges=[(c, p) for (c, p) in self.edges if c in keep and p in keep],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LayeredGraph(n={len(self)}, m={self.num_edges()}, "
            f"height={self.height()}, max_degree={self.max_degree()})"
        )
