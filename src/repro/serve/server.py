"""The asyncio serving front end over a solved :class:`DynamicOrientation`.

One :class:`OrientationServer` holds one engine.  Point queries
(``assignment-of``, ``load-of``, ``stats``) are answered synchronously
straight from the engine's flat arrays — O(1) dict+array lookups, no
materialization.  Update requests are *queued*: a single updater task
drains everything waiting (up to :attr:`ServeConfig.max_batch` deltas,
after an optional :attr:`ServeConfig.coalesce_ms` gathering window) into
ONE :meth:`~repro.core.orientation.incremental.DynamicOrientation.
apply_batch` call, so a burst of concurrent updates pays for one
frontier re-stabilization instead of one per request.  All engine access
happens on the event-loop thread — queries never observe a half-applied
batch.

Every request path is traced through :mod:`repro.obs`:

* ``serve.request`` — one span per request, tagged with the op;
* ``serve.coalesce`` — one span per queue drain (requests + deltas
  gathered);
* ``serve.restabilize`` — the batched engine apply itself.

:class:`ServerThread` runs a server on a background thread's event loop
for in-process harnesses (the closed-loop benchmark, tests, examples).
"""

from __future__ import annotations

import asyncio
import os
import threading
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro import obs
from repro.core.orientation.incremental import DeltaError, DynamicOrientation
from repro.serve.protocol import (
    ProtocolError,
    delta_from_wire,
    encode_frame,
    node_to_wire,
    read_frame,
    wire_to_node,
)

__all__ = ["ServeConfig", "OrientationServer", "ServerThread"]

#: Environment knobs (documented in the README's "Serving" section).
MAX_BATCH_ENV_VAR = "REPRO_SERVE_MAX_BATCH"
COALESCE_MS_ENV_VAR = "REPRO_SERVE_COALESCE_MS"


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else default


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    return float(raw) if raw else default


@dataclass
class ServeConfig:
    """Knobs of one server instance.

    ``max_batch`` caps how many *deltas* one coalesced apply may carry
    (a single oversized request is still applied whole); ``coalesce_ms``
    adds a gathering window after the first queued update before the
    drain, trading per-update latency for a higher coalescing ratio.
    Both default from the environment so deployments can tune a server
    without code changes.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_batch: int = field(
        default_factory=lambda: _env_int(MAX_BATCH_ENV_VAR, 256)
    )
    coalesce_ms: float = field(
        default_factory=lambda: _env_float(COALESCE_MS_ENV_VAR, 0.0)
    )


class _UpdateRequest:
    __slots__ = ("deltas", "future")

    def __init__(self, deltas, future):
        self.deltas = deltas
        self.future = future


class OrientationServer:
    """Serve one :class:`DynamicOrientation` over length-prefixed JSON/TCP."""

    def __init__(
        self,
        dynamic: DynamicOrientation,
        config: Optional[ServeConfig] = None,
    ) -> None:
        self.dynamic = dynamic
        self.config = config or ServeConfig()
        #: Request/coalescing counters, exported by the ``stats`` op.
        self.counters = {
            "requests": 0,
            "queries": 0,
            "update_requests": 0,
            "deltas_applied": 0,
            "batches": 0,
            "errors": 0,
        }
        self._server: Optional[asyncio.AbstractServer] = None
        self._queue: Optional[asyncio.Queue] = None
        self._stopping: Optional[asyncio.Event] = None
        self._updater: Optional[asyncio.Task] = None

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket and start the updater task."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._queue = asyncio.Queue()
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self._updater = asyncio.ensure_future(self._drain_updates())

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` ephemeral binds)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[:2]

    async def serve_forever(self) -> None:
        """Serve until :meth:`stop` (or a client ``shutdown`` op)."""
        await self._stopping.wait()
        await self._shutdown()

    async def stop(self) -> None:
        """Request a clean shutdown (idempotent)."""
        if self._stopping is not None:
            self._stopping.set()

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._updater is not None:
            await self._queue.put(None)
            await self._updater
            self._updater = None

    # -- the coalescing updater ----------------------------------------
    async def _drain_updates(self) -> None:
        queue = self._queue
        while True:
            first = await queue.get()
            if first is None:
                break
            if self.config.coalesce_ms > 0:
                # Gathering window: let a burst in flight reach the queue
                # so it re-stabilizes as one frontier.
                await asyncio.sleep(self.config.coalesce_ms / 1000.0)
            batch: List[_UpdateRequest] = [first]
            total = len(first.deltas)
            stop_after = False
            while total < self.config.max_batch and not queue.empty():
                nxt = queue.get_nowait()
                if nxt is None:
                    stop_after = True
                    break
                batch.append(nxt)
                total += len(nxt.deltas)
            with obs.span(
                "serve.coalesce", num_requests=len(batch), num_deltas=total
            ):
                deltas = [d for request in batch for d in request.deltas]
                error: Optional[Exception] = None
                with obs.span("serve.restabilize", num_deltas=total) as sp:
                    try:
                        stats = self.dynamic.apply_batch(deltas)
                        sp.set(
                            frontier_nodes=stats.frontier_nodes,
                            repair_flips=stats.repair.total_flips,
                        )
                    except DeltaError as exc:
                        error = exc
            self.counters["batches"] += 1
            obs.add("serve.batches")
            if error is None:
                self.counters["deltas_applied"] += total
                obs.add("serve.deltas_applied", total)
                for request in batch:
                    if not request.future.done():
                        request.future.set_result(
                            {
                                "ok": True,
                                "applied": len(request.deltas),
                                "batch_deltas": total,
                                "batch_requests": len(batch),
                                "updates_applied": self.dynamic.updates_applied,
                            }
                        )
            else:
                # The engine re-stabilized its applied prefix before the
                # DeltaError propagated; every rider shares the failure.
                self.counters["errors"] += len(batch)
                for request in batch:
                    if not request.future.done():
                        request.future.set_result(
                            {"ok": False, "error": str(error)}
                        )
            if stop_after:
                break

    # -- request handling ----------------------------------------------
    async def _handle_client(self, reader, writer) -> None:
        try:
            while True:
                try:
                    message = await read_frame(reader)
                except ProtocolError as exc:
                    writer.write(
                        encode_frame({"ok": False, "error": str(exc)})
                    )
                    await writer.drain()
                    break
                if message is None:
                    break
                response, close = await self._dispatch(message)
                writer.write(encode_frame(response))
                await writer.drain()
                if close:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, message) -> Tuple[dict, bool]:
        if not isinstance(message, dict):
            return {"ok": False, "error": "request must be an object"}, False
        op = message.get("op")
        self.counters["requests"] += 1
        with obs.span("serve.request", op=str(op)):
            obs.add("serve.requests")
            try:
                if op == "ping":
                    return {"ok": True, "pong": True}, False
                if op == "assignment-of":
                    self.counters["queries"] += 1
                    head = self.dynamic.head_of(
                        wire_to_node(message["u"]), wire_to_node(message["v"])
                    )
                    return {"ok": True, "head": node_to_wire(head)}, False
                if op == "load-of":
                    self.counters["queries"] += 1
                    load = self.dynamic.load_of(wire_to_node(message["node"]))
                    return {"ok": True, "load": load}, False
                if op == "stats":
                    self.counters["queries"] += 1
                    return {
                        "ok": True,
                        "num_nodes": self.dynamic.num_nodes,
                        "num_edges": self.dynamic.num_edges,
                        "updates_applied": self.dynamic.updates_applied,
                        "backend": self.dynamic.backend,
                        "counters": dict(self.counters),
                        "coalescing_ratio": (
                            self.counters["deltas_applied"]
                            / self.counters["batches"]
                            if self.counters["batches"]
                            else None
                        ),
                    }, False
                if op == "update":
                    self.counters["update_requests"] += 1
                    raw = message.get("deltas")
                    if not isinstance(raw, list):
                        raise ProtocolError("update needs a deltas list")
                    deltas = [delta_from_wire(d) for d in raw]
                    future = asyncio.get_running_loop().create_future()
                    await self._queue.put(_UpdateRequest(deltas, future))
                    return await future, False
                if op == "snapshot":
                    from repro.serve.snapshot import save_state

                    meta = save_state(self.dynamic, message["path"])
                    return {
                        "ok": True,
                        "path": message["path"],
                        "bytes": os.path.getsize(message["path"]),
                        "num_nodes": meta["num_nodes"],
                        "num_edges": meta["num_edges"],
                    }, False
                if op == "shutdown":
                    await self.stop()
                    return {"ok": True, "stopping": True}, True
                raise ProtocolError(f"unknown op {op!r}")
            except (ProtocolError, DeltaError, KeyError, OSError) as exc:
                self.counters["errors"] += 1
                obs.add("serve.errors")
                return {"ok": False, "error": str(exc)}, False


class ServerThread:
    """Run an :class:`OrientationServer` on a daemon thread's event loop.

    The in-process harness used by the closed-loop benchmark, the CI
    smoke trace, and the tests: ``start()`` blocks until the socket is
    bound (``address`` is then valid), ``stop()`` requests a clean
    shutdown and joins the thread.  Also usable as a context manager.
    """

    def __init__(
        self,
        dynamic: DynamicOrientation,
        config: Optional[ServeConfig] = None,
    ) -> None:
        self._dynamic = dynamic
        self._config = config
        self.server: Optional[OrientationServer] = None
        self.address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - startup races
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()
            else:
                raise

    async def _main(self) -> None:
        self.server = OrientationServer(self._dynamic, self._config)
        await self.server.start()
        self._loop = asyncio.get_running_loop()
        self.address = self.server.address
        self._ready.set()
        await self.server.serve_forever()

    def stop(self) -> None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(
                lambda: asyncio.ensure_future(self.server.stop())
            )
        if self._thread is not None:
            self._thread.join(timeout=30)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
