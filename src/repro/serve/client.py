"""A small blocking client for :mod:`repro.serve` servers.

Plain ``socket`` + the shared frame codec — no asyncio on the client
side, so benchmarks and scripts can drive a server closed-loop without
an event loop of their own.  One :class:`ServeClient` is one connection;
requests are strictly request/response, so a client instance is *not*
thread-safe (use one per thread).
"""

from __future__ import annotations

import socket
from typing import Iterable, List, Tuple

from repro.core.orientation.incremental import Delta
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    _LEN,
    decode_payload,
    delta_to_wire,
    encode_frame,
    node_to_wire,
    wire_to_node,
)

__all__ = ["ServeClient", "ServeError", "connect"]


class ServeError(RuntimeError):
    """Raised when the server answers ``ok: false``."""


class ServeClient:
    """One blocking connection to an :class:`OrientationServer`."""

    def __init__(self, host: str, port: int, *, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)

    # -- plumbing -------------------------------------------------------
    def _recv_exactly(self, nbytes: int) -> bytes:
        chunks: List[bytes] = []
        remaining = nbytes
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise ProtocolError("server closed the connection mid frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def request(self, payload: dict) -> dict:
        """Send one request frame and return the decoded response payload."""
        self._sock.sendall(encode_frame(payload))
        (length,) = _LEN.unpack(self._recv_exactly(_LEN.size))
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(f"response length {length} exceeds limit")
        return decode_payload(self._recv_exactly(length))

    def _checked(self, payload: dict) -> dict:
        response = self.request(payload)
        if not response.get("ok"):
            raise ServeError(response.get("error", "unknown server error"))
        return response

    # -- ops ------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self._checked({"op": "ping"}).get("pong"))

    def assignment_of(self, u, v):
        """The current head (assigned endpoint) of the live edge {u, v}."""
        response = self._checked(
            {"op": "assignment-of", "u": node_to_wire(u), "v": node_to_wire(v)}
        )
        return wire_to_node(response["head"])

    def load_of(self, node) -> int:
        return self._checked({"op": "load-of", "node": node_to_wire(node)})[
            "load"
        ]

    def stats(self) -> dict:
        return self._checked({"op": "stats"})

    def update(self, deltas: Iterable[Delta]) -> dict:
        """Submit a batch of engine deltas; returns the batch receipt."""
        wire = [delta_to_wire(d) for d in deltas]
        return self._checked({"op": "update", "deltas": wire})

    def snapshot(self, path) -> dict:
        """Ask the server to snapshot its serving state to ``path``."""
        return self._checked({"op": "snapshot", "path": str(path)})

    def shutdown(self) -> dict:
        """Request a clean server shutdown."""
        return self._checked({"op": "shutdown"})

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def connect(
    address: Tuple[str, int], *, timeout: float = 30.0
) -> ServeClient:
    """Connect to a server's ``(host, port)`` address tuple."""
    return ServeClient(address[0], address[1], timeout=timeout)
