"""``repro.serve`` — the serving layer over the solved state.

A long-lived asyncio front end (length-prefixed JSON over TCP) around
one solved :class:`~repro.core.orientation.incremental.
DynamicOrientation`: point queries answered straight from the flat
arrays, update batches coalesced into single re-stabilizations, and
snapshot/restore of the full serving state through the compact
``array('q')`` buffers.  Start one from the CLI with
``python -m repro serve`` or in-process with :class:`ServerThread`.

This package is all-flat-arrays by contract: no module in it imports a
dict-path constructor (asserted by a lint-style test).
"""

from repro.serve.client import ServeClient, ServeError, connect
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    delta_from_wire,
    delta_to_wire,
    encode_frame,
    node_to_wire,
    read_frame,
    wire_to_node,
)
from repro.serve.server import (
    COALESCE_MS_ENV_VAR,
    MAX_BATCH_ENV_VAR,
    OrientationServer,
    ServeConfig,
    ServerThread,
)
from repro.serve.snapshot import STATE_KIND, load_state, save_state

__all__ = [
    "COALESCE_MS_ENV_VAR",
    "MAX_BATCH_ENV_VAR",
    "MAX_FRAME_BYTES",
    "OrientationServer",
    "ProtocolError",
    "STATE_KIND",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerThread",
    "connect",
    "delta_from_wire",
    "delta_to_wire",
    "encode_frame",
    "load_state",
    "node_to_wire",
    "read_frame",
    "save_state",
    "wire_to_node",
]
