"""Snapshot/restore of the full serving state — one mmap-able file.

:func:`save_state` materializes a :class:`~repro.core.orientation.
incremental.DynamicOrientation` into its canonical flat arrays (the five
CSR buffers of the live graph plus ``heads`` and ``load``) and writes
them through :func:`~repro.graphs.compact.write_array_snapshot`; the
header's meta block carries the node-id table and the engine's seed
stream position (``seed``, ``updates_applied``), so a restored engine
answers every query *and* replays every future delta bit-for-bit like
the engine it was saved from.

:func:`load_state` memory-maps the file and rebuilds the graph over
zero-copy views of the mapping (the adjacency buffers — the bulk of the
payload — are never copied; the per-edge ``heads`` and per-node ``load``
arrays are copied into the engine's mutable working lists), then enters
through the trusted constructor
:meth:`~repro.core.orientation.incremental.DynamicOrientation.
from_solved_arrays` — no dict round-trip anywhere on the path.

Node ids are encoded in the header as ``repr`` text parsed back with
:func:`ast.literal_eval` (lossless for the library's int/str/tuple ids;
verified at save time), with a compact ``range`` shortcut for dense
integer ids.
"""

from __future__ import annotations

import ast
import os
from array import array
from typing import Tuple

from repro import obs
from repro.core.orientation.incremental import DynamicOrientation
from repro.graphs.compact import (
    _SHM_FIELDS,
    ArraySnapshot,
    CompactGraph,
    SnapshotError,
    write_array_snapshot,
)

__all__ = ["STATE_KIND", "load_state", "save_state"]

#: The ``meta["kind"]`` tag distinguishing serving-state snapshots from
#: other array-snapshot files.
STATE_KIND = "repro.serve/dynamic-orientation"


def _encode_node_ids(node_ids) -> dict:
    n = len(node_ids)
    if all(node_ids[i] == i for i in range(n)):
        return {"encoding": "range", "n": n}
    text = repr(tuple(node_ids))
    try:
        parsed = ast.literal_eval(text)
    except (ValueError, SyntaxError) as exc:
        raise SnapshotError(
            f"node ids are not literal-evaluable from repr: {exc}"
        ) from exc
    if parsed != tuple(node_ids):
        raise SnapshotError("node ids do not round-trip through repr")
    return {"encoding": "repr", "text": text}


def _decode_node_ids(spec) -> Tuple:
    if not isinstance(spec, dict):
        raise SnapshotError(f"malformed node-id spec {spec!r}")
    encoding = spec.get("encoding")
    if encoding == "range":
        return tuple(range(spec["n"]))
    if encoding == "repr":
        return tuple(ast.literal_eval(spec["text"]))
    raise SnapshotError(f"unknown node-id encoding {encoding!r}")


def save_state(dynamic: DynamicOrientation, path) -> dict:
    """Write the engine's full serving state to ``path``; returns the meta."""
    with obs.span("serve.snapshot.save") as sp:
        graph, heads, load = dynamic.solved_arrays()
        sections = dict(graph.snapshot_sections())
        sections["heads"] = array("q", heads)
        sections["load"] = array("q", load)
        meta = {
            "kind": STATE_KIND,
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "seed": dynamic.seed,
            "updates_applied": dynamic.updates_applied,
            "node_ids": _encode_node_ids(graph.node_ids),
        }
        write_array_snapshot(path, sections, meta=meta)
        sp.set(
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            bytes=os.path.getsize(path),
        )
    return meta


def load_state(path, *, validate: bool = True) -> DynamicOrientation:
    """Rebuild a serving engine from a :func:`save_state` file.

    The returned engine keeps the underlying :class:`ArraySnapshot` mapping
    open for its lifetime (the graph's CSR buffers are views into it).
    ``validate=False`` skips the O(m) stability re-check for trusted files.
    """
    with obs.span("serve.snapshot.load", validate=validate) as sp:
        snapshot = ArraySnapshot(path)
        try:
            meta = snapshot.meta
            if meta.get("kind") != STATE_KIND:
                raise SnapshotError(
                    f"{path}: not a serving-state snapshot "
                    f"(kind={meta.get('kind')!r})"
                )
            node_ids = _decode_node_ids(meta["node_ids"])
            graph = CompactGraph.from_buffers(
                node_ids,
                {field: snapshot.section(field) for field in _SHM_FIELDS},
            )
            dynamic = DynamicOrientation.from_solved_arrays(
                graph,
                snapshot.section("heads"),
                snapshot.section("load"),
                seed=meta["seed"],
                updates_applied=meta["updates_applied"],
                validate=validate,
            )
        except Exception:
            snapshot.close()
            raise
        # The graph's CSR views point into the mapping; tie the snapshot's
        # lifetime to the engine that owns them.
        dynamic._snapshot = snapshot
        sp.set(num_nodes=graph.num_nodes, num_edges=graph.num_edges)
    return dynamic
