"""Wire protocol of :mod:`repro.serve`: length-prefixed JSON frames.

Every message — request or response — is one *frame*: a 4-byte
big-endian payload length followed by that many bytes of UTF-8 JSON.
Framing and JSON are deliberately boring; the only repro-specific parts
are the node-id and delta encodings:

* Node ids are the library's Hashables (ints, strings, tuples like
  ``("churn", 3)``).  JSON has no tuple type, so the wire form encodes
  tuples as JSON arrays and :func:`wire_to_node` converts arrays back to
  tuples recursively — lossless because node ids must be hashable, so a
  *list* node id is impossible.
* Deltas travel as ``{"kind": ..., ...}`` dicts, one of ``edge-insert``,
  ``edge-delete``, ``node-join``, ``node-leave`` (see
  :func:`delta_to_wire` / :func:`delta_from_wire`).

Requests are ``{"op": ..., ...}`` dicts; responses always carry an
``"ok"`` bool, with ``"error"`` set when it is false.  See the README's
"Serving" section for the full op table.
"""

from __future__ import annotations

import json
import struct
from typing import Optional

from repro.core.orientation.incremental import (
    Delta,
    EdgeDelete,
    EdgeInsert,
    NodeJoin,
    NodeLeave,
)

__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "decode_payload",
    "delta_from_wire",
    "delta_to_wire",
    "encode_frame",
    "node_to_wire",
    "read_frame",
    "wire_to_node",
]

#: Upper bound on one frame's JSON payload; large enough for a
#: multi-thousand-delta update batch, small enough that a corrupt length
#: prefix cannot make the server allocate gigabytes.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct(">I")


class ProtocolError(ValueError):
    """Raised for malformed frames or unencodable payloads."""


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_frame(payload) -> bytes:
    """One wire frame: 4-byte big-endian length + compact JSON payload."""
    blob = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )
    if len(blob) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(blob)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return _LEN.pack(len(blob)) + blob


def decode_payload(blob: bytes):
    """Parse one frame's payload bytes (shared by async and sync readers)."""
    try:
        return json.loads(blob)
    except ValueError as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from exc


async def read_frame(reader) -> Optional[object]:
    """Read one frame from an :class:`asyncio.StreamReader`.

    Returns the decoded payload, or ``None`` on a clean EOF at a frame
    boundary; raises :class:`ProtocolError` on truncation or oversized
    lengths.
    """
    import asyncio

    try:
        prefix = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise ProtocolError("connection closed mid length prefix") from exc
        return None
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds {MAX_FRAME_BYTES}"
        )
    try:
        blob = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid frame") from exc
    return decode_payload(blob)


# ----------------------------------------------------------------------
# Node ids
# ----------------------------------------------------------------------
def node_to_wire(node):
    """Encode a node id as a JSON value (tuples become arrays)."""
    if isinstance(node, tuple):
        return [node_to_wire(part) for part in node]
    if isinstance(node, bool) or node is None:
        return node
    if isinstance(node, (int, float, str)):
        return node
    raise ProtocolError(
        f"node id {node!r} of type {type(node).__name__} is not wire-encodable"
    )


def wire_to_node(value):
    """Decode a JSON value back into a node id (arrays become tuples)."""
    if isinstance(value, list):
        return tuple(wire_to_node(part) for part in value)
    return value


# ----------------------------------------------------------------------
# Deltas
# ----------------------------------------------------------------------
def delta_to_wire(delta: Delta) -> dict:
    """Encode one engine delta as its wire dict."""
    if isinstance(delta, EdgeInsert):
        return {
            "kind": "edge-insert",
            "u": node_to_wire(delta.u),
            "v": node_to_wire(delta.v),
        }
    if isinstance(delta, EdgeDelete):
        return {
            "kind": "edge-delete",
            "u": node_to_wire(delta.u),
            "v": node_to_wire(delta.v),
        }
    if isinstance(delta, NodeJoin):
        return {
            "kind": "node-join",
            "node": node_to_wire(delta.node),
            "attach": [node_to_wire(other) for other in delta.attach],
        }
    if isinstance(delta, NodeLeave):
        return {"kind": "node-leave", "node": node_to_wire(delta.node)}
    raise ProtocolError(f"not a delta: {delta!r}")


def delta_from_wire(value) -> Delta:
    """Decode one wire dict back into an engine delta."""
    if not isinstance(value, dict):
        raise ProtocolError(f"delta must be an object, got {value!r}")
    kind = value.get("kind")
    try:
        if kind == "edge-insert":
            return EdgeInsert(wire_to_node(value["u"]), wire_to_node(value["v"]))
        if kind == "edge-delete":
            return EdgeDelete(wire_to_node(value["u"]), wire_to_node(value["v"]))
        if kind == "node-join":
            attach = value.get("attach", [])
            if not isinstance(attach, list):
                raise ProtocolError(f"node-join attach must be a list: {value!r}")
            return NodeJoin(
                wire_to_node(value["node"]),
                tuple(wire_to_node(other) for other in attach),
            )
        if kind == "node-leave":
            return NodeLeave(wire_to_node(value["node"]))
    except KeyError as exc:
        raise ProtocolError(f"delta {value!r} is missing field {exc}") from exc
    raise ProtocolError(f"unknown delta kind {kind!r}")
