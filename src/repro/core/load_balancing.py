"""Locally optimal load balancing (the Section 2 comparison point).

Section 2 of the paper contrasts token dropping / stable orientations with
*locally optimal load balancing* (Feuilloley, Hirvonen, Suomela, DISC
2015): there, load tokens may move arbitrarily far from their origin, and
the same edge may carry load many times.  The key sentence:

    "If there is a bottleneck that separates large high-load and low-load
    regions, an algorithm for load balancing has to essentially move load
    tokens across such an edge one by one until the load is locally
    balanced, while an algorithm for stable orientation or token dropping
    will use the edge only once."

This module implements a centralized locally-optimal load balancer with
per-edge usage counting, so that contrast can be *measured* (see
``tests/test_load_balancing.py``): on the two-cliques-with-a-bridge
workload the balancer pushes many units across the bridge, whereas any
stable orientation orients the bridge exactly once.

The distributed complexity of locally optimal load balancing is an open
problem (the paper conjectures it is not poly(L, Δ)); only the centralized
reference is implemented here, as a substrate for the comparison, not as a
claimed reproduction of FHS15.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Mapping, Optional, Tuple

from repro.core.orientation.problem import OrientationProblem, edge_key

NodeId = Hashable
EdgeKey = Tuple[NodeId, NodeId]


@dataclass
class LoadBalancingResult:
    """Outcome of the centralized locally-optimal load balancer.

    Attributes
    ----------
    loads:
        Final load of every node.
    moves:
        Total number of single-unit load moves performed.
    edge_usage:
        How many times each edge carried a unit of load (in either
        direction).  The maximum of this map is the quantity Section 2
        contrasts with the "each edge used once" property of token
        dropping.
    """

    loads: Dict[NodeId, int]
    moves: int
    edge_usage: Dict[EdgeKey, int] = field(default_factory=dict)

    def max_edge_usage(self) -> int:
        """The most times any single edge was used (0 if nothing moved)."""
        return max(self.edge_usage.values(), default=0)

    def is_locally_balanced(self, problem: OrientationProblem) -> bool:
        """No neighbour pair differs in load by more than one unit."""
        for u, v in problem.edges:
            if abs(self.loads[u] - self.loads[v]) > 1:
                return False
        return True


def locally_optimal_load_balancing(
    problem: OrientationProblem,
    initial_loads: Mapping[NodeId, int],
    *,
    max_moves: Optional[int] = None,
) -> LoadBalancingResult:
    """Balance integer loads until no edge can locally improve.

    Repeatedly picks an edge whose endpoints' loads differ by at least two
    and moves one unit from the heavier to the lighter endpoint (the
    steepest such edge first, ties broken deterministically).  This is the
    natural centralized analogue of locally optimal load balancing: the
    final configuration is locally optimal in the sense that no single move
    between neighbours reduces the load difference.

    The potential Σ load² strictly decreases with every move, so the
    process terminates; ``max_moves`` (default: the initial potential) is a
    safety valve only.

    Parameters
    ----------
    problem:
        The communication graph.
    initial_loads:
        Non-negative integer load per node (nodes absent from the mapping
        start at 0).
    """
    loads: Dict[NodeId, int] = {node: 0 for node in problem.nodes}
    for node, load in initial_loads.items():
        if node not in loads:
            raise ValueError(f"unknown node {node!r} in initial loads")
        if not isinstance(load, int) or load < 0:
            raise ValueError(
                f"load of {node!r} must be a non-negative integer, got {load!r}"
            )
        loads[node] = load

    if max_moves is None:
        max_moves = sum(load * load for load in loads.values()) + 1

    edge_usage: Dict[EdgeKey, int] = {}
    moves = 0
    while True:
        # Find the edge with the largest load imbalance (>= 2).
        best: Optional[Tuple[int, EdgeKey]] = None
        for u, v in problem.edges:
            gap = abs(loads[u] - loads[v])
            if gap >= 2 and (best is None or gap > best[0]):
                best = (gap, (u, v))
        if best is None:
            break
        if moves >= max_moves:  # pragma: no cover - potential argument prevents this
            raise RuntimeError("load balancing exceeded its move budget")
        _, (u, v) = best
        heavy, light = (u, v) if loads[u] > loads[v] else (v, u)
        loads[heavy] -= 1
        loads[light] += 1
        moves += 1
        key = edge_key(u, v)
        edge_usage[key] = edge_usage.get(key, 0) + 1

    return LoadBalancingResult(loads=loads, moves=moves, edge_usage=edge_usage)


def orientation_loads_as_initial(problem: OrientationProblem) -> Dict[NodeId, int]:
    """The "one load token per edge, parked at one endpoint" initial condition.

    Section 2 describes stable orientation as load balancing where every
    edge contributes one token that must end at one of its endpoints.  For
    the free-moving comparison we park every edge's token at its
    lexicographically larger endpoint, mirroring
    :func:`~repro.core.orientation.problem.arbitrary_complete_orientation`.
    """
    loads: Dict[NodeId, int] = {node: 0 for node in problem.nodes}
    for u, v in problem.edges:
        loads[v] += 1
    return loads


def bridge_usage_contrast(
    problem: OrientationProblem,
    bridge: Tuple[NodeId, NodeId],
    initial_loads: Mapping[NodeId, int],
) -> Dict[str, int]:
    """Measure the Section 2 contrast on a designated bottleneck edge.

    Returns a dict with the number of times the free-moving load balancer
    used the bridge versus the (by definition) at-most-once usage of the
    same edge under token dropping / stable orientation.
    """
    result = locally_optimal_load_balancing(problem, initial_loads)
    key = edge_key(*bridge)
    return {
        "load_balancing_bridge_uses": result.edge_usage.get(key, 0),
        "token_dropping_bridge_uses": 1 if result.edge_usage.get(key, 0) > 0 else 0,
        "total_moves": result.moves,
    }
