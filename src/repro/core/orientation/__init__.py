"""Stable orientations (Sections 1.1, 5, and 6 of the paper).

Public API overview
-------------------
Problem & orientations
    :class:`OrientationProblem`, :class:`Orientation`,
    :func:`arbitrary_complete_orientation`, :func:`check_stable`.

The paper's algorithm (Theorem 5.1)
    :func:`run_stable_orientation` -- the phase-based O(Δ⁴) algorithm that
    uses token dropping as a black box.

Baselines
    :func:`sequential_flip_algorithm` -- the centralized flip algorithm of
    Section 1.1; :func:`synchronous_repair_orientation` -- a
    repair-from-arbitrary-orientation distributed baseline standing in for
    the O(Δ⁵) prior work (see the module docstring for the substitution
    rationale).

Incremental re-stabilization
    :class:`DynamicOrientation` -- wraps a solved orientation and absorbs
    edge/node churn (:class:`EdgeInsert`, :class:`EdgeDelete`,
    :class:`NodeJoin`, :class:`NodeLeave`) with frontier-local repair
    instead of recompute-from-scratch; see
    :mod:`repro.core.orientation.incremental` for the locality argument.

Every entry point above (and the k-bounded relaxation,
:func:`run_bounded_stable_orientation`) carries a compact int-array fast
path dispatched per :mod:`repro.dispatch` — identical results, verified
on hundreds of seeded instances by the cross-validation suite.
"""

from repro.core.orientation.bounded import (
    BoundedOrientationResult,
    bounded_unhappy_edges,
    run_bounded_stable_orientation,
    theoretical_bounded_orientation_round_bound,
)
from repro.core.orientation.phases import (
    PHASE_OVERHEAD_ROUNDS,
    PhaseStats,
    StableOrientationResult,
    run_stable_orientation,
    theoretical_phase_bound,
    theoretical_round_bound,
)
from repro.core.orientation.incremental import (
    BatchStats,
    Delta,
    DynamicOrientation,
    EdgeDelete,
    EdgeInsert,
    NodeJoin,
    NodeLeave,
    UpdateStats,
)
from repro.core.orientation.problem import (
    Orientation,
    OrientationError,
    OrientationProblem,
    arbitrary_complete_orientation,
    check_stable,
    edge_key,
)
from repro.core.orientation.repair import (
    ROUNDS_PER_REPAIR_ITERATION,
    RepairRunStats,
    synchronous_repair_orientation,
)
from repro.core.orientation.sequential import (
    FLIP_POLICIES,
    SequentialRunStats,
    flip_chain_length,
    sequential_flip_algorithm,
)

__all__ = [
    "BatchStats",
    "BoundedOrientationResult",
    "Delta",
    "DynamicOrientation",
    "EdgeDelete",
    "EdgeInsert",
    "FLIP_POLICIES",
    "NodeJoin",
    "NodeLeave",
    "Orientation",
    "UpdateStats",
    "bounded_unhappy_edges",
    "run_bounded_stable_orientation",
    "theoretical_bounded_orientation_round_bound",
    "OrientationError",
    "OrientationProblem",
    "PHASE_OVERHEAD_ROUNDS",
    "PhaseStats",
    "ROUNDS_PER_REPAIR_ITERATION",
    "RepairRunStats",
    "SequentialRunStats",
    "StableOrientationResult",
    "arbitrary_complete_orientation",
    "check_stable",
    "edge_key",
    "flip_chain_length",
    "run_stable_orientation",
    "sequential_flip_algorithm",
    "synchronous_repair_orientation",
    "theoretical_phase_bound",
    "theoretical_round_bound",
]
