"""Incremental re-stabilization: serve churn, not snapshots.

The paper's objects are static, but a production load balancer sees
customers arrive and leave and servers fail continuously.  This module
generalizes the rank-keyed unhappy-edge machinery of the repair kernel
(:mod:`repro.core.orientation._unhappy`) into a first-class dynamic API:

:class:`DynamicOrientation` wraps a solved (stable, complete)
orientation and supports :meth:`~DynamicOrientation.apply` for four
delta kinds — :class:`EdgeInsert`, :class:`EdgeDelete`,
:class:`NodeJoin`, :class:`NodeLeave` — re-stabilizing after each one.

Delta semantics
---------------
* ``EdgeInsert(u, v)`` — both endpoints must exist; the new edge is
  oriented towards its *less loaded* endpoint (canonical-key order
  breaks ties), so a single insertion into a stable state never creates
  badness above 1.
* ``EdgeDelete(u, v)`` — the edge must exist; its head's load drops.
* ``NodeJoin(node, attach)`` — ``node`` must be new (or previously
  departed); the ``attach`` edges to existing nodes are inserted in the
  given order, each under the ``EdgeInsert`` head rule against the
  evolving loads.
* ``NodeLeave(node)`` — the node and every incident edge disappear (a
  server failure / customer departure); its neighbours' loads drop.

The locality guarantee
----------------------
Between updates the orientation is stable, so every live edge is happy.
A delta changes loads only at its *frontier* (the endpoints of the
inserted/deleted edges), and an edge's happiness depends only on its
endpoint loads — so an edge not incident to the frontier cannot have
become unhappy.  Seeding the repair loop's unhappy-edge tracker from
the frontier alone therefore finds **exactly** the set a full O(m)
rescan would, and from there each conflict-free flip refreshes only the
O(Δ) edges around its two endpoints.  Per-update work is proportional
to the size of the affected region, not to the size of the graph.

Backends (and the correctness bar)
----------------------------------
Per :mod:`repro.dispatch` the engine has two implementations:

* ``backend="dict"`` — the reference: after each delta it rebuilds the
  mutated :class:`~repro.core.orientation.problem.OrientationProblem`
  from scratch and runs the reference
  :func:`~repro.core.orientation.repair.synchronous_repair_orientation`
  (full-rescan unhappy sets) from the carried-over orientation;
* ``backend="compact"`` (auto) — the incremental fast path: a
  :class:`~repro.graphs.compact.DeltaOverlayGraph` mutates edge/node
  views without rebuilding CSR arrays, and the shared repair loop runs
  over the frontier-seeded tracker.

Both produce bit-for-bit identical results after every update — same
orientation, same unhappy-edge sets, same per-update
:class:`~repro.core.orientation.repair.RepairRunStats` — asserted over
hundreds of seeded churn traces by
``tests/integration/test_incremental_churn.py``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple, Union

from repro import obs
from repro.core.orientation._unhappy import UnhappyEdgeTracker, run_repair_loop
from repro.core.orientation.problem import (
    Orientation,
    OrientationProblem,
    edge_key,
)
from repro.core.orientation.repair import (
    ROUNDS_PER_REPAIR_ITERATION,
    RepairRunStats,
    synchronous_repair_orientation,
)
from repro.dispatch import resolve_backend
from repro.graphs.compact import CompactGraph, DeltaError, DeltaOverlayGraph

NodeId = Hashable

__all__ = [
    "BatchStats",
    "Delta",
    "DeltaError",
    "DynamicOrientation",
    "EdgeDelete",
    "EdgeInsert",
    "NodeJoin",
    "NodeLeave",
    "UpdateStats",
]


# ----------------------------------------------------------------------
# Deltas
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EdgeInsert:
    """Insert edge {u, v} between two existing nodes."""

    u: NodeId
    v: NodeId


@dataclass(frozen=True)
class EdgeDelete:
    """Delete the existing edge {u, v}."""

    u: NodeId
    v: NodeId


@dataclass(frozen=True)
class NodeJoin:
    """A new node arrives, attaching to zero or more existing nodes."""

    node: NodeId
    attach: Tuple[NodeId, ...] = ()


@dataclass(frozen=True)
class NodeLeave:
    """An existing node (and every incident edge) departs/fails."""

    node: NodeId


Delta = Union[EdgeInsert, EdgeDelete, NodeJoin, NodeLeave]


@dataclass
class UpdateStats:
    """What one :meth:`DynamicOrientation.apply` call did.

    Equality compares every field, so the cross-validation suite can
    assert the compact and dict backends agree update by update.
    """

    delta: Delta
    update_seed: int
    edges_inserted: int
    edges_removed: int
    #: Nodes whose load the structural change touched — the seed set of
    #: the local re-stabilization.
    frontier_nodes: int
    repair: RepairRunStats = field(default_factory=RepairRunStats)


@dataclass
class BatchStats:
    """What one :meth:`DynamicOrientation.apply_batch` call did.

    The batch analogue of :class:`UpdateStats`: the structural counters
    sum over every delta in the batch, ``frontier_nodes`` counts the
    *union* frontier still alive after all mutations, and ``repair`` is
    the single re-stabilization run over that union.
    """

    num_deltas: int
    #: Seed of the batch's one repair run; ``None`` for the empty batch
    #: (which runs no repair at all).
    update_seed: Optional[int]
    edges_inserted: int = 0
    edges_removed: int = 0
    frontier_nodes: int = 0
    repair: RepairRunStats = field(default_factory=RepairRunStats)


def _choose_head(key: Tuple[NodeId, NodeId], load_u: int, load_v: int) -> NodeId:
    """The deterministic insert orientation: less loaded endpoint wins.

    ``key`` is the canonical edge key; ties go to ``key[0]`` (the
    canonically smaller endpoint), mirroring the propose-to-canonical
    tie-break of the phase algorithm.
    """
    return key[0] if load_u <= load_v else key[1]


# ----------------------------------------------------------------------
# The compact fast path
# ----------------------------------------------------------------------
class _CompactDynamic:
    """Frontier-seeded local re-stabilization over a delta overlay."""

    def __init__(self, base: CompactGraph, heads: List[int], load: List[int]):
        self.overlay = DeltaOverlayGraph(base)
        ev = self.overlay.edge_v
        eu = self.overlay.edge_u
        self.heads = list(heads)
        self.tails = [
            eu[e] if self.heads[e] == ev[e] else ev[e]
            for e in range(len(self.heads))
        ]
        self.load = list(load)
        # Per-edge repr sort keys for the two directions (the reference's
        # unhappy-edge order).  Strings rather than global ranks: ranks
        # shift when edges are inserted, the per-edge strings never do.
        ids = self.overlay.node_ids
        self.key_to_v = [
            repr((ids[eu[e]], ids[ev[e]])) for e in range(len(self.heads))
        ]
        self.key_to_u = [
            repr((ids[ev[e]], ids[eu[e]])) for e in range(len(self.heads))
        ]
        self.tracker = UnhappyEdgeTracker(
            self.heads, self.tails, self.load, ev, self.key_to_v, self.key_to_u
        )

    # -- structural mutation -------------------------------------------
    def _insert_edge(self, u: NodeId, v: NodeId) -> int:
        overlay = self.overlay
        e = overlay.add_edge(u, v)
        ui, vi = overlay.edge_u[e], overlay.edge_v[e]
        ids = overlay.node_ids
        key = (ids[ui], ids[vi])
        head_id = _choose_head(key, self.load[ui], self.load[vi])
        head = ui if head_id == ids[ui] else vi
        tail = vi if head == ui else ui
        self.heads.append(head)
        self.tails.append(tail)
        self.key_to_v.append(repr((ids[ui], ids[vi])))
        self.key_to_u.append(repr((ids[vi], ids[ui])))
        self.load[head] += 1
        return e

    def _remove_edge_slot(self, e: int) -> None:
        self.load[self.heads[e]] -= 1
        self.tracker.discard(e)

    def mutate(self, delta: Delta) -> Tuple[set, int, int]:
        """Apply the structural change; returns (frontier, inserted, removed)."""
        overlay = self.overlay
        if isinstance(delta, EdgeInsert):
            e = self._insert_edge(delta.u, delta.v)
            return {overlay.edge_u[e], overlay.edge_v[e]}, 1, 0
        if isinstance(delta, EdgeDelete):
            e = overlay.remove_edge(delta.u, delta.v)
            self._remove_edge_slot(e)
            return {overlay.edge_u[e], overlay.edge_v[e]}, 0, 1
        if isinstance(delta, NodeJoin):
            # Validate before mutating, so an invalid join leaves the
            # engine untouched.
            for other in delta.attach:
                oi = overlay.index_of.get(other)
                if oi is None or not overlay.node_alive[oi]:
                    raise DeltaError(
                        f"unknown attach endpoint {other!r} in {delta!r}"
                    )
            if len(set(delta.attach)) != len(delta.attach):
                raise DeltaError(f"duplicate attach endpoints in {delta!r}")
            i = overlay.add_node(delta.node)
            if i == len(self.load):
                self.load.append(0)
            frontier = set()
            for other in delta.attach:
                e = self._insert_edge(delta.node, other)
                frontier.add(overlay.edge_u[e])
                frontier.add(overlay.edge_v[e])
            return frontier, len(delta.attach), 0
        if isinstance(delta, NodeLeave):
            i = overlay.index_of.get(delta.node)
            removed = overlay.remove_node(delta.node)
            frontier = set()
            for e in removed:
                self._remove_edge_slot(e)
                frontier.add(overlay.edge_u[e])
                frontier.add(overlay.edge_v[e])
            frontier.discard(i)
            return frontier, 0, len(removed)
        raise TypeError(f"not a delta: {delta!r}")

    # -- re-stabilization ----------------------------------------------
    def apply(self, delta: Delta, update_seed: int) -> UpdateStats:
        frontier, inserted, removed = self.mutate(delta)
        tracker = self.tracker
        overlay = self.overlay
        for x in frontier:
            tracker.refresh(overlay.incident_edges(x))

        stats = UpdateStats(
            delta=delta,
            update_seed=update_seed,
            edges_inserted=inserted,
            edges_removed=removed,
            frontier_nodes=len(frontier),
            repair=RepairRunStats(initial_unhappy=len(tracker)),
        )
        run_repair_loop(
            tracker,
            num_nodes=len(self.load),
            refresh_incident=lambda x: tracker.refresh(
                overlay.incident_edges(x)
            ),
            rng=random.Random(update_seed),
            stats=stats.repair,
            max_iterations=overlay.sum_sq_degree + 1,
            rounds_per_iteration=ROUNDS_PER_REPAIR_ITERATION,
        )
        return stats

    def _restabilize_batch(
        self, frontier: set, update_seed: int
    ) -> Tuple[int, RepairRunStats]:
        """One repair run seeded from the union frontier of a batch.

        Nodes that departed mid-batch are filtered out (their incident
        edges are all dead); the locality argument of the module
        docstring extends to batches because any edge whose endpoint
        loads changed is incident to some frontier node.
        """
        overlay = self.overlay
        alive = overlay.node_alive
        tracker = self.tracker
        live = [x for x in frontier if alive[x]]
        for x in live:
            tracker.refresh(overlay.incident_edges(x))
        repair = RepairRunStats(initial_unhappy=len(tracker))
        run_repair_loop(
            tracker,
            num_nodes=len(self.load),
            refresh_incident=lambda x: tracker.refresh(
                overlay.incident_edges(x)
            ),
            rng=random.Random(update_seed),
            stats=repair,
            max_iterations=overlay.sum_sq_degree + 1,
            rounds_per_iteration=ROUNDS_PER_REPAIR_ITERATION,
        )
        return len(live), repair

    def apply_batch(self, deltas, update_seed: int) -> BatchStats:
        frontier: set = set()
        inserted = removed = 0
        try:
            for delta in deltas:
                f, ins, rem = self.mutate(delta)
                frontier |= f
                inserted += ins
                removed += rem
        except DeltaError:
            # Re-stabilize the already-applied prefix so the stability
            # invariant survives a rejected delta, then propagate.
            self._restabilize_batch(frontier, update_seed)
            raise
        frontier_nodes, repair = self._restabilize_batch(frontier, update_seed)
        return BatchStats(
            num_deltas=len(deltas),
            update_seed=update_seed,
            edges_inserted=inserted,
            edges_removed=removed,
            frontier_nodes=frontier_nodes,
            repair=repair,
        )

    # -- exports --------------------------------------------------------
    def loads(self) -> Dict[NodeId, int]:
        ids = self.overlay.node_ids
        return {
            ids[i]: self.load[i] for i in self.overlay.live_node_indices()
        }

    def load_of(self, node: NodeId) -> int:
        overlay = self.overlay
        i = overlay.index_of.get(node)
        if i is None or not overlay.node_alive[i]:
            raise DeltaError(f"node {node!r} does not exist")
        return self.load[i]

    def solved_arrays(self) -> Tuple[CompactGraph, List[int], List[int]]:
        overlay = self.overlay
        base = overlay.base
        pristine = (
            len(overlay.node_ids) == base.num_nodes
            and len(overlay.edge_u) == base.num_edges
            and overlay.num_live_nodes == base.num_nodes
            and overlay.num_live_edges == base.num_edges
        )
        if pristine:
            return base, list(self.heads), list(self.load)
        graph = overlay.to_compact()
        ids = overlay.node_ids
        index_of = graph.index_of
        heads = [0] * graph.num_edges
        for e in overlay.live_edge_indices():
            u_id = ids[overlay.edge_u[e]]
            v_id = ids[overlay.edge_v[e]]
            heads[graph.edge_index(u_id, v_id)] = index_of[ids[self.heads[e]]]
        load = [0] * graph.num_nodes
        for h in heads:
            load[h] += 1
        return graph, heads, load

    def head_of(self, u: NodeId, v: NodeId) -> NodeId:
        e = self.overlay.edge_index(u, v)
        return self.overlay.node_ids[self.heads[e]]

    def orientation(self) -> Orientation:
        problem = self.overlay.to_orientation_problem()
        ids = self.overlay.node_ids
        orientation = Orientation.__new__(Orientation)
        orientation.problem = problem
        orientation._heads = {
            key: ids[self.heads[e]]
            for e, key in zip(
                self.overlay.live_edge_indices(), self.overlay.edge_keys()
            )
        }
        orientation._load = {
            ids[i]: self.load[i] for i in self.overlay.live_node_indices()
        }
        return orientation

    def unhappy_edges(self) -> List[Tuple[NodeId, NodeId]]:
        ids = self.overlay.node_ids
        out = []
        for e in self.overlay.live_edge_indices():
            h, t = self.heads[e], self.tails[e]
            if self.load[h] - self.load[t] > 1:
                out.append((ids[t], ids[h]))
        return sorted(out, key=repr)

    @property
    def num_nodes(self) -> int:
        return self.overlay.num_live_nodes

    @property
    def num_edges(self) -> int:
        return self.overlay.num_live_edges


# ----------------------------------------------------------------------
# The dict reference path
# ----------------------------------------------------------------------
class _DictDynamic:
    """Scratch reference: rebuild the mutated problem, full-rescan repair."""

    def __init__(self, heads: Dict[Tuple[NodeId, NodeId], NodeId], nodes):
        self._heads = dict(heads)
        self._nodes = set(nodes)
        self._load: Dict[NodeId, int] = {node: 0 for node in self._nodes}
        for head in self._heads.values():
            self._load[head] += 1

    def mutate(self, delta: Delta) -> Tuple[set, int, int]:
        if isinstance(delta, EdgeInsert):
            key = edge_key(delta.u, delta.v)
            if key in self._heads:
                raise DeltaError(f"duplicate edge {key!r}")
            for node in key:
                if node not in self._nodes:
                    raise DeltaError(f"unknown node {node!r} in edge {key!r}")
            head = _choose_head(key, self._load[key[0]], self._load[key[1]])
            self._heads[key] = head
            self._load[head] += 1
            return set(key), 1, 0
        if isinstance(delta, EdgeDelete):
            key = edge_key(delta.u, delta.v)
            head = self._heads.pop(key, None)
            if head is None:
                raise DeltaError(f"no live edge {key!r}")
            self._load[head] -= 1
            return set(key), 0, 1
        if isinstance(delta, NodeJoin):
            if delta.node in self._nodes:
                raise DeltaError(f"node {delta.node!r} already exists")
            for other in delta.attach:
                if other not in self._nodes:
                    raise DeltaError(
                        f"unknown attach endpoint {other!r} in {delta!r}"
                    )
            if len(set(delta.attach)) != len(delta.attach):
                raise DeltaError(f"duplicate attach endpoints in {delta!r}")
            self._nodes.add(delta.node)
            self._load[delta.node] = 0
            frontier = set()
            for other in delta.attach:
                key = edge_key(delta.node, other)
                head = _choose_head(key, self._load[key[0]], self._load[key[1]])
                self._heads[key] = head
                self._load[head] += 1
                frontier.update(key)
            return frontier, len(delta.attach), 0
        if isinstance(delta, NodeLeave):
            if delta.node not in self._nodes:
                raise DeltaError(f"node {delta.node!r} does not exist")
            removed = [key for key in self._heads if delta.node in key]
            frontier = set()
            for key in removed:
                self._load[self._heads.pop(key)] -= 1
                frontier.update(key)
            frontier.discard(delta.node)
            self._nodes.discard(delta.node)
            del self._load[delta.node]
            return frontier, 0, len(removed)
        raise TypeError(f"not a delta: {delta!r}")

    def _repair_from_carried(self, update_seed: int) -> RepairRunStats:
        # Solve the mutated instance from scratch on the reference path:
        # rebuild the problem, re-orient from the carried-over heads, and
        # repair with full-rescan unhappy sets.
        problem = OrientationProblem(edges=self._heads.keys(), nodes=self._nodes)
        initial = Orientation(problem, heads=self._heads)
        orientation, repair_stats = synchronous_repair_orientation(
            problem, initial=initial, seed=update_seed, backend="dict"
        )
        self._heads = {
            key: orientation.head_of(*key) for key in problem.edges
        }
        self._load = orientation.loads()
        return repair_stats

    def apply(self, delta: Delta, update_seed: int) -> UpdateStats:
        frontier, inserted, removed = self.mutate(delta)
        repair_stats = self._repair_from_carried(update_seed)
        return UpdateStats(
            delta=delta,
            update_seed=update_seed,
            edges_inserted=inserted,
            edges_removed=removed,
            frontier_nodes=len(frontier),
            repair=repair_stats,
        )

    def apply_batch(self, deltas, update_seed: int) -> BatchStats:
        frontier: set = set()
        inserted = removed = 0
        try:
            for delta in deltas:
                f, ins, rem = self.mutate(delta)
                frontier |= f
                inserted += ins
                removed += rem
        except DeltaError:
            self._repair_from_carried(update_seed)
            raise
        live = [x for x in frontier if x in self._nodes]
        repair_stats = self._repair_from_carried(update_seed)
        return BatchStats(
            num_deltas=len(deltas),
            update_seed=update_seed,
            edges_inserted=inserted,
            edges_removed=removed,
            frontier_nodes=len(live),
            repair=repair_stats,
        )

    # -- exports --------------------------------------------------------
    def loads(self) -> Dict[NodeId, int]:
        return dict(self._load)

    def load_of(self, node: NodeId) -> int:
        if node not in self._nodes:
            raise DeltaError(f"node {node!r} does not exist")
        return self._load[node]

    def solved_arrays(self) -> Tuple[CompactGraph, List[int], List[int]]:
        graph = CompactGraph.from_edges(self._heads.keys(), nodes=self._nodes)
        index_of = graph.index_of
        heads = [index_of[self._heads[key]] for key in graph.edge_keys()]
        load = [0] * graph.num_nodes
        for h in heads:
            load[h] += 1
        return graph, heads, load

    def head_of(self, u: NodeId, v: NodeId) -> NodeId:
        key = edge_key(u, v)
        head = self._heads.get(key)
        if head is None:
            raise DeltaError(f"no live edge {key!r}")
        return head

    def orientation(self) -> Orientation:
        problem = OrientationProblem(
            edges=self._heads.keys(), nodes=self._nodes
        )
        return Orientation(problem, heads=self._heads)

    def unhappy_edges(self) -> List[Tuple[NodeId, NodeId]]:
        return self.orientation().unhappy_edges()

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._heads)


# ----------------------------------------------------------------------
# The public API
# ----------------------------------------------------------------------
class DynamicOrientation:
    """A stable orientation that absorbs edge/node churn locally.

    Parameters
    ----------
    problem:
        The initial instance — an
        :class:`~repro.core.orientation.problem.OrientationProblem` or a
        pre-interned :class:`~repro.graphs.compact.CompactGraph`.
    seed:
        Seed of the initial solve (the seeded repair baseline) and the
        root of the per-update seed stream.
    initial:
        A pre-solved **stable, complete**
        :class:`~repro.core.orientation.problem.Orientation` to wrap
        instead of solving; raises ``ValueError`` otherwise (the
        locality guarantee needs a stable starting point).
    backend:
        ``"compact"`` (auto) for the incremental fast path, ``"dict"``
        for the rebuild-from-scratch reference; see module docstring.

    After construction — and after every :meth:`apply` — the wrapped
    orientation is stable; :meth:`apply` returns the
    :class:`UpdateStats` of the local re-stabilization it ran.
    """

    def __init__(
        self,
        problem,
        *,
        seed: int = 0,
        backend: Optional[str] = None,
        initial: Optional[Orientation] = None,
    ) -> None:
        self.backend = resolve_backend(backend)
        self._seed = seed
        self._updates = 0
        if initial is not None:
            if not initial.is_complete():
                raise ValueError(
                    "DynamicOrientation needs a complete initial orientation"
                )
            if initial.unhappy_edges():
                raise ValueError(
                    "DynamicOrientation needs a stable initial orientation"
                )
        if self.backend == "compact":
            base = (
                problem
                if isinstance(problem, CompactGraph)
                else CompactGraph.from_orientation_problem(problem)
            )
            if initial is not None:
                index_of = base.index_of
                heads = [
                    index_of[initial.head_of(u, v)]
                    for u, v in base.edge_keys()
                ]
                load = [0] * base.num_nodes
                for h in heads:
                    load[h] += 1
            else:
                from repro.core.orientation._kernels import repair_kernel

                heads, load, _ = repair_kernel(base, seed=seed)
            self._impl = _CompactDynamic(base, heads, load)
        else:
            if isinstance(problem, CompactGraph):
                problem = problem.to_orientation_problem()
            if initial is None:
                initial, _ = synchronous_repair_orientation(
                    problem, seed=seed, backend="dict"
                )
            self._impl = _DictDynamic(
                {key: initial.head_of(*key) for key in problem.edges},
                problem.nodes,
            )

    # -- trusted construction ------------------------------------------
    @classmethod
    def from_solved_arrays(
        cls,
        graph: CompactGraph,
        heads,
        load=None,
        *,
        seed: int = 0,
        updates_applied: int = 0,
        validate: bool = True,
    ) -> "DynamicOrientation":
        """Wrap already-solved flat arrays without re-solving — O(m).

        The trusted-constructor entry point for the serving layer and
        snapshot restore: ``heads[e]`` is the dense head of edge ``e`` of
        ``graph``, ``load`` (optional, derived when omitted) the per-node
        indegree.  ``seed``/``updates_applied`` restore the per-update
        seed stream, so a restored engine replays future deltas exactly
        like the engine it was saved from.

        Endpoint/load consistency is always checked; ``validate=True``
        additionally runs the O(m) stability check the locality guarantee
        depends on.  Compact backend only — no dict round-trip is ever
        taken.
        """
        self = cls.__new__(cls)
        self.backend = "compact"
        self._seed = seed
        self._updates = updates_applied
        heads = list(heads)
        if len(heads) != graph.num_edges:
            raise ValueError(
                f"heads has {len(heads)} entries for {graph.num_edges} edges"
            )
        eu, ev = graph.edge_u, graph.edge_v
        derived = [0] * graph.num_nodes
        for e, h in enumerate(heads):
            if h != eu[e] and h != ev[e]:
                raise ValueError(
                    f"head {h} of edge {e} is not one of its endpoints "
                    f"({eu[e]}, {ev[e]})"
                )
            derived[h] += 1
        if load is None:
            load = derived
        else:
            load = list(load)
            if load != derived:
                raise ValueError("load array disagrees with the heads array")
        if validate:
            for e, h in enumerate(heads):
                t = eu[e] if h == ev[e] else ev[e]
                if load[h] - load[t] > 1:
                    raise ValueError(
                        "orientation is not stable: edge "
                        f"{e} has badness {load[h] - load[t]}"
                    )
        self._impl = _CompactDynamic(graph, heads, load)
        return self

    # -- updates --------------------------------------------------------
    def apply(self, delta: Delta, *, seed: Optional[int] = None) -> UpdateStats:
        """Apply one delta and re-stabilize; returns the update's stats.

        ``seed`` overrides the per-update repair seed (default: a
        deterministic stream derived from the constructor seed and the
        update counter, so replaying a trace is reproducible on either
        backend).
        """
        update_seed = (
            seed if seed is not None else self._seed * 1_000_003 + self._updates
        )
        self._updates += 1
        with obs.span(
            "churn.apply", kind=type(delta).__name__, backend=self.backend
        ) as sp:
            stats = self._impl.apply(delta, update_seed)
            sp.set(
                frontier_nodes=stats.frontier_nodes,
                edges_inserted=stats.edges_inserted,
                edges_removed=stats.edges_removed,
                initial_unhappy=stats.repair.initial_unhappy,
                repair_iterations=stats.repair.iterations,
                repair_flips=stats.repair.total_flips,
            )
        return stats

    def apply_batch(self, deltas, *, seed: Optional[int] = None) -> BatchStats:
        """Apply a batch of deltas with ONE re-stabilization at the end.

        The coalescing entry point of the serving layer: every delta's
        structural mutation is applied in order (the ``EdgeInsert`` head
        rule sees the evolving loads, exactly as a sequential replay
        would between repairs), the union of their frontiers seeds a
        single repair run, and the update counter advances by
        ``len(deltas)``.  The batch repair runs under the seed-stream
        seed of the *last* delta, so whenever the intermediate repairs of
        a sequential replay are no-ops the coalesced result is
        bit-for-bit identical to replaying the trace delta by delta.

        An empty batch is a strict no-op: no seed-stream advance, no
        repair, and the returned stats carry ``update_seed=None``.  If a
        delta is invalid, the already-applied prefix stays applied, the
        engine is re-stabilized before the :class:`DeltaError`
        propagates, and the counter still advances by ``len(deltas)``.
        """
        deltas = tuple(deltas)
        if not deltas:
            return BatchStats(
                num_deltas=0,
                update_seed=None,
                edges_inserted=0,
                edges_removed=0,
                frontier_nodes=0,
            )
        update_seed = (
            seed
            if seed is not None
            else self._seed * 1_000_003 + self._updates + len(deltas) - 1
        )
        self._updates += len(deltas)
        with obs.span(
            "churn.apply_batch", num_deltas=len(deltas), backend=self.backend
        ) as sp:
            stats = self._impl.apply_batch(deltas, update_seed)
            sp.set(
                frontier_nodes=stats.frontier_nodes,
                edges_inserted=stats.edges_inserted,
                edges_removed=stats.edges_removed,
                initial_unhappy=stats.repair.initial_unhappy,
                repair_iterations=stats.repair.iterations,
                repair_flips=stats.repair.total_flips,
            )
        return stats

    # -- queries --------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Live node count."""
        return self._impl.num_nodes

    @property
    def num_edges(self) -> int:
        """Live edge count."""
        return self._impl.num_edges

    @property
    def updates_applied(self) -> int:
        return self._updates

    @property
    def seed(self) -> int:
        """Root seed of the per-update seed stream."""
        return self._seed

    def loads(self) -> Dict[NodeId, int]:
        """Load (indegree) per live node."""
        return self._impl.loads()

    def load_of(self, node: NodeId) -> int:
        """Load of one live node — O(1), the serving-layer point query."""
        return self._impl.load_of(node)

    def head_of(self, u: NodeId, v: NodeId) -> NodeId:
        """Current head of the live edge {u, v}."""
        return self._impl.head_of(u, v)

    def solved_arrays(self) -> Tuple[CompactGraph, List[int], List[int]]:
        """Materialize the current state as ``(graph, heads, load)`` arrays.

        The snapshot export: a canonical (repr-sorted) ``CompactGraph``
        of the live nodes/edges plus dense heads and loads, suitable for
        :meth:`from_solved_arrays`.  When no update has structurally
        changed the instance the base graph is returned as-is (no
        rebuild).
        """
        return self._impl.solved_arrays()

    def orientation(self) -> Orientation:
        """Export the current state as a reference Orientation (O(n + m))."""
        return self._impl.orientation()

    def unhappy_edges(self) -> List[Tuple[NodeId, NodeId]]:
        """Unhappy (tail, head) pairs — empty after every apply()."""
        return self._impl.unhappy_edges()

    def is_stable(self) -> bool:
        """Full O(m) stability check (the engine's invariant; for tests)."""
        return not self._impl.unhappy_edges()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynamicOrientation(backend={self.backend!r}, "
            f"nodes={self.num_nodes}, edges={self.num_edges}, "
            f"updates={self._updates})"
        )
