"""The phase-based O(Δ⁴) stable orientation algorithm (Theorem 5.1).

Section 5 of the paper.  The algorithm starts from the *unoriented* graph
and orients edges gradually, maintaining the invariant that at the end of
every phase no oriented edge has badness larger than 1 (Lemma 5.4).  One
phase consists of:

1. every unoriented edge proposes to its endpoint with the smaller load
   (ties broken arbitrarily);
2. every node that received at least one proposal accepts exactly one;
3. a token dropping instance is created: **all** nodes participate,
   assigned to levels according to their current load; the instance's
   edges are exactly the oriented edges of badness exactly 1 (pointing
   from the tail's level up to the head's level); a token is placed on
   every node that accepted a proposal (Lemma 5.2 shows this is a valid
   instance of height ≤ Δ);
4. the token dropping game is solved (we use the proposal algorithm of
   Theorem 4.1 as the black box), and every edge that appears in a
   traversal is flipped;
5. finally each accepted unoriented edge is oriented towards the node
   that accepted it.

Lemma 5.5 bounds the number of phases by O(Δ), and with the O(Δ³) per-phase
cost of token dropping at height ≤ Δ this gives O(Δ⁴) rounds in total.

Round accounting
----------------
Each phase costs a constant number of rounds for the propose/accept
exchange (:data:`PHASE_OVERHEAD_ROUNDS`) plus the rounds of the embedded
token dropping run.  The result reports both game rounds (token dropping
game rounds + overhead) and raw LOCAL communication rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple, Union

from repro.core.orientation.problem import (
    Orientation,
    OrientationProblem,
    check_stable,
    edge_key,
    orientation_from_dense,
)
from repro.core.token_dropping.game import TokenDroppingInstance
from repro.core.token_dropping.proposal import run_proposal_algorithm
from repro.dispatch import resolve_backend
from repro.graphs.compact import CompactGraph
from repro.graphs.layered import LayeredGraph
from repro.local_model.errors import AlgorithmError

NodeId = Hashable

#: LOCAL rounds charged per phase for the propose/accept/load exchange.
PHASE_OVERHEAD_ROUNDS = 3


@dataclass
class PhaseStats:
    """Per-phase measurements of the stable orientation algorithm."""

    phase: int
    proposals: int
    accepted: int
    tokens: int
    token_dropping_game_rounds: int
    token_dropping_communication_rounds: int
    token_dropping_height: int
    edges_flipped: int
    edges_oriented_total: int
    max_badness_after: int


@dataclass
class StableOrientationResult:
    """Outcome of the phase-based stable orientation algorithm."""

    orientation: Orientation
    phases: int
    game_rounds: int
    communication_rounds: int
    per_phase: List[PhaseStats] = field(default_factory=list)

    @property
    def stable(self) -> bool:
        """Whether the final orientation is stable (it always should be)."""
        return self.orientation.is_stable()


def theoretical_phase_bound(problem: OrientationProblem, constant: int = 4) -> int:
    """A concrete O(Δ) bound on the number of phases (Lemma 5.5)."""
    return constant * (problem.max_degree() + 1) + constant


def theoretical_round_bound(problem: OrientationProblem, constant: int = 16) -> int:
    """A concrete O(Δ⁴) bound on the total game rounds (Theorem 5.1)."""
    delta = problem.max_degree() + 1
    return constant * delta**4 + constant


def _build_token_dropping_instance(
    problem: OrientationProblem,
    orientation: Orientation,
    accepted_nodes: Dict[NodeId, Tuple[NodeId, NodeId]],
) -> TokenDroppingInstance:
    """Create the per-phase token dropping instance (Lemma 5.2).

    Levels are the current loads; edges are the oriented edges of badness
    exactly 1 (tail at level ℓ, head at level ℓ+1, so the tail is the
    *child* through which the head could shed one unit of load); tokens sit
    on the nodes that accepted a proposal this phase.
    """
    loads = orientation.loads()
    layered_edges = []
    for tail, head in orientation.oriented_edges():
        if loads[head] - loads[tail] == 1:
            layered_edges.append((tail, head))
    graph = LayeredGraph(levels=loads, edges=layered_edges)
    return TokenDroppingInstance(graph, tokens=set(accepted_nodes))


def run_stable_orientation(
    problem: Union[OrientationProblem, CompactGraph],
    *,
    tie_break: str = "min",
    seed: int = 0,
    check_invariants: bool = True,
    max_phases: Optional[int] = None,
    backend: Optional[str] = None,
) -> StableOrientationResult:
    """Find a stable orientation with the token-dropping-based algorithm.

    Parameters
    ----------
    problem:
        The undirected graph to orient — either the reference
        :class:`OrientationProblem` or a pre-interned
        :class:`~repro.graphs.compact.CompactGraph`.
    tie_break, seed:
        Passed to the embedded token dropping proposal algorithm.
    check_invariants:
        When True (default), assert Lemma 5.4 (max badness ≤ 1) at the end
        of every phase and the stability of the final orientation, raising
        :class:`AlgorithmError` on violation.
    max_phases:
        Budget on the number of phases; defaults to the Lemma 5.5 bound,
        so exceeding it fails loudly.
    backend:
        ``"compact"`` / ``"dict"`` / ``"auto"`` (default; see
        :mod:`repro.dispatch`).  The compact fast path runs every phase —
        propose/accept, the embedded token dropping game, flips — on flat
        int arrays and produces identical results; ``"dict"`` forces the
        full reference chain including the per-node token dropping
        scheduler.

    Returns
    -------
    StableOrientationResult
    """
    resolved = resolve_backend(backend, supports_parallel=True)
    if resolved in ("compact", "compact-parallel"):
        return _run_stable_orientation_compact(
            problem,
            tie_break=tie_break,
            seed=seed,
            check_invariants=check_invariants,
            max_phases=max_phases,
            parallel=resolved == "compact-parallel",
        )
    if isinstance(problem, CompactGraph):
        problem = problem.to_orientation_problem()
    orientation = Orientation(problem)
    if max_phases is None:
        max_phases = theoretical_phase_bound(problem)

    per_phase: List[PhaseStats] = []
    game_rounds = 0
    communication_rounds = 0
    phase_index = 0

    while not orientation.is_complete():
        phase_index += 1
        if phase_index > max_phases:
            raise AlgorithmError(
                f"stable orientation exceeded the phase budget of {max_phases}; "
                "this contradicts Lemma 5.5 and indicates a bug"
            )
        loads = orientation.loads()

        # Step 1: every unoriented edge proposes to its lower-load endpoint.
        proposals_by_node: Dict[NodeId, List[Tuple[NodeId, NodeId]]] = {}
        unoriented = orientation.unoriented_edges()
        for u, v in unoriented:
            if loads[u] < loads[v]:
                target = u
            elif loads[v] < loads[u]:
                target = v
            else:
                target = u  # tie: canonical (smaller) endpoint
            proposals_by_node.setdefault(target, []).append((u, v))

        # Step 2: every node accepts exactly one received proposal.
        accepted_nodes: Dict[NodeId, Tuple[NodeId, NodeId]] = {}
        for node, edges in proposals_by_node.items():
            accepted_nodes[node] = sorted(edges, key=repr)[0]

        # Step 3: build and solve the token dropping instance (forcing the
        # reference scheduler, so backend="dict" is the full dict chain).
        instance = _build_token_dropping_instance(problem, orientation, accepted_nodes)
        solution = run_proposal_algorithm(
            instance, tie_break=tie_break, seed=seed, backend="dict"
        )
        if check_invariants:
            solution.validate(instance).raise_if_invalid()

        # Step 4: flip every edge that appears in a traversal.
        edges_flipped = 0
        for traversal in solution.traversals.values():
            for parent, child in zip(traversal.path, traversal.path[1:]):
                orientation.flip(child, parent)
                edges_flipped += 1

        # Step 5: orient the accepted (previously unoriented) edges.
        for node, (u, v) in accepted_nodes.items():
            orientation.orient(u, v, head=node)

        max_badness = orientation.max_badness()
        if check_invariants and max_badness > 1:
            raise AlgorithmError(
                f"phase {phase_index} ended with max badness {max_badness} > 1; "
                "this contradicts Lemma 5.4 and indicates a bug"
            )

        td_game_rounds = solution.game_rounds or 0
        td_comm_rounds = solution.communication_rounds or 0
        game_rounds += td_game_rounds + PHASE_OVERHEAD_ROUNDS
        communication_rounds += td_comm_rounds + PHASE_OVERHEAD_ROUNDS
        per_phase.append(
            PhaseStats(
                phase=phase_index,
                proposals=len(unoriented),
                accepted=len(accepted_nodes),
                tokens=instance.num_tokens,
                token_dropping_game_rounds=td_game_rounds,
                token_dropping_communication_rounds=td_comm_rounds,
                token_dropping_height=instance.height,
                edges_flipped=edges_flipped,
                edges_oriented_total=orientation.num_oriented(),
                max_badness_after=max_badness,
            )
        )

    if check_invariants:
        violations = check_stable(orientation)
        if violations:
            raise AlgorithmError(
                "final orientation is not stable: " + "; ".join(violations)
            )

    return StableOrientationResult(
        orientation=orientation,
        phases=phase_index,
        game_rounds=game_rounds,
        communication_rounds=communication_rounds,
        per_phase=per_phase,
    )


def _run_stable_orientation_compact(
    problem: Union[OrientationProblem, CompactGraph],
    *,
    tie_break: str,
    seed: int,
    check_invariants: bool,
    max_phases: Optional[int],
    parallel: bool = False,
) -> StableOrientationResult:
    """Fast path: intern once, run the phase kernel, wrap the result.

    With ``parallel=True`` (the ``compact-parallel`` backend) the phase
    games run on the :mod:`repro.parallel` shared-memory worker pool —
    same results bit for bit, with its own below-threshold fallback to
    the serial kernel.
    """
    if parallel:
        from repro.parallel import parallel_stable_orientation_kernel as kernel
    else:
        from repro.core.orientation._kernels import (
            stable_orientation_kernel as kernel,
        )

    if isinstance(problem, CompactGraph):
        compact = problem
    else:
        compact = CompactGraph.from_orientation_problem(problem)

    heads, loads, phases, game_rounds, communication_rounds, per_phase = kernel(
        compact,
        tie_break=tie_break,
        seed=seed,
        check_invariants=check_invariants,
        max_phases=max_phases,
    )

    orientation = orientation_from_dense(
        compact.to_orientation_problem(),
        compact.node_ids,
        compact.edge_keys(),
        heads,
        loads,
    )
    return StableOrientationResult(
        orientation=orientation,
        phases=phases,
        game_rounds=game_rounds,
        communication_rounds=communication_rounds,
        per_phase=per_phase,
    )


def edge_key_of(u: NodeId, v: NodeId) -> Tuple[NodeId, NodeId]:
    """Re-export of :func:`repro.core.orientation.problem.edge_key` for callers."""
    return edge_key(u, v)
