"""Stable orientations: problem statement, orientations, and stability checks.

Section 1.1 of the paper: every edge of an undirected graph is oriented,
and an oriented edge ``e = (u, v)`` (pointing at ``v``) is *happy* iff

    ``indegree(v) <= indegree(u) + 1``,

i.e. flipping the edge would not strictly lower the load of its head.  An
orientation is *stable* when every edge is happy.  The *badness* of an
oriented edge (Section 5) is ``indegree(v) - indegree(u)``; an edge is
happy exactly when its badness is at most 1.

The phase-based algorithm of Section 5 works with *partial* orientations
(it starts with no edge oriented and orients more edges every phase), so
:class:`Orientation` supports unoriented edges; only oriented edges
contribute to loads and can be (un)happy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Optional, Tuple

NodeId = Hashable
#: Canonical undirected edge representation: a sorted-by-repr 2-tuple.
EdgeKey = Tuple[NodeId, NodeId]


class OrientationError(ValueError):
    """Raised for malformed orientation problems or invalid operations."""


def edge_key(u: NodeId, v: NodeId) -> EdgeKey:
    """Canonical key of the undirected edge {u, v}.

    Naturally comparable endpoints are ordered directly.  Mixed-type ids
    (where ``<=`` raises TypeError) fall back to a ``(type name, repr)``
    tie-break: unlike a bare ``repr`` comparison, two distinct nodes of
    different types with identical reprs still get a total order, so
    ``edge_key(u, v) == edge_key(v, u)`` holds for every edge.  Distinct
    nodes that are also type- and ``repr``-identical order by
    ``(hash, id)`` as a last resort (consistent within a process, which
    is all a canonical key needs).
    """
    if u == v:
        raise OrientationError(f"self-loop on {u!r} is not allowed")
    try:
        return (u, v) if u <= v else (v, u)
    except TypeError:
        ku = (type(u).__name__, repr(u))
        kv = (type(v).__name__, repr(v))
        if ku == kv:
            return (u, v) if (hash(u), id(u)) <= (hash(v), id(v)) else (v, u)
        return (u, v) if ku < kv else (v, u)


@dataclass(frozen=True)
class OrientationProblem:
    """An instance of the stable orientation problem: an undirected simple graph.

    Parameters
    ----------
    edges:
        Iterable of 2-tuples; duplicates and self-loops are rejected.
    nodes:
        Optional extra isolated nodes (nodes mentioned in ``edges`` are
        added automatically).
    """

    adjacency: Mapping[NodeId, FrozenSet[NodeId]]
    edge_keys: FrozenSet[EdgeKey]

    def __init__(
        self, edges: Iterable[Tuple[NodeId, NodeId]], nodes: Iterable[NodeId] = ()
    ) -> None:
        adjacency: Dict[NodeId, set] = {node: set() for node in nodes}
        keys = set()
        for u, v in edges:
            key = edge_key(u, v)
            if key in keys:
                raise OrientationError(f"duplicate edge {key!r}")
            keys.add(key)
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
        object.__setattr__(
            self, "adjacency", {n: frozenset(a) for n, a in adjacency.items()}
        )
        object.__setattr__(self, "edge_keys", frozenset(keys))

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[NodeId, ...]:
        """All nodes in deterministic order."""
        return tuple(sorted(self.adjacency, key=repr))

    @property
    def edges(self) -> Tuple[EdgeKey, ...]:
        """All undirected edges (canonical keys) in deterministic order."""
        return tuple(sorted(self.edge_keys, key=repr))

    def degree(self, node: NodeId) -> int:
        """Degree of one node."""
        return len(self.adjacency[node])

    def max_degree(self) -> int:
        """Δ, the maximum degree (0 for an edgeless graph)."""
        if not self.adjacency:
            return 0
        return max(len(a) for a in self.adjacency.values())

    def num_edges(self) -> int:
        return len(self.edge_keys)

    def neighbors(self, node: NodeId) -> FrozenSet[NodeId]:
        return self.adjacency[node]

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return v in self.adjacency.get(u, frozenset())

    @classmethod
    def from_networkx(cls, graph) -> "OrientationProblem":
        """Build a problem from a ``networkx.Graph``."""
        return cls(edges=graph.edges(), nodes=graph.nodes())


class Orientation:
    """A (possibly partial) orientation of an :class:`OrientationProblem`.

    The orientation maps each oriented edge to its *head* (the node the
    edge points at, i.e. the server the edge-customer uses).  Loads
    (indegrees) are maintained incrementally so that the phase algorithm's
    inner loops stay linear.
    """

    def __init__(
        self,
        problem: OrientationProblem,
        heads: Optional[Mapping[EdgeKey, NodeId]] = None,
    ) -> None:
        self.problem = problem
        self._heads: Dict[EdgeKey, NodeId] = {}
        self._load: Dict[NodeId, int] = {node: 0 for node in problem.nodes}
        for key, head in (heads or {}).items():
            self.orient(key[0], key[1], head)

    # -- copying --------------------------------------------------------
    def copy(self) -> "Orientation":
        """An independent copy of this orientation."""
        clone = Orientation(self.problem)
        clone._heads = dict(self._heads)
        clone._load = dict(self._load)
        return clone

    # -- mutation -------------------------------------------------------
    def orient(self, u: NodeId, v: NodeId, head: NodeId) -> None:
        """Orient edge {u, v} towards ``head`` (must be one of its endpoints)."""
        key = edge_key(u, v)
        if key not in self.problem.edge_keys:
            raise OrientationError(f"{key!r} is not an edge of the problem")
        if head not in key:
            raise OrientationError(f"head {head!r} is not an endpoint of {key!r}")
        previous = self._heads.get(key)
        if previous is not None:
            self._load[previous] -= 1
        self._heads[key] = head
        self._load[head] += 1

    def flip(self, u: NodeId, v: NodeId) -> None:
        """Reverse the orientation of an already-oriented edge {u, v}."""
        key = edge_key(u, v)
        head = self._heads.get(key)
        if head is None:
            raise OrientationError(f"edge {key!r} is not oriented; cannot flip")
        tail = key[0] if head == key[1] else key[1]
        self.orient(u, v, tail)

    # -- queries --------------------------------------------------------
    def head_of(self, u: NodeId, v: NodeId) -> Optional[NodeId]:
        """Head of edge {u, v}, or None if it is unoriented."""
        return self._heads.get(edge_key(u, v))

    def tail_of(self, u: NodeId, v: NodeId) -> Optional[NodeId]:
        """Tail of edge {u, v}, or None if it is unoriented."""
        key = edge_key(u, v)
        head = self._heads.get(key)
        if head is None:
            return None
        return key[0] if head == key[1] else key[1]

    def is_oriented(self, u: NodeId, v: NodeId) -> bool:
        return edge_key(u, v) in self._heads

    def oriented_edges(self) -> Tuple[Tuple[NodeId, NodeId], ...]:
        """All oriented edges as (tail, head) pairs in deterministic order."""
        out = []
        for key, head in self._heads.items():
            tail = key[0] if head == key[1] else key[1]
            out.append((tail, head))
        return tuple(sorted(out, key=repr))

    def unoriented_edges(self) -> Tuple[EdgeKey, ...]:
        """Edges not yet oriented, in deterministic order."""
        return tuple(
            sorted(
                (k for k in self.problem.edge_keys if k not in self._heads), key=repr
            )
        )

    def num_oriented(self) -> int:
        return len(self._heads)

    def is_complete(self) -> bool:
        """True when every edge of the problem is oriented."""
        return len(self._heads) == len(self.problem.edge_keys)

    def load(self, node: NodeId) -> int:
        """Indegree (load) of a node under the current partial orientation."""
        return self._load[node]

    def loads(self) -> Dict[NodeId, int]:
        """A copy of all loads."""
        return dict(self._load)

    def max_load(self) -> int:
        """The maximum load over all nodes (0 if there are no nodes)."""
        if not self._load:
            return 0
        return max(self._load.values())

    # -- happiness / stability ------------------------------------------
    def badness(self, u: NodeId, v: NodeId) -> int:
        """Badness of an oriented edge: load(head) - load(tail).

        Raises if the edge is unoriented.
        """
        head = self.head_of(u, v)
        if head is None:
            raise OrientationError(f"edge {edge_key(u, v)!r} is not oriented")
        tail = self.tail_of(u, v)
        return self._load[head] - self._load[tail]

    def is_happy(self, u: NodeId, v: NodeId) -> bool:
        """An oriented edge is happy iff its badness is at most 1."""
        return self.badness(u, v) <= 1

    def unhappy_edges(self) -> List[Tuple[NodeId, NodeId]]:
        """All unhappy oriented edges as (tail, head) pairs."""
        out = []
        for tail, head in self.oriented_edges():
            if self._load[head] - self._load[tail] > 1:
                out.append((tail, head))
        return out

    def max_badness(self) -> int:
        """The maximum badness over oriented edges (0 if none are oriented)."""
        worst = 0
        for tail, head in self.oriented_edges():
            worst = max(worst, self._load[head] - self._load[tail])
        return worst

    def is_stable(self) -> bool:
        """True when the orientation is complete and every edge is happy."""
        return self.is_complete() and not self.unhappy_edges()

    # -- potentials -----------------------------------------------------
    def sum_squared_loads(self) -> int:
        """Σ load(v)² -- the potential that the sequential flip algorithm decreases."""
        return sum(load * load for load in self._load.values())

    def semi_matching_cost(self) -> int:
        """Σ f(load(v)) with f(x) = 1 + 2 + ... + x (the semi-matching objective)."""
        return sum(load * (load + 1) // 2 for load in self._load.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Orientation(oriented={self.num_oriented()}"
            f"/{len(self.problem.edge_keys)}, "
            f"max_load={self.max_load()}, unhappy={len(self.unhappy_edges())})"
        )


def orientation_from_dense(
    problem: OrientationProblem,
    node_ids: Tuple[NodeId, ...],
    edge_keys: Tuple[EdgeKey, ...],
    heads,
    loads,
) -> Orientation:
    """Trusted construction of an :class:`Orientation` from dense kernel output.

    ``heads[e]`` / ``loads[i]`` are dense head ids per edge and loads per
    node as produced by the compact kernels; ``node_ids`` / ``edge_keys``
    are the interning tables of the corresponding
    :class:`~repro.graphs.compact.CompactGraph`.  Bypasses the per-edge
    validation of :meth:`Orientation.orient` (the kernels only emit
    endpoints of existing edges), so wrapping a kernel result costs one
    dict build instead of ``m`` validated orient calls.
    """
    orientation = Orientation.__new__(Orientation)
    orientation.problem = problem
    orientation._heads = {
        key: node_ids[heads[e]] for e, key in enumerate(edge_keys)
    }
    orientation._load = {node_ids[i]: loads[i] for i in range(len(node_ids))}
    return orientation


def arbitrary_complete_orientation(
    problem: OrientationProblem, rng=None, towards: str = "max"
) -> Orientation:
    """A complete orientation used as the starting point of repair baselines.

    ``towards="max"`` points every edge at its larger endpoint (by repr),
    ``"min"`` at the smaller one, and ``"random"`` flips a seeded coin per
    edge (pass an explicit ``random.Random``).
    """
    orientation = Orientation(problem)
    for key in problem.edges:
        u, v = key
        if towards == "max":
            head = v
        elif towards == "min":
            head = u
        elif towards == "random":
            if rng is None:
                raise OrientationError("towards='random' requires an rng")
            head = v if rng.random() < 0.5 else u
        else:
            raise OrientationError(f"unknown orientation policy {towards!r}")
        orientation.orient(u, v, head)
    return orientation


def check_stable(orientation: Orientation) -> List[str]:
    """Return human-readable stability violations (empty list = stable)."""
    violations: List[str] = []
    unoriented = orientation.unoriented_edges()
    if unoriented:
        violations.append(f"{len(unoriented)} edge(s) are unoriented")
    for tail, head in orientation.unhappy_edges():
        violations.append(
            f"edge {tail!r} -> {head!r} is unhappy: load({head!r})="
            f"{orientation.load(head)} > load({tail!r})+1={orientation.load(tail) + 1}"
        )
    return violations
