"""A repair-from-arbitrary-orientation distributed baseline.

The prior algorithm of Czygrinow et al. (DISC 2012) finds a stable
orientation in O(Δ⁵) rounds.  Its source is not available, but the paper's
own characterisation of *why* it is slower is the design of this baseline
(Section 1.2, "New ideas"): the prior work "starts with an arbitrary
orientation.  This potentially creates a large amount of unhappiness and
resolving it takes a lot of time", whereas the new algorithm orients edges
carefully so that there is never more than one unit of excess load.

``synchronous_repair_orientation`` therefore starts from a complete
arbitrary orientation and repairs it with synchronous rounds of conflict-
free flips: in every round the unhappy edges are matched greedily so that
no node is an endpoint of two simultaneous flips (this is exactly what a
constant number of LOCAL rounds per iteration can coordinate), and all
selected edges flip at once.  Each flip strictly decreases Σ load², so the
process terminates; the benchmark suite (experiment E4) compares its round
counts against the phase-based algorithm on the same instances.

This is *not* a re-implementation of the CHSW12 algorithm (see DESIGN.md,
"Substitutions"); it is the natural repair-style baseline that shares its
weakness.  Its round count can grow with the length of improvement chains
(and hence with n on pathological instances), which is the behaviour the
token-dropping approach eliminates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Set, Tuple, Union

from repro.core.orientation.problem import (
    Orientation,
    OrientationProblem,
    arbitrary_complete_orientation,
    orientation_from_dense,
)
from repro.dispatch import resolve_backend
from repro.graphs.compact import CompactGraph

NodeId = Hashable

#: LOCAL communication rounds charged per repair iteration (collect loads,
#: nominate flips, resolve conflicts).
ROUNDS_PER_REPAIR_ITERATION = 3


@dataclass
class RepairRunStats:
    """Statistics of one run of the repair baseline."""

    iterations: int = 0
    communication_rounds: int = 0
    total_flips: int = 0
    flips_per_iteration: List[int] = field(default_factory=list)
    initial_unhappy: int = 0


def synchronous_repair_orientation(
    problem: Union[OrientationProblem, CompactGraph],
    *,
    initial: Optional[Orientation] = None,
    seed: int = 0,
    max_iterations: Optional[int] = None,
    backend: Optional[str] = None,
) -> Tuple[Orientation, RepairRunStats]:
    """Repair an arbitrary complete orientation into a stable one.

    Parameters
    ----------
    problem:
        The undirected graph to orient — either the reference
        :class:`OrientationProblem` or a pre-interned
        :class:`~repro.graphs.compact.CompactGraph`.
    initial:
        Starting complete orientation; defaults to a seeded random one
        (matching the "arbitrary orientation" of the prior work).
    seed:
        Seed for the default initial orientation and for shuffling the
        greedy matching order (the matching order is the only source of
        nondeterminism).
    max_iterations:
        Safety valve; defaults to ``Σ deg(v)² + 1`` which bounds the total
        number of flips and hence iterations.
    backend:
        ``"compact"`` / ``"dict"`` / ``"auto"`` (default; see
        :mod:`repro.dispatch`).  Both backends produce identical
        orientations and statistics; the compact fast path replays the
        seeded shuffle on flat int arrays.

    Returns
    -------
    (orientation, stats)
    """
    if resolve_backend(backend) == "compact":
        return _synchronous_repair_compact(
            problem, initial=initial, seed=seed, max_iterations=max_iterations
        )
    if isinstance(problem, CompactGraph):
        problem = problem.to_orientation_problem()
    rng = random.Random(seed)
    orientation = (
        initial.copy()
        if initial is not None
        else arbitrary_complete_orientation(problem, rng=rng, towards="random")
    )
    if not orientation.is_complete():
        raise ValueError("the repair baseline needs a complete initial orientation")

    if max_iterations is None:
        max_iterations = sum(problem.degree(n) ** 2 for n in problem.nodes) + 1

    stats = RepairRunStats(initial_unhappy=len(orientation.unhappy_edges()))

    while True:
        unhappy = orientation.unhappy_edges()
        if not unhappy:
            break
        if stats.iterations >= max_iterations:
            raise RuntimeError(
                f"repair baseline exceeded {max_iterations} iterations; "
                "the potential argument guarantees this cannot happen"
            )

        # Greedy conflict-free selection: no node participates in two flips.
        rng.shuffle(unhappy)
        used_nodes: Set[NodeId] = set()
        selected: List[Tuple[NodeId, NodeId]] = []
        for tail, head in unhappy:
            if tail in used_nodes or head in used_nodes:
                continue
            selected.append((tail, head))
            used_nodes.add(tail)
            used_nodes.add(head)

        for tail, head in selected:
            orientation.flip(tail, head)

        stats.iterations += 1
        stats.communication_rounds += ROUNDS_PER_REPAIR_ITERATION
        stats.total_flips += len(selected)
        stats.flips_per_iteration.append(len(selected))

    return orientation, stats


def _synchronous_repair_compact(
    problem: Union[OrientationProblem, CompactGraph],
    *,
    initial: Optional[Orientation],
    seed: int,
    max_iterations: Optional[int],
) -> Tuple[Orientation, RepairRunStats]:
    """Fast path: intern once, run the int-array kernel, wrap the result."""
    from repro.core.orientation._kernels import repair_kernel

    if initial is not None:
        if not initial.is_complete():
            raise ValueError(
                "the repair baseline needs a complete initial orientation"
            )
        compact = CompactGraph.from_orientation_problem(initial.problem)
        ref_problem = initial.problem
        initial_heads = [
            compact.index_of[initial.head_of(u, v)] for u, v in compact.edge_keys()
        ]
    elif isinstance(problem, CompactGraph):
        compact = problem
        ref_problem = None  # resolved lazily below
        initial_heads = None
    else:
        compact = CompactGraph.from_orientation_problem(problem)
        ref_problem = problem
        initial_heads = None

    if max_iterations is None and initial is not None:
        # The reference sizes the safety valve from `problem` even when
        # `initial` brings its own graph; mirror that.
        if isinstance(problem, CompactGraph):
            ptr = problem.indptr
            max_iterations = (
                sum((ptr[i + 1] - ptr[i]) ** 2 for i in range(problem.num_nodes)) + 1
            )
        else:
            max_iterations = sum(problem.degree(x) ** 2 for x in problem.nodes) + 1

    heads, loads, stats = repair_kernel(
        compact,
        seed=seed,
        max_iterations=max_iterations,
        initial_heads=initial_heads,
    )

    if ref_problem is None:
        ref_problem = compact.to_orientation_problem()
    orientation = orientation_from_dense(
        ref_problem, compact.node_ids, compact.edge_keys(), heads, loads
    )
    return orientation, stats
