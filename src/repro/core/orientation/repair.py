"""A repair-from-arbitrary-orientation distributed baseline.

The prior algorithm of Czygrinow et al. (DISC 2012) finds a stable
orientation in O(Δ⁵) rounds.  Its source is not available, but the paper's
own characterisation of *why* it is slower is the design of this baseline
(Section 1.2, "New ideas"): the prior work "starts with an arbitrary
orientation.  This potentially creates a large amount of unhappiness and
resolving it takes a lot of time", whereas the new algorithm orients edges
carefully so that there is never more than one unit of excess load.

``synchronous_repair_orientation`` therefore starts from a complete
arbitrary orientation and repairs it with synchronous rounds of conflict-
free flips: in every round the unhappy edges are matched greedily so that
no node is an endpoint of two simultaneous flips (this is exactly what a
constant number of LOCAL rounds per iteration can coordinate), and all
selected edges flip at once.  Each flip strictly decreases Σ load², so the
process terminates; the benchmark suite (experiment E4) compares its round
counts against the phase-based algorithm on the same instances.

This is *not* a re-implementation of the CHSW12 algorithm (see DESIGN.md,
"Substitutions"); it is the natural repair-style baseline that shares its
weakness.  Its round count can grow with the length of improvement chains
(and hence with n on pathological instances), which is the behaviour the
token-dropping approach eliminates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Set, Tuple

from repro.core.orientation.problem import (
    Orientation,
    OrientationProblem,
    arbitrary_complete_orientation,
)

NodeId = Hashable

#: LOCAL communication rounds charged per repair iteration (collect loads,
#: nominate flips, resolve conflicts).
ROUNDS_PER_REPAIR_ITERATION = 3


@dataclass
class RepairRunStats:
    """Statistics of one run of the repair baseline."""

    iterations: int = 0
    communication_rounds: int = 0
    total_flips: int = 0
    flips_per_iteration: List[int] = field(default_factory=list)
    initial_unhappy: int = 0


def synchronous_repair_orientation(
    problem: OrientationProblem,
    *,
    initial: Optional[Orientation] = None,
    seed: int = 0,
    max_iterations: Optional[int] = None,
) -> Tuple[Orientation, RepairRunStats]:
    """Repair an arbitrary complete orientation into a stable one.

    Parameters
    ----------
    problem:
        The undirected graph to orient.
    initial:
        Starting complete orientation; defaults to a seeded random one
        (matching the "arbitrary orientation" of the prior work).
    seed:
        Seed for the default initial orientation and for shuffling the
        greedy matching order (the matching order is the only source of
        nondeterminism).
    max_iterations:
        Safety valve; defaults to ``Σ deg(v)² + 1`` which bounds the total
        number of flips and hence iterations.

    Returns
    -------
    (orientation, stats)
    """
    rng = random.Random(seed)
    orientation = (
        initial.copy()
        if initial is not None
        else arbitrary_complete_orientation(problem, rng=rng, towards="random")
    )
    if not orientation.is_complete():
        raise ValueError("the repair baseline needs a complete initial orientation")

    if max_iterations is None:
        max_iterations = sum(problem.degree(n) ** 2 for n in problem.nodes) + 1

    stats = RepairRunStats(initial_unhappy=len(orientation.unhappy_edges()))

    while True:
        unhappy = orientation.unhappy_edges()
        if not unhappy:
            break
        if stats.iterations >= max_iterations:
            raise RuntimeError(
                f"repair baseline exceeded {max_iterations} iterations; "
                "the potential argument guarantees this cannot happen"
            )

        # Greedy conflict-free selection: no node participates in two flips.
        rng.shuffle(unhappy)
        used_nodes: Set[NodeId] = set()
        selected: List[Tuple[NodeId, NodeId]] = []
        for tail, head in unhappy:
            if tail in used_nodes or head in used_nodes:
                continue
            selected.append((tail, head))
            used_nodes.add(tail)
            used_nodes.add(head)

        for tail, head in selected:
            orientation.flip(tail, head)

        stats.iterations += 1
        stats.communication_rounds += ROUNDS_PER_REPAIR_ITERATION
        stats.total_flips += len(selected)
        stats.flips_per_iteration.append(len(selected))

    return orientation, stats
