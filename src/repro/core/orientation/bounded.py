"""The 0–1–many (k-bounded) relaxation of stable orientations (Section 1.4).

Section 1.4 of the paper relaxes stable orientations the same way
Section 7.3 relaxes stable assignments: customers (edges) only distinguish
servers of load 0, load 1, and load "at least 2".  The paper states two
results about this relaxation:

* it still requires Ω(Δ) rounds (it is at least as hard as maximal
  matching -- the bipartite case is Theorem 7.4), and
* it can be solved in O(Δ³) rounds, much faster than the O(Δ⁵)/O(Δ⁴)
  known for the general problem (the O(Δ³) follows from Theorem 7.5 with
  C = 2: O(C·S²) = O(Δ²) phases-times-token-dropping plus the constant
  factors; the paper quotes O(Δ³) for the orientation special case).

Because the stable orientation problem is exactly the stable assignment
problem with degree-2 customers (Section 1.3), the reproduction implements
the relaxed orientation by translating the graph to edge-customers and
running the k-bounded assignment algorithm, then translating the result
back to an :class:`~repro.core.orientation.problem.Orientation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Union

from repro.core.assignment.bounded import run_bounded_stable_assignment
from repro.core.assignment.algorithm import StableAssignmentResult
from repro.core.orientation.problem import (
    Orientation,
    OrientationProblem,
    orientation_from_dense,
)
from repro.dispatch import resolve_backend
from repro.graphs.bipartite import CustomerServerGraph
from repro.graphs.compact import CompactGraph

NodeId = Hashable


@dataclass
class BoundedOrientationResult:
    """Outcome of the k-bounded stable orientation algorithm.

    ``assignment_result`` carries the underlying k-bounded assignment run
    (per-phase statistics included); it is ``None`` only for edgeless
    problems, where there is nothing to orient.
    """

    orientation: Orientation
    k: int
    phases: int
    game_rounds: int
    assignment_result: Optional[StableAssignmentResult]

    @property
    def stable(self) -> bool:
        """k-bounded stability of the produced (complete) orientation."""
        return self.orientation.is_complete() and not bounded_unhappy_edges(
            self.orientation, self.k
        )


def effective(load: int, k: int) -> int:
    """Effective load under the k-bounded relaxation."""
    return min(load, k)


def bounded_unhappy_edges(orientation: Orientation, k: int = 2) -> List[tuple]:
    """Oriented edges that are unhappy under the k-bounded relaxation.

    An edge pointing at head ``v`` with tail ``u`` is k-bounded-unhappy iff
    ``load(u) <= min(k, load(v)) - 2`` -- for ``k = 2``: the head has load
    at least 2 while the tail still has load 0.
    """
    unhappy = []
    for tail, head in orientation.oriented_edges():
        threshold = min(k, orientation.load(head)) - 2
        if orientation.load(tail) <= threshold:
            unhappy.append((tail, head))
    return unhappy


def run_bounded_stable_orientation(
    problem: Union[OrientationProblem, CompactGraph],
    *,
    k: int = 2,
    tie_break: str = "min",
    seed: int = 0,
    check_invariants: bool = True,
    backend: Optional[str] = None,
) -> BoundedOrientationResult:
    """Solve the 0–1–many (k-bounded) stable orientation problem.

    Parameters
    ----------
    problem:
        The undirected graph whose edges must be oriented — either the
        reference :class:`OrientationProblem` or a pre-interned
        :class:`~repro.graphs.compact.CompactGraph`.
    k:
        Relaxation threshold (≥ 2); ``k = 2`` is the 0–1–many version of
        Section 1.4.
    tie_break, seed, check_invariants:
        Passed through to the underlying k-bounded assignment algorithm.
    backend:
        ``"compact"`` / ``"dict"`` / ``"auto"`` (default; see
        :mod:`repro.dispatch`).  The compact fast path runs the
        edge-customer specialisation of the assignment phases on flat int
        arrays and produces identical results, including the embedded
        :class:`StableAssignmentResult`.
    """
    if k < 2:
        raise ValueError(f"the k-bounded relaxation requires k >= 2, got {k}")
    if resolve_backend(backend) == "compact":
        return _run_bounded_compact(
            problem,
            k=k,
            tie_break=tie_break,
            seed=seed,
            check_invariants=check_invariants,
        )
    if isinstance(problem, CompactGraph):
        problem = problem.to_orientation_problem()
    graph = CustomerServerGraph.from_orientation_graph(problem.edges)
    orientation = Orientation(problem)

    if not problem.edges:
        # Nothing to orient; trivially stable.
        return BoundedOrientationResult(
            orientation=orientation,
            k=k,
            phases=0,
            game_rounds=0,
            assignment_result=None,
        )

    result = run_bounded_stable_assignment(
        graph, k=k, tie_break=tie_break, seed=seed, check_invariants=check_invariants
    )
    for customer, server in result.assignment.choices().items():
        # Customers are labelled ("edge", u, v) by from_orientation_graph.
        _, u, v = customer
        orientation.orient(u, v, head=server)

    return BoundedOrientationResult(
        orientation=orientation,
        k=k,
        phases=result.phases,
        game_rounds=result.game_rounds,
        assignment_result=result,
    )


def _run_bounded_compact(
    problem: Union[OrientationProblem, CompactGraph],
    *,
    k: int,
    tie_break: str,
    seed: int,
    check_invariants: bool,
) -> BoundedOrientationResult:
    """Fast path: intern once, run the phase kernel, wrap the results.

    The embedded :class:`StableAssignmentResult` is rebuilt through the
    trusted reference constructors in one pass, so callers see exactly the
    objects the dict path produces.
    """
    from repro.core.assignment.problem import Assignment
    from repro.core.orientation._kernels import bounded_orientation_kernel

    if isinstance(problem, CompactGraph):
        compact = problem
    else:
        compact = CompactGraph.from_orientation_problem(problem)
    ref_problem = compact.to_orientation_problem()

    if not compact.num_edges:
        # Nothing to orient; trivially stable.
        return BoundedOrientationResult(
            orientation=Orientation(ref_problem),
            k=k,
            phases=0,
            game_rounds=0,
            assignment_result=None,
        )

    choice, loads, phases, game_rounds, per_phase = bounded_orientation_kernel(
        compact,
        k=k,
        tie_break=tie_break,
        seed=seed,
        check_invariants=check_invariants,
    )

    ids = compact.node_ids
    orientation = orientation_from_dense(
        ref_problem, ids, compact.edge_keys(), choice, loads
    )

    # Rebuild the reference assignment view through trusted constructors:
    # the kernel guarantees every edge customer has exactly its two
    # distinct endpoints as servers, so no per-edge validation is needed.
    customer_adjacency = {}
    server_members: dict = {}
    choices = {}
    for e in range(compact.num_edges):
        u, v = compact.edge_u[e], compact.edge_v[e]
        if u > v:
            u, v = v, u
        label = ("edge", ids[u], ids[v])
        customer_adjacency[label] = frozenset((ids[u], ids[v]))
        server_members.setdefault(u, []).append(label)
        server_members.setdefault(v, []).append(label)
        choices[label] = ids[choice[e]]
    server_dense = sorted(server_members)
    graph = CustomerServerGraph.from_validated_adjacency(
        customer_adjacency,
        {ids[i]: frozenset(server_members[i]) for i in server_dense},
    )
    assignment = Assignment.__new__(Assignment)
    assignment.graph = graph
    assignment._choice = choices
    assignment._load = {ids[i]: loads[i] for i in server_dense}

    result = StableAssignmentResult(
        assignment=assignment,
        phases=phases,
        game_rounds=game_rounds,
        k=k,
        per_phase=per_phase,
    )
    return BoundedOrientationResult(
        orientation=orientation,
        k=k,
        phases=phases,
        game_rounds=game_rounds,
        assignment_result=result,
    )


def theoretical_bounded_orientation_round_bound(
    problem: OrientationProblem, constant: int = 16
) -> int:
    """A concrete O(Δ³) round budget for the relaxed orientation problem.

    With C = 2 (edges have two endpoints) and S = Δ the Theorem 7.5 budget
    O(C·S²) specialises to O(Δ²) token-dropping rounds per O(Δ) phases,
    i.e. O(Δ³) overall, matching the figure quoted in Section 1.4.
    """
    delta = problem.max_degree() + 1
    return constant * delta**3 + constant
