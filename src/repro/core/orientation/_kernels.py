"""Int-array fast-path kernel for the sequential flip algorithm.

This module is the compact counterpart of
:mod:`repro.core.orientation.sequential`: it runs the same algorithm on a
:class:`~repro.graphs.compact.CompactGraph`, touching only flat integer
arrays in the hot loop.  It reproduces the reference implementation's
results *exactly* — same flip sequence, same final orientation, same
statistics — which the cross-validation suite asserts on hundreds of
seeded instances.

How reference tie-breaking is replayed in int-land
--------------------------------------------------
The reference path orders unhappy edges by ``repr((tail, head))``.  Each
edge has exactly two possible oriented tuples, so the kernel computes the
``repr`` of all ``2m`` of them **once** at setup, sorts them, and stores
the two integer ranks per edge.  From then on "smallest repr first"
becomes "smallest int rank first" and the per-flip work involves no
hashing, boxing, or string formatting at all.  Unhappiness is tracked
incrementally: a flip changes the loads of exactly two nodes, so only the
edges incident to those nodes can change state (O(Δ) bookkeeping per flip
versus the reference path's full O(m log m) rescan).
"""

from __future__ import annotations

import random
from operator import itemgetter
from typing import List, Optional, Sequence, Tuple

from repro.graphs.compact import CompactGraph


def directed_ranks(graph: CompactGraph) -> Tuple[List[int], List[int]]:
    """Per-edge integer ranks of ``repr((tail, head))`` for both directions.

    ``rank_to_v[e]`` ranks the orientation pointing at ``edge_v[e]`` and
    ``rank_to_u[e]`` the reverse; comparing ranks is equivalent to
    comparing the reference path's ``repr`` strings.
    """
    ids = graph.node_ids
    m = graph.num_edges
    reprs: List[str] = []
    for e in range(m):
        u = ids[graph.edge_u[e]]
        v = ids[graph.edge_v[e]]
        reprs.append(repr((u, v)))  # head = edge_v  (slot 2e)
        reprs.append(repr((v, u)))  # head = edge_u  (slot 2e + 1)
    order = sorted(range(2 * m), key=reprs.__getitem__)
    rank = [0] * (2 * m)
    for r, slot in enumerate(order):
        rank[slot] = r
    return rank[0::2], rank[1::2]


def sequential_flip_kernel(
    graph: CompactGraph,
    *,
    policy: str = "first",
    seed: int = 0,
    record_trace: bool = False,
    max_flips: Optional[int] = None,
    initial_heads: Optional[Sequence[int]] = None,
) -> Tuple[List[int], List[int], int, int, int, List[int]]:
    """Run the sequential flip algorithm on int arrays until stable.

    Parameters mirror
    :func:`~repro.core.orientation.sequential.sequential_flip_algorithm`;
    ``initial_heads`` is the dense head id per edge index (default: every
    edge points at ``edge_v``, i.e. the reference ``towards="max"``
    orientation).

    Returns
    -------
    (heads, loads, flips, initial_potential, final_potential, trace)
        Dense head id per edge, load per dense node, and the run
        statistics (``trace`` includes the initial potential first and is
        empty unless ``record_trace``).
    """
    rng = random.Random(seed)
    n = graph.num_nodes
    m = graph.num_edges
    eu = list(graph.edge_u)
    ev = list(graph.edge_v)
    indptr = list(graph.indptr)
    slot_edge = list(graph.slot_edge)
    rank_to_v, rank_to_u = directed_ranks(graph)

    if initial_heads is None:
        heads = list(ev)
        tails = list(eu)
    else:
        heads = list(initial_heads)
        tails = [eu[e] if heads[e] == ev[e] else ev[e] for e in range(m)]

    load = [0] * n
    for h in heads:
        load[h] += 1

    if max_flips is None:
        max_flips = sum((indptr[i + 1] - indptr[i]) ** 2 for i in range(n)) + 1

    potential = sum(l * l for l in load)
    initial_potential = potential
    trace: List[int] = [potential] if record_trace else []

    unhappy = {}
    for e in range(m):
        h = heads[e]
        if load[h] - load[tails[e]] > 1:
            unhappy[e] = rank_to_v[e] if h == ev[e] else rank_to_u[e]

    flips = 0
    while unhappy:
        if flips >= max_flips:
            raise RuntimeError(
                f"sequential flip algorithm exceeded {max_flips} flips; "
                "the potential argument guarantees this cannot happen"
            )
        if policy == "first":
            e = min(unhappy.items(), key=itemgetter(1))[0]
        elif policy == "random":
            items = sorted(unhappy.items(), key=itemgetter(1))
            e = items[rng.randrange(len(items))][0]
        else:  # max_badness
            e = max(
                unhappy.items(),
                key=lambda kv: (load[heads[kv[0]]] - load[tails[kv[0]]], kv[1]),
            )[0]

        h = heads[e]
        t = tails[e]
        delta = 2 * (load[t] - load[h]) + 2
        if delta >= 0:  # pragma: no cover - guards the potential argument
            raise RuntimeError(
                "flipping an unhappy edge did not decrease the potential; "
                "this contradicts the paper's argument and indicates a bug"
            )
        heads[e] = t
        tails[e] = h
        load[h] -= 1
        load[t] += 1
        potential += delta
        flips += 1
        if record_trace:
            trace.append(potential)

        for x in (h, t):
            for s in range(indptr[x], indptr[x + 1]):
                f = slot_edge[s]
                fh = heads[f]
                if load[fh] - load[tails[f]] > 1:
                    unhappy[f] = rank_to_v[f] if fh == ev[f] else rank_to_u[f]
                else:
                    unhappy.pop(f, None)

    return heads, load, flips, initial_potential, potential, trace
