"""Int-array fast-path kernels for the stable orientation pipeline.

This module holds the compact counterparts of the orientation algorithms:

* :func:`sequential_flip_kernel` — the centralized flip baseline
  (:mod:`repro.core.orientation.sequential`);
* :func:`stable_orientation_kernel` — the phase-based Theorem 5.1
  algorithm (:mod:`repro.core.orientation.phases`), building each phase's
  token dropping game directly as int arrays and chaining into the
  compact proposal-game kernel of
  :mod:`repro.core.token_dropping._kernels`;
* :func:`repair_kernel` — the synchronous repair baseline
  (:mod:`repro.core.orientation.repair`);
* :func:`bounded_orientation_kernel` — the k-bounded relaxation
  (:mod:`repro.core.orientation.bounded`), running the edge-customer
  specialisation of the Section 7 assignment phases and their rank-2
  hypergraph proposal games entirely on flat arrays.

Each kernel runs the same algorithm on a
:class:`~repro.graphs.compact.CompactGraph`, touching only flat integer
arrays in the hot loop, and reproduces the reference implementation's
results *exactly* — same final orientation, same per-phase statistics,
same round counts — which the cross-validation suite asserts on hundreds
of seeded instances.

How reference tie-breaking is replayed in int-land
--------------------------------------------------
The reference path orders unhappy edges by ``repr((tail, head))``.  Each
edge has exactly two possible oriented tuples, so the kernel computes the
``repr`` of all ``2m`` of them **once** at setup, sorts them, and stores
the two integer ranks per edge.  From then on "smallest repr first"
becomes "smallest int rank first" and the per-flip work involves no
hashing, boxing, or string formatting at all.  Unhappiness is tracked
incrementally: a flip changes the loads of exactly two nodes, so only the
edges incident to those nodes can change state (O(Δ) bookkeeping per flip
versus the reference path's full O(m log m) rescan).
"""

from __future__ import annotations

import random
from operator import itemgetter
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.graphs.compact import CompactGraph
from repro.local_model.errors import AlgorithmError


def directed_ranks(graph: CompactGraph) -> Tuple[List[int], List[int]]:
    """Per-edge integer ranks of ``repr((tail, head))`` for both directions.

    ``rank_to_v[e]`` ranks the orientation pointing at ``edge_v[e]`` and
    ``rank_to_u[e]`` the reverse; comparing ranks is equivalent to
    comparing the reference path's ``repr`` strings.  Memoized on the
    (immutable) graph, so repeated kernel runs on the same instance pay
    the ``repr`` sort exactly once.
    """
    cached = graph.derived.get("directed_ranks")
    if cached is not None:
        return cached
    ids = graph.node_ids
    m = graph.num_edges
    reprs: List[str] = []
    for e in range(m):
        u = ids[graph.edge_u[e]]
        v = ids[graph.edge_v[e]]
        reprs.append(repr((u, v)))  # head = edge_v  (slot 2e)
        reprs.append(repr((v, u)))  # head = edge_u  (slot 2e + 1)
    order = sorted(range(2 * m), key=reprs.__getitem__)
    rank = [0] * (2 * m)
    for r, slot in enumerate(order):
        rank[slot] = r
    ranks = (rank[0::2], rank[1::2])
    graph.derived["directed_ranks"] = ranks
    return ranks


def sequential_flip_kernel(
    graph: CompactGraph,
    *,
    policy: str = "first",
    seed: int = 0,
    record_trace: bool = False,
    max_flips: Optional[int] = None,
    initial_heads: Optional[Sequence[int]] = None,
) -> Tuple[List[int], List[int], int, int, int, List[int]]:
    """Run the sequential flip algorithm on int arrays until stable.

    Parameters mirror
    :func:`~repro.core.orientation.sequential.sequential_flip_algorithm`;
    ``initial_heads`` is the dense head id per edge index (default: every
    edge points at ``edge_v``, i.e. the reference ``towards="max"``
    orientation).

    Returns
    -------
    (heads, loads, flips, initial_potential, final_potential, trace)
        Dense head id per edge, load per dense node, and the run
        statistics (``trace`` includes the initial potential first and is
        empty unless ``record_trace``).
    """
    rng = random.Random(seed)
    n = graph.num_nodes
    m = graph.num_edges
    eu = list(graph.edge_u)
    ev = list(graph.edge_v)
    indptr = list(graph.indptr)
    slot_edge = list(graph.slot_edge)
    rank_to_v, rank_to_u = directed_ranks(graph)

    if initial_heads is None:
        heads = list(ev)
        tails = list(eu)
    else:
        heads = list(initial_heads)
        tails = [eu[e] if heads[e] == ev[e] else ev[e] for e in range(m)]

    load = [0] * n
    for h in heads:
        load[h] += 1

    if max_flips is None:
        max_flips = sum((indptr[i + 1] - indptr[i]) ** 2 for i in range(n)) + 1

    potential = sum(l * l for l in load)
    initial_potential = potential
    trace: List[int] = [potential] if record_trace else []

    unhappy = {}
    for e in range(m):
        h = heads[e]
        if load[h] - load[tails[e]] > 1:
            unhappy[e] = rank_to_v[e] if h == ev[e] else rank_to_u[e]

    flips = 0
    while unhappy:
        if flips >= max_flips:
            raise RuntimeError(
                f"sequential flip algorithm exceeded {max_flips} flips; "
                "the potential argument guarantees this cannot happen"
            )
        if policy == "first":
            e = min(unhappy.items(), key=itemgetter(1))[0]
        elif policy == "random":
            items = sorted(unhappy.items(), key=itemgetter(1))
            e = items[rng.randrange(len(items))][0]
        else:  # max_badness
            e = max(
                unhappy.items(),
                key=lambda kv: (load[heads[kv[0]]] - load[tails[kv[0]]], kv[1]),
            )[0]

        h = heads[e]
        t = tails[e]
        delta = 2 * (load[t] - load[h]) + 2
        if delta >= 0:  # pragma: no cover - guards the potential argument
            raise RuntimeError(
                "flipping an unhappy edge did not decrease the potential; "
                "this contradicts the paper's argument and indicates a bug"
            )
        heads[e] = t
        tails[e] = h
        load[h] -= 1
        load[t] += 1
        potential += delta
        flips += 1
        if record_trace:
            trace.append(potential)

        for x in (h, t):
            for s in range(indptr[x], indptr[x + 1]):
                f = slot_edge[s]
                fh = heads[f]
                if load[fh] - load[tails[f]] > 1:
                    unhappy[f] = rank_to_v[f] if fh == ev[f] else rank_to_u[f]
                else:
                    unhappy.pop(f, None)

    return heads, load, flips, initial_potential, potential, trace


# ----------------------------------------------------------------------
# The phase-based stable orientation algorithm (Theorem 5.1)
# ----------------------------------------------------------------------
def _solve_phase_game_serial(
    eu: Sequence[int],
    ev: Sequence[int],
    ids: Sequence,
    sub: List[int],
    load: Sequence[int],
    heads: Sequence[int],
    game_edge_list: Sequence[int],
    accepted_edge: Dict[int, int],
    height: int,
    tie_break: str,
    seed: int,
    check_invariants: bool,
) -> Tuple[List[int], int]:
    """Build and solve one phase's token dropping game in-process.

    ``game_edge_list`` is the phase's badness-1 edge set in ascending
    order (the reference scan order); ``sub`` is a caller-owned dense-id
    -> game-id scratch map of value -1 everywhere, restored before
    returning.  Returns ``(consumed_edges, communication_rounds)`` where
    ``consumed_edges`` is the ascending list of graph edges consumed by a
    token pass — exactly the edges step 4 must flip.

    This is the unit the ``compact-parallel`` backend distributes: the
    game decomposes into connected components that never exchange
    messages, so :mod:`repro.parallel` runs one of these per component
    (inside worker processes over shared-memory arrays) and merges the
    results; see :func:`repro.parallel.parallel_stable_orientation_kernel`.
    """
    from repro.core.token_dropping._kernels import (
        _node_rngs,
        game_from_arrays,
        proposal_game_kernel,
    )
    from repro.core.token_dropping.traversal import InvalidSolutionError

    game_edges: List[Tuple[int, int, int]] = []
    participants: List[int] = []
    for e in game_edge_list:
        h = heads[e]
        t = eu[e] if h == ev[e] else ev[e]
        game_edges.append((t, h, e))
        if sub[t] < 0:
            sub[t] = 0
            participants.append(t)
        if sub[h] < 0:
            sub[h] = 0
            participants.append(h)
    participants.sort()
    for i, g in enumerate(participants):
        sub[g] = i
    num_participants = len(participants)

    has_token = bytearray(num_participants)
    for node in accepted_edge:
        if sub[node] >= 0:
            has_token[sub[node]] = 1
    game, payloads = game_from_arrays(
        num_participants,
        has_token,
        [load[g] for g in participants],
        [(sub[t], sub[h], e) for t, h, e in game_edges],
    )
    par_ptr, chi_ptr = game.par_ptr, game.chi_ptr
    game_degree = 0
    for i in range(num_participants):
        degree = par_ptr[i + 1] - par_ptr[i] + chi_ptr[i + 1] - chi_ptr[i]
        if degree > game_degree:
            game_degree = degree
    # The reference budget: three LOCAL rounds per game round of the
    # Theorem 4.1 bound computed from this instance's height/degree.
    max_rounds = 3 * (8 * (height + 1) * (game_degree + 1) ** 2 + 8)
    _, final_token, _, _, consumed, engine = proposal_game_kernel(
        game,
        max_rounds,
        tie_break=tie_break,
        rngs=_node_rngs(tie_break, seed, tuple(ids[g] for g in participants))
        if tie_break == "random"
        else None,
        count_messages=False,
    )

    for g in participants:
        sub[g] = -1

    if check_invariants:
        # Maximality (output rule 3) is the part of the solution
        # validation that guards Lemma 5.4; rules 1 and 2 hold by
        # construction of the game kernel.
        chi_ptr, chi_node, chi_edge = game.chi_ptr, game.chi_node, game.chi_edge
        for i in range(num_participants):
            if final_token[i] < 0:
                continue
            for s in range(chi_ptr[i], chi_ptr[i + 1]):
                if not consumed[chi_edge[s]] and final_token[chi_node[s]] < 0:
                    raise InvalidSolutionError(
                        f"not maximal: token at {ids[participants[i]]!r} can "
                        f"still move to {ids[participants[chi_node[s]]]!r}"
                    )

    consumed_edges = [payloads[ge] for ge in range(game.num_edges) if consumed[ge]]
    return consumed_edges, engine.rounds


def stable_orientation_kernel(
    graph: CompactGraph,
    *,
    tie_break: str = "min",
    seed: int = 0,
    check_invariants: bool = True,
    max_phases: Optional[int] = None,
    phase_game_solver=None,
) -> Tuple[List[int], List[int], int, int, int, List]:
    """Run the phase-based stable orientation algorithm on int arrays.

    The compact counterpart of
    :func:`~repro.core.orientation.phases.run_stable_orientation`: every
    phase's propose/accept exchange runs as ascending edge scans, the
    per-phase token dropping game is built *directly* as a dense game
    (:func:`repro.core.token_dropping._kernels.game_from_arrays` — no dict
    :class:`~repro.core.token_dropping.game.TokenDroppingInstance` or
    ``to_network`` round-trip), and the game is solved by the compact
    proposal-game kernel.  Because dense node ids are ``repr``-sorted and
    edge indices follow the reference's canonical-key ``repr`` order, the
    reference tie-breaks ("propose to the canonical endpoint on a load
    tie", "accept the smallest-``repr`` edge", the game's ``min``/``max``/
    ``random`` policies) are all replayed exactly: orientations, per-phase
    statistics, and round counts match the dict path bit for bit.

    Returns
    -------
    (heads, loads, phases, game_rounds, communication_rounds, per_phase)
        Dense head id per edge, load per dense node, and the run counters
        with the per-phase :class:`~repro.core.orientation.phases.
        PhaseStats` rows.
    """
    from repro.core.orientation.phases import (
        PHASE_OVERHEAD_ROUNDS,
        PhaseStats,
    )
    from repro.core.token_dropping.proposal import TIE_BREAK_POLICIES

    n = graph.num_nodes
    m = graph.num_edges
    eu = list(graph.edge_u)
    ev = list(graph.edge_v)
    ids = graph.node_ids
    indptr = graph.indptr
    slot_edge = graph.slot_edge

    delta = graph.max_degree()
    if max_phases is None:
        # Lemma 5.5: the explicit O(Δ) phase budget of the reference path.
        max_phases = 4 * (delta + 1) + 4
    if m and tie_break not in TIE_BREAK_POLICIES:
        # The reference raises when the first phase builds its factory; an
        # edgeless problem never runs a phase and never validates.
        raise ValueError(
            f"unknown tie-break policy {tie_break!r}; "
            f"expected one of {TIE_BREAK_POLICIES}"
        )

    heads = [-1] * m
    load = [0] * n
    per_phase: List = []
    phases = 0
    game_rounds = 0
    communication_rounds = 0
    oriented_count = 0
    # Scratch map from dense node id to per-phase game id (-1 = not in
    # this phase's game); allocated once and reset after every phase.
    sub = [-1] * n

    # Frontier state, maintained incrementally so a phase never rescans
    # all n nodes or all m edges (a node's badness contribution can only
    # change when one of its endpoint loads does):
    #
    # * ``pending`` — the unoriented edge ids, ascending (the reference
    #   scan order), shrunk by exactly the accepted edges each phase;
    # * ``cand`` — the oriented edges of badness exactly 1 (the next
    #   phase's game edges); ``over`` — badness > 1 with its value
    #   (empty in any valid run, Lemma 5.4);
    # * ``hist``/``cur_max`` — a load histogram (loads are bounded by Δ)
    #   so the per-phase game height is O(1) instead of ``max(load)``;
    # * ``touched``/``touched_nodes`` — the nodes whose load changed this
    #   phase; only their incident edges get their badness re-examined.
    pending = list(range(m))
    cand: set = set()
    over: Dict[int, int] = {}
    hist = [0] * (delta + 2)
    if n:
        hist[0] = n
    cur_max = 0
    touched = bytearray(n)

    while oriented_count < m:
        phases += 1
        if phases > max_phases:
            raise AlgorithmError(
                f"stable orientation exceeded the phase budget of {max_phases}; "
                "this contradicts Lemma 5.5 and indicates a bug"
            )

        with obs.span("orientation.phase", phase=phases) as psp:
            # Steps 1 + 2: every unoriented edge proposes to its lower-load
            # endpoint (canonical endpoint on ties) and every proposed-to
            # node accepts its smallest-repr edge — ``pending`` is kept
            # ascending, so the first proposal a node sees is the one the
            # reference's full ascending edge scan would accept.
            accepted_edge: Dict[int, int] = {}
            proposals = len(pending)
            for e in pending:
                u = eu[e]
                v = ev[e]
                target = v if load[v] < load[u] else u
                if target not in accepted_edge:
                    accepted_edge[target] = e

            # Step 3 input: the oriented edges of badness exactly 1 become
            # the phase's token dropping game edges (tail = child, head =
            # parent, Lemma 5.2), with tokens on the accepting nodes.
            # ``cand`` holds exactly those edges — maintained at the end of
            # the previous phase from the nodes whose load changed, not by
            # rescanning all m edges.  The game is restricted to nodes
            # incident to a game edge: every other node (tokenless, or a
            # token holder with no game neighbours) halts at round 0 with
            # no LEAVE fan-out in the reference execution, so dropping it
            # changes neither the surviving run nor its rounds.  The game
            # runs in-process by default; a ``phase_game_solver`` (the
            # compact-parallel backend) may instead split it into
            # connected components and solve them in worker processes —
            # both return the same ascending consumed-edge list.
            game_edge_list = sorted(cand)
            # Phase-start max load, from the histogram (O(1) instead of an
            # O(n) ``max(load)`` pass; loads are bounded by Δ).
            height = cur_max
            if phase_game_solver is None:
                consumed_edges, td_comm_rounds = _solve_phase_game_serial(
                    eu,
                    ev,
                    ids,
                    sub,
                    load,
                    heads,
                    game_edge_list,
                    accepted_edge,
                    height,
                    tie_break,
                    seed,
                    check_invariants,
                )
            else:
                consumed_edges, td_comm_rounds = phase_game_solver(
                    game_edge_list, accepted_edge, heads, load, height
                )

            # Step 4: flip every edge consumed by a pass (each game edge maps
            # back to its oriented edge through the payload table; flipping is
            # order-independent because every edge is consumed at most once).
            edges_flipped = 0
            touched_nodes: List[int] = []
            for e in consumed_edges:
                h = heads[e]
                t = eu[e] if h == ev[e] else ev[e]
                heads[e] = t
                lh = load[h]
                load[h] = lh - 1
                hist[lh] -= 1
                hist[lh - 1] += 1
                lt = load[t]
                load[t] = lt + 1
                hist[lt] -= 1
                hist[lt + 1] += 1
                if lt >= cur_max:
                    cur_max = lt + 1
                if not touched[h]:
                    touched[h] = 1
                    touched_nodes.append(h)
                if not touched[t]:
                    touched[t] = 1
                    touched_nodes.append(t)
                edges_flipped += 1

            # Step 5: orient the accepted (previously unoriented) edges.
            for node, e in accepted_edge.items():
                heads[e] = node
                ln = load[node]
                load[node] = ln + 1
                hist[ln] -= 1
                hist[ln + 1] += 1
                if ln >= cur_max:
                    cur_max = ln + 1
                if not touched[node]:
                    touched[node] = 1
                    touched_nodes.append(node)
            oriented_count += len(accepted_edge)
            if len(accepted_edge) < len(pending):
                pending = [e for e in pending if heads[e] < 0]
            else:
                pending = []
            while cur_max and not hist[cur_max]:
                cur_max -= 1

            # End-of-phase badness maintenance: an edge's badness can only
            # have changed if one of its endpoint loads did, so refreshing
            # the edges incident to the touched nodes (which include every
            # newly oriented edge's head) is exhaustive.  The reference's
            # full-scan ``max_badness`` is therefore 1 iff ``cand`` is
            # non-empty (badness > 1 lands in ``over``, which any valid
            # run keeps empty).
            if obs.enabled():
                obs.add("orientation.frontier.game_edges", len(game_edge_list))
                obs.add("orientation.frontier.touched_nodes", len(touched_nodes))
                obs.add(
                    "orientation.frontier.refreshed_slots",
                    sum(indptr[x + 1] - indptr[x] for x in touched_nodes),
                )
            for x in touched_nodes:
                touched[x] = 0
                for s in range(indptr[x], indptr[x + 1]):
                    e = slot_edge[s]
                    h = heads[e]
                    if h < 0:
                        continue
                    t = eu[e] if h == ev[e] else ev[e]
                    badness = load[h] - load[t]
                    if badness == 1:
                        cand.add(e)
                        if over:
                            over.pop(e, None)
                    else:
                        cand.discard(e)
                        if badness > 1:
                            over[e] = badness
                        elif over:
                            over.pop(e, None)

            max_badness = max(over.values()) if over else (1 if cand else 0)
            if check_invariants and max_badness > 1:
                raise AlgorithmError(
                    f"phase {phases} ended with max badness {max_badness} > 1; "
                    "this contradicts Lemma 5.4 and indicates a bug"
                )

            td_game_rounds = -(-td_comm_rounds // 3)  # ceil, as in reconstruct_solution
            game_rounds += td_game_rounds + PHASE_OVERHEAD_ROUNDS
            communication_rounds += td_comm_rounds + PHASE_OVERHEAD_ROUNDS
            phase_stats = PhaseStats(
                phase=phases,
                proposals=proposals,
                accepted=len(accepted_edge),
                tokens=len(accepted_edge),
                token_dropping_game_rounds=td_game_rounds,
                token_dropping_communication_rounds=td_comm_rounds,
                token_dropping_height=height,
                edges_flipped=edges_flipped,
                edges_oriented_total=oriented_count,
                max_badness_after=max_badness,
            )
            per_phase.append(phase_stats)
            psp.set(
                proposals=phase_stats.proposals,
                accepted=phase_stats.accepted,
                tokens=phase_stats.tokens,
                game_rounds=phase_stats.token_dropping_game_rounds,
                communication_rounds=(
                    phase_stats.token_dropping_communication_rounds
                ),
                height=phase_stats.token_dropping_height,
                edges_flipped=phase_stats.edges_flipped,
                oriented_total=phase_stats.edges_oriented_total,
                max_badness=phase_stats.max_badness_after,
            )

    if check_invariants:
        violations = []
        for e in range(m):
            h = heads[e]
            t = eu[e] if h == ev[e] else ev[e]
            if load[h] - load[t] > 1:
                violations.append(
                    f"edge {ids[t]!r} -> {ids[h]!r} is unhappy: load({ids[h]!r})="
                    f"{load[h]} > load({ids[t]!r})+1={load[t] + 1}"
                )
        if violations:
            raise AlgorithmError(
                "final orientation is not stable: " + "; ".join(violations)
            )

    return heads, load, phases, game_rounds, communication_rounds, per_phase


# ----------------------------------------------------------------------
# The synchronous repair baseline
# ----------------------------------------------------------------------
def repair_kernel(
    graph: CompactGraph,
    *,
    seed: int = 0,
    max_iterations: Optional[int] = None,
    initial_heads: Optional[Sequence[int]] = None,
) -> Tuple[List[int], List[int], "object"]:
    """Run the synchronous repair baseline on int arrays.

    The compact counterpart of :func:`~repro.core.orientation.repair.
    synchronous_repair_orientation`.  The reference's only randomness is
    one ``random.Random(seed)`` consumed first by the coin-per-edge
    initial orientation (edges in canonical-key ``repr`` order, which is
    edge-index order) and then by ``rng.shuffle`` over the repr-sorted
    unhappy list each iteration.  ``shuffle``'s stream consumption depends
    only on the list length, so shuffling the rank-sorted edge-index list
    yields the exact reference permutation — the per-iteration flip sets,
    statistics, and final orientation all match bit for bit.

    ``initial_heads`` is the dense head id per edge index (default: the
    seeded random complete orientation of the reference path).
    """
    from repro.core.orientation._unhappy import (
        UnhappyEdgeTracker,
        run_repair_loop,
    )
    from repro.core.orientation.repair import (
        ROUNDS_PER_REPAIR_ITERATION,
        RepairRunStats,
    )

    rng = random.Random(seed)
    n = graph.num_nodes
    m = graph.num_edges
    eu = list(graph.edge_u)
    ev = list(graph.edge_v)
    indptr = list(graph.indptr)
    slot_edge = list(graph.slot_edge)
    rank_to_v, rank_to_u = directed_ranks(graph)

    if initial_heads is None:
        heads = [ev[e] if rng.random() < 0.5 else eu[e] for e in range(m)]
    else:
        heads = list(initial_heads)
    tails = [eu[e] if heads[e] == ev[e] else ev[e] for e in range(m)]

    load = [0] * n
    for h in heads:
        load[h] += 1

    if max_iterations is None:
        max_iterations = (
            sum((indptr[i + 1] - indptr[i]) ** 2 for i in range(n)) + 1
        )

    # Unhappy edges tracked incrementally (a flip changes two loads, so
    # only edges incident to those nodes change state), keyed to the rank
    # of their current (tail, head) repr — the reference's sort order.
    tracker = UnhappyEdgeTracker(heads, tails, load, ev, rank_to_v, rank_to_u)
    tracker.refresh(range(m))

    stats = RepairRunStats(initial_unhappy=len(tracker))

    def refresh_incident(x: int) -> None:
        tracker.refresh_slots(slot_edge, indptr[x], indptr[x + 1])

    with obs.span(
        "orientation.repair", nodes=n, edges=m, initial_unhappy=len(tracker)
    ) as sp:
        run_repair_loop(
            tracker,
            num_nodes=n,
            refresh_incident=refresh_incident,
            rng=rng,
            stats=stats,
            max_iterations=max_iterations,
            rounds_per_iteration=ROUNDS_PER_REPAIR_ITERATION,
        )
        sp.set(
            iterations=stats.iterations,
            flips=stats.total_flips,
            communication_rounds=stats.communication_rounds,
        )

    return heads, load, stats


# ----------------------------------------------------------------------
# The k-bounded stable orientation algorithm (Sections 1.4 / 7.3)
# ----------------------------------------------------------------------
def _edge_customer_ranks(graph: CompactGraph):
    """Repr-rank tables of the edge-customer view, memoized on the graph.

    Edge customers are labelled ``("edge", u, v)`` with endpoints in
    repr-sorted order; dense interning is repr-sorted, so the label's
    endpoint order is (min, max) of the dense endpoints.  Returns
    ``(lo, hi, labels, cust_order, pair_rank)`` where ``cust_order`` is
    the ascending customer-``repr`` scan order and ``pair_rank`` ranks the
    ``repr`` of every ``(endpoint, label)`` tuple — the candidate
    universe of the hypergraph game's ``choose``.
    """
    cached = graph.derived.get("edge_customer_ranks")
    if cached is not None:
        return cached
    ids = graph.node_ids
    m = graph.num_edges
    lo = [0] * m
    hi = [0] * m
    labels = []
    for e in range(m):
        u, v = graph.edge_u[e], graph.edge_v[e]
        if u > v:
            u, v = v, u
        lo[e] = u
        hi[e] = v
        labels.append(("edge", ids[u], ids[v]))

    label_reprs = [repr(label) for label in labels]
    cust_order = sorted(range(m), key=label_reprs.__getitem__)

    pair_reprs: List[str] = []
    for e in range(m):
        pair_reprs.append(repr((ids[lo[e]], labels[e])))
        pair_reprs.append(repr((ids[hi[e]], labels[e])))
    order = sorted(range(2 * m), key=pair_reprs.__getitem__)
    pair_rank = [0] * (2 * m)
    for r, slot in enumerate(order):
        pair_rank[slot] = r

    cached = (lo, hi, labels, cust_order, pair_rank)
    graph.derived["edge_customer_ranks"] = cached
    return cached


def bounded_orientation_kernel(
    graph: CompactGraph,
    *,
    k: int = 2,
    tie_break: str = "min",
    seed: int = 0,
    check_invariants: bool = True,
) -> Tuple[List[int], List[int], int, int, List]:
    """Run the k-bounded stable orientation algorithm on int arrays.

    The compact counterpart of :func:`~repro.core.orientation.bounded.
    run_bounded_stable_orientation`, which the reference path solves by
    translating every edge ``{u, v}`` into a degree-2 customer
    ``("edge", u, v)`` and running the Section 7 assignment phases with
    effective loads ``min(load, k)``.  This kernel runs that edge-customer
    specialisation directly: the per-phase propose/accept exchange scans
    edges in customer-``repr`` order, and the embedded rank-2 hypergraph
    proposal games (Theorem 7.1) run on flat arrays with the reference's
    ``repr`` tie-breaks replayed through two precomputed rank tables —
    customer-label ranks for the accept step and ``(vertex, customer)``
    pair ranks for the game's ``choose``.  Assignments, per-phase
    statistics, and game-round counts match the dict path bit for bit.

    Returns
    -------
    (choice, loads, phases, game_rounds, per_phase)
        Dense assigned-server (head) per edge, load per dense node, and
        the run counters with the per-phase :class:`~repro.core.
        assignment.algorithm.AssignmentPhaseStats` rows.
    """
    from repro.core.assignment._kernels import hypergraph_phase_game_kernel
    from repro.core.assignment.algorithm import (
        PHASE_OVERHEAD_ROUNDS,
        AssignmentPhaseStats,
    )

    n = graph.num_nodes
    m = graph.num_edges
    ids = graph.node_ids
    indptr = list(graph.indptr)
    slot_edge = list(graph.slot_edge)

    lo, hi, labels, cust_order, pair_rank = _edge_customer_ranks(graph)

    load = [0] * n
    choice = [-1] * m
    assigned = 0
    phases = 0
    game_rounds = 0
    per_phase: List = []
    # Unassigned customers in customer-repr order; filtering preserves the
    # relative order, so later phases scan only what is left.
    pending = cust_order

    # Lemma 7.2: the explicit O(C·S) phase budget (C = 2 for edges).
    max_customer_degree = 2 if m else 0
    max_phases = 4 * (max_customer_degree + 1) * (graph.max_degree() + 1) + 4

    # Frontier state, mirroring ``stable_orientation_kernel``: effective
    # levels min(load, k) maintained incrementally (they change only when
    # a load crosses k), a level histogram for O(1) phase height, the
    # badness-1 candidate set ``cand`` feeding each phase's game, badness
    # > 1 overflow in ``over`` (empty in any valid run), and reusable
    # scratch cleared frontier-sized — no per-phase O(n)/O(m) allocation
    # or scan.
    level = [0] * n
    hist = [0] * (k + 1)
    hist[0] = n
    cur_max = 0
    cand: Set[int] = set()
    over: Dict[int, int] = {}
    live = bytearray(m)
    incidence = [0] * n
    occupied = bytearray(n)
    touched = bytearray(n)

    while assigned < m:
        phases += 1
        if phases > max_phases:
            raise AlgorithmError(
                f"stable assignment exceeded the phase budget of {max_phases}; "
                "this contradicts Lemma 7.2 and indicates a bug"
            )

        # Step 1: every unassigned customer proposes to its least
        # effectively loaded endpoint (smaller repr on ties).  Step 2:
        # every proposed-to server accepts its smallest-repr customer,
        # which is the first one to reach it in customer-repr order.
        accepted: Dict[int, int] = {}
        if phases > 1:
            pending = [e for e in pending if choice[e] < 0]
        unassigned = len(pending)
        for e in pending:
            a, b = lo[e], hi[e]
            target = a if level[a] <= level[b] else b
            if target not in accepted:
                accepted[target] = e

        # Step 3: the per-phase hypergraph token dropping instance —
        # levels are effective loads, hyperedges the assigned customers of
        # badness exactly 1 (head = assigned server), tokens on accepting
        # servers.  ``cand`` holds exactly the badness-1 customers,
        # maintained at the end of the previous phase from the customers
        # whose endpoint levels or assignment changed — not by rescanning
        # all m edges.
        game_edge_list = sorted(cand)
        game_hyperedges = len(game_edge_list)
        game_vertex_set: List[int] = []
        for e in game_edge_list:
            live[e] = 1
            if not incidence[lo[e]]:
                game_vertex_set.append(lo[e])
            if not incidence[hi[e]]:
                game_vertex_set.append(hi[e])
            incidence[lo[e]] += 1
            incidence[hi[e]] += 1

        for server in accepted:
            occupied[server] = 1

        # Phase height from the level histogram (O(1), not max(level)).
        height = cur_max
        max_vertex_degree = 0
        for v in game_vertex_set:
            if incidence[v] > max_vertex_degree:
                max_vertex_degree = incidence[v]
        max_game_rounds = 8 * (height + 1) * (max_vertex_degree + 1) ** 2 + 8

        # The Theorem 7.1 proposal strategy on the rank-2 game, run by the
        # shared assignment-phase engine.  Only endpoints of live
        # hyperedges can ever have options, so the per-round scan skips
        # every other vertex (the reference scans them too, but they make
        # no choices and consume no randomness).
        game_vertex_set.sort()
        rounds, passes = hypergraph_phase_game_kernel(
            indptr=indptr,
            slot_edge=slot_edge,
            choice=choice,
            live=live,
            occupied=occupied,
            game_vertices=game_vertex_set,
            lo=lo,
            hi=hi,
            pair_rank=pair_rank,
            tie_break=tie_break,
            rng=random.Random(seed),
            max_game_rounds=max_game_rounds,
        )

        if check_invariants:
            # Maximality of the game outcome (the only validation rule not
            # guaranteed by construction): no occupied head may still have
            # a live hyperedge towards an unoccupied child.  The phase's
            # game edges are exactly ``game_edge_list``; consumed ones had
            # their ``live`` bit cleared by the engine.
            for e in game_edge_list:
                if not live[e]:
                    continue
                h = choice[e]
                if h < 0 or not occupied[h]:
                    continue
                other = lo[e] if h == hi[e] else hi[e]
                if not occupied[other]:
                    raise AlgorithmError(
                        "invalid hypergraph token dropping solution: "
                        f"not maximal at customer {labels[e]!r}"
                    )

        touched_nodes: List[int] = []

        def relevel(x: int) -> None:
            nonlocal cur_max
            lx = load[x]
            lv = lx if lx < k else k
            old = level[x]
            if lv == old:
                return
            hist[old] -= 1
            hist[lv] += 1
            level[x] = lv
            if lv > cur_max:
                cur_max = lv
            if not touched[x]:
                touched[x] = 1
                touched_nodes.append(x)

        # Step 4: move assignments along the passes (each consumed
        # hyperedge moved its customer one step to the pass target).
        for e, child in passes:
            h = choice[e]
            load[h] -= 1
            relevel(h)
            load[child] += 1
            relevel(child)
            choice[e] = child
        reassignments = len(passes)

        # Step 5: assign the accepted customers to their accepting servers.
        for server, e in accepted.items():
            choice[e] = server
            load[server] += 1
            relevel(server)
        assigned += len(accepted)
        while cur_max and not hist[cur_max]:
            cur_max -= 1

        # Reset the phase scratch frontier-sized: the only ``occupied``
        # bits ever set belong to accepting servers and pass targets.
        for e in game_edge_list:
            live[e] = 0
        for v in game_vertex_set:
            incidence[v] = 0
        for server in accepted:
            occupied[server] = 0
        for _e, child in passes:
            occupied[child] = 0

        if obs.enabled():
            obs.add("orientation.frontier.game_edges", game_hyperedges)
            obs.add("orientation.frontier.touched_nodes", len(touched_nodes))
            obs.add(
                "orientation.frontier.refreshed_slots",
                sum(indptr[x + 1] - indptr[x] for x in touched_nodes),
            )

        # End-of-phase badness maintenance: a customer's badness can only
        # change when an endpoint's effective level changed or its
        # assignment moved, so refreshing the touched nodes' incident
        # customers plus the passed and newly accepted ones is exhaustive.
        def refresh(e: int) -> None:
            h = choice[e]
            if h < 0:
                return
            other = lo[e] if h == hi[e] else hi[e]
            badness = level[h] - level[other]
            if badness == 1:
                cand.add(e)
                if over:
                    over.pop(e, None)
            else:
                cand.discard(e)
                if badness > 1:
                    over[e] = badness
                elif over:
                    over.pop(e, None)

        for x in touched_nodes:
            touched[x] = 0
            for s in range(indptr[x], indptr[x + 1]):
                refresh(slot_edge[s])
        for e, _child in passes:
            refresh(e)
        for e in accepted.values():
            refresh(e)

        max_badness = max(over.values()) if over else (1 if cand else 0)
        if check_invariants and max_badness > 1:
            raise AlgorithmError(
                f"phase {phases} ended with max badness {max_badness} > 1; "
                "this contradicts the Section 7.2 invariant and indicates a bug"
            )

        td_rounds = rounds
        game_rounds += td_rounds + PHASE_OVERHEAD_ROUNDS
        per_phase.append(
            AssignmentPhaseStats(
                phase=phases,
                proposals=unassigned,
                accepted=len(accepted),
                tokens=len(accepted),
                game_hyperedges=game_hyperedges,
                token_dropping_game_rounds=td_rounds,
                token_dropping_height=height,
                reassignments=reassignments,
                customers_assigned_total=assigned,
                max_badness_after=max_badness,
            )
        )

    if check_invariants:
        violations = []
        level = [x if x < k else k for x in load]
        for e in range(m):
            h = choice[e]
            other = lo[e] if h == hi[e] else hi[e]
            if level[h] - level[other] > 1:
                violations.append(
                    f"customer {labels[e]!r} on server {ids[h]!r} (load "
                    f"{load[h]}) has a strictly better server available"
                )
        if violations:
            raise AlgorithmError(
                "final assignment is not stable: " + "; ".join(violations)
            )

    return choice, load, phases, game_rounds, per_phase
