"""The rank-keyed unhappy-edge tracker shared by repair-style loops.

Both the batch :func:`~repro.core.orientation._kernels.repair_kernel` and
the incremental engine of :mod:`repro.core.orientation.incremental` run
the same synchronous repair iteration: sort the unhappy edges in the
reference's ``repr`` order, shuffle with the seeded RNG, select a
conflict-free batch greedily, flip it, and refresh only the edges whose
endpoint loads changed.  This module holds the two pieces they share:

* :class:`UnhappyEdgeTracker` — the incrementally maintained
  ``edge -> sort key`` map.  Keys only need to *order* like the
  reference's ``repr((tail, head))`` strings: the batch kernel supplies
  precomputed integer ranks (cheapest to compare), the incremental
  engine supplies the ``repr`` strings themselves (stable under edge
  insertion, where global ranks would shift).  The two key families are
  never mixed within one tracker.
* :func:`run_repair_loop` — the iteration itself, identical for both
  callers, parameterized only by how to enumerate the edges incident to
  a node (CSR scan for the immutable batch graph, overlay scan for the
  mutable incremental view).

The tracker's correctness argument is the one documented on
``repair_kernel``: an edge's unhappiness can only change when the load
of one of its endpoints changes, and a flip changes the loads of exactly
two nodes, so refreshing the edges incident to those nodes is exhaustive
(O(Δ) bookkeeping per flip versus a full O(m log m) rescan).  The same
argument powers the *locality* of the incremental engine: a delta only
changes loads at its frontier nodes, so seeding the tracker from the
frontier finds exactly the unhappy edges a full rescan would.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence

from repro import obs

__all__ = ["UnhappyEdgeTracker", "run_repair_loop"]


class UnhappyEdgeTracker:
    """Incrementally maintained map of unhappy edges to their sort keys.

    Parameters
    ----------
    heads, tails, load:
        Live references to the caller's dense state arrays (the tracker
        reads them on every refresh; it never mutates them).
    ev:
        Per-edge "canonical v" endpoint: when ``heads[e] == ev[e]`` the
        edge's sort key is ``key_to_v[e]``, otherwise ``key_to_u[e]`` —
        exactly the two possible ``repr((tail, head))`` orders.
    key_to_v, key_to_u:
        Per-edge sort keys for the two directions.  Any totally ordered
        keys whose order matches the reference ``repr`` order work:
        integer ranks (batch kernel) or the repr strings themselves
        (incremental engine).  The sequences may grow in place (the
        incremental engine appends keys as edges are inserted).
    """

    __slots__ = ("heads", "tails", "load", "ev", "key_to_v", "key_to_u", "unhappy")

    def __init__(
        self,
        heads: Sequence[int],
        tails: Sequence[int],
        load: Sequence[int],
        ev: Sequence[int],
        key_to_v: Sequence,
        key_to_u: Sequence,
    ) -> None:
        self.heads = heads
        self.tails = tails
        self.load = load
        self.ev = ev
        self.key_to_v = key_to_v
        self.key_to_u = key_to_u
        #: edge index -> sort key of its current (tail, head) direction.
        self.unhappy: Dict[int, object] = {}

    # -- refresh --------------------------------------------------------
    def refresh(self, edges: Iterable[int]) -> None:
        """Recompute membership (and key) of every edge in ``edges``.

        Keys are recomputed from the edge's *current* direction, so a
        tracked key can never go stale no matter how often an edge is
        refreshed.
        """
        heads = self.heads
        tails = self.tails
        load = self.load
        ev = self.ev
        unhappy = self.unhappy
        for e in edges:
            h = heads[e]
            if load[h] - load[tails[e]] > 1:
                unhappy[e] = (
                    self.key_to_v[e] if h == ev[e] else self.key_to_u[e]
                )
            else:
                unhappy.pop(e, None)

    def refresh_slots(
        self, slot_edge: Sequence[int], start: int, stop: int
    ) -> None:
        """Refresh the edges in ``slot_edge[start:stop]`` (CSR fast path)."""
        heads = self.heads
        tails = self.tails
        load = self.load
        ev = self.ev
        unhappy = self.unhappy
        for s in range(start, stop):
            e = slot_edge[s]
            h = heads[e]
            if load[h] - load[tails[e]] > 1:
                unhappy[e] = (
                    self.key_to_v[e] if h == ev[e] else self.key_to_u[e]
                )
            else:
                unhappy.pop(e, None)

    def discard(self, e: int) -> None:
        """Forget an edge (it was deleted from the graph)."""
        self.unhappy.pop(e, None)

    # -- queries --------------------------------------------------------
    def sorted_edges(self) -> List[int]:
        """Unhappy edge indices in reference order (ascending key)."""
        return sorted(self.unhappy, key=self.unhappy.__getitem__)

    def __len__(self) -> int:
        return len(self.unhappy)

    def __bool__(self) -> bool:
        return bool(self.unhappy)


def run_repair_loop(
    tracker: UnhappyEdgeTracker,
    *,
    num_nodes: int,
    refresh_incident: Callable[[int], None],
    rng,
    stats,
    max_iterations: int,
    rounds_per_iteration: int,
) -> None:
    """Drive synchronous conflict-free repair until no edge is unhappy.

    Flips happen in place on the tracker's ``heads``/``tails``/``load``
    arrays.  The shuffle permutes the key-sorted edge list exactly like
    the reference's shuffle of the repr-sorted tuple list (``shuffle``'s
    stream consumption depends only on the length), so given the same
    seeded ``rng`` and the same unhappy set, the per-iteration flip sets
    — and hence ``stats`` — match the dict reference path bit for bit.

    Parameters
    ----------
    tracker:
        Seeded tracker (full scan for the batch kernel, delta frontier
        for the incremental engine).
    num_nodes:
        Size of the dense node id space (for the conflict bitmap).
    refresh_incident:
        ``refresh_incident(x)`` refreshes the tracker for every live
        edge incident to dense node ``x``.
    rng:
        The seeded ``random.Random`` consumed by the per-iteration
        shuffles.
    stats:
        A :class:`~repro.core.orientation.repair.RepairRunStats` updated
        in place.
    max_iterations:
        Safety valve mirroring the reference path's ``Σ deg(v)² + 1``.
    rounds_per_iteration:
        LOCAL communication rounds charged per iteration
        (:data:`~repro.core.orientation.repair.ROUNDS_PER_REPAIR_ITERATION`).
    """
    heads = tracker.heads
    tails = tracker.tails
    load = tracker.load
    # Hoisted: the loop runs per repair iteration with O(unhappy) work
    # inside; three disabled-metric calls per iteration would still be
    # three wasted function calls each time around.  The conflict bitmap
    # is likewise allocated once and wiped per iteration by clearing only
    # the entries the selection marked — a fresh ``bytearray(num_nodes)``
    # per iteration is an O(n) pass that dwarfs the O(unhappy · Δ) real
    # work once the unhappy set is a small frontier of a large graph.
    traced = obs.enabled()
    used = bytearray(num_nodes)
    while tracker.unhappy:
        if stats.iterations >= max_iterations:
            raise RuntimeError(
                f"repair loop exceeded {max_iterations} iterations; "
                "the potential argument guarantees this cannot happen"
            )

        # Greedy conflict-free selection: no node participates in two
        # flips.
        batch = tracker.sorted_edges()
        rng.shuffle(batch)
        selected: List[int] = []
        for e in batch:
            t = tails[e]
            h = heads[e]
            if used[t] or used[h]:
                continue
            selected.append(e)
            used[t] = 1
            used[h] = 1

        for e in selected:
            used[tails[e]] = 0
            used[heads[e]] = 0

        for e in selected:
            t = tails[e]
            h = heads[e]
            heads[e] = t
            tails[e] = h
            load[h] -= 1
            load[t] += 1

        for e in selected:
            refresh_incident(tails[e])
            refresh_incident(heads[e])

        stats.iterations += 1
        stats.communication_rounds += rounds_per_iteration
        stats.total_flips += len(selected)
        stats.flips_per_iteration.append(len(selected))
        if traced:
            obs.add("repair.iterations")
            obs.observe("repair.unhappy_edges", len(batch))
            obs.observe("repair.flips_per_iteration", len(selected))
