"""The centralized sequential flip algorithm for stable orientations.

Section 1.1: "start with an arbitrary orientation and then repeatedly pick
an arbitrary unhappy edge and flip it.  Flipping one edge may create new
unhappy edges.  However, ... the algorithm will terminate in polynomial
time in the number of nodes: the sum of squared indegrees is strictly
decreasing."

This module implements exactly that, with a choice of which unhappy edge
to flip next.  It is used as

* a correctness oracle (stability of the final orientation),
* the baseline that exhibits the long *flip chains* the introduction warns
  about (experiment E9), and
* a sanity check that the potential Σ load² is strictly decreasing, which
  the tests assert on every run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Tuple, Union

from repro.core.orientation.problem import (
    Orientation,
    OrientationProblem,
    arbitrary_complete_orientation,
    orientation_from_dense,
)
from repro.dispatch import resolve_backend
from repro.graphs.compact import CompactGraph

NodeId = Hashable

#: Supported policies for choosing the next unhappy edge to flip.
FLIP_POLICIES = ("first", "random", "max_badness")


@dataclass
class SequentialRunStats:
    """Statistics of one run of the sequential flip algorithm.

    Attributes
    ----------
    flips:
        Total number of edge flips performed.
    initial_potential / final_potential:
        Σ load² before and after; the algorithm guarantees strict decrease
        with every flip, so ``final <= initial - flips``.
    potential_trace:
        The potential after every flip (including the initial value first);
        recorded only when ``record_trace=True``.
    """

    flips: int = 0
    initial_potential: int = 0
    final_potential: int = 0
    potential_trace: List[int] = field(default_factory=list)


def sequential_flip_algorithm(
    problem: Union[OrientationProblem, CompactGraph],
    *,
    initial: Optional[Orientation] = None,
    policy: str = "first",
    seed: int = 0,
    record_trace: bool = False,
    max_flips: Optional[int] = None,
    backend: Optional[str] = None,
) -> Tuple[Orientation, SequentialRunStats]:
    """Run the centralized flip algorithm until the orientation is stable.

    Parameters
    ----------
    problem:
        The undirected graph to orient — either the reference
        :class:`OrientationProblem` or a pre-interned
        :class:`~repro.graphs.compact.CompactGraph`.
    initial:
        Starting complete orientation; defaults to "every edge points at
        its larger endpoint".
    policy:
        Which unhappy edge to flip next: ``"first"`` (deterministic),
        ``"random"``, or ``"max_badness"`` (steepest descent).
    seed:
        Seed for the ``"random"`` policy.
    record_trace:
        When True, store the potential Σ load² after every flip.
    max_flips:
        Safety valve; defaults to ``Σ deg(v)²`` which upper-bounds the
        number of flips (each flip decreases the potential by ≥ 2 and the
        potential is at most ``Σ deg(v)² ``).
    backend:
        ``"compact"`` / ``"dict"`` / ``"auto"`` (default; see
        :mod:`repro.dispatch`).  Both backends produce identical results;
        the compact fast path runs the flip loop on flat int arrays.

    Returns
    -------
    (orientation, stats)
        The final (stable) orientation and run statistics.
    """
    if policy not in FLIP_POLICIES:
        raise ValueError(f"unknown policy {policy!r}; expected one of {FLIP_POLICIES}")
    if resolve_backend(backend) == "compact":
        return _sequential_flip_compact(
            problem,
            initial=initial,
            policy=policy,
            seed=seed,
            record_trace=record_trace,
            max_flips=max_flips,
        )
    if isinstance(problem, CompactGraph):
        problem = problem.to_orientation_problem()
    rng = random.Random(seed)
    orientation = (
        initial.copy()
        if initial is not None
        else arbitrary_complete_orientation(problem)
    )
    if not orientation.is_complete():
        raise ValueError(
            "the sequential flip algorithm needs a complete initial orientation"
        )

    if max_flips is None:
        max_flips = sum(problem.degree(n) ** 2 for n in problem.nodes) + 1

    stats = SequentialRunStats(
        initial_potential=orientation.sum_squared_loads(),
        final_potential=orientation.sum_squared_loads(),
    )
    if record_trace:
        stats.potential_trace.append(stats.initial_potential)

    while True:
        unhappy = orientation.unhappy_edges()
        if not unhappy:
            break
        if stats.flips >= max_flips:
            raise RuntimeError(
                f"sequential flip algorithm exceeded {max_flips} flips; "
                "the potential argument guarantees this cannot happen"
            )
        if policy == "first":
            tail, head = sorted(unhappy, key=repr)[0]
        elif policy == "random":
            tail, head = unhappy[rng.randrange(len(unhappy))]
        else:  # max_badness
            tail, head = max(
                unhappy,
                key=lambda edge: (
                    orientation.load(edge[1]) - orientation.load(edge[0]),
                    repr(edge),
                ),
            )
        before = orientation.sum_squared_loads()
        orientation.flip(tail, head)
        after = orientation.sum_squared_loads()
        if after >= before:  # pragma: no cover - guards the potential argument
            raise RuntimeError(
                "flipping an unhappy edge did not decrease the potential; "
                "this contradicts the paper's argument and indicates a bug"
            )
        stats.flips += 1
        stats.final_potential = after
        if record_trace:
            stats.potential_trace.append(after)

    return orientation, stats


def _sequential_flip_compact(
    problem: Union[OrientationProblem, CompactGraph],
    *,
    initial: Optional[Orientation],
    policy: str,
    seed: int,
    record_trace: bool,
    max_flips: Optional[int],
) -> Tuple[Orientation, SequentialRunStats]:
    """Fast path: intern once, run the int-array kernel, wrap the result."""
    from repro.core.orientation._kernels import sequential_flip_kernel

    if initial is not None:
        if not initial.is_complete():
            raise ValueError(
                "the sequential flip algorithm needs a complete initial orientation"
            )
        compact = CompactGraph.from_orientation_problem(initial.problem)
        ref_problem = initial.problem
        initial_heads = [
            compact.index_of[initial.head_of(u, v)] for u, v in compact.edge_keys()
        ]
    elif isinstance(problem, CompactGraph):
        compact = problem
        ref_problem = None  # resolved lazily below
        initial_heads = None
    else:
        compact = CompactGraph.from_orientation_problem(problem)
        ref_problem = problem
        initial_heads = None

    if max_flips is None:
        # The reference path sizes the safety valve from the `problem`
        # argument, so mirror that even when `initial` brings its own graph.
        if isinstance(problem, CompactGraph):
            ptr = problem.indptr
            max_flips = (
                sum((ptr[i + 1] - ptr[i]) ** 2 for i in range(problem.num_nodes)) + 1
            )
        else:
            max_flips = sum(problem.degree(n) ** 2 for n in problem.nodes) + 1

    heads, loads, flips, initial_potential, final_potential, trace = (
        sequential_flip_kernel(
            compact,
            policy=policy,
            seed=seed,
            record_trace=record_trace,
            max_flips=max_flips,
            initial_heads=initial_heads,
        )
    )

    if ref_problem is None:
        ref_problem = compact.to_orientation_problem()
    orientation = orientation_from_dense(
        ref_problem, compact.node_ids, compact.edge_keys(), heads, loads
    )

    stats = SequentialRunStats(
        flips=flips,
        initial_potential=initial_potential,
        final_potential=final_potential if flips else initial_potential,
        potential_trace=trace,
    )
    return orientation, stats


def flip_chain_length(
    problem: Union[OrientationProblem, CompactGraph],
    *,
    policy: str = "first",
    seed: int = 0,
    backend: Optional[str] = None,
) -> int:
    """Convenience wrapper returning only the number of flips performed."""
    _, stats = sequential_flip_algorithm(
        problem, policy=policy, seed=seed, backend=backend
    )
    return stats.flips
