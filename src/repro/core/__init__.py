"""The paper's core contributions.

* :mod:`repro.core.token_dropping` -- the token dropping game and its
  algorithms (Section 4 and Section 7.1 of the paper).
* :mod:`repro.core.orientation` -- stable orientations (Sections 1.1, 5, 6).
* :mod:`repro.core.assignment` -- stable assignments, the k-bounded
  relaxation, and semi-matching quality (Sections 1.3, 1.4, 7).
"""
