"""The phase-based stable assignment algorithm (Theorem 7.3) and its k-bounded variant.

Section 7.2 generalises the stable orientation algorithm of Section 5 to
customer--server hypergraphs.  Each phase:

1. every unassigned customer proposes to an adjacent server with the
   minimum (effective) load, ties broken arbitrarily;
2. every server that received at least one proposal accepts exactly one;
3. a hypergraph token dropping instance is built from the *assigned*
   customers whose hyperedge badness is exactly 1 (head = assigned server,
   levels = current loads, a token on every accepting server);
4. the hypergraph token dropping game is solved (Theorem 7.1's proposal
   strategy) and every traversal step moves the corresponding customer's
   assignment from the old head to the new one;
5. every accepted customer is assigned to the server that accepted it.

Lemma 7.2 bounds the number of phases by O(C·S); together with the
O(L·S²) per-phase token dropping cost (L ≤ S) this yields O(C·S⁴) rounds.

The same engine, run on *effective* loads ``min(load, k)``, implements the
k-bounded relaxation of Section 7.3; for ``k = 2`` the per-phase token
dropping instances have only three levels, which is what Theorem 7.5
exploits to get O(C·S²) overall.  See :mod:`repro.core.assignment.bounded`
for the public wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.assignment.problem import (
    Assignment,
    check_stable_assignment,
    effective_load,
)
from repro.core.token_dropping.hypergraph_game import (
    HypergraphTokenDroppingInstance,
    run_hypergraph_proposal,
)
from repro.graphs.bipartite import CustomerServerGraph
from repro.graphs.hypergraph import Hypergraph
from repro.local_model.errors import AlgorithmError

NodeId = Hashable

#: LOCAL rounds charged per phase for the propose/accept/load exchange.
PHASE_OVERHEAD_ROUNDS = 3


@dataclass
class AssignmentPhaseStats:
    """Per-phase measurements of the stable assignment algorithm."""

    phase: int
    proposals: int
    accepted: int
    tokens: int
    game_hyperedges: int
    token_dropping_game_rounds: int
    token_dropping_height: int
    reassignments: int
    customers_assigned_total: int
    max_badness_after: int


@dataclass
class StableAssignmentResult:
    """Outcome of the phase-based stable assignment algorithm."""

    assignment: Assignment
    phases: int
    game_rounds: int
    k: Optional[int]
    per_phase: List[AssignmentPhaseStats] = field(default_factory=list)

    @property
    def stable(self) -> bool:
        """Whether the final assignment is stable (w.r.t. the chosen relaxation)."""
        return self.assignment.is_stable(self.k)


def theoretical_phase_bound(graph: CustomerServerGraph, constant: int = 4) -> int:
    """A concrete O(C·S) bound on the number of phases (Lemma 7.2)."""
    return (
        constant
        * (graph.max_customer_degree() + 1)
        * (graph.max_server_degree() + 1)
        + constant
    )


def theoretical_round_bound(graph: CustomerServerGraph, constant: int = 16) -> int:
    """A concrete O(C·S⁴) bound on the total game rounds (Theorem 7.3)."""
    c = graph.max_customer_degree() + 1
    s = graph.max_server_degree() + 1
    return constant * c * s**4 + constant


def _build_hypergraph_instance(
    graph: CustomerServerGraph,
    assignment: Assignment,
    accepted_servers: Dict[NodeId, NodeId],
    k: Optional[int],
) -> HypergraphTokenDroppingInstance:
    """Create the per-phase hypergraph token dropping instance.

    Levels are the (effective) loads of all servers; hyperedges are the
    already-assigned customers whose badness is exactly 1, with their
    assigned server as head; tokens go on the servers that accepted a
    proposal this phase.
    """
    loads = assignment.loads()
    levels = {server: effective_load(load, k) for server, load in loads.items()}

    hyperedges: Dict[NodeId, Tuple[NodeId, ...]] = {}
    heads: Dict[NodeId, NodeId] = {}
    for customer, server in assignment.choices().items():
        if len(graph.servers_of(customer)) < 2:
            continue  # rank-1 hyperedges cannot carry tokens and have badness 0
        if assignment.badness(customer, k) == 1:
            hyperedges[customer] = tuple(sorted(graph.servers_of(customer), key=repr))
            heads[customer] = server

    hypergraph = Hypergraph(vertices=graph.servers, hyperedges=hyperedges)
    return HypergraphTokenDroppingInstance(
        hypergraph=hypergraph,
        levels=levels,
        heads=heads,
        tokens=set(accepted_servers),
    )


def run_stable_assignment(
    graph: CustomerServerGraph,
    *,
    k: Optional[int] = None,
    tie_break: str = "min",
    seed: int = 0,
    check_invariants: bool = True,
    max_phases: Optional[int] = None,
) -> StableAssignmentResult:
    """Find a stable assignment (or a k-bounded stable assignment).

    Parameters
    ----------
    graph:
        The customer--server instance.
    k:
        ``None`` for the unrelaxed problem (Theorem 7.3); an integer
        ``>= 2`` for the k-bounded relaxation of Section 7.3 (``k = 2`` is
        Theorem 7.5's setting).
    tie_break, seed:
        Passed to the embedded hypergraph token dropping engine.
    check_invariants:
        Assert the per-phase badness invariant and final stability.
    max_phases:
        Budget on the number of phases (defaults to the Lemma 7.2 bound).

    Returns
    -------
    StableAssignmentResult
    """
    if k is not None and k < 2:
        raise ValueError(f"k must be None or an integer >= 2, got {k}")
    assignment = Assignment(graph)
    if max_phases is None:
        max_phases = theoretical_phase_bound(graph)

    per_phase: List[AssignmentPhaseStats] = []
    game_rounds = 0
    phase_index = 0

    while not assignment.is_complete():
        phase_index += 1
        if phase_index > max_phases:
            raise AlgorithmError(
                f"stable assignment exceeded the phase budget of {max_phases}; "
                "this contradicts Lemma 7.2 and indicates a bug"
            )
        loads = assignment.loads()

        # Step 1: every unassigned customer proposes to a least-loaded server.
        proposals_by_server: Dict[NodeId, List[NodeId]] = {}
        unassigned = assignment.unassigned_customers()
        for customer in unassigned:
            servers = sorted(graph.servers_of(customer), key=repr)
            target = min(servers, key=lambda s: (effective_load(loads[s], k), repr(s)))
            proposals_by_server.setdefault(target, []).append(customer)

        # Step 2: every server accepts exactly one proposal.
        accepted_servers: Dict[NodeId, NodeId] = {}
        for server, customers in proposals_by_server.items():
            accepted_servers[server] = sorted(customers, key=repr)[0]

        # Step 3: build and solve the hypergraph token dropping instance.
        instance = _build_hypergraph_instance(graph, assignment, accepted_servers, k)
        solution = run_hypergraph_proposal(instance, tie_break=tie_break, seed=seed)
        if check_invariants:
            violations = solution.validate(instance)
            if violations:
                raise AlgorithmError(
                    "invalid hypergraph token dropping solution: "
                    + "; ".join(violations)
                )

        # Step 4: move assignments along the traversals (change hyperedge heads).
        reassignments = 0
        for traversal in solution.traversals.values():
            for i, customer in enumerate(traversal.hyperedges):
                new_head = traversal.path[i + 1]
                assignment.assign(customer, new_head)
                reassignments += 1

        # Step 5: assign the accepted customers to their accepting servers.
        for server, customer in accepted_servers.items():
            assignment.assign(customer, server)

        max_badness = assignment.max_badness(k)
        if check_invariants and max_badness > 1:
            raise AlgorithmError(
                f"phase {phase_index} ended with max badness {max_badness} > 1; "
                "this contradicts the Section 7.2 invariant and indicates a bug"
            )

        td_rounds = solution.game_rounds or 0
        game_rounds += td_rounds + PHASE_OVERHEAD_ROUNDS
        per_phase.append(
            AssignmentPhaseStats(
                phase=phase_index,
                proposals=len(unassigned),
                accepted=len(accepted_servers),
                tokens=len(accepted_servers),
                game_hyperedges=instance.hypergraph.num_hyperedges(),
                token_dropping_game_rounds=td_rounds,
                token_dropping_height=instance.height,
                reassignments=reassignments,
                customers_assigned_total=len(assignment.choices()),
                max_badness_after=max_badness,
            )
        )

    if check_invariants:
        violations = check_stable_assignment(assignment, k)
        if violations:
            raise AlgorithmError(
                "final assignment is not stable: " + "; ".join(violations)
            )

    return StableAssignmentResult(
        assignment=assignment,
        phases=phase_index,
        game_rounds=game_rounds,
        k=k,
        per_phase=per_phase,
    )
