"""Int-array fast-path kernels for assignment algorithms.

Compact counterparts of :func:`~repro.core.assignment.semi_matching.
greedy_assignment` and :func:`~repro.core.assignment.best_response.
best_response_dynamics`, operating on a
:class:`~repro.graphs.compact.CompactBipartite`.

Because both sides of a compact bipartite graph are interned in
``repr``-sorted order, every reference tie-break ("smallest ``repr``
first") becomes "smallest dense id first", so these kernels reproduce the
reference implementations' choices exactly — asserted by the
cross-validation suite on hundreds of seeded instances.  The hot loops
touch only flat integer arrays: no hashing, no frozenset iteration, no
``repr`` calls.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.token_dropping.hypergraph_game import (
    HypergraphRoundLimitExceeded,
)
from repro.graphs.compact import CompactBipartite


def hypergraph_phase_game_kernel(
    *,
    indptr: Sequence[int],
    slot_edge: Sequence[int],
    choice: Sequence[int],
    live: bytearray,
    occupied: bytearray,
    game_vertices: Sequence[int],
    lo: Sequence[int],
    hi: Sequence[int],
    pair_rank: Sequence[int],
    tie_break: str,
    rng: random.Random,
    max_game_rounds: int,
) -> Tuple[int, List[Tuple[int, int]]]:
    """One assignment-phase rank-2 hypergraph proposal game on int arrays.

    The Theorem 7.1 proposal strategy shared by every assignment-style
    phase driver (:func:`~repro.core.orientation._kernels.
    bounded_orientation_kernel` embeds one instance per phase): unoccupied
    vertices propose to an occupied head over a live hyperedge, every
    proposed-to head passes its token to one proposer, with the
    reference's ``repr`` tie-breaks replayed through the precomputed
    ``(vertex, customer)`` pair ranks.

    The caller owns the phase state: ``live[e]`` flags the phase's game
    hyperedges (cleared here as they are consumed), ``occupied`` flags the
    token holders (mutated in place by every pass), ``choice[e]`` is the
    current head of hyperedge ``e``, and ``game_vertices`` is the sorted
    set of vertices incident to a live hyperedge — the only vertices
    scanned, so each round costs the frontier's CSR slots, never O(n).
    The per-round scan work is exported as the
    ``orientation.frontier.scanned_slots`` obs counter (with
    ``orientation.frontier.game_vertices`` for the instance size).

    Returns ``(rounds, passes)`` where ``passes`` lists ``(hyperedge,
    new_head)`` in consumption order.
    """
    rounds = 0
    passes: List[Tuple[int, int]] = []
    counting = obs.enabled()
    scanned_slots = 0
    while True:
        proposals: Dict[int, List[Tuple[int, int]]] = {}
        for v in game_vertices:
            if occupied[v]:
                continue
            if counting:
                scanned_slots += indptr[v + 1] - indptr[v]
            options: List[Tuple[int, int]] = []
            for s in range(indptr[v], indptr[v + 1]):
                e = slot_edge[s]
                if not live[e]:
                    continue
                h = choice[e]
                if h == v or not occupied[h]:
                    continue
                options.append((h, e))
            if not options:
                continue

            def prank(he: Tuple[int, int]) -> int:
                h, e = he
                return pair_rank[2 * e] if h == lo[e] else pair_rank[2 * e + 1]

            if tie_break == "min":
                parent, e = min(options, key=prank)
            elif tie_break == "max":
                parent, e = max(options, key=prank)
            elif tie_break == "random":
                options.sort(key=prank)
                parent, e = options[rng.randrange(len(options))]
            else:
                raise ValueError(f"unknown tie-break policy {tie_break!r}")
            proposals.setdefault(parent, []).append((v, e))

        if not proposals:
            break
        rounds += 1
        if rounds > max_game_rounds:
            raise HypergraphRoundLimitExceeded(
                f"hypergraph proposal engine exceeded {max_game_rounds} "
                "game rounds"
            )

        for parent, requests in proposals.items():

            def crank(ce: Tuple[int, int]) -> int:
                c, e = ce
                return pair_rank[2 * e] if c == lo[e] else pair_rank[2 * e + 1]

            if tie_break == "min":
                child, e = min(requests, key=crank)
            elif tie_break == "max":
                child, e = max(requests, key=crank)
            else:
                requests.sort(key=crank)
                child, e = requests[rng.randrange(len(requests))]
            occupied[parent] = 0
            occupied[child] = 1
            live[e] = 0
            passes.append((e, child))

    if counting:
        obs.add("orientation.frontier.game_vertices", len(game_vertices))
        obs.add("orientation.frontier.scanned_slots", scanned_slots)
    return rounds, passes


def greedy_kernel(
    graph: CompactBipartite, *, order: str = "sorted", seed: int = 0
) -> Tuple[List[int], List[int]]:
    """Greedy least-loaded assignment on int arrays.

    Returns ``(choice, load)``: the dense server id per dense customer id
    and the resulting per-server loads.  Matches the reference
    ``greedy_assignment`` exactly: customers in dense (= ``repr``) order,
    or the same seeded shuffle; each picks the smallest-id server among
    the least-loaded adjacent ones.
    """
    num_customers = graph.num_customers
    customers = list(range(num_customers))
    if order == "random":
        random.Random(seed).shuffle(customers)
    elif order != "sorted":
        raise ValueError(f"unknown order {order!r}; expected 'sorted' or 'random'")

    indptr = graph.cust_indptr
    indices = graph.cust_indices
    choice = [-1] * num_customers
    load = [0] * graph.num_servers
    for c in customers:
        best = -1
        best_load = 0
        for slot in range(indptr[c], indptr[c + 1]):
            s = indices[slot]
            l = load[s]
            if best < 0 or l < best_load:
                best = s
                best_load = l
        choice[c] = best
        load[best] = best_load + 1
    return choice, load


def best_response_kernel(
    graph: CompactBipartite,
    *,
    initial_choice: Sequence[int],
    policy: str = "first",
    seed: int = 0,
    max_moves: Optional[int] = None,
) -> Tuple[List[int], List[int], int, int, int]:
    """Best-response dynamics on int arrays until no customer wants to move.

    Parameters mirror :func:`~repro.core.assignment.best_response.
    best_response_dynamics`; ``initial_choice`` is a complete dense
    assignment (e.g. from :func:`greedy_kernel`).

    Returns ``(choice, load, moves, initial_potential, final_potential)``.
    """
    rng = random.Random(seed)
    num_customers = graph.num_customers
    indptr = list(graph.cust_indptr)
    indices = list(graph.cust_indices)
    sptr = list(graph.serv_indptr)
    sidx = list(graph.serv_indices)

    choice = list(initial_choice)
    load = [0] * graph.num_servers
    for s in choice:
        load[s] += 1
    potential = sum(l * l for l in load)
    initial_potential = potential
    if max_moves is None:
        max_moves = potential // 2 + 1

    def is_unhappy(c: int) -> bool:
        own = choice[c]
        own_load = load[own]
        if own_load < 2:
            return False  # no other server can be 2 lighter
        for slot in range(indptr[c], indptr[c + 1]):
            s = indices[slot]
            if s != own and load[s] < own_load - 1:
                return True
        return False

    unhappy = {c for c in range(num_customers) if is_unhappy(c)}

    moves = 0
    while unhappy:
        if moves >= max_moves:
            raise RuntimeError(
                f"best-response dynamics exceeded {max_moves} moves; "
                "the potential argument guarantees this cannot happen"
            )
        if policy == "first":
            c = min(unhappy)
        else:  # random
            ordered = sorted(unhappy)
            c = ordered[rng.randrange(len(ordered))]

        old = choice[c]
        best = -1
        best_load = 0
        for slot in range(indptr[c], indptr[c + 1]):
            s = indices[slot]
            l = load[s]
            if best < 0 or l < best_load:
                best = s
                best_load = l
        old_load = load[old]
        choice[c] = best
        load[old] = old_load - 1
        load[best] = best_load + 1
        potential += 2 * (best_load - old_load) + 2
        moves += 1

        for x in (old, best):
            for slot in range(sptr[x], sptr[x + 1]):
                other = sidx[slot]
                if is_unhappy(other):
                    unhappy.add(other)
                else:
                    unhappy.discard(other)

    return choice, load, moves, initial_potential, potential
