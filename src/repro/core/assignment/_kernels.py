"""Int-array fast-path kernels for assignment algorithms.

Compact counterparts of :func:`~repro.core.assignment.semi_matching.
greedy_assignment` and :func:`~repro.core.assignment.best_response.
best_response_dynamics`, operating on a
:class:`~repro.graphs.compact.CompactBipartite`.

Because both sides of a compact bipartite graph are interned in
``repr``-sorted order, every reference tie-break ("smallest ``repr``
first") becomes "smallest dense id first", so these kernels reproduce the
reference implementations' choices exactly — asserted by the
cross-validation suite on hundreds of seeded instances.  The hot loops
touch only flat integer arrays: no hashing, no frozenset iteration, no
``repr`` calls.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.graphs.compact import CompactBipartite


def greedy_kernel(
    graph: CompactBipartite, *, order: str = "sorted", seed: int = 0
) -> Tuple[List[int], List[int]]:
    """Greedy least-loaded assignment on int arrays.

    Returns ``(choice, load)``: the dense server id per dense customer id
    and the resulting per-server loads.  Matches the reference
    ``greedy_assignment`` exactly: customers in dense (= ``repr``) order,
    or the same seeded shuffle; each picks the smallest-id server among
    the least-loaded adjacent ones.
    """
    num_customers = graph.num_customers
    customers = list(range(num_customers))
    if order == "random":
        random.Random(seed).shuffle(customers)
    elif order != "sorted":
        raise ValueError(f"unknown order {order!r}; expected 'sorted' or 'random'")

    indptr = graph.cust_indptr
    indices = graph.cust_indices
    choice = [-1] * num_customers
    load = [0] * graph.num_servers
    for c in customers:
        best = -1
        best_load = 0
        for slot in range(indptr[c], indptr[c + 1]):
            s = indices[slot]
            l = load[s]
            if best < 0 or l < best_load:
                best = s
                best_load = l
        choice[c] = best
        load[best] = best_load + 1
    return choice, load


def best_response_kernel(
    graph: CompactBipartite,
    *,
    initial_choice: Sequence[int],
    policy: str = "first",
    seed: int = 0,
    max_moves: Optional[int] = None,
) -> Tuple[List[int], List[int], int, int, int]:
    """Best-response dynamics on int arrays until no customer wants to move.

    Parameters mirror :func:`~repro.core.assignment.best_response.
    best_response_dynamics`; ``initial_choice`` is a complete dense
    assignment (e.g. from :func:`greedy_kernel`).

    Returns ``(choice, load, moves, initial_potential, final_potential)``.
    """
    rng = random.Random(seed)
    num_customers = graph.num_customers
    indptr = list(graph.cust_indptr)
    indices = list(graph.cust_indices)
    sptr = list(graph.serv_indptr)
    sidx = list(graph.serv_indices)

    choice = list(initial_choice)
    load = [0] * graph.num_servers
    for s in choice:
        load[s] += 1
    potential = sum(l * l for l in load)
    initial_potential = potential
    if max_moves is None:
        max_moves = potential // 2 + 1

    def is_unhappy(c: int) -> bool:
        own = choice[c]
        own_load = load[own]
        if own_load < 2:
            return False  # no other server can be 2 lighter
        for slot in range(indptr[c], indptr[c + 1]):
            s = indices[slot]
            if s != own and load[s] < own_load - 1:
                return True
        return False

    unhappy = {c for c in range(num_customers) if is_unhappy(c)}

    moves = 0
    while unhappy:
        if moves >= max_moves:
            raise RuntimeError(
                f"best-response dynamics exceeded {max_moves} moves; "
                "the potential argument guarantees this cannot happen"
            )
        if policy == "first":
            c = min(unhappy)
        else:  # random
            ordered = sorted(unhappy)
            c = ordered[rng.randrange(len(ordered))]

        old = choice[c]
        best = -1
        best_load = 0
        for slot in range(indptr[c], indptr[c + 1]):
            s = indices[slot]
            l = load[s]
            if best < 0 or l < best_load:
                best = s
                best_load = l
        old_load = load[old]
        choice[c] = best
        load[old] = old_load - 1
        load[best] = best_load + 1
        potential += 2 * (best_load - old_load) + 2
        moves += 1

        for x in (old, best):
            for slot in range(sptr[x], sptr[x + 1]):
                other = sidx[slot]
                if is_unhappy(other):
                    unhappy.add(other)
                else:
                    unhappy.discard(other)

    return choice, load, moves, initial_potential, potential
