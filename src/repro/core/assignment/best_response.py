"""Best-response dynamics for stable assignments.

The phase-based algorithm of Section 7 is the paper's *distributed*
construction; this module adds the natural *centralized* dynamics as a
scalable production path and baseline: starting from a complete
assignment, repeatedly pick an unhappy customer and move it to a
least-loaded adjacent server.  Each move strictly decreases the potential
Σ load² by at least 2 (the same argument as for sequential edge flips,
Section 1.1), so the dynamics terminate in at most Σ load²/2 moves, at a
stable assignment by definition of the stopping condition.

Like :func:`~repro.core.orientation.sequential.sequential_flip_algorithm`,
the entry point has two implementations producing identical results: the
dict reference path below and an int-array fast path
(:mod:`repro.core.assignment._kernels`) dispatched per
:mod:`repro.dispatch`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.core.assignment.problem import Assignment
from repro.dispatch import resolve_backend
from repro.graphs.bipartite import CustomerServerGraph
from repro.graphs.compact import CompactBipartite

#: Supported policies for choosing the next unhappy customer to move.
BEST_RESPONSE_POLICIES = ("first", "random")


@dataclass
class BestResponseStats:
    """Statistics of one run of best-response dynamics.

    Attributes
    ----------
    moves:
        Total number of customer moves performed.
    initial_potential / final_potential:
        Σ load² before and after; every move decreases it by at least 2,
        so ``final <= initial - 2 * moves``.
    """

    moves: int = 0
    initial_potential: int = 0
    final_potential: int = 0


def best_response_dynamics(
    graph: Union[CustomerServerGraph, CompactBipartite],
    *,
    initial: Union[str, Assignment] = "greedy",
    policy: str = "first",
    seed: int = 0,
    max_moves: Optional[int] = None,
    backend: Optional[str] = None,
) -> Tuple[Assignment, BestResponseStats]:
    """Run best-response dynamics until no customer wants to switch.

    Parameters
    ----------
    graph:
        The customer--server instance (reference or compact form).
    initial:
        ``"greedy"`` (default: the deterministic greedy assignment) or a
        complete :class:`Assignment` to start from.
    policy:
        ``"first"`` moves the smallest unhappy customer (by ``repr``),
        ``"random"`` a seeded-uniform one.
    seed:
        Seed for the ``"random"`` policy.
    max_moves:
        Safety valve; defaults to the potential-argument bound
        ``Σ load² // 2 + 1`` of the initial assignment.
    backend:
        ``"compact"`` / ``"dict"`` / ``"auto"`` (see :mod:`repro.dispatch`).

    Returns
    -------
    (assignment, stats)
        The final (stable) assignment and run statistics.
    """
    if policy not in BEST_RESPONSE_POLICIES:
        raise ValueError(
            f"unknown policy {policy!r}; expected one of {BEST_RESPONSE_POLICIES}"
        )
    if isinstance(initial, Assignment) and not initial.is_complete():
        raise ValueError("best-response dynamics needs a complete initial assignment")

    if resolve_backend(backend) == "compact":
        return _best_response_compact(
            graph, initial=initial, policy=policy, seed=seed, max_moves=max_moves
        )
    if isinstance(graph, CompactBipartite):
        graph = graph.to_customer_server_graph()
    return _best_response_reference(
        graph, initial=initial, policy=policy, seed=seed, max_moves=max_moves
    )


def _best_response_reference(
    graph: CustomerServerGraph,
    *,
    initial: Union[str, Assignment],
    policy: str,
    seed: int,
    max_moves: Optional[int],
) -> Tuple[Assignment, BestResponseStats]:
    """The dict reference path (kept as the readable correctness oracle)."""
    from repro.core.assignment.semi_matching import greedy_assignment

    rng = random.Random(seed)
    if isinstance(initial, Assignment):
        assignment = initial.copy()
    else:
        assignment = greedy_assignment(graph, order="sorted", backend="dict")

    stats = BestResponseStats(
        initial_potential=assignment.sum_squared_loads(),
        final_potential=assignment.sum_squared_loads(),
    )
    if max_moves is None:
        max_moves = stats.initial_potential // 2 + 1

    while True:
        unhappy = assignment.unhappy_customers()
        if not unhappy:
            break
        if stats.moves >= max_moves:
            raise RuntimeError(
                f"best-response dynamics exceeded {max_moves} moves; "
                "the potential argument guarantees this cannot happen"
            )
        if policy == "first":
            customer = unhappy[0]
        else:  # random
            customer = unhappy[rng.randrange(len(unhappy))]
        target = min(
            sorted(graph.servers_of(customer), key=repr),
            key=lambda s: (assignment.load(s), repr(s)),
        )
        assignment.assign(customer, target)
        stats.moves += 1
        stats.final_potential = assignment.sum_squared_loads()

    return assignment, stats


def _best_response_compact(
    graph: Union[CustomerServerGraph, CompactBipartite],
    *,
    initial: Union[str, Assignment],
    policy: str,
    seed: int,
    max_moves: Optional[int],
) -> Tuple[Assignment, BestResponseStats]:
    """Fast path: intern once, run the int-array kernel, wrap the result."""
    from repro.core.assignment._kernels import best_response_kernel, greedy_kernel

    if isinstance(graph, CompactBipartite):
        compact = graph
        ref_graph = None  # resolved lazily below
    else:
        compact = CompactBipartite.from_customer_server_graph(graph)
        ref_graph = graph

    if isinstance(initial, Assignment):
        choices = initial.choices()
        initial_choice = [
            compact.server_index[choices[customer]]
            for customer in compact.customer_ids
        ]
    else:
        initial_choice, _ = greedy_kernel(compact, order="sorted")

    choice, load, moves, initial_potential, final_potential = best_response_kernel(
        compact,
        initial_choice=initial_choice,
        policy=policy,
        seed=seed,
        max_moves=max_moves,
    )

    if ref_graph is None:
        ref_graph = compact.to_customer_server_graph()
    assignment = Assignment(ref_graph)
    assignment._choice = {
        compact.customer_ids[c]: compact.server_ids[choice[c]]
        for c in range(compact.num_customers)
    }
    assignment._load = {
        compact.server_ids[s]: load[s] for s in range(compact.num_servers)
    }
    stats = BestResponseStats(
        moves=moves,
        initial_potential=initial_potential,
        final_potential=final_potential,
    )
    return assignment, stats
