"""Stable assignments, the k-bounded relaxation, and semi-matchings (Section 7).

Public API overview
-------------------
Problem & assignments
    :class:`Assignment`, :func:`check_stable_assignment`,
    :func:`effective_load`.

The paper's algorithms
    :func:`run_stable_assignment` -- the phase-based O(C·S⁴) algorithm
    (Theorem 7.3); :func:`run_bounded_stable_assignment` -- the k-bounded
    relaxation in O(C·S²) (Theorem 7.5);
    :func:`maximal_matching_via_bounded_assignment` -- the Theorem 7.4
    reduction from maximal matching.

Semi-matching quality (experiment E8)
    :func:`optimal_semi_matching`, :func:`approximation_ratio`,
    :func:`greedy_assignment`, :func:`semi_matching_cost`.

Scalable baseline
    :func:`best_response_dynamics` -- centralized unhappy-customer moves
    with a compact int-array fast path (see :mod:`repro.dispatch`).
"""

from repro.core.assignment.algorithm import (
    AssignmentPhaseStats,
    PHASE_OVERHEAD_ROUNDS,
    StableAssignmentResult,
    run_stable_assignment,
    theoretical_phase_bound,
    theoretical_round_bound,
)
from repro.core.assignment.best_response import (
    BEST_RESPONSE_POLICIES,
    BestResponseStats,
    best_response_dynamics,
)
from repro.core.assignment.bounded import (
    is_bounded_stable,
    maximal_matching_via_bounded_assignment,
    run_bounded_stable_assignment,
    theoretical_bounded_round_bound,
    verify_maximal_matching,
)
from repro.core.assignment.problem import (
    Assignment,
    AssignmentError,
    AssignmentProblemSummary,
    check_stable_assignment,
    effective_load,
)
from repro.core.assignment.semi_matching import (
    approximation_ratio,
    assignment_cost,
    greedy_assignment,
    is_two_approximation,
    load_histogram,
    optimal_cost,
    optimal_semi_matching,
    semi_matching_cost,
    triangular,
    worst_server_load,
)

__all__ = [
    "Assignment",
    "AssignmentError",
    "BEST_RESPONSE_POLICIES",
    "BestResponseStats",
    "best_response_dynamics",
    "AssignmentPhaseStats",
    "AssignmentProblemSummary",
    "PHASE_OVERHEAD_ROUNDS",
    "StableAssignmentResult",
    "approximation_ratio",
    "assignment_cost",
    "check_stable_assignment",
    "effective_load",
    "greedy_assignment",
    "is_bounded_stable",
    "is_two_approximation",
    "load_histogram",
    "maximal_matching_via_bounded_assignment",
    "optimal_cost",
    "optimal_semi_matching",
    "run_bounded_stable_assignment",
    "run_stable_assignment",
    "semi_matching_cost",
    "theoretical_bounded_round_bound",
    "theoretical_phase_bound",
    "theoretical_round_bound",
    "triangular",
    "verify_maximal_matching",
    "worst_server_load",
]
