"""Stable assignments: problem statement, assignments, and stability checks.

Sections 1.3 and 7 of the paper.  Given a bipartite customer--server graph,
every customer must be assigned to exactly one adjacent server; customers
selfishly prefer servers with a low load.  An assignment is *stable* when
no customer can strictly lower the load it experiences by unilaterally
switching to another adjacent server, i.e. for every customer ``c``
assigned to server ``s``:

    ``load(s) <= load(s') + 1``  for every other server ``s'`` adjacent to ``c``

(moving would drop ``s``'s load by one and raise ``s'``'s by one, so the
move is profitable only if ``load(s') + 1 < load(s)``).

Section 7.3 defines the *k-bounded* relaxation: all loads of at least
``k`` are treated as equal.  For ``k = 2`` a customer is unhappy only if it
chose a server of load at least 2 while an adjacent server has load 0.
:func:`effective_load` and the ``k``-aware checks implement this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from repro.graphs.bipartite import CustomerServerGraph

NodeId = Hashable


class AssignmentError(ValueError):
    """Raised for malformed assignments or invalid operations."""


def effective_load(load: int, k: Optional[int]) -> int:
    """The load as seen by the k-bounded relaxation (``min(load, k)``).

    ``k=None`` means the unrelaxed problem (the load itself).
    """
    if k is None:
        return load
    if k < 2:
        raise AssignmentError(f"the k-bounded relaxation requires k >= 2, got {k}")
    return min(load, k)


class Assignment:
    """A (possibly partial) assignment of customers to adjacent servers.

    Loads are maintained incrementally.  The phase-based algorithms build
    the assignment gradually, so customers may be temporarily unassigned.
    """

    def __init__(
        self,
        graph: CustomerServerGraph,
        choices: Optional[Mapping[NodeId, NodeId]] = None,
    ) -> None:
        self.graph = graph
        self._choice: Dict[NodeId, NodeId] = {}
        self._load: Dict[NodeId, int] = {server: 0 for server in graph.servers}
        for customer, server in (choices or {}).items():
            self.assign(customer, server)

    # -- copying --------------------------------------------------------
    def copy(self) -> "Assignment":
        clone = Assignment(self.graph)
        clone._choice = dict(self._choice)
        clone._load = dict(self._load)
        return clone

    # -- mutation -------------------------------------------------------
    def assign(self, customer: NodeId, server: NodeId) -> None:
        """Assign (or re-assign) ``customer`` to ``server``."""
        if customer not in self.graph.customer_adjacency:
            raise AssignmentError(f"unknown customer {customer!r}")
        if server not in self.graph.servers_of(customer):
            raise AssignmentError(
                f"server {server!r} is not adjacent to customer {customer!r}"
            )
        previous = self._choice.get(customer)
        if previous is not None:
            self._load[previous] -= 1
        self._choice[customer] = server
        self._load[server] += 1

    def unassign(self, customer: NodeId) -> None:
        """Remove the customer's assignment (used by tests)."""
        previous = self._choice.pop(customer, None)
        if previous is not None:
            self._load[previous] -= 1

    # -- queries --------------------------------------------------------
    def server_of(self, customer: NodeId) -> Optional[NodeId]:
        """The server the customer is assigned to (None if unassigned)."""
        return self._choice.get(customer)

    def is_assigned(self, customer: NodeId) -> bool:
        return customer in self._choice

    def is_complete(self) -> bool:
        """True when every customer is assigned."""
        return len(self._choice) == len(self.graph.customer_adjacency)

    def unassigned_customers(self) -> Tuple[NodeId, ...]:
        return tuple(
            sorted(
                (c for c in self.graph.customers if c not in self._choice), key=repr
            )
        )

    def load(self, server: NodeId) -> int:
        """Number of customers currently assigned to ``server``."""
        return self._load[server]

    def loads(self) -> Dict[NodeId, int]:
        return dict(self._load)

    def max_load(self) -> int:
        if not self._load:
            return 0
        return max(self._load.values())

    def choices(self) -> Dict[NodeId, NodeId]:
        """A copy of the full customer → server mapping."""
        return dict(self._choice)

    # -- happiness / stability ------------------------------------------
    def badness(self, customer: NodeId, k: Optional[int] = None) -> int:
        """Badness of the customer's hyperedge (Section 7.2).

        ``load(assigned server) − min(load of the *other* adjacent servers)``,
        which may be negative when the chosen server is strictly best.  A
        degree-1 customer has badness 0 by convention (it has no
        alternative).  With ``k`` given, loads are first clamped to ``k``
        (the k-bounded relaxation of Section 7.3, using effective loads).
        Raises for unassigned customers.
        """
        server = self._choice.get(customer)
        if server is None:
            raise AssignmentError(f"customer {customer!r} is not assigned")
        others = [s for s in self.graph.servers_of(customer) if s != server]
        if not others:
            return 0
        own = effective_load(self._load[server], k)
        best = min(effective_load(self._load[s], k) for s in others)
        return own - best

    def is_happy(self, customer: NodeId, k: Optional[int] = None) -> bool:
        """A customer is happy iff its badness is at most 1 (in effective loads)."""
        return self.badness(customer, k) <= 1

    def unhappy_customers(self, k: Optional[int] = None) -> List[NodeId]:
        """All assigned-but-unhappy customers."""
        return [
            customer
            for customer in self.graph.customers
            if customer in self._choice and not self.is_happy(customer, k)
        ]

    def is_stable(self, k: Optional[int] = None) -> bool:
        """True when the assignment is complete and every customer is happy."""
        return self.is_complete() and not self.unhappy_customers(k)

    def max_badness(self, k: Optional[int] = None) -> int:
        """Maximum badness over assigned customers (0 if none assigned)."""
        worst = 0
        for customer in self._choice:
            worst = max(worst, self.badness(customer, k))
        return worst

    # -- objectives ------------------------------------------------------
    def semi_matching_cost(self) -> int:
        """Σ_servers f(load) with f(x) = 1 + 2 + ... + x (the HLLT06 objective)."""
        return sum(load * (load + 1) // 2 for load in self._load.values())

    def sum_squared_loads(self) -> int:
        """Σ load², the equivalent load-balancing potential."""
        return sum(load * load for load in self._load.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Assignment(assigned={len(self._choice)}/"
            f"{len(self.graph.customer_adjacency)}, max_load={self.max_load()})"
        )


def check_stable_assignment(
    assignment: Assignment, k: Optional[int] = None
) -> List[str]:
    """Human-readable stability violations (empty list = stable)."""
    violations: List[str] = []
    unassigned = assignment.unassigned_customers()
    if unassigned:
        violations.append(f"{len(unassigned)} customer(s) are unassigned")
    for customer in assignment.unhappy_customers(k):
        server = assignment.server_of(customer)
        violations.append(
            f"customer {customer!r} on server {server!r} (load "
            f"{assignment.load(server)}) has a strictly better server available"
        )
    return violations


@dataclass(frozen=True)
class AssignmentProblemSummary:
    """Degree parameters of an assignment instance (used in reports)."""

    num_customers: int
    num_servers: int
    num_edges: int
    max_customer_degree: int
    max_server_degree: int

    @classmethod
    def of(cls, graph: CustomerServerGraph) -> "AssignmentProblemSummary":
        return cls(
            num_customers=len(graph.customers),
            num_servers=len(graph.servers),
            num_edges=graph.num_edges(),
            max_customer_degree=graph.max_customer_degree(),
            max_server_degree=graph.max_server_degree(),
        )
