"""Semi-matchings: cost, exact optimum, and the 2-approximation claim.

Section 1.3 of the paper: a *semi-matching* (Harvey, Ladner, Lovász,
Tamir 2006) assigns each customer to one adjacent server, minimising
``Σ_v f(load(v))`` with ``f(x) = 1 + 2 + ... + x = x(x+1)/2``.  As observed
by Czygrinow et al., a stable assignment is a factor-2 approximation of
the optimal semi-matching, so the paper's algorithms double as fast
2-approximation algorithms.

This module provides

* :func:`semi_matching_cost` -- the objective;
* :func:`optimal_semi_matching` -- an exact optimum computed by a min-cost
  flow with convex per-server costs (server slot ``i`` costs ``i``, which
  makes the flow's cost equal to ``Σ f(load)``);
* :func:`greedy_assignment` -- the naive "pick a least-loaded adjacent
  server, customers in arbitrary order" heuristic used as an additional
  comparison point in the benchmarks;
* :func:`approximation_ratio` -- measured cost / optimal cost, the
  quantity experiment E8 tabulates.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Iterable, Mapping, Optional, Union

import networkx as nx

from repro.core.assignment.problem import Assignment
from repro.dispatch import resolve_backend
from repro.graphs.bipartite import CustomerServerGraph
from repro.graphs.compact import CompactBipartite

NodeId = Hashable


def triangular(x: int) -> int:
    """f(x) = 1 + 2 + ... + x."""
    if x < 0:
        raise ValueError(f"loads are non-negative, got {x}")
    return x * (x + 1) // 2


def semi_matching_cost(loads: Mapping[NodeId, int]) -> int:
    """Σ f(load) over the given server loads."""
    return sum(triangular(load) for load in loads.values())


def assignment_cost(assignment: Assignment) -> int:
    """Semi-matching cost of a (complete) assignment."""
    return assignment.semi_matching_cost()


def greedy_assignment(
    graph: Union[CustomerServerGraph, CompactBipartite],
    *,
    order: str = "sorted",
    seed: int = 0,
    backend: Optional[str] = None,
) -> Assignment:
    """Assign each customer, one at a time, to a currently least-loaded server.

    ``order`` controls the processing order of the customers: ``"sorted"``
    (deterministic) or ``"random"`` (seeded).  This is the natural
    centralized heuristic; it is *not* guaranteed to be stable, which the
    benchmarks use to show what stability buys.

    ``backend`` selects the compact fast path or the dict reference path
    (identical results; see :mod:`repro.dispatch`).
    """
    if order not in ("sorted", "random"):
        raise ValueError(f"unknown order {order!r}; expected 'sorted' or 'random'")
    # Greedy is a single pass, so interning a dict graph first would cost
    # more than the pass saves; `auto` takes the fast path only when the
    # instance is already compact.
    auto = "compact" if isinstance(graph, CompactBipartite) else "dict"
    if resolve_backend(backend, auto=auto) == "compact":
        return _greedy_assignment_compact(graph, order=order, seed=seed)
    if isinstance(graph, CompactBipartite):
        graph = graph.to_customer_server_graph()
    customers = list(graph.customers)
    if order == "random":
        random.Random(seed).shuffle(customers)
    assignment = Assignment(graph)
    for customer in customers:
        servers = sorted(graph.servers_of(customer), key=repr)
        target = min(servers, key=lambda s: (assignment.load(s), repr(s)))
        assignment.assign(customer, target)
    return assignment


def _greedy_assignment_compact(
    graph: Union[CustomerServerGraph, CompactBipartite], *, order: str, seed: int
) -> Assignment:
    """Fast path: run the int-array greedy kernel and wrap the result."""
    from repro.core.assignment._kernels import greedy_kernel

    if isinstance(graph, CompactBipartite):
        compact = graph
        ref_graph = compact.to_customer_server_graph()
    else:
        compact = CompactBipartite.from_customer_server_graph(graph)
        ref_graph = graph
    choice, load = greedy_kernel(compact, order=order, seed=seed)
    assignment = Assignment(ref_graph)
    assignment._choice = {
        compact.customer_ids[c]: compact.server_ids[choice[c]]
        for c in range(compact.num_customers)
    }
    assignment._load = {
        compact.server_ids[s]: load[s] for s in range(compact.num_servers)
    }
    return assignment


def optimal_semi_matching(graph: CustomerServerGraph) -> Assignment:
    """Compute an optimal semi-matching exactly via min-cost flow.

    Construction: ``source → customer`` (capacity 1, cost 0),
    ``customer → adjacent server`` (capacity 1, cost 0), and for every
    server ``s`` one unit-capacity "slot" arc per potential customer with
    costs ``1, 2, 3, ...``.  Because the slot costs are increasing, a
    min-cost flow fills the cheap slots first and its total cost is exactly
    ``Σ f(load)``, so an integral min-cost flow is an optimal semi-matching
    (this is the standard reduction from HLLT06).
    """
    flow_graph = nx.DiGraph()
    source = ("__source__",)
    sink = ("__sink__",)
    num_customers = len(graph.customers)

    for customer in graph.customers:
        flow_graph.add_edge(source, ("c", customer), capacity=1, weight=0)
        for server in graph.servers_of(customer):
            flow_graph.add_edge(("c", customer), ("s", server), capacity=1, weight=0)
    for server in graph.servers:
        for slot in range(1, graph.server_degree(server) + 1):
            slot_node = ("slot", server, slot)
            flow_graph.add_edge(("s", server), slot_node, capacity=1, weight=slot)
            flow_graph.add_edge(slot_node, sink, capacity=1, weight=0)

    flow_graph.add_node(source, demand=-num_customers)
    flow_graph.add_node(sink, demand=num_customers)
    flow = nx.min_cost_flow(flow_graph)

    assignment = Assignment(graph)
    for customer in graph.customers:
        customer_node = ("c", customer)
        chosen: Optional[NodeId] = None
        for target, amount in flow.get(customer_node, {}).items():
            if amount > 0:
                chosen = target[1]
                break
        if chosen is None:  # pragma: no cover - flow always saturates customers
            raise RuntimeError(f"min-cost flow left customer {customer!r} unassigned")
        assignment.assign(customer, chosen)
    return assignment


def optimal_cost(graph: CustomerServerGraph) -> int:
    """Cost of an optimal semi-matching."""
    return optimal_semi_matching(graph).semi_matching_cost()


def approximation_ratio(assignment: Assignment, optimum: Optional[int] = None) -> float:
    """Measured cost divided by the optimal cost (1.0 means optimal).

    The optimum can be passed in to avoid recomputing it across a sweep.
    An empty instance (no customers) has ratio 1.0 by convention.
    """
    cost = assignment.semi_matching_cost()
    if optimum is None:
        optimum = optimal_cost(assignment.graph)
    if optimum == 0:
        return 1.0
    return cost / optimum


def is_two_approximation(assignment: Assignment, optimum: Optional[int] = None) -> bool:
    """The paper's claim for stable assignments: cost ≤ 2 × optimal cost."""
    return approximation_ratio(assignment, optimum) <= 2.0 + 1e-9


def load_histogram(loads: Mapping[NodeId, int]) -> Dict[int, int]:
    """``{load: number of servers with that load}`` (used in example output)."""
    histogram: Dict[int, int] = {}
    for load in loads.values():
        histogram[load] = histogram.get(load, 0) + 1
    return dict(sorted(histogram.items()))


def worst_server_load(loads: Mapping[NodeId, int]) -> int:
    """Maximum load (the makespan-style secondary objective)."""
    return max(loads.values(), default=0)


def costs_of(assignments: Iterable[Assignment]) -> Dict[int, int]:
    """Semi-matching costs of several assignments keyed by their index."""
    return {index: a.semi_matching_cost() for index, a in enumerate(assignments)}
