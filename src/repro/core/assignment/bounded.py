"""The k-bounded stable assignment relaxation (Section 7.3).

For a threshold ``k >= 2`` all loads of at least ``k`` are treated as
equal: a customer is unhappy only if it chose a server with load ``ℓ`` but
also has a neighbour of load at most ``min(k, ℓ) − 2``.  For ``k = 2``
(the most relaxed non-trivial case) a customer is unhappy exactly when it
sits on a server of load ≥ 2 while an adjacent server has load 0.

The paper proves two results about this relaxation:

* **Theorem 7.4** -- it still requires Ω(Δ + log n / log log n) rounds,
  via a reduction *from* bipartite maximal matching: solve the 2-bounded
  problem, then let every server with more than one assigned customer keep
  exactly one of them; the kept edges form a maximal matching.
  :func:`maximal_matching_via_bounded_assignment` implements that
  reduction and is exercised by experiment E2/E7.
* **Theorem 7.5** -- it can be solved in O(C·S²) rounds, because the
  per-phase token dropping instances have only three levels (effective
  loads 0, 1, 2).  :func:`run_bounded_stable_assignment` is the public
  entry point; it delegates to the shared phase engine with effective
  loads.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Set, Tuple

from repro.core.assignment.algorithm import (
    StableAssignmentResult,
    run_stable_assignment,
)
from repro.core.assignment.problem import Assignment
from repro.graphs.bipartite import CustomerServerGraph

NodeId = Hashable


def theoretical_bounded_round_bound(
    graph: CustomerServerGraph, constant: int = 16
) -> int:
    """A concrete O(C·S²) bound on the total game rounds (Theorem 7.5)."""
    c = graph.max_customer_degree() + 1
    s = graph.max_server_degree() + 1
    return constant * c * s**2 + constant


def run_bounded_stable_assignment(
    graph: CustomerServerGraph,
    *,
    k: int = 2,
    tie_break: str = "min",
    seed: int = 0,
    check_invariants: bool = True,
) -> StableAssignmentResult:
    """Solve the k-bounded stable assignment problem (default ``k = 2``).

    Thin wrapper around :func:`repro.core.assignment.algorithm.run_stable_assignment`
    with effective loads; see Theorem 7.5.
    """
    if k < 2:
        raise ValueError(f"the k-bounded relaxation requires k >= 2, got {k}")
    return run_stable_assignment(
        graph,
        k=k,
        tie_break=tie_break,
        seed=seed,
        check_invariants=check_invariants,
    )


def is_bounded_stable(assignment: Assignment, k: int = 2) -> bool:
    """Check the k-bounded stability condition directly from its definition.

    Independent of :meth:`Assignment.is_stable`: a customer is unhappy iff
    it chose a server with load ``ℓ`` but has a neighbour of load at most
    ``min(k, ℓ) − 2``.  Used in tests to cross-validate the effective-load
    formulation.
    """
    graph = assignment.graph
    if not assignment.is_complete():
        return False
    for customer in graph.customers:
        server = assignment.server_of(customer)
        own = assignment.load(server)
        threshold = min(k, own) - 2
        for other in graph.servers_of(customer):
            if other == server:
                continue
            if assignment.load(other) <= threshold:
                return False
    return True


# ----------------------------------------------------------------------
# Theorem 7.4: maximal matching from a 2-bounded stable assignment
# ----------------------------------------------------------------------
def maximal_matching_via_bounded_assignment(
    graph: CustomerServerGraph,
    *,
    seed: int = 0,
) -> Tuple[Set[Tuple[NodeId, NodeId]], StableAssignmentResult]:
    """Compute a maximal matching using the Theorem 7.4 reduction.

    1. Solve the 2-bounded stable assignment problem on the bipartite
       graph, treating one side as customers and the other as servers.
    2. Every server with more than one assigned customer keeps exactly one
       of those edges; all other assigned edges are dropped.

    Returns the matching (as a set of (customer, server) pairs) together
    with the underlying assignment result.  The correctness argument is
    the proof of Theorem 7.4; :func:`verify_maximal_matching` checks the
    output independently in tests.
    """
    result = run_bounded_stable_assignment(graph, k=2, seed=seed)
    by_server: Dict[NodeId, List[NodeId]] = {}
    for customer, server in result.assignment.choices().items():
        by_server.setdefault(server, []).append(customer)

    matching: Set[Tuple[NodeId, NodeId]] = set()
    for server, customers in by_server.items():
        keep = sorted(customers, key=repr)[0]
        matching.add((keep, server))
    return matching, result


def verify_maximal_matching(
    graph: CustomerServerGraph, matching: Set[Tuple[NodeId, NodeId]]
) -> List[str]:
    """Check that ``matching`` is a maximal matching of the bipartite graph.

    Returns a list of violations (empty = correct): every matched pair must
    be an edge, no vertex may be matched twice, and no edge may have both
    endpoints unmatched.
    """
    violations: List[str] = []
    matched_customers: Set[NodeId] = set()
    matched_servers: Set[NodeId] = set()
    for customer, server in matching:
        if server not in graph.servers_of(customer):
            violations.append(f"({customer!r}, {server!r}) is not an edge")
        if customer in matched_customers:
            violations.append(f"customer {customer!r} matched twice")
        if server in matched_servers:
            violations.append(f"server {server!r} matched twice")
        matched_customers.add(customer)
        matched_servers.add(server)

    for customer in graph.customers:
        if customer in matched_customers:
            continue
        for server in graph.servers_of(customer):
            if server not in matched_servers:
                violations.append(
                    f"edge ({customer!r}, {server!r}) has both endpoints unmatched "
                    "(matching is not maximal)"
                )
                break
    return violations
