"""The token dropping game (Section 4 and Section 7.1 of the paper).

Public API overview
-------------------
Instances and solutions
    :class:`TokenDroppingInstance`, :class:`Traversal`,
    :class:`TokenDroppingSolution`, :func:`random_token_placement`,
    :func:`figure2_instance`.

Distributed algorithms (run on the LOCAL simulator)
    :func:`run_proposal_algorithm` -- the O(L·Δ²) proposal algorithm
    (Theorem 4.1); :func:`run_three_level_algorithm` -- the O(Δ)
    algorithm for games on levels {0, 1, 2} (Theorem 4.7).

Centralized baseline
    :func:`greedy_token_dropping` -- "move any movable token" (Section 4).

Hypergraph generalisation (Theorem 7.1)
    :class:`HypergraphTokenDroppingInstance`,
    :func:`run_hypergraph_proposal`.
"""

from repro.core.token_dropping.game import (
    InvalidInstanceError,
    TokenDroppingInstance,
    figure2_instance,
    instance_from_loads,
    random_token_placement,
)
from repro.core.token_dropping.greedy import (
    GREEDY_ORDERS,
    compare_destinations,
    count_sequential_moves,
    exhaustive_is_stuck,
    greedy_token_dropping,
)
from repro.core.token_dropping.hypergraph_game import (
    HyperTraversal,
    HypergraphRoundLimitExceeded,
    HypergraphTokenDroppingInstance,
    HypergraphTokenDroppingSolution,
    InvalidHypergraphInstanceError,
    InvalidHypergraphSolutionError,
    run_hypergraph_proposal,
)
from repro.core.token_dropping.proposal import (
    ROUNDS_PER_GAME_ROUND,
    TIE_BREAK_POLICIES,
    ProposalNode,
    proposal_factory,
    reconstruct_solution,
    run_proposal_algorithm,
)
from repro.core.token_dropping.three_level import (
    ThreeLevelNode,
    UnsupportedHeightError,
    run_three_level_algorithm,
    theoretical_three_level_bound,
    three_level_factory,
)
from repro.core.token_dropping.traversal import (
    InvalidSolutionError,
    TokenDroppingSolution,
    Traversal,
    ValidationReport,
    final_occupancy,
    solution_from_paths,
)

__all__ = [
    "GREEDY_ORDERS",
    "HyperTraversal",
    "HypergraphRoundLimitExceeded",
    "HypergraphTokenDroppingInstance",
    "HypergraphTokenDroppingSolution",
    "InvalidHypergraphInstanceError",
    "InvalidHypergraphSolutionError",
    "InvalidInstanceError",
    "InvalidSolutionError",
    "ProposalNode",
    "ROUNDS_PER_GAME_ROUND",
    "ThreeLevelNode",
    "TIE_BREAK_POLICIES",
    "TokenDroppingInstance",
    "TokenDroppingSolution",
    "Traversal",
    "UnsupportedHeightError",
    "ValidationReport",
    "compare_destinations",
    "count_sequential_moves",
    "exhaustive_is_stuck",
    "figure2_instance",
    "final_occupancy",
    "greedy_token_dropping",
    "instance_from_loads",
    "proposal_factory",
    "random_token_placement",
    "reconstruct_solution",
    "run_hypergraph_proposal",
    "run_proposal_algorithm",
    "run_three_level_algorithm",
    "solution_from_paths",
    "theoretical_three_level_bound",
    "three_level_factory",
]
